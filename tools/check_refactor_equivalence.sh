#!/usr/bin/env bash
# Refactor-equivalence gate: run the representative smoke benches and
# diff their run reports against the checked-in pre-refactor baselines
# at ZERO tolerance, at jobs=1 and jobs=3.
#
# The baselines under tests/baselines/refactor_equiv/ were captured
# from the pre-plan-core controller; any numeric drift — a reordered
# rng draw, a miscounted transfer, a jobs-dependent reduction — fails
# this gate byte-for-byte.
#
# On top of the auto-backend legs, each sweep bench also runs with the
# state backend forced to dense and to paged.  Both must match the
# same baseline at zero tolerance — the only permitted difference is
# the state_backend= spec token itself (--ignore-spec-key), which
# proves the storage layer changes host footprint and nothing else.
#
# Usage: tools/check_refactor_equivalence.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
BASELINES="$ROOT/tests/baselines/refactor_equiv"
WORKDIR="$BUILD/refactor_equiv"
mkdir -p "$WORKDIR"

status=0
check() {
    local baseline="$1" out="$2" label="$3"
    shift 3
    if python3 "$ROOT/tools/compare_reports.py" --rtol 0 --atol 0 \
        "$@" "$baseline" "$out"; then
        echo "OK   $label"
    else
        echo "FAIL $label"
        status=1
    fi
}

for baseline in "$BASELINES"/*.json; do
    name="$(basename "$baseline" .json)"
    if [ "$name" = "bench_tab01_lookup_costs" ]; then
        # Analytic table: no sweep, and it rejects unused config keys
        # (no cores/jobs), so one run covers it.
        out="$WORKDIR/$name.json"
        "$BUILD/bench/$name" scale=4096 --json="$out" > /dev/null
        check "$baseline" "$out" "$name"
        continue
    fi
    for jobs in 1 3; do
        out="$WORKDIR/$name.j$jobs.json"
        "$BUILD/bench/$name" scale=4096 cores=2 warm=2000 \
            measure=4000 timed=1500 jobs="$jobs" --json="$out" \
            > /dev/null
        check "$baseline" "$out" "$name jobs=$jobs"
        for backend in dense paged; do
            out="$WORKDIR/$name.j$jobs.$backend.json"
            "$BUILD/bench/$name" scale=4096 cores=2 warm=2000 \
                measure=4000 timed=1500 jobs="$jobs" \
                state_backend="$backend" --json="$out" > /dev/null
            check "$baseline" "$out" \
                "$name jobs=$jobs state_backend=$backend" \
                --ignore-spec-key state_backend
        done
    done
done
exit $status

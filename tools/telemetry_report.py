#!/usr/bin/env python3
"""Validate and summarize accord.telemetry/1 flight-recorder streams.

A telemetry stream is append-only JSONL: one `hdr` record, then `hb`
heartbeats at a deterministic cadence, then one `end` record.  The
FlightRecorder flushes after every line, so a killed run leaves a
readable partial stream — possibly ending in a truncated line, which
this tool deliberately accepts (the truncated tail is dropped, every
complete record before it still counts).

The stream partitions its content:

  canonical  simulator state at cadence-defined positions; byte
             identical across re-runs and jobs= values
  volatile   host observations (wall clock, RSS, events/sec, ETA),
             quarantined inside nested "host" objects and declared by
             the header's "volatile" list

Modes:
  --validate FILE...   schema/partition/sequence checks, exit 1 on error
  --strip FILE         print the canonical stream (host objects removed)
  --summary FILE...    per-run tables; >1 file adds a cross-sweep table
  --self-test          run the validator against committed fixtures
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "accord.telemetry/1"

# Exact per-record-type key sets; shared gauge block for hb/end.
GAUGE_KEYS = {
    "phase", "position", "cycles", "reads", "read_hits", "hit_rate",
    "eq_pending", "eq_executed", "eq_occupancy_peak",
    "eq_overflow_spills", "pool_live", "pool_block_bytes",
    "state_bytes",
}
KNOWN_KEYS = {
    "hdr": {"t", "schema", "units", "interval", "total_units", "spec",
            "volatile", "volatile_container"},
    "hb": {"t", "seq", "host"} | GAUGE_KEYS,
    "end": {"t", "seq", "host", "phases", "epoch_positions",
            "epoch_deltas"} | GAUGE_KEYS,
}
PHASE_KEYS = {"name", "units", "cycles", "host"}


class StreamError(Exception):
    """One validation failure, annotated with file and line number."""


def parse_stream(path):
    """Return (records, truncated) — complete records plus a flag for
    an unparseable final line (accepted: kill-survivability contract).
    A parse failure anywhere else is corruption, not truncation."""
    lines = Path(path).read_text().splitlines()
    records = []
    for number, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            records.append((number, json.loads(line)))
        except json.JSONDecodeError:
            if number == len(lines):
                return records, True
            raise StreamError(f"line {number}: unparseable JSON in "
                              "the middle of the stream")
    return records, False


def _find_volatile_leaks(value, volatile, container, inside_host):
    """Recursively yield paths where a declared-volatile key appears
    outside a `container` ("host") object."""
    if not isinstance(value, dict):
        if isinstance(value, list):
            for i, item in enumerate(value):
                yield from _find_volatile_leaks(
                    item, volatile, container, inside_host)
        return
    for key, child in value.items():
        if key in volatile and not inside_host:
            yield key
        yield from _find_volatile_leaks(
            child, volatile, container,
            inside_host or key == container)


def validate_stream(path):
    """Validate one stream; returns a dict of facts about it or raises
    StreamError."""
    records, truncated = parse_stream(path)
    if not records:
        raise StreamError("empty stream (not even a header)")

    number, hdr = records[0]
    if hdr.get("t") != "hdr":
        raise StreamError(f"line {number}: first record must be the "
                          f"header, got t={hdr.get('t')!r}")
    if hdr.get("schema") != SCHEMA:
        raise StreamError(f"line {number}: schema "
                          f"{hdr.get('schema')!r}, expected {SCHEMA!r}")
    unknown = set(hdr) - KNOWN_KEYS["hdr"]
    if unknown:
        raise StreamError(f"line {number}: unknown header keys "
                          f"{sorted(unknown)}")
    volatile = set(hdr.get("volatile", []))
    container = hdr.get("volatile_container", "host")
    if not volatile:
        raise StreamError(f"line {number}: header declares no "
                          "volatile fields")

    seq = 0
    position = -1
    saw_end = False
    for number, rec in records[1:]:
        kind = rec.get("t")
        if kind not in ("hb", "end"):
            raise StreamError(f"line {number}: unknown record type "
                              f"t={kind!r}")
        if saw_end:
            raise StreamError(f"line {number}: record after the end "
                              "record")
        # Partition check first: a volatile key at the wrong level is
        # also "unknown" there, and the leak is the real diagnosis.
        leaks = sorted(set(_find_volatile_leaks(
            rec, volatile, container, False)))
        if leaks:
            raise StreamError(f"line {number}: volatile fields {leaks} "
                              f"outside the '{container}' container")
        unknown = set(rec) - KNOWN_KEYS[kind]
        if unknown:
            raise StreamError(f"line {number}: unknown {kind} keys "
                              f"{sorted(unknown)}")
        if rec.get("seq") != seq + 1:
            raise StreamError(f"line {number}: seq {rec.get('seq')} "
                              f"breaks the monotonic chain at {seq}")
        seq = rec["seq"]
        if rec.get("position", 0) < position:
            raise StreamError(f"line {number}: position went backwards "
                              f"({rec.get('position')} < {position})")
        position = rec.get("position", 0)
        if kind == "end":
            saw_end = True
            for phase in rec.get("phases", []):
                unknown = set(phase) - PHASE_KEYS
                if unknown:
                    raise StreamError(f"line {number}: unknown phase "
                                      f"keys {sorted(unknown)}")

    return {
        "hdr": hdr,
        "records": records,
        "heartbeats": sum(1 for _, r in records if r.get("t") == "hb"),
        "complete": saw_end,
        "truncated": truncated,
    }


def strip_host(rec, container="host"):
    """Return the canonical portion of a record: every `container`
    object removed, recursively."""
    if isinstance(rec, dict):
        return {k: strip_host(v, container) for k, v in rec.items()
                if k != container}
    if isinstance(rec, list):
        return [strip_host(v, container) for v in rec]
    return rec


def cmd_validate(paths):
    status = 0
    for path in paths:
        try:
            facts = validate_stream(path)
        except (StreamError, OSError) as err:
            print(f"telemetry_report: {path}: FAIL: {err}")
            status = 1
            continue
        notes = []
        if facts["truncated"]:
            notes.append("truncated tail dropped")
        if not facts["complete"]:
            notes.append("no end record (run killed or in flight)")
        suffix = f" ({'; '.join(notes)})" if notes else ""
        print(f"telemetry_report: {path}: OK, "
              f"{facts['heartbeats']} heartbeats{suffix}")
    return status


def cmd_strip(path):
    facts = validate_stream(path)
    container = facts["hdr"].get("volatile_container", "host")
    for _, rec in facts["records"]:
        print(json.dumps(strip_host(rec, container),
                         separators=(",", ":")))
    return 0


def _last_record(facts):
    return facts["records"][-1][1] if len(facts["records"]) > 1 else {}


def cmd_summary(paths):
    rows = []
    for path in paths:
        facts = validate_stream(path)
        hdr = facts["hdr"]
        last = _last_record(facts)
        host = last.get("host", {})
        total = hdr.get("total_units", 0)
        position = last.get("position", 0)
        rows.append({
            "run": Path(path).name,
            "state": ("done" if facts["complete"]
                      else "partial"),
            "hb": facts["heartbeats"],
            "position": f"{position}/{total}" if total else str(position),
            "hit_rate": f"{last.get('hit_rate', 0.0):.4f}",
            "eq_peak": last.get("eq_occupancy_peak", 0),
            "spills": last.get("eq_overflow_spills", 0),
            "wall_s": f"{host.get('wall_s', 0.0):.2f}",
            "peak_rss_kb": host.get("peak_rss_kb", 0),
            "ev_per_s": f"{host.get('events_per_sec', 0.0):.0f}",
        })
        print(f"-- {path} --")
        print(f"  spec: {hdr.get('spec', '')}")
        print(f"  cadence: every {hdr.get('interval')} "
              f"{hdr.get('units')}, {facts['heartbeats']} heartbeats"
              + (", truncated tail" if facts["truncated"] else ""))
        for phase in _last_record(facts).get("phases", []):
            wall = phase.get("host", {}).get("wall_s", 0.0)
            print(f"  phase {phase.get('name'):<8} "
                  f"units={phase.get('units'):<10} "
                  f"cycles={phase.get('cycles'):<12} "
                  f"wall_s={wall:.2f}")

    if len(rows) > 1:
        headers = list(rows[0])
        widths = {h: max(len(h), *(len(str(r[h])) for r in rows))
                  for h in headers}
        print("-- sweep --")
        print("  " + "  ".join(h.ljust(widths[h]) for h in headers))
        for row in rows:
            print("  " + "  ".join(
                str(row[h]).ljust(widths[h]) for h in headers))
    return 0


def self_test(fixture_dir):
    """Committed good/bad fixtures pin the validator's behavior: the
    good and truncated streams must pass, each bad_* fixture must fail
    with the expected message fragment."""
    fixture_dir = Path(fixture_dir)
    expect_fail = {
        "bad_schema.jsonl": "schema",
        "bad_seq.jsonl": "monotonic",
        "bad_volatile_leak.jsonl": "outside",
        "bad_midstream.jsonl": "middle of the stream",
    }
    expect_pass = {"good.jsonl", "truncated.jsonl"}
    failures = []

    for name in sorted(expect_pass):
        try:
            facts = validate_stream(fixture_dir / name)
            print(f"  {name}: OK "
                  f"({facts['heartbeats']} heartbeats)")
        except StreamError as err:
            failures.append(f"{name}: expected PASS, got: {err}")

    for name, fragment in sorted(expect_fail.items()):
        try:
            validate_stream(fixture_dir / name)
            failures.append(f"{name}: expected FAIL, validated clean")
        except StreamError as err:
            if fragment in str(err):
                print(f"  {name}: rejected as expected ({err})")
            else:
                failures.append(f"{name}: wrong error: {err}")

    # The strip round-trip: good.jsonl's hb/end records stripped of
    # host objects must contain no volatile keys anywhere.  (The
    # header legitimately names them — it declares the partition.)
    facts = validate_stream(fixture_dir / "good.jsonl")
    volatile = set(facts["hdr"]["volatile"])
    for _, rec in facts["records"]:
        if rec.get("t") == "hdr":
            continue
        text = json.dumps(strip_host(rec))
        for key in volatile:
            if f'"{key}"' in text:
                failures.append(f"good.jsonl: strip left {key} behind")

    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}")
        print("telemetry_report: self-test FAILED")
        return 1
    print("telemetry_report: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="telemetry JSONL files")
    parser.add_argument("--validate", action="store_true",
                        help="validate each stream")
    parser.add_argument("--strip", action="store_true",
                        help="print the canonical stream (one file)")
    parser.add_argument("--summary", action="store_true",
                        help="per-run and cross-sweep summaries")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the committed fixtures")
    parser.add_argument("--fixtures",
                        default=str(Path(__file__).resolve().parent.parent
                                    / "tests" / "telemetry_fixtures"),
                        help="fixture directory for --self-test")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.fixtures)
    if not args.files:
        parser.error("no input files")
    try:
        if args.strip:
            if len(args.files) != 1:
                parser.error("--strip takes exactly one file")
            return cmd_strip(args.files[0])
        if args.summary:
            return cmd_summary(args.files)
        return cmd_validate(args.files)
    except (StreamError, OSError) as err:
        print(f"telemetry_report: {err}")
        return 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # --strip output is made for piping into head/diff; a closed
        # downstream pipe is not an error.
        sys.exit(0)

#!/usr/bin/env python3
"""Convert text access traces to the accord.trace/1 binary format.

Input is a ChampSim/gem5-style text trace: one record per line,
whitespace-separated::

    R 0x7f21a3c040          # demand read at a byte address
    W 0x7f21a3c080          # writeback
    R 0x40021480 3          # optional request class (uint16)
    0x40021500              # bare address: read, class unchanged

The kind token accepts ``R``/``RD``/``READ``/``L``/``0`` for reads and
``W``/``WR``/``WRITE``/``WB``/``S``/``1`` for writebacks (case
insensitive).  Addresses parse with ``int(tok, 0)`` — ``0x`` prefix for
hex, otherwise decimal.  ``#`` starts a comment; blank lines are
skipped.  Byte addresses become line addresses via ``--line-bytes``
(default 64, the simulator's cache-line size).

Output is the compact varint-delta binary described in docs/TRACES.md
(magic ``ACRDBT01``), optionally gzip-wrapped with ``--gzip`` — the
simulator's reader auto-detects the wrapper.  ``--stats`` prints a
summary of the converted stream.  ``--self-test`` round-trips a
synthetic stream through the encoder and a reference decoder and exits
nonzero on any mismatch (registered as a ctest).

Usage:
    tools/convert_trace.py input.txt -o out.trc [--gzip] [--stats]
    tools/convert_trace.py --self-test

Stdlib only; no third-party imports.
"""

import argparse
import gzip
import io
import struct
import sys

MAGIC = b"ACRDBT01"
HEADER_BYTES = 17  # magic + flags byte + u64 record count
CTRL_WRITEBACK = 0x01
CTRL_CLASS_FOLLOWS = 0x02

READ_TOKENS = {"r", "rd", "read", "l", "0"}
WRITE_TOKENS = {"w", "wr", "write", "wb", "s", "1"}


def zigzag_encode(value):
    """Map a signed delta to the unsigned varint domain."""
    return ((value << 1) ^ (value >> 63)) & 0xFFFFFFFFFFFFFFFF


def zigzag_decode(value):
    """Inverse of zigzag_encode."""
    return (value >> 1) ^ -(value & 1)


def put_varint(out, value):
    """Append one LEB128-style varint."""
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


class Encoder:
    """Streams accord.trace/1 records into a binary file object."""

    def __init__(self, fileobj, patch_count=True):
        self.fileobj = fileobj
        self.patch_count = patch_count
        self.records = 0
        self.prev_line = 0
        self.prev_cls = 0
        self.buffer = bytearray()
        fileobj.write(MAGIC + b"\x00" + struct.pack("<Q", 0))

    def append(self, line, writeback, cls):
        control = CTRL_WRITEBACK if writeback else 0
        if cls != self.prev_cls:
            control |= CTRL_CLASS_FOLLOWS
        self.buffer.append(control)
        delta = (line - self.prev_line) & 0xFFFFFFFFFFFFFFFF
        if delta >= 1 << 63:
            delta -= 1 << 64
        put_varint(self.buffer, zigzag_encode(delta))
        if control & CTRL_CLASS_FOLLOWS:
            put_varint(self.buffer, cls)
        self.prev_line = line
        self.prev_cls = cls
        self.records += 1
        if len(self.buffer) >= 64 * 1024:
            self.fileobj.write(self.buffer)
            self.buffer.clear()

    def finish(self):
        """Flush and, for plain output, patch the header count."""
        self.fileobj.write(self.buffer)
        self.buffer.clear()
        if self.patch_count:
            self.fileobj.seek(len(MAGIC) + 1)
            self.fileobj.write(struct.pack("<Q", self.records))


def decode(blob):
    """Reference decoder: (declared_count, [(line, writeback, cls)])."""
    if blob[: len(MAGIC)] != MAGIC:
        raise ValueError("bad magic")
    if blob[len(MAGIC)] != 0:
        raise ValueError("nonzero flags byte")
    declared = struct.unpack_from("<Q", blob, len(MAGIC) + 1)[0]
    pos = HEADER_BYTES
    records = []
    line = 0
    cls = 0

    def varint():
        nonlocal pos
        shift = 0
        value = 0
        while True:
            if pos >= len(blob):
                raise ValueError("truncated varint")
            byte = blob[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if byte < 0x80:
                return value
            shift += 7

    while pos < len(blob):
        control = blob[pos]
        pos += 1
        if control & ~(CTRL_WRITEBACK | CTRL_CLASS_FOLLOWS):
            raise ValueError("reserved control bits set")
        line = (line + zigzag_decode(varint())) & 0xFFFFFFFFFFFFFFFF
        if control & CTRL_CLASS_FOLLOWS:
            cls = varint()
        records.append((line, bool(control & CTRL_WRITEBACK), cls))
    return declared, records


def parse_line(text, lineno):
    """One text record -> (line_is_present, addr, writeback, cls|None)."""
    body = text.split("#", 1)[0].strip()
    if not body:
        return None
    tokens = body.split()
    writeback = False
    cls = None
    if len(tokens) == 1:
        addr_tok = tokens[0]
    else:
        kind = tokens[0].lower()
        if kind in READ_TOKENS:
            writeback = False
        elif kind in WRITE_TOKENS:
            writeback = True
        else:
            raise ValueError(
                f"line {lineno}: unknown kind token '{tokens[0]}'")
        addr_tok = tokens[1]
        if len(tokens) >= 3:
            cls = int(tokens[2], 0)
            if not 0 <= cls <= 0xFFFF:
                raise ValueError(
                    f"line {lineno}: class {cls} out of uint16 range")
        if len(tokens) > 3:
            raise ValueError(f"line {lineno}: trailing tokens")
    try:
        addr = int(addr_tok, 0)
    except ValueError:
        raise ValueError(
            f"line {lineno}: bad address '{addr_tok}'") from None
    if addr < 0:
        raise ValueError(f"line {lineno}: negative address")
    return addr, writeback, cls


def convert(args):
    """Text -> binary; returns the stats dict."""
    opener = gzip.open if args.input.endswith(".gz") else open
    stats = {
        "records": 0,
        "writebacks": 0,
        "lines": set(),
    }
    sink = open(args.output, "wb")
    try:
        if args.gzip:
            # Header count stays 0 (unknown): the gzip stream cannot
            # be patched after the fact, matching the C++ writer.
            zsink = gzip.GzipFile(
                fileobj=sink, mode="wb", compresslevel=6, mtime=0)
            enc = Encoder(zsink, patch_count=False)
        else:
            enc = Encoder(sink)
        cls = 0
        with opener(args.input, "rt") as src:
            for lineno, text in enumerate(src, start=1):
                parsed = parse_line(text, lineno)
                if parsed is None:
                    continue
                addr, writeback, new_cls = parsed
                if new_cls is not None:
                    cls = new_cls
                line = addr // args.line_bytes
                enc.append(line, writeback, cls)
                stats["records"] += 1
                stats["writebacks"] += int(writeback)
                stats["lines"].add(line)
        enc.finish()
        if args.gzip:
            zsink.close()
    finally:
        sink.close()
    if stats["records"] == 0:
        sys.exit(f"error: no records in '{args.input}'")
    return stats


def print_stats(args, stats):
    import os

    size = os.path.getsize(args.output)
    records = stats["records"]
    print(f"records:        {records}")
    print(f"writeback frac: {stats['writebacks'] / records:.4f}")
    print(f"distinct lines: {len(stats['lines'])}")
    print(f"output bytes:   {size}"
          f" ({(size - HEADER_BYTES) / records:.2f}/record)")


def self_test():
    """Encoder vs. reference decoder round trip; exits on mismatch."""
    cases = [
        # (line, writeback, cls): deltas forward/backward/zero, class
        # switches, and full-width addresses.
        (0, False, 0),
        (1, False, 0),
        (1, True, 0),
        (100, False, 7),
        (3, False, 7),
        (2**58, True, 65535),
        (2**58, False, 0),
        (5, False, 0),
    ]
    buf = io.BytesIO()
    enc = Encoder(buf)
    for line, writeback, cls in cases:
        enc.append(line, writeback, cls)
    enc.finish()
    declared, decoded = decode(buf.getvalue())
    assert declared == len(cases), (declared, len(cases))
    assert decoded == cases, decoded

    # Text parsing: kinds, classes, comments, bare addresses.
    assert parse_line("R 0x80 # demand", 1) == (0x80, False, None)
    assert parse_line("w 128 3", 2) == (128, True, 3)
    assert parse_line("0x1000", 3) == (0x1000, False, None)
    assert parse_line("   # comment only", 4) is None
    for bad in ("X 0x80", "R zzz", "R 0x80 70000", "R 0x80 1 junk"):
        try:
            parse_line(bad, 5)
        except ValueError:
            pass
        else:
            raise AssertionError(f"accepted bad line {bad!r}")

    # Truncation and corruption must raise, not mis-decode.
    blob = buf.getvalue()
    for bad_blob in (b"WRONGMAG" + blob[8:], blob[:-1],
                     blob[:HEADER_BYTES] + b"\xfc\x00"):
        try:
            decode(bad_blob)
        except ValueError:
            pass
        else:
            raise AssertionError("decoded corrupt input")
    print("convert_trace.py self-test: OK")


def main():
    parser = argparse.ArgumentParser(
        description="convert text access traces to accord.trace/1")
    parser.add_argument("input", nargs="?",
                        help="text trace (.gz auto-detected)")
    parser.add_argument("-o", "--output",
                        help="output path (default: input + .trc)")
    parser.add_argument("--line-bytes", type=int, default=64,
                        help="cache-line size dividing byte addresses "
                             "(default 64)")
    parser.add_argument("--gzip", action="store_true",
                        help="gzip-wrap the output stream")
    parser.add_argument("--stats", action="store_true",
                        help="print a summary of the converted stream")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in round-trip checks")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return
    if args.input is None:
        parser.error("input trace required (or --self-test)")
    if args.line_bytes <= 0:
        parser.error("--line-bytes must be positive")
    if args.output is None:
        args.output = args.input + ".trc"
    stats = convert(args)
    if args.stats:
        print_stats(args, stats)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate and summarize ACCORD transaction traces (trace=<out>.json).

The simulator's tracer emits Chrome trace-event JSON (Perfetto-loadable)
with one async span per transaction (``cat: "txn"``, root span named
after the kind, nested ``lookup``/``nvm`` phase spans) plus device-side
bursts (``X``), ACT/CAS instants (``i``) and queue-depth counters
(``C``).  This tool is the offline half of that pipeline:

``--validate``
    Structural gate, used as a ctest: every ``ts``/``dur`` is an
    integer sim-cycle, the stream is sorted by timestamp, every
    transaction's begin/end events balance with proper nesting, phase
    spans sit inside their root span, and every completed transaction
    carries a known request class.  Exits 1 with a per-file problem
    list on any violation.

default report
    Per-request-class latency statistics (count, mean, p50/p95/p99),
    a per-class critical-path breakdown (mean cycles in lookup, nvm,
    and the uncovered remainder), device burst/queue summaries, and
    the top-N slowest transactions.

Usage:
    tools/analyze_trace.py trace.json [more.json ...] [--top 10]
    tools/analyze_trace.py --validate trace.json [more.json ...]

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

CLASSES = ("hit_predict", "hit_mispredict", "miss", "writeback", "fill")
ROOT_NAMES = ("read", "writeback", "fill")
PHASE_NAMES = ("lookup", "nvm")


def load(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace-event JSON object")
    return doc


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list (matches the
    simulator's Histogram.percentile convention)."""
    if not sorted_values:
        return 0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class Txn:
    __slots__ = ("tid", "begin", "end", "cls", "name", "stack",
                 "phases", "problems")

    def __init__(self, tid, begin, name):
        self.tid = tid
        self.begin = begin
        self.end = None
        self.cls = None
        self.name = name
        self.stack = [name]
        self.phases = {}      # phase name -> total cycles
        self.problems = []


def scan(doc, path, problems):
    """Walk one trace; returns {id: Txn} and the list of X events.

    Appends validation problems (strings) to ``problems`` as it goes —
    the same pass backs both ``--validate`` and the report, so the
    report can never disagree with the gate about what a transaction
    looks like.
    """
    txns = {}
    bursts = []
    open_phase_begin = {}  # (id, phase name) -> begin ts
    last_ts = None
    for n, ev in enumerate(doc["traceEvents"]):
        where = f"{path}: traceEvents[{n}]"
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: ts {ts!r} is not a sim-cycle "
                            f"integer")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: ts {ts} < previous {last_ts} "
                            f"(stream must be time-sorted)")
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: X dur {dur!r} is not a "
                                f"non-negative integer")
            bursts.append(ev)
            continue
        if ev.get("cat") != "txn":
            continue
        tid = ev.get("id")
        name = ev.get("name")
        if ph == "b":
            if name in ROOT_NAMES:
                if tid in txns:
                    problems.append(f"{where}: duplicate root begin "
                                    f"for txn {tid}")
                    continue
                txns[tid] = Txn(tid, ts, name)
            else:
                txn = txns.get(tid)
                if txn is None or not txn.stack:
                    problems.append(f"{where}: phase '{name}' begins "
                                    f"outside an open txn {tid}")
                    continue
                txn.stack.append(name)
                open_phase_begin[(tid, name)] = ts
        elif ph == "e":
            txn = txns.get(tid)
            if txn is None or not txn.stack:
                problems.append(f"{where}: end '{name}' without an "
                                f"open span on txn {tid}")
                continue
            top = txn.stack.pop()
            if top != name:
                problems.append(f"{where}: end '{name}' does not "
                                f"match open span '{top}' on txn "
                                f"{tid} (bad nesting)")
                txn.stack.append(top)
                continue
            if name in ROOT_NAMES:
                if txn.stack:
                    problems.append(f"{where}: txn {tid} root ended "
                                    f"with open phases {txn.stack}")
                txn.end = ts
                txn.cls = (ev.get("args") or {}).get("class")
                if txn.cls not in CLASSES:
                    problems.append(f"{where}: txn {tid} completed "
                                    f"with unknown class "
                                    f"{txn.cls!r}")
            else:
                begin = open_phase_begin.pop((tid, name), None)
                if begin is not None:
                    txn.phases[name] = (txn.phases.get(name, 0)
                                        + ts - begin)
        elif ph == "n":
            if tid not in txns:
                problems.append(f"{where}: instant '{name}' on "
                                f"unknown txn {tid}")
    for tid, txn in txns.items():
        if txn.end is None:
            problems.append(f"{path}: txn {tid} ('{txn.name}') never "
                            f"completed; open spans {txn.stack}")
    return txns, bursts


def validate(paths):
    bad = 0
    for path in paths:
        problems = []
        try:
            doc = load(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"{path}: unreadable trace: {err}")
            bad += 1
            continue
        txns, _ = scan(doc, path, problems)
        if problems:
            for line in problems[:50]:
                print(line)
            if len(problems) > 50:
                print(f"... and {len(problems) - 50} more")
            print(f"analyze_trace: {path}: {len(problems)} problem(s) "
                  f"across {len(txns)} transaction(s)")
            bad += 1
        else:
            print(f"analyze_trace: {path}: OK "
                  f"({len(txns)} transactions, "
                  f"{len(doc['traceEvents'])} events)")
    return 1 if bad else 0


def report(paths, top_n):
    status = 0
    for path in paths:
        problems = []
        try:
            doc = load(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"{path}: unreadable trace: {err}")
            status = 1
            continue
        txns, bursts = scan(doc, path, problems)
        done = [t for t in txns.values()
                if t.end is not None and t.cls in CLASSES]
        meta = doc.get("metadata", {})
        print(f"== {path}")
        print(f"   {len(done)} completed transactions, "
              f"{len(bursts)} device bursts, "
              f"{meta.get('evicted_txns', 0)} evicted, "
              f"{meta.get('dropped_events', 0)} dropped events")
        if problems:
            print(f"   WARNING: {len(problems)} structural problem(s);"
                  f" run --validate for details")
            status = 1

        print(f"   {'class':<15}{'count':>8}{'mean':>10}{'p50':>8}"
              f"{'p95':>8}{'p99':>8}{'lookup':>9}{'nvm':>8}"
              f"{'other':>8}")
        for cls in CLASSES:
            group = [t for t in done if t.cls == cls]
            if not group:
                continue
            lat = sorted(t.end - t.begin for t in group)
            mean = sum(lat) / len(lat)
            # Critical path per class: cycles the mean transaction
            # spends inside each phase span, plus what no phase covers.
            look = sum(t.phases.get("lookup", 0)
                       for t in group) / len(group)
            nvm = sum(t.phases.get("nvm", 0)
                      for t in group) / len(group)
            other = max(0.0, mean - look - nvm)
            print(f"   {cls:<15}{len(lat):>8}{mean:>10.1f}"
                  f"{percentile(lat, 0.50):>8}"
                  f"{percentile(lat, 0.95):>8}"
                  f"{percentile(lat, 0.99):>8}"
                  f"{look:>9.1f}{nvm:>8.1f}{other:>8.1f}")

        by_device = {}
        for ev in bursts:
            entry = by_device.setdefault(ev["pid"], [0, 0, 0])
            args = ev.get("args", {})
            entry[0] += 1
            entry[1] += args.get("queue", 0)
            entry[2] += args.get("service", 0)
        names = {ev.get("pid"): ev.get("args", {}).get("name")
                 for ev in doc["traceEvents"]
                 if ev.get("ph") == "M"
                 and ev.get("name") == "process_name"}
        for pid in sorted(by_device):
            count, queue, service = by_device[pid]
            print(f"   {names.get(pid, pid)}: {count} bursts, "
                  f"mean queue {queue / count:.1f}, "
                  f"mean service {service / count:.1f} cycles")

        slowest = sorted(done, key=lambda t: (t.begin - t.end, t.tid))
        print(f"   top {min(top_n, len(slowest))} slowest:")
        for t in slowest[:top_n]:
            print(f"     txn {t.tid:<8} {t.cls:<15} "
                  f"{t.end - t.begin:>7} cycles  @{t.begin}")
    return status


def main():
    parser = argparse.ArgumentParser(
        description="validate / summarize ACCORD transaction traces")
    parser.add_argument("traces", nargs="+",
                        help="trace-event JSON files (trace=<out>)")
    parser.add_argument("--validate", action="store_true",
                        help="structural checks only; exit 1 on any "
                             "violation")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest transactions to list per file")
    args = parser.parse_args()
    if args.validate:
        return validate(args.traces)
    return report(args.traces, args.top)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Trace-replay smoke gate: the text->binary converter, the TraceSource
# replay path, and SimPoint-style sampling must stay deterministic and
# byte-stable.
#
# Four checks:
#   1. tools/convert_trace.py converts the committed text trace
#      (tests/data/sample_trace.txt) and bench_trace_replay replays it
#      sampled; the report must match the committed golden baseline
#      (tests/baselines/bench_trace_replay.sample.json) at ZERO
#      tolerance.
#   2. A second identical run must produce a byte-identical report.
#   3. A sampled functional sweep (bench_tab06_hitrate with source= and
#      sample= overrides) must produce identical reports at jobs=1 and
#      jobs=3: the sampler must not depend on worker-pool scheduling.
#   4. The gzip converter path round-trips to the same replay report
#      as the plain path (skipped if the build lacks zlib: the bench
#      then fails to open the trace, which we detect and report).
#
# Usage: tools/check_trace_replay.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$(cd "${1:-$ROOT/build}" && pwd)"
WORKDIR="$BUILD/trace_replay"
BASELINE="$ROOT/tests/baselines/bench_trace_replay.sample.json"
mkdir -p "$WORKDIR"

status=0
check() {
    local baseline="$1" out="$2" label="$3"
    if python3 "$ROOT/tools/compare_reports.py" --rtol 0 --atol 0 \
        "$baseline" "$out" > /dev/null; then
        echo "OK   $label"
    else
        echo "FAIL $label"
        status=1
    fi
}

# The replay args are tuned to the committed 240-record trace: the
# stream is tiny, so the windows and the warm span must be too.  The
# bench runs from the trace's directory so the report's tracefile
# param is a bare filename, not a host-specific path (the committed
# baseline must be machine-independent).
REPLAY_ARGS=(workloads=libq tracefile=sample.trc warm=60
             scale=4096
             samplespec="window=16,clusters=4,rate=0.25,warmup=8,prewarm=60")

python3 "$ROOT/tools/convert_trace.py" \
    "$ROOT/tests/data/sample_trace.txt" -o "$WORKDIR/sample.trc"

(cd "$WORKDIR" && "$BUILD/bench/bench_trace_replay" \
    "${REPLAY_ARGS[@]}" --json="$WORKDIR/replay.json" > /dev/null)
check "$BASELINE" "$WORKDIR/replay.json" "sampled replay vs baseline"

(cd "$WORKDIR" && "$BUILD/bench/bench_trace_replay" \
    "${REPLAY_ARGS[@]}" --json="$WORKDIR/replay2.json" > /dev/null)
if cmp -s "$WORKDIR/replay.json" "$WORKDIR/replay2.json"; then
    echo "OK   replay re-run byte-identical"
else
    echo "FAIL replay re-run byte-identical"
    status=1
fi

# Sampled runs inside the parallel sweep pool: worker scheduling must
# not leak into the report.
for jobs in 1 3; do
    "$BUILD/bench/bench_tab06_hitrate" scale=4096 cores=2 \
        warm=2000 measure=4000 jobs="$jobs" \
        source="synthetic(limit=32k)" \
        sample="window=512,clusters=4,rate=0.1,warmup=128,prewarm=2000" \
        --json="$WORKDIR/sampled_sweep.j$jobs.json" > /dev/null
done
if cmp -s "$WORKDIR/sampled_sweep.j1.json" \
        "$WORKDIR/sampled_sweep.j3.json"; then
    echo "OK   sampled sweep jobs=1 == jobs=3"
else
    echo "FAIL sampled sweep jobs=1 == jobs=3"
    status=1
fi

# Gzip path: same records, same report.  The gzip trace keeps the
# same basename (in a subdirectory) because the report's canonical
# spec embeds it.
mkdir -p "$WORKDIR/gz"
if python3 "$ROOT/tools/convert_trace.py" \
    "$ROOT/tests/data/sample_trace.txt" -o "$WORKDIR/gz/sample.trc" \
    --gzip; then
    if (cd "$WORKDIR/gz" && "$BUILD/bench/bench_trace_replay" \
        "${REPLAY_ARGS[@]}" --json="$WORKDIR/replay_gz.json" \
        > /dev/null 2>&1); then
        check "$BASELINE" "$WORKDIR/replay_gz.json" \
            "gzip trace replay vs baseline"
    else
        echo "SKIP gzip replay (build lacks zlib)"
    fi
fi

exit $status

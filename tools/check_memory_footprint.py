#!/usr/bin/env python3
"""Validate gigascale memory footprint against the committed budget.

The gigascale bench (bench/bench_gigascale.cpp) runs the paper's
full-scale 4GB/128GB-PCM point with the paged state backend and
streams accord.telemetry/1 heartbeats.  Each stream carries:

  state_bytes   canonical gauge: host bytes backing per-set cache
                state (tag/flag columns, DCP pages, predictor tables)
  host.peak_rss_kb
                volatile: process peak RSS at the heartbeat

This tool is the budget gate: for every stream it computes the
dense-equivalent footprint from the header's canonical spec
(cache_bytes / 64 lines x 9 bytes of tag+flag state, +8 for the LRU
ablation) and fails when

  * the final state_bytes exceeds ``max_state_fraction`` of the
    dense-equivalent bytes (the paged backend must actually pay only
    for touched pages), or
  * the final peak RSS exceeds ``max_peak_rss_kb`` (absolute cap on
    the whole process, catching leaks outside the state tables).

The budget lives in tests/baselines/BUDGET_gigascale.json; bumping it
is a reviewed change, like any baseline refresh (docs/PERFORMANCE.md).

Usage:
    tools/check_memory_footprint.py [--budget FILE] STREAM...
    tools/check_memory_footprint.py --self-test

Exit status: 0 when every stream fits the budget, 1 on any violation
or unusable stream.  Stdlib only.
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

BUDGET_SCHEMA = "accord.footprint_budget/1"
STREAM_SCHEMA = "accord.telemetry/1"
DEFAULT_BUDGET = (Path(__file__).resolve().parent.parent
                  / "tests" / "baselines" / "BUDGET_gigascale.json")
LINE_BYTES = 64


class FootprintError(Exception):
    """One budget violation or unusable input."""


def load_budget(path):
    with open(path, encoding="utf-8") as fh:
        budget = json.load(fh)
    if budget.get("schema") != BUDGET_SCHEMA:
        raise FootprintError(
            f"{path}: not a {BUDGET_SCHEMA} document "
            f"(schema={budget.get('schema')!r})")
    fraction = budget.get("max_state_fraction")
    if not isinstance(fraction, (int, float)) or not 0 < fraction <= 1:
        raise FootprintError(
            f"{path}: max_state_fraction must be in (0, 1], "
            f"got {fraction!r}")
    return budget


def parse_stream(path):
    """Return (spec, final_record) from an accord.telemetry/1 stream.

    The final record is the last hb/end record; a truncated trailing
    line is dropped (the recorder's kill-survivability contract), but
    a stream without a header or without any sample record is
    unusable for budget checking.
    """
    lines = Path(path).read_text().splitlines()
    spec = None
    final = None
    for number, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                break
            raise FootprintError(
                f"{path}: line {number}: unparseable JSON in the "
                "middle of the stream")
        kind = record.get("t")
        if kind == "hdr":
            if record.get("schema") != STREAM_SCHEMA:
                raise FootprintError(
                    f"{path}: not a {STREAM_SCHEMA} stream")
            spec = record.get("spec", "")
        elif kind in ("hb", "end"):
            final = record
    if spec is None:
        raise FootprintError(f"{path}: no header record")
    if final is None:
        raise FootprintError(f"{path}: no heartbeat or end record")
    return spec, final


def spec_tokens(spec):
    tokens = {}
    for token in spec.split(" "):
        if "=" in token:
            key, value = token.split("=", 1)
            tokens[key] = value
    return tokens


def dense_equivalent_bytes(spec):
    """Dense-backend bytes for the spec's per-line state: 8B tag + 1B
    flags per line, +8B LRU stamps for the LRU ablation.  Mirrors
    bench_gigascale's denseEquivalentBytes()."""
    tokens = spec_tokens(spec)
    if "cache_bytes" not in tokens:
        raise FootprintError(
            f"spec carries no cache_bytes= token: {spec!r}")
    lines = int(tokens["cache_bytes"]) // LINE_BYTES
    per_line = 8 + 1
    if tokens.get("repl") == "lru":
        per_line += 8
    return lines * per_line


def check_stream(path, budget):
    """Raise FootprintError on any budget violation; return a summary
    line on success."""
    spec, final = parse_stream(path)
    if "state_bytes" not in final:
        raise FootprintError(
            f"{path}: final record has no state_bytes gauge — "
            "stream predates the storage layer, cannot validate")
    state = int(final["state_bytes"])
    dense = dense_equivalent_bytes(spec)
    fraction = state / dense if dense else 0.0
    max_fraction = budget["max_state_fraction"]
    if fraction > max_fraction:
        raise FootprintError(
            f"{path}: resident state {state} bytes is "
            f"{fraction:.1%} of the dense-equivalent {dense} bytes "
            f"(budget: {max_fraction:.0%})")

    peak_rss_kb = final.get("host", {}).get("peak_rss_kb")
    max_rss = budget.get("max_peak_rss_kb")
    if max_rss is not None and peak_rss_kb is not None \
            and peak_rss_kb > max_rss:
        raise FootprintError(
            f"{path}: peak RSS {peak_rss_kb} kB exceeds the "
            f"{max_rss} kB budget")
    return (f"{path}: state {state} B = {fraction:.2%} of dense "
            f"{dense} B (budget {max_fraction:.0%}), "
            f"peak RSS {peak_rss_kb} kB")


# --- self-test -------------------------------------------------------

GOOD_BUDGET = {"schema": BUDGET_SCHEMA, "max_state_fraction": 0.25,
               "max_peak_rss_kb": 2 * 1024 * 1024}
# 1/16 scale spec: 256MB cache -> 4M lines -> 36MB dense equivalent.
TEST_SPEC = ("workload=libq cores=2 scale=16 cache_bytes=268435456 "
             "ways=2 repl=rand seed=1")


def synth_stream(path, state_bytes, peak_rss_kb):
    header = {"t": "hdr", "schema": STREAM_SCHEMA, "units": "accesses",
              "interval": 1000, "total_units": 2000, "spec": TEST_SPEC,
              "volatile": ["wall_s", "rss_kb", "peak_rss_kb",
                           "events_per_sec", "eta_s"],
              "volatile_container": "host"}
    end = {"t": "end", "seq": 1, "phase": "end", "position": 2000,
           "cycles": 0, "reads": 2000, "read_hits": 700,
           "hit_rate": 0.35, "eq_pending": 0, "eq_executed": 0,
           "eq_occupancy_peak": 0, "eq_overflow_spills": 0,
           "pool_live": 0, "pool_block_bytes": 0,
           "state_bytes": state_bytes,
           "host": {"wall_s": 0.5, "rss_kb": peak_rss_kb,
                    "peak_rss_kb": peak_rss_kb,
                    "events_per_sec": 0.0, "eta_s": 0.0}}
    path.write_text(json.dumps(header) + "\n" + json.dumps(end) + "\n")


def self_test():
    failures = []

    def expect(name, condition):
        print(f"{'ok' if condition else 'FAIL'}   {name}")
        if not condition:
            failures.append(name)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        budget_path = tmp / "budget.json"
        budget_path.write_text(json.dumps(GOOD_BUDGET))
        budget = load_budget(budget_path)
        dense = dense_equivalent_bytes(TEST_SPEC)

        lean = tmp / "lean.jsonl"
        synth_stream(lean, int(dense * 0.05), 300_000)
        try:
            check_stream(lean, budget)
            expect("lean stream passes", True)
        except FootprintError as err:
            print(f"  unexpected: {err}")
            expect("lean stream passes", False)

        # Injected bloat: resident state way past the fraction budget
        # (a dense backend sneaking through, or a page leak).
        bloated = tmp / "bloated.jsonl"
        synth_stream(bloated, int(dense * 0.80), 300_000)
        try:
            check_stream(bloated, budget)
            expect("bloated stream rejected", False)
        except FootprintError:
            expect("bloated stream rejected", True)

        fat_rss = tmp / "fat_rss.jsonl"
        synth_stream(fat_rss, int(dense * 0.05),
                     GOOD_BUDGET["max_peak_rss_kb"] + 1)
        try:
            check_stream(fat_rss, budget)
            expect("oversized RSS rejected", False)
        except FootprintError:
            expect("oversized RSS rejected", True)

        # A pre-storage-layer stream has no state_bytes gauge; the
        # gate must refuse to silently pass it.
        legacy = tmp / "legacy.jsonl"
        synth_stream(legacy, 0, 300_000)
        text = legacy.read_text().replace('"state_bytes": 0, ', "")
        legacy.write_text(text)
        try:
            check_stream(legacy, budget)
            expect("legacy stream (no state_bytes) rejected", False)
        except FootprintError:
            expect("legacy stream (no state_bytes) rejected", True)

        bad_budget = tmp / "bad_budget.json"
        bad_budget.write_text(json.dumps(
            {"schema": BUDGET_SCHEMA, "max_state_fraction": 1.5}))
        try:
            load_budget(bad_budget)
            expect("out-of-range budget rejected", False)
        except FootprintError:
            expect("out-of-range budget rejected", True)

        if DEFAULT_BUDGET.exists():
            try:
                load_budget(DEFAULT_BUDGET)
                expect("committed budget parses", True)
            except FootprintError as err:
                print(f"  unexpected: {err}")
                expect("committed budget parses", False)

    if failures:
        print(f"check_memory_footprint: self-test FAILED "
              f"({len(failures)} case(s))")
        return 1
    print("check_memory_footprint: self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="validate gigascale telemetry streams against the "
                    "committed memory-footprint budget")
    parser.add_argument("streams", nargs="*", metavar="STREAM",
                        help="accord.telemetry/1 JSONL stream(s)")
    parser.add_argument("--budget", default=str(DEFAULT_BUDGET),
                        help="footprint budget JSON "
                             "(default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture checks")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.streams:
        parser.error("no telemetry streams given (or --self-test)")

    try:
        budget = load_budget(args.budget)
    except (OSError, json.JSONDecodeError, FootprintError) as err:
        print(f"check_memory_footprint: {err}")
        return 1

    status = 0
    for stream in args.streams:
        try:
            print(check_stream(stream, budget))
        except (OSError, FootprintError) as err:
            print(f"check_memory_footprint: {err}")
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())

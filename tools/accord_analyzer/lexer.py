"""Minimal C++ tokenizer for the portable frontend.

Produces a flat token stream with line numbers.  Comments are dropped
(suppress.py reads them from the raw text), preprocessor directives are
skipped whole (including continuations), and string/char literals are
kept as single tokens so metric path tuples survive.  This is NOT a
general C++ lexer -- it handles exactly the constructs that appear in
this repository and its fixtures, and the self-tests pin that contract.
"""

from dataclasses import dataclass

# Multi-character punctuators the parser cares about.  Everything else
# is emitted one character at a time; `>>` stays split so template
# closers nest naturally.
_TWO_CHAR = {"::", "->", "<<", "==", "!=", ">=", "<=", "&&", "||",
             "+=", "-=", "*=", "/=", "|=", "&=", "^=", "++", "--"}

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


@dataclass(frozen=True)
class Token:
    kind: str       # 'id' | 'num' | 'str' | 'char' | 'punct'
    value: str
    line: int


def tokenize(text):
    """Tokenize C++ source text into a list of Tokens."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True

    def skip_preprocessor(i):
        # Consume to end of logical line, honoring backslash splices.
        while i < n:
            if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                i += 2
                continue
            if text[i] == "\n":
                return i  # leave the newline for the main loop
            i += 1
        return i

    while i < n:
        ch = text[i]

        if ch == "\n":
            line += 1
            at_line_start = True
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue

        if ch == "#" and at_line_start:
            start_line = line
            j = skip_preprocessor(i)
            line += text.count("\n", i, j)
            # Re-sync: count() already covered spliced newlines.
            del start_line
            i = j
            continue
        at_line_start = False

        # Comments.
        if ch == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    j = n
                    line += text.count("\n", i, n)
                    i = n
                else:
                    line += text.count("\n", i, j)
                    i = j + 2
                continue

        # Raw strings: R"delim( ... )delim".
        if ch == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j >= 0:
                delim = text[i + 2 : j]
                close = text.find(")" + delim + '"', j + 1)
                if close >= 0:
                    value = text[j + 1 : close]
                    tokens.append(Token("str", value, line))
                    line += text.count("\n", i, close)
                    i = close + len(delim) + 2
                    continue

        # String / char literals.
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j : j + 2])
                    j += 2
                    continue
                buf.append(text[j])
                j += 1
            value = "".join(buf)
            # Digit separators ride in char context: '0'000' is not a
            # char literal but 50'000 is handled in the number branch,
            # so a bare quote here is always a real literal.
            tokens.append(
                Token("str" if quote == '"' else "char", value, line))
            i = j + 1
            continue

        if ch in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue

        if ch in _DIGITS:
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"
                             or (text[j] in "+-"
                                 and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue

        two = text[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("punct", two, line))
            i += 2
            continue

        tokens.append(Token("punct", ch, line))
        i += 1

    return tokens

"""Per-rule fixture self-test.

Every fixture under tests/lint_fixtures/ast/ declares its contract in
comment markers (suppress.py grammar):

    // expect: <rule>[, <rule>...]     at least these rules must fire
    // expect-clean                    no rule may fire

Each fixture is analyzed standalone (own translation unit, every rule
in scope), and the SET of fired rules is compared against the markers.
A bad fixture that stops firing, or a good fixture that starts firing,
fails the suite -- this is what pins the portable frontend's parsing
contract.
"""

import pathlib

import portable
import rules
import suppress


def run(fixture_dir, out=print):
    """Analyze every fixture; returns the number of failing fixtures."""
    # rglob: path-scoped exemptions (e.g. the telemetry wallclock
    # pass) need fixtures living at their real repo-relative paths,
    # so fixtures may sit in subdirectories mirroring the tree.
    fixture_dir = pathlib.Path(fixture_dir)
    files = sorted(p for p in fixture_dir.rglob("*")
                   if p.suffix in (".hpp", ".cpp"))
    if not files:
        out(f"self-test: no fixtures found under {fixture_dir}")
        return 1

    failures = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        expected_rules, expect_clean = suppress.expectations(
            text.split("\n"))
        if not expected_rules and not expect_clean:
            out(f"FAIL {path.name}: no expect:/expect-clean marker")
            failures += 1
            continue

        parsed = portable.parse_file(str(path), text)
        model = portable.build_model([parsed])
        findings = rules.evaluate(model)
        fired = {f.rule for f in findings}

        if expect_clean:
            if fired:
                out(f"FAIL {path.name}: expected clean, fired "
                    f"{sorted(fired)}")
                for f in findings:
                    out(f"     {f.render()}")
                failures += 1
            else:
                out(f"ok   {path.name}: clean")
            continue

        expected = set(expected_rules)
        missing = expected - fired
        extra = fired - expected
        if missing or extra:
            out(f"FAIL {path.name}: expected {sorted(expected)}, "
                f"fired {sorted(fired)}")
            for f in findings:
                out(f"     {f.render()}")
            failures += 1
        else:
            out(f"ok   {path.name}: {sorted(fired)}")

    out(f"self-test: {len(files)} fixtures, {failures} failing")
    return failures

"""Portable (pure-Python) C++ frontend.

Builds the shared semantic model (model.py) from source text alone: a
structural parse finds namespaces, classes, functions and fields, and a
second phase walks function bodies with whole-tree knowledge (function
aliases, functions taking std::function parameters, class hierarchies)
to extract the operations the rules consume.

This frontend is the CANONICAL one: it runs in any environment with a
Python interpreter, generates the committed baseline, and is what the
ctest gate executes.  The libclang frontend (clangfe.py) extracts the
same model from the real AST and is diffed against this one in CI.

It is a recognizer for the repository's house style, not a full C++
parser; the AST fixtures under tests/lint_fixtures/ast/ pin exactly
which constructs it must understand.
"""

import re

from lexer import tokenize
import suppress
from model import (ALWAYS_CHECKED_STRUCTS, ClassInfo, FunctionInfo, Model,
                   Op, OP_RULE, REGISTRABLE_FIELD_TYPES, RegisterBody,
                   StructInfo)

# ---------------------------------------------------------------------
# Vocabulary
# ---------------------------------------------------------------------

ALLOC_FUNCS = {"malloc", "calloc", "realloc", "strdup", "aligned_alloc",
               "posix_memalign"}
ALLOC_MAKERS = {"make_unique", "make_shared"}
# The paged storage layer's allocation seams (common/paged_table.hpp):
# calling either from an ACCORD_HOT function puts page materialization
# on the timed read path.
PAGED_MATERIALIZE_IDS = {"materializeSlot", "ensurePage"}
WALLCLOCK_IDS = {"steady_clock", "system_clock", "high_resolution_clock",
                 "clock_gettime", "gettimeofday"}
RAND_IDS = {"rand", "srand"}
ENGINE_IDS = {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
              "default_random_engine", "ranlux24", "ranlux48", "knuth_b"}
SINK_IDS = {"printf", "fprintf", "snprintf", "puts", "fputs", "fwrite",
            "cout", "cerr", "clog"}
STRING_TYPE_IDS = {"string", "stringstream", "ostringstream",
                   "istringstream"}
SINK_FN_RE = re.compile(
    r"(registerMetrics|report|print|dump|describe|emit|toJson|toCsv)",
    re.IGNORECASE)
ADD_CALL_RE = re.compile(r"^add[A-Z]")

TYPE_KEYWORDS = {"void", "int", "bool", "char", "unsigned", "signed",
                 "long", "short", "float", "double", "auto"}
NOT_CALL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                     "alignof", "catch", "throw", "case", "do", "else",
                     "static_assert", "decltype", "defined", "noexcept",
                     "alignas", "assert"}
DECL_QUALIFIERS = {"const", "constexpr", "static", "inline", "mutable",
                   "volatile", "friend", "explicit", "virtual",
                   "typename", "register", "thread_local"}
TEST_MACROS = {"TEST", "TEST_F", "TEST_P", "TYPED_TEST"}
SET_LIKE = {"map", "set", "multimap", "multiset"}


class ParsedFile:
    def __init__(self, rel):
        self.rel = rel
        self.allowed = {}        # line -> suppressed rule set
        self.functions = []      # FnRec
        self.classes = {}        # name -> ClassInfo
        self.structs = []        # StructInfo
        self.aliases = set()     # std::function aliases
        self.tokens = []         # full token stream
        self.spans = []          # (start_line, end_line, context)


class FnRec:
    """Parse-time function record; becomes a FunctionInfo later."""

    def __init__(self, name, line, class_name):
        self.name = name          # qualified (class prefix included)
        self.line = line
        self.class_name = class_name
        self.is_hot = False
        self.hot_allow = False
        self.param_tokens = []
        self.body = None          # token slice when defined here


# ---------------------------------------------------------------------
# Structural parser
# ---------------------------------------------------------------------

# Macro/utility names that look like `name(...)` in a declaration head
# but never name the declared function.
HEAD_SKIP_NAMES = {"ACCORD_HOT_ALLOW", "ACCORD_ASSERT", "ACCORD_CHECK",
                   "alignas", "decltype", "noexcept", "__attribute__",
                   "static_assert"}


class StructuralParser:
    def __init__(self, rel, text):
        self.out = ParsedFile(rel)
        lines = text.split("\n")
        self.out.allowed = suppress.allowed_rules_by_line(lines)
        self.ts = tokenize(text)
        self.out.tokens = self.ts
        self.i = 0
        self._cur_struct = None

    # -- token helpers -------------------------------------------------

    def _val(self, k=0):
        j = self.i + k
        return self.ts[j].value if 0 <= j < len(self.ts) else None

    def _kind(self, k=0):
        j = self.i + k
        return self.ts[j].kind if 0 <= j < len(self.ts) else None

    def _skip_balanced(self, open_v, close_v):
        """Consume from the current `open_v` through its match."""
        depth = 0
        start = self.i
        while self.i < len(self.ts):
            v = self._val()
            if v == open_v:
                depth += 1
            elif v == close_v:
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return start + 1, self.i - 1
            self.i += 1
        return start + 1, self.i

    def _skip_angle(self):
        """From a `<`, consume through the matching `>` (best effort)."""
        depth = 0
        while self.i < len(self.ts):
            v = self._val()
            if v == "<":
                depth += 1
            elif v == ">":
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return True
            elif v in (";", "{", "}"):
                return False  # not a template after all
            elif v == "(":
                self._skip_balanced("(", ")")
                continue
            self.i += 1
        return False

    # -- entry ---------------------------------------------------------

    def parse(self):
        self._parse_scope(ns=[], cls=None)
        return self.out

    # -- declarations --------------------------------------------------

    def _parse_scope(self, ns, cls):
        """Parse a namespace or class body until the closing `}`/EOF.

        `cls` is the enclosing ClassInfo (None at namespace scope).
        """
        head = []
        while self.i < len(self.ts):
            v = self._val()
            kind = self._kind()

            if v == "}":
                self.i += 1
                return

            if not head:
                if v == "namespace":
                    self._parse_namespace(ns, cls)
                    continue
                if v in ("class", "struct", "union"):
                    if self._parse_class(ns, cls):
                        continue
                    # fell through: elaborated type in a declaration
                if v == "enum":
                    self._skip_enum()
                    continue
                if v == "template":
                    self.i += 1
                    if self._val() == "<":
                        self._skip_angle()
                    continue
                if v == "using":
                    self._parse_using(cls)
                    continue
                if v == "extern" and self._kind(1) == "str":
                    self.i += 2
                    if self._val() == "{":
                        self.i += 1
                        self._parse_scope(ns, cls)
                    continue
                if cls is not None and v in ("public", "private",
                                             "protected") \
                        and self._val(1) == ":":
                    self.i += 2
                    continue

            if v == ";":
                self.i += 1
                self._process_statement(head, ns, cls)
                head = []
                continue

            if v == "(":
                s, e = self._skip_balanced("(", ")")
                head.append(("(", s, e, self.ts[s - 1].line))
                continue

            if v == "{":
                if head and _hval(head[-1]) == "=":
                    self._skip_balanced("{", "}")
                    continue
                fn = self._match_function_head(head, ns, cls)
                if fn is not None:
                    self._parse_function_body(fn, ns, cls)
                    head = []
                    continue
                # Unrecognized block (array init, stray macro body):
                # skip it wholesale.
                self._skip_balanced("{", "}")
                head = []
                continue

            if v == ":" and head:
                fn = self._match_function_head(head, ns, cls)
                if fn is not None:
                    self.i += 1
                    if self._consume_ctor_inits():
                        self._parse_function_body(fn, ns, cls)
                        head = []
                        continue
                    # `= 0` style or parse trouble: drop to ';' path.
                head.append(self.ts[self.i])
                self.i += 1
                continue

            if v == "<" and head and _hkind(head[-1]) == "id":
                mark = self.i
                if self._skip_angle():
                    head.append(("<>", mark + 1, self.i - 1,
                                 self.ts[mark].line))
                    continue
                self.i = mark
            head.append(self.ts[self.i])
            self.i += 1

    def _parse_namespace(self, ns, cls):
        self.i += 1  # 'namespace'
        parts = []
        while self._kind() == "id" or self._val() == "::":
            if self._kind() == "id":
                parts.append(self._val())
            self.i += 1
        if self._val() == "{":
            self.i += 1
            self._parse_scope(ns + parts, cls)
        elif self._val() == "=":  # namespace alias
            while self.i < len(self.ts) and self._val() != ";":
                self.i += 1
            self.i += 1

    def _parse_class(self, ns, cls):
        """Returns True when a class was consumed (def or fwd decl)."""
        mark = self.i
        self.i += 1  # class/struct/union
        name = None
        if self._kind() == "id":
            name = self._val()
            self.i += 1
            # Qualified definitions (`struct Outer::Inner {`): keep the
            # innermost name.
            while self._val() == "::" and self._kind(1) == "id":
                name = self._val(1)
                self.i += 2
            if self._val() == "<":  # explicit specialization etc.
                self._skip_angle()
        if self._val() == "final":
            self.i += 1
        bases = set()
        if self._val() == ":":
            self.i += 1
            while self.i < len(self.ts) and self._val() != "{":
                if self._val() == ";":
                    self.i = mark + 1  # bitfield-ish confusion: bail
                    return False
                if self._kind() == "id" and self._val() not in (
                        "public", "protected", "private", "virtual"):
                    base = self._val()
                    if self._val(1) == "<":
                        self.i += 1
                        self._skip_angle()
                        bases.add(base)
                        continue
                    if self._val(1) == "::":
                        self.i += 2
                        continue
                    bases.add(base)
                self.i += 1
        if self._val() != "{":
            # Forward declaration or elaborated type: consume nothing
            # extra; let the caller treat remaining tokens as a head.
            if self._val() == ";":
                self.i += 1
                return True
            self.i = mark + 1
            return False
        info = self.out.classes.setdefault(name or "<anon>",
                                           ClassInfo(name or "<anon>"))
        info.bases.update(bases)
        start_line = self.ts[mark].line
        struct = None
        if name and (name.endswith("Stats")
                     or name in ALWAYS_CHECKED_STRUCTS):
            struct = StructInfo(name, self.out.rel, start_line)
            self.out.structs.append(struct)
        self.i += 1  # '{'
        prev_struct = self._cur_struct
        self._cur_struct = struct
        self._parse_scope(ns, info)
        self._cur_struct = prev_struct
        end_line = self.ts[self.i - 1].line if self.i - 1 < len(self.ts) \
            else start_line
        self.out.spans.append((start_line, end_line, (name or "<anon>")))
        if self._val() == ";":
            self.i += 1
        return True

    def _skip_enum(self):
        while self.i < len(self.ts) and self._val() not in ("{", ";"):
            self.i += 1
        if self._val() == "{":
            self._skip_balanced("{", "}")
        while self.i < len(self.ts) and self._val() != ";":
            self.i += 1
        self.i += 1

    def _parse_using(self, cls):
        self.i += 1  # 'using'
        stmt = []
        while self.i < len(self.ts) and self._val() != ";":
            stmt.append(self.ts[self.i])
            self.i += 1
        self.i += 1
        if len(stmt) >= 2 and stmt[1].value == "=":
            rhs = [t.value for t in stmt[2:]]
            for k in range(1, len(rhs)):
                if rhs[k] == "function" and rhs[k - 1] == "::":
                    self.out.aliases.add(stmt[0].value)
                    break

    def _consume_ctor_inits(self):
        """After `) :`, consume member initializers up to the body `{`.

        Each item is name[(...)|{...}], separated by commas; the body
        brace follows the last item.  Returns True when positioned at
        the `{` (which is NOT consumed).
        """
        while self.i < len(self.ts):
            if self._kind() != "id" and self._val() != "::":
                return False
            while self._kind() == "id" or self._val() == "::":
                self.i += 1
                if self._val() == "<":
                    if not self._skip_angle():
                        return False
            if self._val() == "(":
                self._skip_balanced("(", ")")
            elif self._val() == "{":
                self._skip_balanced("{", "}")
            else:
                return False
            if self._val() == ",":
                self.i += 1
                continue
            return self._val() == "{"
        return False

    # -- heads and statements -----------------------------------------

    def _match_function_head(self, head, ns, cls):
        """Recognize a function definition head; returns FnRec or None."""
        paren = None
        name = None
        line = 0
        for idx, h in enumerate(head):
            if not (isinstance(h, tuple) and h[0] == "(" and idx > 0):
                continue
            before = head[:idx]
            # Assignment before the parens: a variable, not a function
            # (except `operator=`, whose `=` follows `operator`).
            plain_eq = False
            for k, b in enumerate(before):
                if _hval(b) == "=" and not (
                        k > 0 and _hval(before[k - 1]) == "operator"):
                    plain_eq = True
                    break
            if plain_eq:
                return None
            cand, cand_line = self._head_name(before)
            if cand in HEAD_SKIP_NAMES:
                continue  # macro argument parens; keep searching
            if cand is None:
                return None
            paren, name, line = idx, cand, cand_line
            break
        if paren is None or name is None:
            return None
        if name in TEST_MACROS:
            s, e = head[paren][1], head[paren][2]
            args = [t.value for t in self.ts[s:e] if t.kind == "id"]
            name = "::".join(args) if args else name
            fn = FnRec(name, line, None)
            fn.param_tokens = []
            self.out.functions.append(fn)
            return fn
        if name == "operator()":
            # `operator ( ) ( params )`: params are the next group.
            if paren + 1 < len(head) and isinstance(head[paren + 1],
                                                    tuple):
                paren += 1
            else:
                return None
        class_name = cls.name if cls is not None else None
        qual_parts = name.split("::")
        if len(qual_parts) > 1 and class_name is None:
            class_name = qual_parts[-2]
        qual = name if class_name is None or name.startswith(
            class_name + "::") else f"{class_name}::{name}"
        fn = FnRec(qual, line, class_name)
        head_ids = {_hval(h) for h in head}
        fn.is_hot = "ACCORD_HOT" in head_ids
        fn.hot_allow = "ACCORD_HOT_ALLOW" in head_ids
        s, e = head[paren][1], head[paren][2]
        fn.param_tokens = self.ts[s:e]
        self.out.functions.append(fn)
        struct = self._cur_struct
        if struct is not None and cls is not None \
                and struct.name == cls.name \
                and name.split("::")[-1] == "registerMetrics":
            struct.defines_register = True
        if cls is not None:
            if "virtual" in head_ids or "override" in {
                    _hval(h) for h in head[paren + 1:]}:
                cls.virtual_methods.add(name.split("::")[-1])
        return fn

    def _head_name(self, before):
        """Name (and line) of the entity a head declares, or None."""
        if not before:
            return None, 0
        last = before[-1]
        if _hval(last) == "operator":
            return "operator()", _hline(last)
        j = len(before) - 2
        if j >= 0 and _hval(before[j]) == "operator":
            # operator= / operator== / operator bool / operator Cycle...
            return f"operator{_hval(last)}", _hline(last)
        if _hkind(last) != "id":
            return None, 0
        name = _hval(last)
        line = _hline(last)
        if name in TYPE_KEYWORDS or name in NOT_CALL_KEYWORDS:
            return None, 0
        if j >= 0 and _hval(before[j]) == "~":
            name = "~" + name
            j -= 1
        parts = [name]
        while j >= 1 and _hval(before[j]) == "::" \
                and _hkind(before[j - 1]) == "id":
            parts.insert(0, _hval(before[j - 1]))
            j -= 2
        return "::".join(parts), line

    def _parse_function_body(self, fn, ns, cls):
        assert self._val() == "{"
        s, e = self._skip_balanced("{", "}")
        fn.body = (s, e)
        start = self.ts[s - 1].line
        end = self.ts[e].line if e < len(self.ts) else start
        ctx = "::".join(fn.name.split("::")[-2:])
        self.out.spans.append((start, end, ctx))
        if self._val() == ";":
            self.i += 1

    def _process_statement(self, head, ns, cls):
        if not head:
            return
        has_paren = any(isinstance(h, tuple) and h[0] == "(" for h in head)
        if has_paren:
            self._match_function_head(head, ns, cls)
            return
        if cls is None:
            return
        self._process_field(head, cls)

    def _process_field(self, head, cls):
        # Strip trailing `= init` and array extents.
        toks = list(head)
        for idx, h in enumerate(toks):
            if _hval(h) == "=":
                toks = toks[:idx]
                break
        while toks and _hval(toks[-1]) == "]":
            depth = 0
            for idx in range(len(toks) - 1, -1, -1):
                if _hval(toks[idx]) == "]":
                    depth += 1
                elif _hval(toks[idx]) == "[":
                    depth -= 1
                    if depth == 0:
                        toks = toks[:idx]
                        break
            else:
                return
        if len(toks) < 2 or _hkind(toks[-1]) != "id":
            return
        name = _hval(toks[-1])
        line = _hline(toks[-1])
        type_toks = toks[:-1]
        type_ids = [_hval(h) for h in type_toks
                    if _hkind(h) == "id"
                    and _hval(h) not in DECL_QUALIFIERS]
        if not type_ids:
            return
        type_str = _render_type(type_toks, self.ts)
        cls.members[name] = type_str
        struct = getattr(self, "_cur_struct", None)
        if struct is not None and struct.name == cls.name:
            registrable = (type_ids[-1] in REGISTRABLE_FIELD_TYPES
                           and not any(isinstance(h, tuple)
                                       and h[0] == "<>"
                                       for h in type_toks)
                           and not any(_hval(h) in ("*", "&")
                                       for h in type_toks))
            if registrable:
                allowed = self.out.allowed.get(line, set())
                struct.fields.append((name, type_ids[-1], line,
                                      frozenset(allowed)))
            if name == "registerMetrics":
                struct.defines_register = True


def _hval(h):
    if isinstance(h, tuple):
        return h[0]
    return h.value


def _hkind(h):
    if isinstance(h, tuple):
        return "group"
    return h.kind


def _hline(h):
    if isinstance(h, tuple):
        return h[3]
    return h.line


def _render_type(type_toks, ts):
    parts = []
    for h in type_toks:
        if isinstance(h, tuple):
            if h[0] == "<>":
                inner = " ".join(t.value for t in ts[h[1]:h[2]])
                parts.append("<" + inner + ">")
            continue
        parts.append(h.value)
    return " ".join(parts)


# ---------------------------------------------------------------------
# Phase 2/3: whole-tree knowledge + body walking
# ---------------------------------------------------------------------

_PTR_RE = re.compile(r"(?:unique_ptr|shared_ptr)\s*<(.*)>")
_ID_RE = re.compile(r"[A-Za-z_]\w*")
_NOT_CLASS_IDS = {"const", "volatile", "unsigned", "signed", "struct",
                  "class", "typename", "static", "mutable", "auto"}
_STMT_KEYWORDS = {"return", "delete", "if", "for", "while", "do",
                  "switch", "case", "break", "continue", "goto", "else",
                  "new", "throw", "using", "typedef", "public",
                  "private", "protected", "try", "catch"}


def class_of(type_str):
    """Reduce a rendered type string to a bare class name (or None)."""
    if not type_str:
        return None
    m = _PTR_RE.search(type_str)
    if m:
        return class_of(m.group(1))
    # Drop template arguments of non-pointer wrappers.
    base = type_str.split("<", 1)[0]
    ids = [w for w in _ID_RE.findall(base) if w not in _NOT_CLASS_IDS]
    return ids[-1] if ids else None


class Knowledge:
    """Merged whole-tree facts the body walker needs."""

    def __init__(self, parsed_files):
        self.aliases = set()
        self.classes = {}
        self.fn_with_function_param = set()
        for pf in parsed_files:
            self.aliases.update(pf.aliases)
            for name, cls in pf.classes.items():
                mine = self.classes.setdefault(name, ClassInfo(name))
                mine.bases.update(cls.bases)
                mine.virtual_methods.update(cls.virtual_methods)
                mine.members.update(cls.members)
        for pf in parsed_files:
            for fn in pf.functions:
                if self._params_take_function(fn.param_tokens, pf.tokens):
                    self.fn_with_function_param.add(
                        fn.name.split("::")[-1])

    def _params_take_function(self, params, ts):
        vals = [t.value for t in params]
        for k, v in enumerate(vals):
            if v == "function" and k > 0 and vals[k - 1] == "::":
                return True
            if v in self.aliases:
                return True
        return False

    def member_type(self, cls_name, member, _seen=None):
        """Type of `member` in cls_name or its (transitive) bases."""
        seen = _seen or set()
        if cls_name in seen or cls_name not in self.classes:
            return None
        seen.add(cls_name)
        cls = self.classes[cls_name]
        if member in cls.members:
            return cls.members[member]
        for base in cls.bases:
            t = self.member_type(base, member, seen)
            if t is not None:
                return t
        return None

    def is_virtual(self, cls_name, method, _seen=None):
        seen = _seen or set()
        if cls_name in seen or cls_name not in self.classes:
            return False
        seen.add(cls_name)
        cls = self.classes[cls_name]
        if method in cls.virtual_methods:
            return True
        return any(self.is_virtual(b, method, seen) for b in cls.bases)

    def allowlisted(self, cls_name, allowlist, _seen=None):
        seen = _seen or set()
        if cls_name in seen:
            return False
        seen.add(cls_name)
        if cls_name in allowlist:
            return True
        cls = self.classes.get(cls_name)
        if cls is None:
            return False
        return any(self.allowlisted(b, allowlist, seen)
                   for b in cls.bases)


class BodyWalker:
    """Extracts ops/calls/sinks from one function body."""

    def __init__(self, pf, fn, knowledge):
        self.pf = pf
        self.fn = fn
        self.kn = knowledge
        self.ops = []
        self.calls = []
        self.has_sink = False
        self.identifiers = set()
        self.add_paths = []
        # candidate unordered range-fors: (line, expr_name, body_range)
        self.unordered_candidates = []
        self.locals = {}
        self.fn_typed_params = set()
        self._parse_params()

    def _suppressed(self, rule, line):
        return rule in self.pf.allowed.get(line, ())

    def _op(self, kind, line, detail):
        rule = OP_RULE.get(kind, kind)
        self.ops.append(Op(kind, line, detail,
                           self._suppressed(rule, line)))

    def _parse_params(self):
        ts = self.fn.param_tokens
        piece = []
        depth = 0
        pieces = []
        for t in ts:
            if t.value in ("(", "<", "{", "["):
                depth += 1
            elif t.value in (")", ">", "}", "]"):
                depth = max(0, depth - 1)
            if t.value == "," and depth == 0:
                pieces.append(piece)
                piece = []
                continue
            piece.append(t)
        if piece:
            pieces.append(piece)
        for piece in pieces:
            ids = [t for t in piece if t.kind == "id"]
            if len(ids) < 2:
                continue
            name = ids[-1].value
            type_vals = []
            for t in piece:
                if t is ids[-1]:
                    break
                type_vals.append(t.value)
            type_str = " ".join(type_vals)
            self.locals[name] = type_str
            if any(v in self.kn.aliases for v in type_vals) or \
                    "function" in type_vals:
                self.fn_typed_params.add(name)

    # -- main walk -----------------------------------------------------

    def walk(self, lo, hi):
        """Walk parsed tokens in [lo, hi) (the body slice)."""
        ts = self.pf.tokens
        register = self.fn.name.split("::")[-1] == "registerMetrics"
        paren_callees = []
        j = lo
        prev = None
        while j < hi:
            t = ts[j]
            nxt = ts[j + 1] if j + 1 < hi else None
            v = t.value

            if t.kind == "id":
                if register:
                    self.identifiers.add(v)
                if v in SINK_IDS:
                    self.has_sink = True
                if ADD_CALL_RE.match(v) and nxt is not None \
                        and nxt.value == "(":
                    self.has_sink = True
                    if register:
                        self._collect_add_path(j, hi)

            # Local declarations at statement starts.
            if t.kind == "id" and (prev is None
                                   or prev.value in (";", "{", "}")):
                j_after = self._try_local_decl(j, hi)
                if j_after is not None:
                    prev = ts[j_after - 1]
                    j = j_after
                    continue

            if v == "(":
                callee = None
                if prev is not None and prev.kind == "id" \
                        and prev.value not in NOT_CALL_KEYWORDS \
                        and prev.value not in TYPE_KEYWORDS:
                    callee = prev.value
                    self.calls.append(callee)
                paren_callees.append(callee)
            elif v == ")":
                if paren_callees:
                    paren_callees.pop()
            elif v == "[" and prev is not None \
                    and prev.value in ("(", ","):
                callee = paren_callees[-1] if paren_callees else None
                if callee in self.kn.fn_with_function_param:
                    self._op("std-function", t.line,
                             f"lambda passed to {callee}")
            elif v == "=" and prev is not None and prev.kind == "id" \
                    and prev.value in self.fn_typed_params \
                    and nxt is not None and nxt.value == "[":
                self._op("std-function", t.line,
                         f"lambda assigned to '{prev.value}'")

            if v == "new" and t.kind == "id":
                if nxt is None or nxt.value != "(":
                    self._op("alloc", t.line, "operator new")
            elif v in ALLOC_FUNCS and nxt is not None \
                    and nxt.value == "(" \
                    and (prev is None
                         or prev.value not in (".", "->")):
                self._op("alloc", t.line, v)
            elif v in ALLOC_MAKERS and nxt is not None \
                    and nxt.value in ("<", "("):
                self._op("alloc", t.line, f"std::{v}")
            elif v in STRING_TYPE_IDS and prev is not None \
                    and prev.value == "::":
                self._op("string", t.line, f"std::{v} temporary")
            elif v == "to_string" and nxt is not None \
                    and nxt.value == "(":
                self._op("string", t.line, "std::to_string")
            elif v in PAGED_MATERIALIZE_IDS and nxt is not None \
                    and nxt.value == "(":
                self._op("paged-materialize", t.line,
                         f"page materialization via {v}()")
            elif t.kind == "id" and nxt is not None \
                    and nxt.value == "(" and prev is not None \
                    and prev.value in ("->", "."):
                self._check_virtual_call(j, lo)
            elif v == "for" and nxt is not None and nxt.value == "(":
                self._check_range_for(j, hi)

            prev = t
            j += 1

    def _collect_add_path(self, j, hi):
        ts = self.pf.tokens
        depth = 0
        literals = []
        k = j + 1
        while k < hi:
            v = ts[k].value
            if v == "(":
                depth += 1
            elif v == ")":
                depth -= 1
                if depth == 0:
                    break
            elif ts[k].kind == "str":
                literals.append(ts[k].value)
            k += 1
        self.add_paths.append((ts[j].line, tuple(literals)))

    def _try_local_decl(self, j, hi):
        """Try to match a local declaration starting at j.

        On success records locals (and a std-function op for by-value
        std::function locals) and returns the index to resume at (the
        declaration's terminator).  Returns None otherwise.
        """
        ts = self.pf.tokens
        k = j
        first = ts[k].value
        if first in _STMT_KEYWORDS or first in NOT_CALL_KEYWORDS:
            return None
        type_vals = []
        saw_angle = False
        while k < hi:
            t = ts[k]
            if t.kind == "id" and t.value not in DECL_QUALIFIERS:
                # Possible end of type chain: id followed by term?
                nxt = ts[k + 1] if k + 1 < hi else None
                if type_vals and nxt is not None \
                        and nxt.value in ("=", ";", "{") \
                        and type_vals[-1] != "::":
                    name = t.value
                    self._record_local(name, type_vals, saw_angle,
                                       t.line)
                    return k + 1
                type_vals.append(t.value)
                k += 1
                continue
            if t.kind == "id":  # qualifier
                k += 1
                continue
            if t.value == "::":
                type_vals.append("::")
                k += 1
                continue
            if t.value == "<" and type_vals \
                    and type_vals[-1] not in ("::",):
                depth = 0
                start = k
                inner = []
                while k < hi:
                    if ts[k].value == "<":
                        depth += 1
                    elif ts[k].value == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif ts[k].value in (";", "{", "}"):
                        return None
                    if k > start:
                        inner.append(ts[k].value)
                    k += 1
                if k >= hi:
                    return None
                type_vals.append("<" + " ".join(inner) + ">")
                saw_angle = True
                k += 1
                continue
            if t.value in ("*", "&"):
                type_vals.append(t.value)
                k += 1
                continue
            return None
        return None

    def _record_local(self, name, type_vals, saw_angle, line):
        type_str = " ".join(type_vals)
        self.locals[name] = type_str
        is_ref_or_ptr = "*" in type_vals or "&" in type_vals
        is_fn = False
        for idx, v in enumerate(type_vals):
            if v in self.kn.aliases:
                is_fn = True
            if v == "function" and idx > 0 \
                    and type_vals[idx - 1] == "::":
                is_fn = True
        if is_fn and not is_ref_or_ptr:
            self._op("std-function", line,
                     f"local std::function '{name}'")
            self.fn_typed_params.discard(name)

    def _resolve_chain(self, parts):
        """Class name of the object `parts` (a member chain) names."""
        cur = None
        for idx, part in enumerate(parts):
            if idx == 0:
                if part == "this":
                    cur = self.fn.class_name
                elif part in self.locals:
                    cur = class_of(self.locals[part])
                elif self.fn.class_name is not None:
                    t = self.kn.member_type(self.fn.class_name, part)
                    cur = class_of(t) if t else None
                else:
                    return None
            else:
                if cur is None:
                    return None
                t = self.kn.member_type(cur, part)
                cur = class_of(t) if t else None
        return cur

    def _check_virtual_call(self, j, lo):
        from model import VIRTUAL_ALLOWLIST
        ts = self.pf.tokens
        method = ts[j].value
        parts = []
        k = j - 1
        while k - 1 >= lo and ts[k].value in ("->", ".") \
                and ts[k - 1].kind == "id":
            parts.insert(0, ts[k - 1].value)
            k -= 2
        if not parts:
            return
        # A chain hanging off a call/index result is unresolvable.
        if k >= lo and ts[k].value in (")", "]", ".", "->", "::"):
            return
        cls = self._resolve_chain(parts)
        if cls is None:
            return
        if not self.kn.is_virtual(cls, method):
            return
        if self.kn.allowlisted(cls, VIRTUAL_ALLOWLIST):
            return
        self._op("virtual-call", ts[j].line,
                 f"virtual call {cls}::{method}")

    def _check_range_for(self, j, hi):
        ts = self.pf.tokens
        k = j + 1  # '('
        depth = 0
        colon = None
        close = None
        while k < hi:
            v = ts[k].value
            if v == "(":
                depth += 1
            elif v == ")":
                depth -= 1
                if depth == 0:
                    close = k
                    break
            elif v == ":" and depth == 1 and colon is None:
                colon = k
            k += 1
        if colon is None or close is None:
            return
        expr = ts[colon + 1 : close]
        expr_name = ".".join(t.value for t in expr if t.kind == "id")
        unordered = any("unordered_" in t.value for t in expr)
        if not unordered:
            parts = [t.value for t in expr if t.kind == "id"
                     and t.value != "this"]
            ok = all(t.kind == "id" or t.value in ("->", ".", "this",
                                                   "*", "&", "(", ")")
                     for t in expr)
            if ok and parts:
                # Resolve the final member's declared type.
                if len(parts) == 1:
                    tstr = self.locals.get(parts[0])
                    if tstr is None and self.fn.class_name:
                        tstr = self.kn.member_type(self.fn.class_name,
                                                   parts[0])
                else:
                    owner = self._resolve_chain(parts[:-1])
                    tstr = self.kn.member_type(owner, parts[-1]) \
                        if owner else None
                unordered = tstr is not None and "unordered_" in tstr
        if not unordered:
            return
        # Loop body extent.
        if close + 1 < hi and ts[close + 1].value == "{":
            depth = 0
            k = close + 1
            while k < hi:
                if ts[k].value == "{":
                    depth += 1
                elif ts[k].value == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            body_range = (close + 2, k)
        else:
            k = close + 1
            while k < hi and ts[k].value != ";":
                k += 1
            body_range = (close + 1, k)
        self.unordered_candidates.append(
            (ts[j].line, expr_name or "<expr>", body_range))



# ---------------------------------------------------------------------
# File-level determinism scan + model assembly
# ---------------------------------------------------------------------

def _context_at(spans, line):
    """Innermost span containing `line`, or '<global>'."""
    best = None
    for start, end, ctx in spans:
        if start <= line <= end:
            if best is None or (end - start) < (best[1] - best[0]):
                best = (start, end, ctx)
    return best[2] if best else "<global>"


def _first_template_arg_has_pointer(ts, open_idx):
    """True when the first template argument after `<` contains `*`."""
    depth = 0
    k = open_idx
    while k < len(ts):
        v = ts[k].value
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return False
        elif v == "," and depth == 1:
            return False
        elif v == "*":
            return True
        elif v in (";", "{", "}"):
            return False
        k += 1
    return False


def scan_file_ops(pf):
    """Flat whole-file determinism scan (covers non-body contexts too).

    Returns (file, line, kind, detail, context, suppressed) tuples;
    rules.py applies scope filtering (e.g. the rng.hpp exemption).
    """
    ops = []
    ts = pf.tokens
    for j, t in enumerate(ts):
        if t.kind != "id":
            continue
        v = t.value
        prev_tok = ts[j - 1] if j > 0 else None
        prev = prev_tok.value if prev_tok else None
        nxt = ts[j + 1].value if j + 1 < len(ts) else None
        kind = detail = None
        # Member access (`gen.rand()`) and declarations (`long rand()`,
        # where the preceding token is a type name) are not the C
        # library call.
        rand_decl_ctx = (prev in (".", "->")
                         or (prev_tok is not None
                             and prev_tok.kind == "id"
                             and prev not in NOT_CALL_KEYWORDS))
        if v in WALLCLOCK_IDS:
            kind = "wallclock"
            detail = (f"std::chrono::{v}" if v.endswith("_clock")
                      else f"{v}()")
        elif v in RAND_IDS and nxt == "(" and not rand_decl_ctx:
            kind, detail = "rand", f"{v}()"
        elif v == "random_device":
            kind, detail = "random-device", "std::random_device"
        elif v in ENGINE_IDS:
            kind, detail = "std-engine", f"std::{v}"
        elif v in SET_LIKE and prev == "::" and j >= 2 \
                and ts[j - 2].value == "std" and nxt == "<":
            if _first_template_arg_has_pointer(ts, j + 1):
                kind = "pointer-key"
                detail = f"std::{v} keyed by pointer type"
        if kind is None:
            continue
        suppressed = OP_RULE[kind] in pf.allowed.get(t.line, ())
        ops.append((pf.rel, t.line, kind, detail,
                    _context_at(pf.spans, t.line), suppressed))
    return ops


def parse_file(rel, text):
    """Structural parse of one file."""
    return StructuralParser(rel, text).parse()


def _loop_body_reaches_output(ts, body_range, fn_name, sink_by_name):
    lo, hi = body_range
    if SINK_FN_RE.search(fn_name.split("::")[-1]):
        return True
    for k in range(lo, hi):
        t = ts[k]
        if t.kind != "id":
            continue
        if t.value in SINK_IDS:
            return True
        nxt = ts[k + 1].value if k + 1 < hi else None
        if nxt == "(":
            if ADD_CALL_RE.match(t.value):
                return True
            if sink_by_name.get(t.value):
                return True
    return False


def build_model(parsed_files):
    """Merge parsed files into the shared Model (phases 2 and 3)."""
    kn = Knowledge(parsed_files)
    model = Model()
    model.function_aliases = set(kn.aliases)
    model.classes = kn.classes

    walked = []
    for pf in parsed_files:
        model.structs.extend(pf.structs)
        model.file_ops.extend(scan_file_ops(pf))
        for fr in pf.functions:
            fi = FunctionInfo(fr.name, pf.rel, fr.line,
                              is_hot=fr.is_hot,
                              hot_allow=fr.hot_allow,
                              has_body=fr.body is not None,
                              param_tokens=tuple(fr.param_tokens))
            model.functions.append(fi)
            if fr.body is None:
                continue
            walker = BodyWalker(pf, fr, kn)
            walker.walk(*fr.body)
            fi.ops = walker.ops
            fi.calls = walker.calls
            fi.has_sink = walker.has_sink
            walked.append((pf, fr, fi, walker))
            if fr.name.split("::")[-1] == "registerMetrics":
                model.registers.append(RegisterBody(
                    fr.name, pf.rel, fr.line,
                    identifiers=walker.identifiers,
                    add_paths=walker.add_paths))

    # Direct-sink map for the one-level unordered-iteration reach check.
    sink_by_name = {}
    for _, fr, fi, _ in walked:
        last = fr.name.split("::")[-1]
        sink_by_name[last] = sink_by_name.get(last, False) or fi.has_sink

    for pf, fr, fi, walker in walked:
        for line, expr, body_range in walker.unordered_candidates:
            if not _loop_body_reaches_output(pf.tokens, body_range,
                                             fr.name, sink_by_name):
                continue
            suppressed = "unordered-iteration" in pf.allowed.get(
                line, ())
            fi.ops.append(Op(
                "unordered-iteration", line,
                f"range-for over unordered container '{expr}' "
                f"reaches output", suppressed))
    return model

"""Semantic model shared by the analyzer's two frontends.

Both the portable C++ frontend (portable.py) and the libclang frontend
(clangfe.py) reduce a translation unit to the same small vocabulary of
facts; rules.py then evaluates every rule against the merged model, so
the two frontends cannot drift on rule LOGIC -- only on extraction
fidelity.  Finding keys are line-number-free so the committed baseline
survives unrelated edits.
"""

from dataclasses import dataclass, field

# ---------------------------------------------------------------------
# Rule names (the annotation grammar's vocabulary)
# ---------------------------------------------------------------------

HOT_RULES = ("hot-alloc", "hot-std-function", "hot-string", "hot-virtual",
             "hot-paged-materialize")
DETERMINISM_RULES = ("unordered-iteration", "pointer-key", "wallclock",
                     "rand", "random-device", "std-engine")
METRIC_RULES = ("metric-unregistered", "metric-duplicate-path")
ALL_RULES = HOT_RULES + DETERMINISM_RULES + METRIC_RULES

# Virtual dispatch on these bases is the sanctioned extension mechanism
# (the organization/policy registry); everything else on a hot path
# must be devirtualized or allowed explicitly.
VIRTUAL_ALLOWLIST = {"OrgStrategy", "OrgServices", "WayPolicy",
                     "TrafficSource"}

# Stats structs checked even when no registerMetrics body names their
# fields (the "deliberately unregistered" class of struct).
ALWAYS_CHECKED_STRUCTS = {"SystemMetrics"}

# Field types a MetricRegistry can register as leaves.
REGISTRABLE_FIELD_TYPES = {"Counter", "Ratio", "Average", "Histogram",
                           "Cycle", "uint64_t"}

# Op kind -> rule that consumes it (hot rules also propagate one call
# level; see rules.py).
OP_RULE = {
    "alloc": "hot-alloc",
    "std-function": "hot-std-function",
    "string": "hot-string",
    "virtual-call": "hot-virtual",
    "paged-materialize": "hot-paged-materialize",
    "unordered-iteration": "unordered-iteration",
    "pointer-key": "pointer-key",
    "wallclock": "wallclock",
    "rand": "rand",
    "random-device": "random-device",
    "std-engine": "std-engine",
}

# Ops whose hot-rule findings propagate one level down the call graph
# (a hot caller inherits them from a non-hot direct callee).
PROPAGATED_OP_KINDS = ("alloc", "std-function", "string")


@dataclass
class Op:
    """One interesting operation inside a function body."""

    kind: str           # key of OP_RULE
    line: int           # 1-based, display only
    detail: str         # stable description (part of the finding key)
    suppressed: bool    # line-level accord-lint allow present


@dataclass
class FunctionInfo:
    """One function definition (or bodyless declaration)."""

    name: str                   # qualified, e.g. "EventQueue::step"
    file: str                   # repo-relative path
    line: int
    is_hot: bool = False
    hot_allow: bool = False     # ACCORD_HOT_ALLOW escape hatch
    has_body: bool = False
    param_tokens: tuple = ()    # flattened parameter-list tokens
    ops: list = field(default_factory=list)         # [Op]
    calls: list = field(default_factory=list)       # callee last names
    has_sink: bool = False      # body directly reaches report output

    def context(self):
        """Last two :: components -- the finding-key context."""
        parts = self.name.split("::")
        return "::".join(parts[-2:])


@dataclass
class StructInfo:
    """A *Stats struct definition with its registrable fields."""

    name: str                   # unqualified
    file: str
    line: int
    defines_register: bool = False
    # [(field name, type token, line, allowed-rule set)]
    fields: list = field(default_factory=list)


@dataclass
class RegisterBody:
    """One registerMetrics() definition."""

    name: str                   # qualified
    file: str
    line: int
    identifiers: set = field(default_factory=set)
    # [(line, (string literal, ...))] -- one tuple per add-call site
    add_paths: list = field(default_factory=list)


@dataclass
class ClassInfo:
    """Type facts needed for receiver resolution."""

    name: str                   # unqualified
    bases: set = field(default_factory=set)
    virtual_methods: set = field(default_factory=set)
    members: dict = field(default_factory=dict)   # name -> type string


@dataclass
class Model:
    """Everything the rules need, merged over all scanned files."""

    functions: list = field(default_factory=list)     # [FunctionInfo]
    structs: list = field(default_factory=list)       # [StructInfo]
    registers: list = field(default_factory=list)     # [RegisterBody]
    classes: dict = field(default_factory=dict)       # name -> ClassInfo
    # (file, line, kind, detail, context, suppressed) ops outside any
    # function body (globals, class members)
    file_ops: list = field(default_factory=list)
    function_aliases: set = field(default_factory=set)

    def merge(self, other):
        self.functions.extend(other.functions)
        self.structs.extend(other.structs)
        self.registers.extend(other.registers)
        for name, cls in other.classes.items():
            mine = self.classes.setdefault(name, ClassInfo(name))
            mine.bases.update(cls.bases)
            mine.virtual_methods.update(cls.virtual_methods)
            mine.members.update(cls.members)
        self.file_ops.extend(other.file_ops)
        self.function_aliases.update(other.function_aliases)


@dataclass(frozen=True)
class Finding:
    """One rule violation.  The key omits line numbers on purpose."""

    rule: str
    file: str
    context: str
    detail: str
    line: int = 0               # display only, excluded from the key

    def key(self):
        return (self.rule, self.file, self.context, self.detail)

    def render(self):
        return (f"{self.file}:{self.line}: [{self.rule}] "
                f"{self.context}: {self.detail}")

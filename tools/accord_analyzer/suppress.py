"""Shared `accord-lint` suppression-comment grammar.

One annotation syntax serves both the regex lint (tools/lint_determinism.py)
and the AST analyzer (tools/accord_analyzer):

    // accord-lint: allow(<rule>[, <rule>...]) <reason>

The reason text is mandatory by convention (reviewed, not parsed).  An
allow comment covers:

  * code on the same line (trailing comment), or
  * the next line that contains code, skipping blank and comment-only
    lines in between -- so a multi-line justification comment still
    covers the statement below it.

`expect:` / `expect-clean` markers drive the fixture self-tests.
"""

import re

ALLOW_RE = re.compile(
    r"//\s*accord-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

EXPECT_RE = re.compile(
    r"//\s*expect:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")
EXPECT_CLEAN_RE = re.compile(r"//\s*expect-clean\b")

# A line that is nothing but comment (or blank).  Good enough for the
# "skip to next code line" scan; block comments are handled by the
# analyzer's lexer before line classification matters.
_COMMENT_ONLY_RE = re.compile(r"^\s*(//.*)?$")
_BLOCK_COMMENT_ONLY_RE = re.compile(r"^\s*(\*|/\*).*$")


def parse_rule_list(text):
    """Split a comma-separated rule list into a set of rule names."""
    return {rule.strip() for rule in text.split(",") if rule.strip()}


def _is_code_line(line):
    if _COMMENT_ONLY_RE.match(line):
        return False
    if _BLOCK_COMMENT_ONLY_RE.match(line):
        return False
    return True


def allowed_rules_by_line(lines):
    """Map 1-based line number -> set of rules suppressed on that line.

    `lines` is the file split into physical lines (no newline chars
    required).  For each allow comment, the covered line is the comment
    line itself when it carries code, otherwise the next code line.
    """
    allowed = {}
    for i, line in enumerate(lines):
        match = ALLOW_RE.search(line)
        if not match:
            continue
        rules = parse_rule_list(match.group(1))
        before = line[: match.start()]
        if before.strip():  # trailing comment on a code line
            target = i + 1
        else:
            target = None
            for j in range(i + 1, len(lines)):
                if _is_code_line(lines[j]):
                    target = j + 1
                    break
            if target is None:
                continue
        allowed.setdefault(target, set()).update(rules)
    return allowed


def expectations(lines):
    """Return (expected_rule_multiset, expect_clean) for a fixture."""
    expected = []
    clean = False
    for line in lines:
        match = EXPECT_RE.search(line)
        if match:
            expected.extend(sorted(parse_rule_list(match.group(1))))
        if EXPECT_CLEAN_RE.search(line):
            clean = True
    return sorted(expected), clean

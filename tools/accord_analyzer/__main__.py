"""accord_analyzer -- semantic lint for the ACCORD simulator.

Run as a directory (`python3 tools/accord_analyzer ...`); the package
directory lands on sys.path so the modules import as plain siblings.

Three rule families over one shared model (model.py -> rules.py):

  hot-path purity      ACCORD_HOT functions must not allocate, build
                       std::function, create string temporaries, or
                       virtual-dispatch off non-allowlisted bases
                       (one level of call-graph propagation)
  determinism          AST-grade bans: output-reaching unordered
                       iteration, pointer-keyed ordered containers,
                       wall-clock/rand/raw-entropy outside rng.hpp
  metric completeness  every registrable *Stats field registered,
                       no duplicate registration paths

Frontends: `portable` (pure Python, canonical, generates the committed
baseline and gates ctest/CI) and `clang` (libclang via clang.cindex,
CI-informational; requires python3-clang + libclang on the host).

Scope: hot + metric rules run over src/; determinism rules also cover
bench/, examples/ and tests/ (minus tests/lint_fixtures/).

Exit codes: 0 clean vs baseline; 1 new or stale findings (or failing
self-test); 2 usage/environment error.
"""

import argparse
import pathlib
import sys

import baseline as baseline_mod
import portable
import rules
import selftest

DEFAULT_BASELINE = "tools/accord_analyzer/baseline.json"
HOT_METRIC_DIRS = ("src",)
DETERMINISM_DIRS = ("src", "bench", "examples", "tests")
FIXTURE_MARKER = "lint_fixtures"
SOURCE_SUFFIXES = (".hpp", ".cpp")


def discover(root):
    """(all scanned files, src-scope set, determinism-scope set)."""
    src_scope = set()
    det_scope = set()
    for d in DETERMINISM_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix not in SOURCE_SUFFIXES:
                continue
            rel = p.relative_to(root).as_posix()
            if FIXTURE_MARKER in rel:
                continue
            det_scope.add(rel)
            if d in HOT_METRIC_DIRS:
                src_scope.add(rel)
    return sorted(det_scope), src_scope, det_scope


def analyze_portable(root, files):
    parsed = []
    for rel in files:
        text = (root / rel).read_text(encoding="utf-8")
        parsed.append(portable.parse_file(rel, text))
    return portable.build_model(parsed)


def analyze_clang(root, files, compile_commands):
    try:
        import clangfe
    except ImportError as exc:
        print(f"error: clang frontend unavailable: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    return clangfe.build_model(root, files, compile_commands)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="accord_analyzer",
        description="semantic lint: hot-path purity, determinism, "
                    "metric completeness")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compile-commands",
                    default="build/compile_commands.json",
                    help="compilation database (clang frontend only)")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "portable", "clang"),
                    help="auto = portable (the canonical frontend)")
    ap.add_argument("--baseline", default=None,
                    help=f"baseline path (default: {DEFAULT_BASELINE})")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--check-baseline", action="store_true",
                    help="verify the baseline file is canonical "
                         "(byte round-trip), then exit")
    ap.add_argument("--self-test", metavar="DIR", default=None,
                    help="run the per-rule fixture suite and exit")
    ap.add_argument("--list-hot", action="store_true",
                    help="list ACCORD_HOT functions and exit")
    args = ap.parse_args(argv)

    root = pathlib.Path(args.root).resolve()
    baseline_path = pathlib.Path(
        args.baseline if args.baseline
        else root / DEFAULT_BASELINE)

    if args.self_test:
        return 1 if selftest.run(args.self_test) else 0

    if args.check_baseline:
        try:
            keys, text = baseline_mod.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from model import Finding
        rerendered = baseline_mod.render(
            [Finding(*key) for key in keys])
        if rerendered != text:
            print(f"{baseline_path}: not in canonical form "
                  f"(regenerate with --update-baseline)",
                  file=sys.stderr)
            return 1
        print(f"{baseline_path}: canonical ({len(keys)} findings)")
        return 0

    files, src_scope, det_scope = discover(root)
    if not files:
        print(f"error: no sources found under {root}", file=sys.stderr)
        return 2

    frontend = args.frontend
    if frontend == "auto":
        frontend = "portable"
    if frontend == "portable":
        model = analyze_portable(root, files)
    else:
        model = analyze_clang(root, files, args.compile_commands)

    if args.list_hot:
        seen = set()
        for fn in model.functions:
            if (fn.is_hot or fn.hot_allow) and fn.name not in seen:
                seen.add(fn.name)
                flag = " [allow]" if fn.hot_allow else ""
                print(f"{fn.file}:{fn.line}: {fn.name}{flag}")
        print(f"{len(seen)} hot functions")
        return 0

    findings = rules.evaluate(
        model,
        hot_scope=lambda f: f in src_scope,
        det_scope=lambda f: f in det_scope,
        metric_scope=lambda f: f in src_scope)

    if args.update_baseline:
        baseline_path.write_text(baseline_mod.render(findings),
                                 encoding="utf-8")
        print(f"wrote {baseline_path} ({len(findings)} findings)")
        return 0

    try:
        known, _ = baseline_mod.load(baseline_path)
    except OSError:
        print(f"error: no baseline at {baseline_path} "
              f"(bootstrap with --update-baseline)", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    new, stale = baseline_mod.diff(findings, known)
    for f in new:
        print(f"NEW   {f.render()}")
    for key in stale:
        rule, file, context, detail = key
        print(f"STALE {file}: [{rule}] {context}: {detail} "
              f"(fixed? refresh the baseline)")
    status = "clean" if not (new or stale) else "FAIL"
    print(f"analyzer[{frontend}]: {len(files)} files, "
          f"{len(findings)} findings ({len(new)} new, "
          f"{len(stale)} stale) vs {baseline_path.name} -> {status}")
    return 0 if not (new or stale) else 1


if __name__ == "__main__":
    sys.exit(main())

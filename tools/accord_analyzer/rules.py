"""Rule evaluation over the shared semantic model.

Frontend-independent: both the portable and the libclang frontends
produce a model.Model, and every rule decision -- hot-path purity with
one-level propagation, determinism, metric completeness -- lives here
so the frontends cannot disagree on POLICY, only on extraction.
"""

from model import (ALWAYS_CHECKED_STRUCTS, Finding, OP_RULE,
                   PROPAGATED_OP_KINDS)

# src/common/rng.hpp owns the seeded-PRNG abstraction; the raw-entropy
# bans obviously cannot apply inside it.
RNG_EXEMPT_RULES = {"wallclock", "rand", "random-device", "std-engine"}

# src/common/telemetry/ is the flight recorder: host-resource
# profiling (wall time, RSS, ETA) is its whole purpose, and every
# wall-derived value it emits stays in the stream's declared volatile
# partition.  Only the wallclock rule is exempt there -- by PATH, so a
# telemetry-sounding file elsewhere gets no pass.
TELEMETRY_EXEMPT_RULES = {"wallclock"}

_HOT_OP_KINDS = ("alloc", "std-function", "string", "virtual-call",
                 "paged-materialize")


def _is_rng_impl(path):
    return path.replace("\\", "/").endswith("/rng.hpp")


# src/common/paged_table.hpp IS the storage backend: its own methods
# are the sanctioned materializeSlot/ensurePage seam, so the
# hot-paged-materialize ban cannot apply inside it.  Path-scoped like
# the rng exemption — a caller elsewhere gets no pass.
def _is_paged_seam(path):
    return path.replace("\\", "/").endswith("/paged_table.hpp")


def _is_telemetry_impl(path):
    return "src/common/telemetry/" in path.replace("\\", "/")


def evaluate(model, hot_scope=None, det_scope=None, metric_scope=None):
    """Evaluate every rule; scopes are file predicates (None = all).

    Returns findings deduplicated by key (line numbers are display-only
    and excluded from keys, so N same-shape violations in one function
    collapse -- by design: the baseline must survive reordering).
    """
    hot_scope = hot_scope or (lambda f: True)
    det_scope = det_scope or (lambda f: True)
    metric_scope = metric_scope or (lambda f: True)

    findings = []
    findings.extend(_hot_findings(model, hot_scope))
    findings.extend(_determinism_findings(model, det_scope))
    findings.extend(_metric_findings(model, metric_scope))

    unique = {}
    for f in findings:
        unique.setdefault(f.key(), f)
    return sorted(unique.values(),
                  key=lambda f: (f.file, f.rule, f.context, f.detail))


# ---------------------------------------------------------------------
# Hot-path purity
# ---------------------------------------------------------------------

def _hot_findings(model, scope):
    findings = []
    hot_names = {fn.name for fn in model.functions
                 if fn.is_hot or fn.hot_allow}
    allow_names = {fn.name for fn in model.functions if fn.hot_allow}

    # Unique-by-last-name resolution map for one-level propagation.
    by_last = {}
    for fn in model.functions:
        if fn.has_body:
            by_last.setdefault(fn.name.split("::")[-1], []).append(fn)

    for fn in model.functions:
        if not (fn.is_hot and fn.has_body) or not scope(fn.file):
            continue
        if fn.name in allow_names:
            continue  # ACCORD_HOT_ALLOW: whole-function escape hatch

        for op in fn.ops:
            if op.kind not in _HOT_OP_KINDS or op.suppressed:
                continue
            if op.kind == "paged-materialize" \
                    and _is_paged_seam(fn.file):
                continue
            findings.append(Finding(OP_RULE[op.kind], fn.file,
                                    fn.context(), op.detail, op.line))

        # One-level call-graph propagation: a hot caller inherits
        # alloc/std-function/string ops from a non-hot direct callee
        # when the callee's last name resolves uniquely in the repo.
        for callee in sorted(set(fn.calls)):
            cands = by_last.get(callee, ())
            if len(cands) != 1:
                continue  # unknown or ambiguous: stay silent
            g = cands[0]
            if g.name == fn.name or g.name in hot_names:
                continue  # hot callees report their own ops
            for op in g.ops:
                if op.kind not in PROPAGATED_OP_KINDS or op.suppressed:
                    continue
                findings.append(Finding(
                    OP_RULE[op.kind], fn.file, fn.context(),
                    f"{op.detail} via {callee}", op.line))
    return findings


# ---------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------

def _determinism_findings(model, scope):
    findings = []
    for file, line, kind, detail, ctx, suppressed in model.file_ops:
        if suppressed or not scope(file):
            continue
        if kind in RNG_EXEMPT_RULES and _is_rng_impl(file):
            continue
        if kind in TELEMETRY_EXEMPT_RULES and _is_telemetry_impl(file):
            continue
        findings.append(Finding(OP_RULE[kind], file, ctx, detail, line))

    for fn in model.functions:
        if not fn.has_body or not scope(fn.file):
            continue
        for op in fn.ops:
            if op.kind != "unordered-iteration" or op.suppressed:
                continue
            findings.append(Finding("unordered-iteration", fn.file,
                                    fn.context(), op.detail, op.line))
    return findings


# ---------------------------------------------------------------------
# Metric-registration completeness
# ---------------------------------------------------------------------

def _metric_findings(model, scope):
    findings = []
    registered_ids = set()
    for reg in model.registers:
        registered_ids.update(reg.identifiers)

    for struct in model.structs:
        if not scope(struct.file):
            continue
        # A struct participates when it defines registerMetrics itself,
        # when some registerMetrics body names at least one of its
        # registrable fields, or when it is on the always-checked list
        # (the "deliberately unregistered" class).
        named = any(name in registered_ids
                    for name, _, _, _ in struct.fields)
        if not (struct.defines_register or named
                or struct.name in ALWAYS_CHECKED_STRUCTS):
            continue
        for name, _ftype, line, allowed in struct.fields:
            if name in registered_ids:
                continue
            if "metric-unregistered" in allowed:
                continue
            findings.append(Finding(
                "metric-unregistered", struct.file, struct.name,
                f"field '{name}' never registered", line))

    for reg in model.registers:
        if not scope(reg.file):
            continue
        seen = {}
        for line, path in reg.add_paths:
            if not path:
                continue
            seen.setdefault(path, []).append(line)
        ctx = "::".join(reg.name.split("::")[-2:])
        for path, lines in sorted(seen.items()):
            if len(set(lines)) < 2:
                continue
            findings.append(Finding(
                "metric-duplicate-path", reg.file, ctx,
                "duplicate metric path " + "/".join(path), lines[0]))
    return findings

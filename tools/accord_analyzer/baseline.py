"""Committed-findings baseline.

The baseline records every KNOWN finding as a canonical, sorted,
line-number-free JSON document.  The gate hard-fails on ANY drift:

  * a finding not in the baseline  -> new debt, fix it or allow it;
  * a baseline entry no longer found -> stale entry, refresh the file
    (debt was paid down -- the baseline must shrink with it).

Canonical rendering is byte-stable, so `--check-baseline` can assert a
round-trip and CI can diff the file textually.
"""

import json

FORMAT = "accord.analyzer_baseline/1"


def render(findings):
    """Canonical JSON text for a set of findings."""
    entries = sorted({f.key() for f in findings})
    doc = {
        "format": FORMAT,
        "findings": [
            {"rule": rule, "file": file, "context": context,
             "detail": detail}
            for rule, file, context, detail in entries
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load(path):
    """Read a baseline file; returns (key set, raw text).

    Raises ValueError on format drift so a truncated or hand-mangled
    baseline fails loudly instead of masking findings.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    doc = json.loads(text)
    if doc.get("format") != FORMAT:
        raise ValueError(
            f"{path}: expected format {FORMAT!r}, "
            f"got {doc.get('format')!r}")
    keys = set()
    for entry in doc["findings"]:
        keys.add((entry["rule"], entry["file"], entry["context"],
                  entry["detail"]))
    return keys, text


def diff(findings, baseline_keys):
    """Split current findings against the baseline.

    Returns (new_findings, stale_keys): both must be empty for the
    gate to pass.
    """
    current = {f.key(): f for f in findings}
    new = [f for key, f in sorted(current.items())
           if key not in baseline_keys]
    stale = sorted(baseline_keys - set(current))
    return new, stale

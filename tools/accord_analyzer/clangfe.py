"""libclang frontend (clang.cindex) -- CI-informational.

Builds the same semantic model as portable.py, but from the real AST:
annotate attributes instead of token spotting, resolved callee types
instead of name heuristics, `is_virtual_method()` instead of hierarchy
reconstruction.  CI diffs its findings against the portable frontend;
the portable one stays canonical because this module needs a host with
python3-clang + a matching libclang shared object, which the dev
container does not ship.

Flat textual facts (determinism simple ops, suppression lines) are
shared with the portable frontend on purpose: they are defined on the
source TEXT, so extracting them from the AST would add drift surface
without adding fidelity.

Import of clang.cindex is deferred to build_model(); callers get a
clean SystemExit(2) path when the environment lacks libclang.
"""

import json
import pathlib

import portable
import suppress
from model import (ALWAYS_CHECKED_STRUCTS, ClassInfo, FunctionInfo,
                   Model, Op, REGISTRABLE_FIELD_TYPES, RegisterBody,
                   StructInfo)

HOT_ANNOTATION = "accord_hot"
HOT_ALLOW_PREFIX = "accord_hot_allow:"


def _load_compile_args(compile_commands):
    """directory -> arg list, from a CMake compilation database."""
    path = pathlib.Path(compile_commands)
    if not path.is_file():
        return {}
    by_dir = {}
    for entry in json.loads(path.read_text(encoding="utf-8")):
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        keep = []
        it = iter(args[1:])  # drop the compiler itself
        for a in it:
            if a in ("-c", "-o"):
                next(it, None)
                continue
            if a.endswith((".cpp", ".o")):
                continue
            keep.append(a)
        src_dir = str(pathlib.Path(entry["file"]).parent)
        by_dir.setdefault(src_dir, keep)
    return by_dir


def _args_for(rel_path, by_dir, root):
    full_dir = str((root / rel_path).parent)
    if full_dir in by_dir:
        return by_dir[full_dir]
    # Headers: borrow flags from any TU (include paths are global).
    for args in by_dir.values():
        return args
    return ["-std=c++17", f"-I{root / 'src'}"]


def _qualified(cursor):
    parts = []
    c = cursor
    while c is not None and c.kind is not None:
        if c.spelling and c.kind.name in (
                "NAMESPACE", "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
                "FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                "DESTRUCTOR", "FUNCTION_TEMPLATE"):
            parts.insert(0, c.spelling)
        c = c.semantic_parent
    return "::".join(parts)


def _annotations(cursor):
    notes = []
    for child in cursor.get_children():
        if child.kind.name == "ANNOTATE_ATTR":
            notes.append(child.spelling or "")
    return notes


def _fn_takes_std_function(cursor):
    for arg in cursor.get_arguments():
        if "function<" in arg.type.spelling.replace(" ", ""):
            return True
    return False


class _FnVisitor:
    """Collects ops/calls/sink facts from one function definition."""

    def __init__(self, allowed, allowlist, aliases):
        self.allowed = allowed
        self.allowlist = allowlist
        self.aliases = aliases
        self.ops = []
        self.calls = []
        self.has_sink = False
        self.identifiers = set()
        self.add_paths = []

    def _suppressed(self, rule, line):
        return rule in self.allowed.get(line, ())

    def _op(self, kind, line, detail):
        from model import OP_RULE
        self.ops.append(Op(kind, line, detail,
                           self._suppressed(OP_RULE[kind], line)))

    def _type_is_std_function(self, type_spelling):
        flat = type_spelling.replace(" ", "")
        if "function<" in flat and "std::" in flat:
            return True
        last = type_spelling.split("::")[-1].split("<")[0].strip()
        return last in self.aliases

    def visit(self, cursor, call_stack=()):
        for child in cursor.get_children():
            kind = child.kind.name
            line = child.location.line or 0

            if kind == "CXX_NEW_EXPR":
                self._op("alloc", line, "operator new")
            elif kind == "CALL_EXPR":
                name = child.spelling or ""
                if name:
                    self.calls.append(name)
                    if name in portable.SINK_IDS:
                        self.has_sink = True
                    if portable.ADD_CALL_RE.match(name):
                        self.has_sink = True
                        self._record_add_path(child, line)
                if name in portable.ALLOC_FUNCS:
                    self._op("alloc", line, name)
                elif name in portable.ALLOC_MAKERS:
                    self._op("alloc", line, f"std::{name}")
                elif name == "to_string":
                    self._op("string", line, "std::to_string")
                elif name in portable.PAGED_MATERIALIZE_IDS:
                    self._op("paged-materialize", line,
                             f"page materialization via {name}()")
                self._check_virtual(child, line)
                self.visit(child, call_stack + (child,))
                continue
            elif kind == "LAMBDA_EXPR":
                callee = self._enclosing_fn_callee(call_stack)
                if callee is not None:
                    self._op("std-function", line,
                             f"lambda passed to {callee}")
            elif kind == "VAR_DECL":
                spelling = child.type.spelling
                if self._type_is_std_function(spelling) \
                        and "&" not in spelling \
                        and "*" not in spelling:
                    self._op("std-function", line,
                             f"local std::function '{child.spelling}'")
                elif spelling.split("::")[-1].split("<")[0].strip() \
                        in portable.STRING_TYPE_IDS:
                    self._op("string", line,
                             f"std::{spelling.split('::')[-1]} "
                             f"temporary")
            elif kind == "DECL_REF_EXPR":
                if child.spelling in portable.SINK_IDS:
                    self.has_sink = True
                self.identifiers.add(child.spelling)
            elif kind == "MEMBER_REF_EXPR":
                self.identifiers.add(child.spelling)
            elif kind == "CXX_FOR_RANGE_STMT":
                self._check_range_for(child, line)

            self.visit(child, call_stack)

    def _enclosing_fn_callee(self, call_stack):
        for call in reversed(call_stack):
            ref = call.referenced
            if ref is None:
                continue
            if _fn_takes_std_function(ref):
                return call.spelling
            return None
        return None

    def _check_virtual(self, call, line):
        ref = call.referenced
        if ref is None or ref.kind.name != "CXX_METHOD":
            return
        try:
            virtual = ref.is_virtual_method()
        except Exception:
            return
        if not virtual:
            return
        cls = ref.semantic_parent
        seen = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c is None or c.spelling in seen:
                continue
            seen.add(c.spelling)
            if c.spelling in self.allowlist:
                return
            for ch in c.get_children():
                if ch.kind.name == "CXX_BASE_SPECIFIER":
                    stack.append(ch.referenced)
        self._op("virtual-call", line,
                 f"virtual call {cls.spelling}::{ref.spelling}")

    def _check_range_for(self, node, line):
        children = list(node.get_children())
        range_child = None
        for ch in children:
            if ch.kind.name in ("DECL_STMT",):
                continue
            range_child = ch
            break
        if range_child is None:
            return
        if "unordered_" not in range_child.type.spelling:
            return
        # Reuse the portable sink logic at the token level: any sink
        # id or add-call inside the loop body makes it output-reaching
        # (the one-level callee check is resolved by rules.py only for
        # the portable model; here the direct check suffices for CI
        # diffing).
        toks = [t.spelling for t in node.get_tokens()]
        reach = any(t in portable.SINK_IDS for t in toks) or any(
            portable.ADD_CALL_RE.match(t) for t in toks
            if t and t[0].isalpha())
        if not reach:
            return
        self._op("unordered-iteration", line,
                 "range-for over unordered container "
                 f"'{range_child.spelling or '<expr>'}' reaches output")

    def _record_add_path(self, call, line):
        literals = []
        for t in call.get_tokens():
            if t.kind.name == "LITERAL" and t.spelling.startswith('"'):
                literals.append(t.spelling.strip('"'))
        self.add_paths.append((line, tuple(literals)))


def build_model(root, files, compile_commands):
    from clang import cindex  # noqa: deferred -- CI hosts only
    import os

    lib = os.environ.get("ACCORD_LIBCLANG")
    if lib:
        cindex.Config.set_library_file(lib)

    root = pathlib.Path(root)
    by_dir = _load_compile_args(compile_commands)
    index = cindex.Index.create()
    model = Model()

    from model import VIRTUAL_ALLOWLIST

    for rel in files:
        full = root / rel
        text = full.read_text(encoding="utf-8")
        allowed = suppress.allowed_rules_by_line(text.split("\n"))

        # Textual facts shared with the portable frontend.
        pf = portable.parse_file(rel, text)
        model.file_ops.extend(portable.scan_file_ops(pf))
        model.function_aliases.update(pf.aliases)

        tu = index.parse(str(full), args=_args_for(rel, by_dir, root))
        for cursor in tu.cursor.walk_preorder():
            if cursor.location.file is None or \
                    cursor.location.file.name != str(full):
                continue
            kname = cursor.kind.name

            if kname in ("CLASS_DECL", "STRUCT_DECL") \
                    and cursor.is_definition():
                cls = model.classes.setdefault(
                    cursor.spelling, ClassInfo(cursor.spelling))
                struct = None
                if cursor.spelling.endswith("Stats") \
                        or cursor.spelling in ALWAYS_CHECKED_STRUCTS:
                    struct = StructInfo(cursor.spelling, rel,
                                        cursor.location.line)
                    model.structs.append(struct)
                for ch in cursor.get_children():
                    ck = ch.kind.name
                    if ck == "CXX_BASE_SPECIFIER":
                        cls.bases.add(ch.spelling.split("::")[-1])
                    elif ck == "FIELD_DECL":
                        cls.members[ch.spelling] = ch.type.spelling
                        if struct is not None:
                            last = ch.type.spelling.split(
                                "::")[-1].strip()
                            if last in REGISTRABLE_FIELD_TYPES:
                                struct.fields.append((
                                    ch.spelling, last,
                                    ch.location.line,
                                    frozenset(allowed.get(
                                        ch.location.line, set()))))
                    elif ck == "CXX_METHOD":
                        if ch.is_virtual_method():
                            cls.virtual_methods.add(ch.spelling)
                        if ch.spelling == "registerMetrics" \
                                and struct is not None:
                            struct.defines_register = True

            if kname in ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                         "DESTRUCTOR"):
                notes = _annotations(cursor)
                fi = FunctionInfo(
                    _qualified(cursor), rel, cursor.location.line,
                    is_hot=HOT_ANNOTATION in notes,
                    hot_allow=any(n.startswith(HOT_ALLOW_PREFIX)
                                  for n in notes),
                    has_body=cursor.is_definition())
                model.functions.append(fi)
                if not cursor.is_definition():
                    continue
                visitor = _FnVisitor(allowed, VIRTUAL_ALLOWLIST,
                                     model.function_aliases)
                visitor.visit(cursor)
                fi.ops = visitor.ops
                fi.calls = visitor.calls
                fi.has_sink = visitor.has_sink
                if fi.name.split("::")[-1] == "registerMetrics":
                    model.registers.append(RegisterBody(
                        fi.name, rel, fi.line,
                        identifiers=visitor.identifiers,
                        add_paths=visitor.add_paths))
    return model

#!/usr/bin/env python3
"""Determinism lint for the ACCORD simulator sources.

The parallel sweep runner guarantees bit-identical results across job
counts and re-runs.  That guarantee rests on conventions no compiler
enforces: every stochastic decision draws from an explicitly seeded
``accord::Rng``, no output depends on hash-table or pointer ordering,
and nothing seeds from wall-clock time.  This linter scans C++ sources
for the known ways those conventions get broken.

Rules
-----
``rand``
    ``rand()`` / ``srand()`` / ``std::rand()``: hidden global state,
    seeded implicitly, not reproducible across libcs.
``random-device``
    ``std::random_device``: nondeterministic by design.
``std-engine``
    ``std::mt19937`` and friends outside ``src/common/rng.hpp``; all
    randomness must flow through the seeded ``accord::Rng``.
``time-seed``
    ``time(NULL)`` / ``time(nullptr)`` / ``time(0)``, or a
    ``*_clock::now`` on a line that also mentions seeding: wall-clock
    seeds make every run unique.
``pointer-key``
    ``std::map``/``std::set`` keyed by a pointer type: iteration order
    follows allocation addresses, which vary run to run under ASLR.
``unordered-iteration``
    Range-``for`` over a variable declared in the same file as a
    ``std::unordered_map``/``std::unordered_set``: bucket order depends
    on the hash implementation and must never reach stats, tables, or
    logs.  Sort first (see ``DcpDirectory::entries()``), or annotate a
    provably order-insensitive loop.
``wallclock-trace``
    Any wall-clock read (``*_clock::now``, ``gettimeofday``,
    ``clock_gettime``) in ``trace_event`` sources: trace timestamps
    must be simulation cycles, or the exported JSON differs on every
    run and the jobs-independence guarantee breaks.
``printf-metrics``
    ``printf``/``fprintf``/``puts``/``fputs`` in ``bench/`` sources:
    results must flow through the report layer (``report::Reporter``
    tables and notes) so the printed numbers and the machine-readable
    JSON/CSV can never diverge.  ``snprintf`` into a label is fine.
``lookup-switch``
    A ``switch``/``case`` over ``dramcache::LookupMode`` outside the
    access-plan core (``src/dramcache/access_plan.cpp``) and the token
    table (``src/dramcache/enums.cpp``): lookup dispatch must stay in
    ``planLookup()`` so the warm and timed paths cannot re-grow
    divergent per-mode branches — the exact bug class the plan-core
    refactor removed.
``priority-queue``
    ``std::priority_queue`` outside ``src/common/event_queue.*``: heap
    order is unstable for equal keys, so same-cycle events would run
    in an unspecified order.  All event scheduling must go through
    ``EventQueue``, whose calendar buckets keep same-cycle FIFO order
    (and whose overflow heap carries an explicit tiebreak sequence).

Escape hatch: a ``// lint: allow(<rule>)`` comment on the offending
line or the line directly above suppresses that rule there.  Use it
only with a comment explaining why the site is deterministic.

Usage:
    tools/lint_determinism.py [--root DIR] [paths...]
    tools/lint_determinism.py --self-test tests/lint_fixtures

With no paths, scans src/, bench/, tests/, and examples/ under the
root (default: the repository containing this script), skipping
tests/lint_fixtures.  Exits 1 if any violation is found.

Self-test mode scans fixture files instead.  Fixtures declare the
rules they must trigger with ``// expect: <rule>`` lines (one per
rule) or declare ``// expect-clean``; the self-test fails if any
expectation is not met, which guards the linter itself against
regressions.  Stdlib only; no third-party imports.
"""

import argparse
import pathlib
import re
import sys

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}
DEFAULT_SCAN_DIRS = ("src", "bench", "tests", "examples")
FIXTURE_DIR_NAME = "lint_fixtures"

# Files where std::* engines are allowed (the one seeded wrapper).
ENGINE_ALLOWLIST = ("src/common/rng.hpp",)

# Files allowed to use std::priority_queue: the event queue itself,
# whose overflow heap carries an explicit (when, seq) tiebreak.
PRIORITY_QUEUE_ALLOWLIST = (
    "src/common/event_queue.hpp",
    "src/common/event_queue.cpp",
)

# Files allowed to dispatch on LookupMode: the plan core (the ONE
# lookup switch) and the canonical enum<->token table.
LOOKUP_SWITCH_ALLOWLIST = (
    "src/dramcache/access_plan.cpp",
    "src/dramcache/enums.cpp",
)

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")
EXPECT_CLEAN_RE = re.compile(r"//\s*expect-clean")

# Simple per-line rules: (name, regex, message).
LINE_RULES = [
    (
        "rand",
        re.compile(r"(?<![\w:])(?:std::)?s?rand\s*\("),
        "rand()/srand() use hidden global state; draw from a seeded "
        "accord::Rng instead",
    ),
    (
        "random-device",
        re.compile(r"std::random_device"),
        "std::random_device is nondeterministic; seed an accord::Rng "
        "explicitly",
    ),
    (
        "time-seed",
        re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
        "wall-clock time makes runs irreproducible; derive seeds from "
        "the run configuration",
    ),
    (
        "pointer-key",
        re.compile(r"std::(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
        "pointer-keyed ordered containers iterate in allocation order, "
        "which varies under ASLR; key by a stable id",
    ),
]

# Directories whose sources must print through the report layer.
REPORT_ONLY_DIRS = ("bench",)

# Path parts whose sources must timestamp with sim cycles only.
SIM_CLOCK_DIRS = ("trace_event",)

WALLCLOCK_TRACE_RULE = (
    "wallclock-trace",
    re.compile(
        r"_clock\s*::\s*now\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    ),
    "trace timestamps must be simulation cycles; a wall-clock read "
    "here makes the exported trace differ on every run",
)

PRINTF_RULE = (
    "printf-metrics",
    re.compile(r"(?<![\w:.])(?:std::)?(?:f?printf|f?puts)\s*\("),
    "bench output must go through report::Reporter tables/notes so the "
    "text and the JSON report cannot diverge; snprintf into a label is "
    "allowed",
)

ENGINE_RULE = (
    "std-engine",
    re.compile(
        r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
        r"|knuth_b|ranlux(?:24|48)(?:_base)?|subtract_with_carry_engine"
        r"|mersenne_twister_engine|linear_congruential_engine)"
    ),
    "std random engines bypass the deterministic accord::Rng; only "
    "src/common/rng.hpp may wrap one",
)

PRIORITY_QUEUE_RULE = (
    "priority-queue",
    re.compile(r"std::priority_queue\s*<"),
    "std::priority_queue runs equal-key elements in unspecified "
    "order; schedule through accord::EventQueue, which keeps "
    "same-cycle FIFO order",
)

LOOKUP_SWITCH_RULE = (
    "lookup-switch",
    re.compile(
        r"\bcase\s+(?:\w+::)*LookupMode\s*::"
        r"|\bswitch\s*\([^)]*\blookup\b[^)]*\)"
    ),
    "LookupMode dispatch belongs in the access-plan core "
    "(planLookup); branching on the mode elsewhere re-creates the "
    "divergent warm/timed lookup paths the plan refactor removed",
)

CLOCK_NOW_RE = re.compile(r"_clock\s*::\s*now\s*\(")
SEED_CONTEXT_RE = re.compile(r"seed|Rng\s*[({]|srand", re.IGNORECASE)

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;{=(,)]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([\w.\->]+)\s*\)")


class Violation:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def strip_strings(code):
    """Blank out string and char literal contents (keeps the quotes)."""
    out = []
    i = 0
    quote = None
    while i < len(code):
        c = code[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            quote = c
        out.append(c)
        i += 1
    return "".join(out)


def split_code_lines(text):
    """Yield (lineno, code, raw) with comments removed from `code`.

    Tracks /* */ across lines; `raw` keeps the comments so allow- and
    expect-annotations stay visible to the caller.
    """
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_strings(raw)
        code = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            code.append(line[i])
            i += 1
        yield lineno, "".join(code), raw


def collect_allows(raw_lines):
    """Map line number -> set of rules allowed on that line."""
    allows = {}
    for lineno, raw in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(raw)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            allows[lineno] = rules
    return allows


def is_allowed(allows, lineno, rule):
    for at in (lineno, lineno - 1):
        if rule in allows.get(at, set()):
            return True
    return False


def lint_file(path, rel):
    """Return the list of Violations in one file."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [Violation(rel, 0, "io", f"unreadable: {err}")]

    raw_lines = text.splitlines()
    allows = collect_allows(raw_lines)
    violations = []
    engines_allowed = any(rel.endswith(a) for a in ENGINE_ALLOWLIST)
    lookup_switch_allowed = any(
        rel.endswith(a) for a in LOOKUP_SWITCH_ALLOWLIST
    )
    priority_queue_allowed = any(
        rel.endswith(a) for a in PRIORITY_QUEUE_ALLOWLIST
    )
    report_only = any(
        d in pathlib.PurePath(rel).parts for d in REPORT_ONLY_DIRS
    )
    sim_clock_only = any(
        d in pathlib.PurePath(rel).parts for d in SIM_CLOCK_DIRS
    )

    # Pass 1: find names declared with unordered container types.
    unordered_names = set()
    for _, code, _ in split_code_lines(text):
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    # Pass 2: per-line rules.
    code_lines = list(split_code_lines(text))
    for i, (lineno, code, _) in enumerate(code_lines):
        if not code.strip():
            continue

        for rule, regex, message in LINE_RULES:
            if regex.search(code) and not is_allowed(allows, lineno, rule):
                violations.append(Violation(rel, lineno, rule, message))

        rule, regex, message = ENGINE_RULE
        if (
            not engines_allowed
            and regex.search(code)
            and not is_allowed(allows, lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))

        rule, regex, message = LOOKUP_SWITCH_RULE
        if (
            not lookup_switch_allowed
            and regex.search(code)
            and not is_allowed(allows, lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))

        rule, regex, message = PRIORITY_QUEUE_RULE
        if (
            not priority_queue_allowed
            and regex.search(code)
            and not is_allowed(allows, lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))

        rule, regex, message = WALLCLOCK_TRACE_RULE
        if (
            sim_clock_only
            and regex.search(code)
            and not is_allowed(allows, lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))

        rule, regex, message = PRINTF_RULE
        if (
            report_only
            and regex.search(code)
            and not is_allowed(allows, lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))

        # A statement can break between the seed variable and the
        # clock call, so give the context match a one-line window.
        context = " ".join(
            code_lines[j][1]
            for j in (i - 1, i, i + 1)
            if 0 <= j < len(code_lines)
        )
        if (
            CLOCK_NOW_RE.search(code)
            and SEED_CONTEXT_RE.search(context)
            and not is_allowed(allows, lineno, "time-seed")
        ):
            violations.append(
                Violation(
                    rel,
                    lineno,
                    "time-seed",
                    "clock-derived seed; derive seeds from the run "
                    "configuration",
                )
            )

        for m in RANGE_FOR_RE.finditer(code):
            expr = m.group(1)
            name = expr.split(".")[-1].split("->")[-1]
            if name in unordered_names and not is_allowed(
                allows, lineno, "unordered-iteration"
            ):
                violations.append(
                    Violation(
                        rel,
                        lineno,
                        "unordered-iteration",
                        f"range-for over unordered container '{name}': "
                        "bucket order is not deterministic; sort first "
                        "or annotate an order-insensitive loop",
                    )
                )
    return violations


def iter_sources(root, paths):
    if paths:
        candidates = []
        for p in paths:
            p = pathlib.Path(p)
            if p.is_dir():
                candidates.extend(sorted(p.rglob("*")))
            else:
                candidates.append(p)
    else:
        candidates = []
        for d in DEFAULT_SCAN_DIRS:
            base = root / d
            if base.is_dir():
                candidates.extend(sorted(base.rglob("*")))
    for p in candidates:
        if p.suffix not in CXX_SUFFIXES or not p.is_file():
            continue
        if FIXTURE_DIR_NAME in p.parts:
            continue
        yield p


def run_lint(root, paths):
    violations = []
    scanned = 0
    for path in iter_sources(root, paths):
        scanned += 1
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        violations.extend(lint_file(path, rel))
    for v in violations:
        print(v)
    print(
        f"lint_determinism: {scanned} files scanned, "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


def run_self_test(fixture_dir):
    """Check every fixture triggers exactly the rules it declares."""
    fixture_dir = pathlib.Path(fixture_dir)
    fixtures = sorted(
        p for p in fixture_dir.rglob("*") if p.suffix in CXX_SUFFIXES
    )
    if not fixtures:
        print(f"self-test: no fixtures under {fixture_dir}")
        return 1

    failures = 0
    for path in fixtures:
        text = path.read_text(encoding="utf-8", errors="replace")
        expected = set(EXPECT_RE.findall(text))
        expect_clean = bool(EXPECT_CLEAN_RE.search(text))
        if not expected and not expect_clean:
            print(f"self-test: {path}: no expectations declared")
            failures += 1
            continue
        found = {v.rule for v in lint_file(path, str(path))}
        if expect_clean and found:
            print(f"self-test: {path}: expected clean, found {sorted(found)}")
            failures += 1
        missing = expected - found
        if missing:
            print(
                f"self-test: {path}: rules not triggered: {sorted(missing)}"
            )
            failures += 1

    verdict = "ok" if failures == 0 else f"{failures} failure(s)"
    print(f"self-test: {len(fixtures)} fixtures, {verdict}")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="determinism lint for ACCORD C++ sources"
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the repo containing this script)",
    )
    parser.add_argument(
        "--self-test",
        metavar="FIXTURE_DIR",
        help="verify the linter against annotated fixture files",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to scan"
    )
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(args.self_test)
    return run_lint(args.root, args.paths)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Repository-convention lint for the ACCORD simulator sources.

The parallel sweep runner guarantees bit-identical results across job
counts and re-runs.  Most of the conventions backing that guarantee
are now enforced AST-grade by the semantic analyzer
(``tools/accord_analyzer``): raw entropy (``rand``, ``random-device``,
``std-engine``), wall-clock reads (``wallclock``), pointer-keyed
ordered containers (``pointer-key``) and output-reaching unordered
iteration (``unordered-iteration``) all live there, with call-graph
context this line scanner cannot see.  This script keeps only the
rules that are genuinely textual -- bans on whole constructs in whole
directories, where a regex is the clearest specification:

``printf-metrics``
    ``printf``/``fprintf``/``puts``/``fputs`` in ``bench/`` sources:
    results must flow through the report layer (``report::Reporter``
    tables and notes) so the printed numbers and the machine-readable
    JSON/CSV can never diverge.  ``snprintf`` into a label is fine.
``lookup-switch``
    A ``switch``/``case`` over ``dramcache::LookupMode`` outside the
    access-plan core (``src/dramcache/access_plan.cpp``) and the token
    table (``src/dramcache/enums.cpp``): lookup dispatch must stay in
    ``planLookup()`` so the warm and timed paths cannot re-grow
    divergent per-mode branches — the exact bug class the plan-core
    refactor removed.
``priority-queue``
    ``std::priority_queue`` outside ``src/common/event_queue.*``: heap
    order is unstable for equal keys, so same-cycle events would run
    in an unspecified order.  All event scheduling must go through
    ``EventQueue``, whose calendar buckets keep same-cycle FIFO order
    (and whose overflow heap carries an explicit tiebreak sequence).

Escape hatch -- ONE grammar shared with the analyzer
(``tools/accord_analyzer/suppress.py``)::

    // accord-lint: allow(<rule>[, <rule>...]) <reason>

as a trailing comment on the offending line, or on its own line(s)
directly above (blank and comment-only lines are skipped, so a
multi-line reason still covers the statement below).

Usage:
    tools/lint_determinism.py [--root DIR] [paths...]
    tools/lint_determinism.py --self-test tests/lint_fixtures

With no paths, scans src/, bench/, tests/, and examples/ under the
root (default: the repository containing this script), skipping
tests/lint_fixtures.  Exits 1 if any violation is found.

Self-test mode scans fixture files instead (skipping the analyzer's
``ast/`` fixture subtree, which has its own ``--self-test``).
Fixtures declare the rules they must trigger with ``// expect:
<rule>`` lines or declare ``// expect-clean``.  Stdlib only; no
third-party imports.
"""

import argparse
import pathlib
import re
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent / "accord_analyzer"))
import suppress  # noqa: E402  (shared accord-lint grammar)

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}
DEFAULT_SCAN_DIRS = ("src", "bench", "tests", "examples")
FIXTURE_DIR_NAME = "lint_fixtures"
AST_FIXTURE_DIR_NAME = "ast"

# Files allowed to use std::priority_queue: the event queue itself,
# whose overflow heap carries an explicit (when, seq) tiebreak.
PRIORITY_QUEUE_ALLOWLIST = (
    "src/common/event_queue.hpp",
    "src/common/event_queue.cpp",
)

# Files allowed to dispatch on LookupMode: the plan core (the ONE
# lookup switch) and the canonical enum<->token table.
LOOKUP_SWITCH_ALLOWLIST = (
    "src/dramcache/access_plan.cpp",
    "src/dramcache/enums.cpp",
)

# Directories whose sources must print through the report layer.
REPORT_ONLY_DIRS = ("bench",)

PRINTF_RULE = (
    "printf-metrics",
    re.compile(r"(?<![\w:.])(?:std::)?(?:f?printf|f?puts)\s*\("),
    "bench output must go through report::Reporter tables/notes so the "
    "text and the JSON report cannot diverge; snprintf into a label is "
    "allowed",
)

PRIORITY_QUEUE_RULE = (
    "priority-queue",
    re.compile(r"std::priority_queue\s*<"),
    "std::priority_queue runs equal-key elements in unspecified "
    "order; schedule through accord::EventQueue, which keeps "
    "same-cycle FIFO order",
)

LOOKUP_SWITCH_RULE = (
    "lookup-switch",
    re.compile(
        r"\bcase\s+(?:\w+::)*LookupMode\s*::"
        r"|\bswitch\s*\([^)]*\blookup\b[^)]*\)"
    ),
    "LookupMode dispatch belongs in the access-plan core "
    "(planLookup); branching on the mode elsewhere re-creates the "
    "divergent warm/timed lookup paths the plan refactor removed",
)


class Violation:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def strip_strings(code):
    """Blank out string and char literal contents (keeps the quotes)."""
    out = []
    i = 0
    quote = None
    while i < len(code):
        c = code[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            quote = c
        out.append(c)
        i += 1
    return "".join(out)


def split_code_lines(text):
    """Yield (lineno, code, raw) with comments removed from `code`.

    Tracks /* */ across lines; `raw` keeps the comments so allow- and
    expect-annotations stay visible to the caller.
    """
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_strings(raw)
        code = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            code.append(line[i])
            i += 1
        yield lineno, "".join(code), raw


def lint_file(path, rel):
    """Return the list of Violations in one file."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [Violation(rel, 0, "io", f"unreadable: {err}")]

    raw_lines = text.splitlines()
    allows = suppress.allowed_rules_by_line(raw_lines)

    def is_allowed(lineno, rule):
        return rule in allows.get(lineno, set())

    violations = []
    lookup_switch_allowed = any(
        rel.endswith(a) for a in LOOKUP_SWITCH_ALLOWLIST
    )
    priority_queue_allowed = any(
        rel.endswith(a) for a in PRIORITY_QUEUE_ALLOWLIST
    )
    report_only = any(
        d in pathlib.PurePath(rel).parts for d in REPORT_ONLY_DIRS
    )

    for lineno, code, _ in split_code_lines(text):
        if not code.strip():
            continue

        rule, regex, message = LOOKUP_SWITCH_RULE
        if (
            not lookup_switch_allowed
            and regex.search(code)
            and not is_allowed(lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))

        rule, regex, message = PRIORITY_QUEUE_RULE
        if (
            not priority_queue_allowed
            and regex.search(code)
            and not is_allowed(lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))

        rule, regex, message = PRINTF_RULE
        if (
            report_only
            and regex.search(code)
            and not is_allowed(lineno, rule)
        ):
            violations.append(Violation(rel, lineno, rule, message))
    return violations


def iter_sources(root, paths):
    if paths:
        candidates = []
        for p in paths:
            p = pathlib.Path(p)
            if p.is_dir():
                candidates.extend(sorted(p.rglob("*")))
            else:
                candidates.append(p)
    else:
        candidates = []
        for d in DEFAULT_SCAN_DIRS:
            base = root / d
            if base.is_dir():
                candidates.extend(sorted(base.rglob("*")))
    for p in candidates:
        if p.suffix not in CXX_SUFFIXES or not p.is_file():
            continue
        if FIXTURE_DIR_NAME in p.parts:
            continue
        yield p


def run_lint(root, paths):
    violations = []
    scanned = 0
    for path in iter_sources(root, paths):
        scanned += 1
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        violations.extend(lint_file(path, rel))
    for v in violations:
        print(v)
    print(
        f"lint_determinism: {scanned} files scanned, "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


def run_self_test(fixture_dir):
    """Check every fixture triggers exactly the rules it declares."""
    fixture_dir = pathlib.Path(fixture_dir)
    fixtures = sorted(
        p
        for p in fixture_dir.rglob("*")
        if p.suffix in CXX_SUFFIXES
        and AST_FIXTURE_DIR_NAME not in p.relative_to(fixture_dir).parts
    )
    if not fixtures:
        print(f"self-test: no fixtures under {fixture_dir}")
        return 1

    failures = 0
    for path in fixtures:
        text = path.read_text(encoding="utf-8", errors="replace")
        expected_rules, expect_clean = suppress.expectations(
            text.splitlines())
        expected = set(expected_rules)
        if not expected and not expect_clean:
            print(f"self-test: {path}: no expectations declared")
            failures += 1
            continue
        found = {v.rule for v in lint_file(path, str(path))}
        if expect_clean and found:
            print(f"self-test: {path}: expected clean, found {sorted(found)}")
            failures += 1
        missing = expected - found
        if missing:
            print(
                f"self-test: {path}: rules not triggered: {sorted(missing)}"
            )
            failures += 1

    verdict = "ok" if failures == 0 else f"{failures} failure(s)"
    print(f"self-test: {len(fixtures)} fixtures, {verdict}")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="textual convention lint for ACCORD C++ sources"
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the repo containing this script)",
    )
    parser.add_argument(
        "--self-test",
        metavar="FIXTURE_DIR",
        help="verify the linter against annotated fixture files",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to scan"
    )
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(args.self_test)
    return run_lint(args.root, args.paths)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Byte-stability gate for bench run reports.

Runs one bench binary three times — ``jobs=1``, ``jobs=3``, and
``jobs=1`` again — with ``--json=<tmp>`` and checks that

1. every invocation exits 0,
2. the emitted documents parse as ``accord.run_report/1`` JSON with
   the expected top-level shape, and
3. all three JSON files are byte-identical, proving the report is
   deterministic across re-runs and across worker counts.

Optionally, ``--baseline golden.json`` then diffs the (now proven
stable) report against a checked-in baseline via compare_reports.py
with ``--rtol``/``--atol`` tolerances.

Usage:
    tools/check_report_stability.py --bench path/to/bench_binary \
        [--workdir DIR] [--baseline golden.json] [--rtol 1e-4] \
        [-- bench args like scale=4096 ...]

Stdlib only; no third-party imports.
"""

import argparse
import json
import pathlib
import subprocess
import sys

SCHEMA = "accord.run_report/1"
REQUIRED_KEYS = ("schema", "title", "reproduces", "params", "configs",
                 "notes", "tables", "runs")


def run_bench(bench, bench_args, jobs, json_path):
    cmd = [bench, *bench_args, f"jobs={jobs}", f"--json={json_path}"]
    result = subprocess.run(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        print(f"check_report_stability: {' '.join(cmd)} exited "
              f"{result.returncode}")
        print(result.stdout)
        return False
    if not json_path.is_file():
        print(f"check_report_stability: {json_path} was not written")
        return False
    return True


def validate_schema(json_path):
    with open(json_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {SCHEMA!r}")
    for key in REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if not isinstance(doc.get("tables"), dict):
        problems.append("tables is not an object")
    else:
        for name, table in doc["tables"].items():
            if set(table) != {"columns", "rows"}:
                problems.append(f"table {name!r} keys are "
                                f"{sorted(table)}")
                continue
            width = len(table["columns"])
            for r, row in enumerate(table["rows"]):
                if len(row) != width:
                    problems.append(
                        f"table {name!r} row {r} has {len(row)} "
                        f"cells for {width} columns")
    for key, run in doc.get("runs", {}).items():
        if "spec" not in run or "metrics" not in run:
            problems.append(f"run {key!r} lacks spec/metrics")
    for problem in problems:
        print(f"check_report_stability: {json_path}: {problem}")
    return not problems


def main():
    parser = argparse.ArgumentParser(
        description="prove a bench report is byte-stable across "
                    "jobs= values and re-runs"
    )
    parser.add_argument("--bench", required=True,
                        help="bench binary to run")
    parser.add_argument("--workdir", default="report_stability",
                        help="directory for the emitted reports")
    parser.add_argument("--baseline",
                        help="optional golden report to diff against")
    parser.add_argument("--rtol", type=float, default=1e-4,
                        help="relative tolerance for the baseline diff")
    parser.add_argument("--atol", type=float, default=1e-9,
                        help="absolute tolerance for the baseline diff")
    parser.add_argument("bench_args", nargs="*",
                        help="key=value arguments forwarded to the "
                             "bench (after --)")
    args = parser.parse_args()

    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    plan = [(1, workdir / "jobs1_a.json"),
            (3, workdir / "jobs3.json"),
            (1, workdir / "jobs1_b.json")]
    for jobs, path in plan:
        if not run_bench(args.bench, args.bench_args, jobs, path):
            return 1

    reference = plan[0][1].read_bytes()
    stable = True
    for jobs, path in plan[1:]:
        if path.read_bytes() != reference:
            print(f"check_report_stability: {path} (jobs={jobs}) "
                  f"differs from {plan[0][1]} (jobs=1)")
            stable = False
    if not stable:
        return 1

    if not validate_schema(plan[0][1]):
        return 1

    print(f"check_report_stability: {args.bench} report is "
          f"byte-stable across jobs=1/3/1")

    if args.baseline:
        compare = pathlib.Path(__file__).with_name(
            "compare_reports.py")
        result = subprocess.run(
            [sys.executable, str(compare), args.baseline,
             str(plan[0][1]), f"--rtol={args.rtol}",
             f"--atol={args.atol}"])
        return result.returncode
    return 0


if __name__ == "__main__":
    sys.exit(main())

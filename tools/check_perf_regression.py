#!/usr/bin/env python3
"""Throughput-regression gate over bench_throughput run reports.

Compares the ``*_per_sec_best`` run values of a freshly measured
``bench_throughput`` report against the committed baseline
(``BENCH_throughput.json``) and fails when any mode got more than
``--rtol`` slower.  Because each reported value is already the best of
``reps=`` repetitions (min-of-N wall time = max-of-N throughput),
transient host noise has to strike every repetition to fake a
regression; the generous default tolerance (25%) absorbs
runner-to-runner speed differences on top of that.

Faster-than-baseline results never fail the gate — they are printed so
a maintainer can decide to refresh the baseline (``--update`` rewrites
it from the current report; see docs/PERFORMANCE.md for the policy:
every hot-path optimization lands with a refreshed baseline, every
other change must stay inside the tolerance).

Usage:
    tools/check_perf_regression.py --current new.json \
        --baseline BENCH_throughput.json [--rtol 0.25]
    tools/check_perf_regression.py --current new.json \
        --baseline BENCH_throughput.json --update
    tools/check_perf_regression.py --self-test

Stdlib only; no third-party imports.
"""

import argparse
import json
import pathlib
import shutil
import sys

SCHEMA = "accord.run_report/1"
METRIC_SUFFIX = "_per_sec_best"


def load_report(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(
            f"check_perf_regression: {path}: schema is "
            f"{doc.get('schema')!r}, expected {SCHEMA!r}")
    return doc


def gated_metrics(doc):
    """{(run, metric): value} for every gated throughput value."""
    out = {}
    for run, record in doc.get("runs", {}).items():
        for metric, value in record.get("metrics", {}).items():
            if metric.endswith(METRIC_SUFFIX):
                out[(run, metric)] = float(value)
    return out


def check(baseline_doc, current_doc, rtol):
    """Return (problems, lines): failures and the full comparison."""
    baseline = gated_metrics(baseline_doc)
    current = gated_metrics(current_doc)
    problems = []
    lines = []
    if not baseline:
        problems.append(f"baseline has no *{METRIC_SUFFIX} values")
    for (run, metric), base in sorted(baseline.items()):
        label = f"{run}.{metric}"
        if (run, metric) not in current:
            problems.append(f"{label}: missing from current report")
            continue
        now = current[(run, metric)]
        ratio = now / base if base > 0 else float("inf")
        verdict = "ok"
        if now < base * (1.0 - rtol):
            verdict = "REGRESSION"
            problems.append(
                f"{label}: {now:.0f}/s vs baseline {base:.0f}/s "
                f"({ratio:.2f}x, tolerance {1.0 - rtol:.2f}x)")
        elif ratio > 1.0 + rtol:
            verdict = "faster (consider --update)"
        lines.append(f"  {label}: {now:.0f}/s vs {base:.0f}/s "
                     f"({ratio:.2f}x) {verdict}")
    for (run, metric) in sorted(set(current) - set(baseline)):
        lines.append(f"  {run}.{metric}: not in baseline (new mode; "
                     f"--update to start tracking it)")
    return problems, lines


def self_test(rtol):
    """Prove the gate can both pass and fail."""

    def report(scale):
        return {
            "schema": SCHEMA,
            "runs": {
                "libq/timed": {"metrics": {
                    "reads_per_sec_best": 1_000_000.0 * scale,
                    "events_per_sec_best": 6_000_000.0 * scale,
                    "wall_s_best": 0.5,
                }},
                "libq/warm": {"metrics": {
                    "reads_per_sec_best": 4_000_000.0 * scale,
                }},
            },
        }

    base = report(1.0)
    cases = [
        ("identical report passes", report(1.0), False),
        ("within-tolerance noise passes",
         report(1.0 - rtol * 0.8), False),
        ("injected regression fails", report(1.0 - rtol * 2), True),
        ("speedup passes", report(1.5), False),
        ("missing mode fails",
         {"schema": SCHEMA, "runs": {}}, True),
    ]
    failures = []
    for name, current, expect_fail in cases:
        problems, _ = check(base, current, rtol)
        if bool(problems) != expect_fail:
            failures.append(
                f"  self-test case failed: {name} "
                f"(problems={problems!r})")
    if failures:
        print("check_perf_regression: SELF-TEST FAILED")
        print("\n".join(failures))
        return 1
    print(f"check_perf_regression: self-test passed "
          f"({len(cases)} cases, rtol={rtol})")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="fail when bench_throughput regressed vs baseline")
    parser.add_argument("--current", type=pathlib.Path,
                        help="freshly measured bench_throughput report")
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="committed baseline (BENCH_throughput.json)")
    parser.add_argument("--rtol", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --current")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fails on an injected "
                             "regression")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.rtol)
    if args.current is None or args.baseline is None:
        parser.error("--current and --baseline are required "
                     "(or use --self-test)")

    if args.update:
        load_report(args.current)  # validate before overwriting
        shutil.copyfile(args.current, args.baseline)
        print(f"check_perf_regression: baseline {args.baseline} "
              f"refreshed from {args.current}")
        return 0

    problems, lines = check(load_report(args.baseline),
                            load_report(args.current), args.rtol)
    print(f"check_perf_regression: {args.current} vs baseline "
          f"{args.baseline} (rtol={args.rtol})")
    print("\n".join(lines))
    if problems:
        print("check_perf_regression: FAILED")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("check_perf_regression: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff two ACCORD run reports (accord.run_report/1 JSON) with
numeric tolerances.

The bench suite emits canonical, deterministic JSON reports
(``--json=<path>``), and CI keeps golden baselines under
``tests/baselines/``.  This tool is the diff gate between them: it
compares two reports structurally — identity fields exactly, numeric
table cells and run metrics within ``--rtol``/``--atol`` — and exits 1
with a readable diff when they disagree.

Comparison rules
----------------
* ``schema``, ``title``, ``reproduces``, ``configs``, ``notes`` and
  every run's ``spec`` must match exactly.
* ``params`` must match exactly, except ``jobs`` (worker count never
  affects results and is excluded from reports anyway).
* Tables must have the same names, columns, and shapes; text cells
  compare exactly, numeric cells within tolerance.
* Run metrics and epoch samples compare within tolerance; epoch
  positions and paths compare exactly.

Usage:
    tools/compare_reports.py baseline.json candidate.json \
        [--rtol 1e-4] [--atol 1e-9] [--max-diffs 20] \
        [--ignore-spec-key KEY]...

``--ignore-spec-key KEY`` (repeatable) drops ``KEY=...`` tokens from
every canonical config spec (the ``configs`` values and each run's
``spec``) and the matching ``params`` entries before comparing.  The refactor-equivalence gate uses it to
prove a forced ``state_backend=`` leg byte-identical to its baseline:
the backend token is the one *intended* spec difference, and every
metric must still match at rtol 0.  Run ``host`` objects (the volatile
partition) are never compared — only spec/metrics/epochs are.

Exit status: 0 when the reports match, 1 when they differ, 2 when an
input is not an ``accord.run_report/1`` document at all (a wrong file
is not a "difference" — the diff never runs).

Stdlib only; no third-party imports.
"""

import argparse
import json
import math
import sys

SCHEMA = "accord.run_report/1"


def require_schema(doc, path):
    """Refuse documents that are not run reports (exit 2).

    Diffing an arbitrary JSON file against a golden report would
    produce a wall of structural noise — or worse, accidentally pass
    when both sides lack the compared sections.  Gate on the schema
    tag before any comparison runs.
    """
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        got = doc.get("schema") if isinstance(doc, dict) else type(doc).__name__
        print(f"compare_reports: {path} is not a {SCHEMA} document "
              f"(schema={got!r}); refusing to diff")
        sys.exit(2)


def strip_spec_keys(spec, keys):
    """Drop ``key=value`` tokens for the given keys from a canonical
    config spec (space-separated ``key=value`` tokens)."""
    if not isinstance(spec, str) or not keys:
        return spec
    kept = [token for token in spec.split(" ")
            if token.split("=", 1)[0] not in keys]
    return " ".join(kept)


def normalize_specs(doc, keys):
    """Apply strip_spec_keys to every spec surface of a report.

    Also drops the keys from ``params`` — benches echo their CLI
    arguments there, so a forced ``state_backend=`` leg differs in
    ``params`` exactly as it does in the specs.
    """
    if not keys:
        return
    params = doc.get("params")
    if isinstance(params, dict):
        for key in keys:
            params.pop(key, None)
    configs = doc.get("configs")
    if isinstance(configs, dict):
        for name in configs:
            configs[name] = strip_spec_keys(configs[name], keys)
    runs = doc.get("runs")
    if isinstance(runs, dict):
        for run in runs.values():
            if isinstance(run, dict) and "spec" in run:
                run["spec"] = strip_spec_keys(run["spec"], keys)


class Differ:
    def __init__(self, rtol, atol, max_diffs):
        self.rtol = rtol
        self.atol = atol
        self.max_diffs = max_diffs
        self.diffs = []

    def report(self, where, message):
        self.diffs.append(f"{where}: {message}")

    def exact(self, where, a, b):
        if a != b:
            self.report(where, f"{a!r} != {b!r}")

    def close(self, where, a, b):
        if isinstance(a, bool) or isinstance(b, bool):
            self.exact(where, a, b)
            return
        if a is None or b is None:
            self.exact(where, a, b)
            return
        if not math.isclose(a, b, rel_tol=self.rtol, abs_tol=self.atol):
            self.report(where, f"{a!r} != {b!r} (rtol={self.rtol}, "
                               f"atol={self.atol})")

    def value(self, where, a, b):
        """Dispatch: numbers by tolerance, everything else exactly."""
        a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
        b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
        if a_num and b_num:
            self.close(where, a, b)
        else:
            self.exact(where, a, b)

    def key_sets(self, where, a, b):
        """Compare dict key sets; return the shared keys."""
        missing = sorted(set(a) - set(b))
        extra = sorted(set(b) - set(a))
        if missing:
            self.report(where, f"missing in candidate: {missing}")
        if extra:
            self.report(where, f"only in candidate: {extra}")
        return sorted(set(a) & set(b))


def compare_tables(d, base, cand):
    for name in d.key_sets("tables", base, cand):
        where = f"tables[{name}]"
        bt, ct = base[name], cand[name]
        d.exact(f"{where}.columns", bt["columns"], ct["columns"])
        if len(bt["rows"]) != len(ct["rows"]):
            d.report(where, f"{len(bt['rows'])} rows != "
                            f"{len(ct['rows'])} rows")
            continue
        for r, (brow, crow) in enumerate(zip(bt["rows"], ct["rows"])):
            if len(brow) != len(crow):
                d.report(f"{where}.rows[{r}]", "row widths differ")
                continue
            for c, (bv, cv) in enumerate(zip(brow, crow)):
                d.value(f"{where}.rows[{r}][{c}]", bv, cv)


def compare_runs(d, base, cand):
    for key in d.key_sets("runs", base, cand):
        where = f"runs[{key}]"
        brun, crun = base[key], cand[key]
        d.exact(f"{where}.spec", brun.get("spec"), crun.get("spec"))
        bm, cm = brun.get("metrics", {}), crun.get("metrics", {})
        for path in d.key_sets(f"{where}.metrics", bm, cm):
            d.value(f"{where}.metrics[{path}]", bm[path], cm[path])
        be, ce = brun.get("epochs"), crun.get("epochs")
        if (be is None) != (ce is None):
            d.report(f"{where}.epochs",
                     "present in one report, absent in the other")
            continue
        if be is None:
            continue
        d.exact(f"{where}.epochs.positions", be["positions"],
                ce["positions"])
        d.exact(f"{where}.epochs.paths", be["paths"], ce["paths"])
        if len(be["samples"]) == len(ce["samples"]):
            for i, (bs, cs) in enumerate(zip(be["samples"],
                                             ce["samples"])):
                for j, (bv, cv) in enumerate(zip(bs, cs)):
                    d.value(f"{where}.epochs.samples[{i}][{j}]",
                            bv, cv)
        else:
            d.report(f"{where}.epochs.samples", "sample counts differ")


def compare_reports(base, cand, rtol, atol, max_diffs):
    d = Differ(rtol, atol, max_diffs)
    for doc, label in ((base, "baseline"), (cand, "candidate")):
        if doc.get("schema") != SCHEMA:
            d.report("schema", f"{label} is not a {SCHEMA} document "
                               f"(got {doc.get('schema')!r})")
    if d.diffs:
        return d.diffs

    for field in ("title", "reproduces", "notes"):
        d.exact(field, base.get(field), cand.get(field))

    base_params = {k: v for k, v in base.get("params", {}).items()
                   if k != "jobs"}
    cand_params = {k: v for k, v in cand.get("params", {}).items()
                   if k != "jobs"}
    for key in d.key_sets("params", base_params, cand_params):
        d.exact(f"params[{key}]", base_params[key], cand_params[key])

    for key in d.key_sets("configs", base.get("configs", {}),
                          cand.get("configs", {})):
        d.exact(f"configs[{key}]", base["configs"][key],
                cand["configs"][key])

    compare_tables(d, base.get("tables", {}), cand.get("tables", {}))
    compare_runs(d, base.get("runs", {}), cand.get("runs", {}))
    return d.diffs


def main():
    parser = argparse.ArgumentParser(
        description="diff two ACCORD run reports with tolerances"
    )
    parser.add_argument("baseline", help="golden report JSON")
    parser.add_argument("candidate", help="report JSON under test")
    parser.add_argument("--rtol", type=float, default=1e-4,
                        help="relative tolerance for numeric values")
    parser.add_argument("--atol", type=float, default=1e-9,
                        help="absolute tolerance for numeric values")
    parser.add_argument("--max-diffs", type=int, default=20,
                        help="cap on printed differences")
    parser.add_argument("--ignore-spec-key", action="append",
                        default=[], metavar="KEY",
                        help="drop KEY=... tokens from config specs "
                             "before comparing (repeatable)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        base = json.load(fh)
    with open(args.candidate, encoding="utf-8") as fh:
        cand = json.load(fh)
    require_schema(base, args.baseline)
    require_schema(cand, args.candidate)
    normalize_specs(base, set(args.ignore_spec_key))
    normalize_specs(cand, set(args.ignore_spec_key))

    diffs = compare_reports(base, cand, args.rtol, args.atol,
                            args.max_diffs)
    if diffs:
        for line in diffs[: args.max_diffs]:
            print(line)
        if len(diffs) > args.max_diffs:
            print(f"... and {len(diffs) - args.max_diffs} more")
        print(f"compare_reports: {len(diffs)} difference(s) between "
              f"{args.baseline} and {args.candidate}")
        return 1
    print(f"compare_reports: {args.candidate} matches {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include "common/config.hpp"

#include <cctype>
#include <cstdlib>

#include "common/log.hpp"

namespace accord
{

std::uint64_t
parseSize(const std::string &text, bool *ok)
{
    if (ok)
        *ok = false;
    if (text.empty())
        return 0;

    char *end = nullptr;
    const double base = std::strtod(text.c_str(), &end);
    if (end == text.c_str())
        return 0;

    std::uint64_t multiplier = 1;
    if (*end != '\0') {
        switch (std::tolower(static_cast<unsigned char>(*end))) {
          case 'k': multiplier = 1ULL << 10; break;
          case 'm': multiplier = 1ULL << 20; break;
          case 'g': multiplier = 1ULL << 30; break;
          case 't': multiplier = 1ULL << 40; break;
          default: return 0;
        }
        ++end;
        // Allow a trailing "B"/"iB" for readability ("4GiB").
        if (*end == 'i' || *end == 'I')
            ++end;
        if (*end == 'b' || *end == 'B')
            ++end;
        if (*end != '\0')
            return 0;
    }
    if (ok)
        *ok = true;
    return static_cast<std::uint64_t>(base * static_cast<double>(multiplier));
}

void
Config::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

bool
Config::parseArg(const std::string &arg)
{
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(arg.substr(0, eq), arg.substr(eq + 1));
    return true;
}

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!parseArg(arg))
            fatal("malformed argument '%s' (expected key=value)",
                  arg.c_str());
    }
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    consumed.insert(key);
    return it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    consumed.insert(key);
    bool ok = false;
    const std::uint64_t v = parseSize(it->second, &ok);
    if (!ok)
        fatal("config key '%s': cannot parse '%s' as integer",
              key.c_str(), it->second.c_str());
    return static_cast<std::int64_t>(v);
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    consumed.insert(key);
    bool ok = false;
    const std::uint64_t v = parseSize(it->second, &ok);
    if (!ok)
        fatal("config key '%s': cannot parse '%s' as integer",
              key.c_str(), it->second.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    consumed.insert(key);
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': cannot parse '%s' as double",
              key.c_str(), it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    consumed.insert(key);
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config key '%s': cannot parse '%s' as bool",
          key.c_str(), v.c_str());
}

void
Config::checkConsumed() const
{
    for (const auto &[key, value] : values) {
        if (!consumed.count(key))
            fatal("config key '%s=%s' was never used (typo?)",
                  key.c_str(), value.c_str());
    }
}

} // namespace accord

#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace accord
{

namespace
{

/**
 * Active capture buffer for this thread (nullptr = write straight to
 * stderr).  thread_local so parallel sweep workers never share it.
 */
thread_local std::string *capture_sink = nullptr;

/** printf-style formatting into a std::string. */
std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed <= 0)
        return {};
    std::string text(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(text.data(), text.size() + 1, fmt, args);
    return text;
}

/**
 * Route one finished message: append to the thread's capture if one
 * is active, else write it to stderr with a single stdio call so
 * messages from concurrent threads never interleave mid-line.
 */
void
vreport(const char *prefix, const char *fmt, std::va_list args)
{
    std::string line = prefix;
    line += ": ";
    line += vformat(fmt, args);
    line += '\n';
    if (capture_sink != nullptr)
        capture_sink->append(line);
    else
        std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

ScopedLogCapture::ScopedLogCapture() : previous(capture_sink)
{
    capture_sink = &buffer;
}

ScopedLogCapture::~ScopedLogCapture()
{
    capture_sink = previous;
}

void
emitCapturedLog(const std::string &text)
{
    if (!text.empty())
        std::fwrite(text.data(), 1, text.size(), stderr);
}

void
assertFail(const char *cond, const char *file, int line,
           const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string detail = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: %s\n",
                 cond, file, line, detail.c_str());
    std::abort();
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string detail = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", detail.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string detail = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", detail.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace accord

#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace accord
{

namespace
{

void
vreport(const char *prefix, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
assertFail(const char *cond, const char *file, int line,
           const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ",
                 cond, file, line);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace accord

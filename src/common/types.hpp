/**
 * @file
 * Fundamental simulator-wide types and constants.
 *
 * Everything in the simulator is expressed in terms of 64-byte cache
 * lines and CPU cycles.  Memory-side components convert to their own
 * clock domains internally (see dram/timing.hpp).
 */

#ifndef ACCORD_COMMON_TYPES_HPP
#define ACCORD_COMMON_TYPES_HPP

#include <cstdint>

/**
 * Hot-path purity annotation, enforced by tools/accord_analyzer.
 *
 * A function marked ACCORD_HOT must not (directly or one call level
 * deep) allocate on the heap, construct a std::function, materialize
 * a std::string, or make a virtual call on a base outside the
 * analyzer's allowlist (see docs/ANALYSIS.md for the rule catalog).
 * Under clang the marker is also visible in the AST as an annotate
 * attribute, so the libclang frontend and the portable frontend see
 * the same set of hot functions.
 *
 * ACCORD_HOT_ALLOW(reason) is the function-level escape hatch: it
 * keeps the function in the hot set but suppresses purity findings
 * inside it, recording `reason`.  Prefer the line-level
 * `// accord-lint: allow(<rule>) <reason>` comment when only one
 * statement is exempt.
 */
#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#define ACCORD_HOT_ALLOW(reason)                                        \
    [[clang::annotate("accord_hot_allow: " reason)]]
#else
#define ACCORD_HOT
#define ACCORD_HOT_ALLOW(reason)
#endif

namespace accord
{

/** Byte address in the physical address space. */
using Addr = std::uint64_t;

/** Address of a 64-byte line (byte address >> 6). */
using LineAddr = std::uint64_t;

/** Time in CPU cycles (3 GHz clock domain). */
using Cycle = std::uint64_t;

/** Invalid / not-present sentinel for cycles. */
inline constexpr Cycle invalidCycle = ~Cycle{0};

/** Cache line size used throughout the hierarchy (paper Section III-A). */
inline constexpr std::uint64_t lineSize = 64;
inline constexpr std::uint64_t lineShift = 6;

/** Region granularity used by Ganged Way-Steering (4 KB, Section IV-C2). */
inline constexpr std::uint64_t regionSize = 4096;
inline constexpr std::uint64_t regionShift = 12;

/** Lines per 4KB region. */
inline constexpr std::uint64_t linesPerRegion = regionSize / lineSize;

/** Convert a byte address to a line address. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> lineShift;
}

/** Convert a line address back to the byte address of its first byte. */
constexpr Addr
byteOf(LineAddr line)
{
    return line << lineShift;
}

/** Region id (4KB granularity) of a line address. */
constexpr std::uint64_t
regionOf(LineAddr line)
{
    return line >> (regionShift - lineShift);
}

/** Kinds of accesses a cache level can receive. */
enum class AccessType : std::uint8_t
{
    Read,       ///< demand read (load or ifetch miss from the level above)
    Write,      ///< demand write (store miss; allocates like a read)
    Writeback,  ///< dirty eviction from the level above
};

/** True for access types that carry dirty data downward. */
constexpr bool
isWritebackType(AccessType t)
{
    return t == AccessType::Writeback;
}

} // namespace accord

#endif // ACCORD_COMMON_TYPES_HPP

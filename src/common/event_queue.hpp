/**
 * @file
 * Global discrete-event scheduler.
 *
 * All timed components (DRAM channels, NVM channels, cores, the DRAM
 * cache controller) share one EventQueue and schedule callbacks at
 * absolute cycle times.  Events at the same cycle run in scheduling
 * order (FIFO), which keeps runs deterministic.
 *
 * Internally the queue is a bucketed calendar (timing wheel): events
 * within kBuckets cycles of now() append O(1) to a per-cycle FIFO
 * list of arena-recycled nodes, and only far-future events (rare —
 * the DRAM/NVM timing constants are all far below the horizon) fall
 * back to a binary heap.  Callbacks are stored in an EventCallback
 * whose inline buffer fits every capture the simulator schedules, so
 * the common path performs no heap allocation at all.  Execution
 * order is IDENTICAL to the historical priority-queue implementation
 * — (when, schedule order) — which the refactor-equivalence gate
 * (byte-identical run reports) depends on.
 */

#ifndef ACCORD_COMMON_EVENT_QUEUE_HPP
#define ACCORD_COMMON_EVENT_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace accord
{

/**
 * Move-only type-erased `void()` callable with a small-buffer
 * optimization sized for the simulator's event captures (a couple of
 * pointers, a shared_ptr, a cycle).  Larger captures still work; they
 * transparently spill to the heap.
 */
class EventCallback
{
  public:
    /** Inline capture capacity; the largest scheduled lambda fits. */
    static constexpr std::size_t kInlineBytes = 56;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    ACCORD_HOT ACCORD_HOT_ALLOW(
        "oversized captures spill to the heap by design; every capture "
        "the simulator schedules fits the inline buffer")
    EventCallback(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(storage_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    ACCORD_HOT void
    operator()()
    {
        ops_->invoke(storage_);
    }

    /** Destroy the held callable (no-op when empty). */
    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *storage);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes
            && alignof(Fn) <= alignof(std::max_align_t)
            && std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static inline const Ops kInlineOps = {
        [](void *storage) { (*static_cast<Fn *>(storage))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *storage) { static_cast<Fn *>(storage)->~Fn(); },
    };

    template <typename Fn>
    static inline const Ops kHeapOps = {
        [](void *storage) { (**static_cast<Fn **>(storage))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *storage) { delete *static_cast<Fn **>(storage); },
    };

    void
    moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

/** Discrete-event queue in the CPU cycle domain. */
class EventQueue
{
  public:
    using Callback = EventCallback;

    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Cycle now() const { return now_; }

    /** Schedule a callback at an absolute cycle (>= now). */
    ACCORD_HOT void scheduleAt(Cycle when, Callback callback);

    /** Schedule a callback delay cycles from now. */
    ACCORD_HOT void scheduleAfter(Cycle delay, Callback callback)
    {
        scheduleAt(now_ + delay, std::move(callback));
    }

    /** True if no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return pending_; }

    /** Run a single event; returns false if the queue was empty. */
    ACCORD_HOT bool step();

    /**
     * Run events until the queue drains or the predicate returns true.
     * The predicate is checked between events.
     */
    template <typename Pred>
    void
    runUntil(Pred done)
    {
        while (!done() && step()) {
        }
    }

    /** Run all events to completion. */
    void
    run()
    {
        while (step()) {
        }
    }

    /** Total events executed (for perf sanity checks). */
    std::uint64_t executed() const { return executed_; }

    /**
     * High-water mark of simultaneously pending events over the
     * queue's lifetime.  A health gauge for telemetry heartbeats and
     * SystemMetrics: a runaway occupancy means a component is
     * scheduling faster than the run retires.
     */
    std::uint64_t occupancyPeak() const { return occupancy_peak_; }

    /**
     * Events that landed beyond the calendar horizon and spilled to
     * the overflow heap.  Expected to stay near zero (every DRAM/NVM
     * timing constant is far below kBuckets); growth signals a timing
     * model scheduling pathologically far ahead.
     */
    std::uint64_t overflowSpills() const { return overflow_spills_; }

    /** Calendar horizon: near events bucket, farther ones overflow. */
    static constexpr std::size_t kBuckets = 4096;

  private:
    static_assert((kBuckets & (kBuckets - 1)) == 0,
                  "bucket count must be a power of two");
    static constexpr Cycle kMask = kBuckets - 1;
    static constexpr std::size_t kChunkNodes = 256;

    /** One scheduled event; nodes are recycled through a freelist. */
    struct Node
    {
        Cycle when = 0;
        Node *next = nullptr;
        EventCallback cb;
    };

    /** FIFO list of one cycle's events. */
    struct Bucket
    {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    /** Far-future event awaiting migration into the calendar. */
    struct Overflow
    {
        Cycle when;
        std::uint64_t seq;
        EventCallback cb;
    };

    /** Min-heap order on (when, schedule order). */
    struct OverflowLater
    {
        bool
        operator()(const Overflow &a, const Overflow &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Node *allocNode();
    void freeNode(Node *node);
    void appendBucketed(Node *node);

    /**
     * Advance now_ to the next pending cycle (current bucket empty)
     * and migrate newly in-horizon overflow events into the calendar.
     */
    void advance();

    /** Earliest bucketed cycle > now_ (requires bucketed_ > 0). */
    Cycle nextBucketedCycle() const;

    std::vector<Bucket> buckets_;

    /** One bit per bucket: set iff the bucket is non-empty. */
    std::vector<std::uint64_t> occupancy_;

    /** Binary heap (via std::push_heap) of beyond-horizon events. */
    std::vector<Overflow> overflow_;

    /** Node arena: chunks own storage, freelist links recycled nodes. */
    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *free_nodes_ = nullptr;

    std::size_t pending_ = 0;
    std::size_t bucketed_ = 0;
    Cycle now_ = 0;
    std::uint64_t overflow_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t occupancy_peak_ = 0;
    std::uint64_t overflow_spills_ = 0;
};

} // namespace accord

#endif // ACCORD_COMMON_EVENT_QUEUE_HPP

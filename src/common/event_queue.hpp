/**
 * @file
 * Global discrete-event scheduler.
 *
 * All timed components (DRAM channels, NVM channels, cores, the DRAM
 * cache controller) share one EventQueue and schedule callbacks at
 * absolute cycle times.  Events at the same cycle run in scheduling
 * order (FIFO), which keeps runs deterministic.
 */

#ifndef ACCORD_COMMON_EVENT_QUEUE_HPP
#define ACCORD_COMMON_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace accord
{

/** Discrete-event queue in the CPU cycle domain. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time. */
    Cycle now() const { return now_; }

    /** Schedule a callback at an absolute cycle (>= now). */
    void scheduleAt(Cycle when, Callback callback);

    /** Schedule a callback delay cycles from now. */
    void scheduleAfter(Cycle delay, Callback callback)
    {
        scheduleAt(now_ + delay, std::move(callback));
    }

    /** True if no events remain. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events.size(); }

    /** Run a single event; returns false if the queue was empty. */
    bool step();

    /**
     * Run events until the queue drains or the predicate returns true.
     * The predicate is checked between events.
     */
    template <typename Pred>
    void
    runUntil(Pred done)
    {
        while (!done() && step()) {
        }
    }

    /** Run all events to completion. */
    void
    run()
    {
        while (step()) {
        }
    }

    /** Total events executed (for perf sanity checks). */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Cycle now_ = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed_ = 0;
};

} // namespace accord

#endif // ACCORD_COMMON_EVENT_QUEUE_HPP

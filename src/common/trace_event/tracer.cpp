#include "common/trace_event/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/json.hpp"
#include "common/log.hpp"

namespace accord::trace_event
{

namespace
{

/** Chrome pid of the per-core request-flow process. */
constexpr std::uint64_t kRequestPid = 1;

/** Chrome pid of device track `t` (one process per channel). */
std::uint64_t
trackPid(std::int32_t track)
{
    return 100 + static_cast<std::uint64_t>(track);
}

/** Chrome tid of a request-flow event (posted txns share one lane). */
std::uint64_t
coreTid(unsigned core)
{
    return core == kNoCore ? 0xffff : core;
}

std::string
hexLine(LineAddr line)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(line));
    return buf;
}

} // namespace

const char *
name(TxnKind kind)
{
    switch (kind) {
    case TxnKind::Read: return "read";
    case TxnKind::Writeback: return "writeback";
    case TxnKind::Fill: return "fill";
    }
    panic("unreachable TxnKind");
}

const char *
name(RequestClass cls)
{
    switch (cls) {
    case RequestClass::HitPredict: return "hit_predict";
    case RequestClass::HitMispredict: return "hit_mispredict";
    case RequestClass::Miss: return "miss";
    case RequestClass::Writeback: return "writeback";
    case RequestClass::Fill: return "fill";
    }
    panic("unreachable RequestClass");
}

const char *
name(Phase phase)
{
    switch (phase) {
    case Phase::Lookup: return "lookup";
    case Phase::Nvm: return "nvm";
    }
    panic("unreachable Phase");
}

const char *
name(Point point)
{
    switch (point) {
    case Point::ProbeIssue: return "probe_issue";
    case Point::PredictCorrect: return "predict_correct";
    case Point::PredictWrong: return "predict_wrong";
    case Point::MissConfirm: return "miss_confirm";
    case Point::RoutedToCache: return "routed_to_cache";
    case Point::RoutedToNvm: return "routed_to_nvm";
    case Point::BankAct: return "ACT";
    case Point::BankCas: return "CAS";
    }
    panic("unreachable Point");
}

const char *
name(Device device)
{
    switch (device) {
    case Device::Dram: return "dram";
    case Device::Nvm: return "nvm";
    }
    panic("unreachable Device");
}

Tracer::Tracer(TracerConfig config) : config_(std::move(config)) {}

std::int32_t
Tracer::registerDeviceTrack(Device device, unsigned channel)
{
    tracks_.push_back({device, channel});
    return static_cast<std::int32_t>(tracks_.size()) - 1;
}

TxnId
Tracer::begin(TxnKind kind, unsigned core, LineAddr line, Cycle now)
{
    const TxnId id = ++last_id_;
    TxnRecord record;
    record.id = id;
    record.kind = kind;
    record.core = core;
    record.line = line;
    record.begin = now;
    record.beginSeq = next_seq_++;
    txns_.emplace(id, std::move(record));
    ++open_count_;
    return id;
}

TxnRecord *
Tracer::lookup(TxnId txn)
{
    const auto it = txns_.find(txn);
    if (it == txns_.end()) {
        // The op outlived its (ring-evicted) transaction; drop the
        // event rather than resurrecting a partial record.
        ++dropped_events_;
        return nullptr;
    }
    return &it->second;
}

Event &
Tracer::append(TxnRecord &record, EventKind kind, Cycle tick)
{
    record.events.emplace_back();
    Event &event = record.events.back();
    event.kind = kind;
    event.tick = tick;
    event.seq = next_seq_++;
    return event;
}

void
Tracer::phaseBegin(TxnId txn, Phase phase, Cycle now)
{
    TxnRecord *record = lookup(txn);
    if (record == nullptr)
        return;
    Event &event = append(*record, EventKind::PhaseBegin, now);
    event.code = static_cast<std::uint8_t>(phase);
}

void
Tracer::phaseEnd(TxnId txn, Phase phase, Cycle now)
{
    TxnRecord *record = lookup(txn);
    if (record == nullptr)
        return;
    Event &event = append(*record, EventKind::PhaseEnd, now);
    event.code = static_cast<std::uint8_t>(phase);
}

void
Tracer::point(TxnId txn, Point point, Cycle now, std::uint64_t arg)
{
    TxnRecord *record = lookup(txn);
    if (record == nullptr)
        return;
    Event &event = append(*record, EventKind::Point, now);
    event.code = static_cast<std::uint8_t>(point);
    event.arg = arg;
}

void
Tracer::burst(TxnId txn, std::int32_t track, unsigned bank,
              std::uint64_t row, bool isWrite, bool rowHit,
              Cycle enqueuedAt, Cycle pickedAt, Cycle actAt,
              Cycle casAt, Cycle dataStart, Cycle dataEnd,
              std::size_t readDepth, std::size_t writeDepth)
{
    TxnRecord *record = lookup(txn);
    if (record == nullptr)
        return;
    ACCORD_ASSERT(track >= 0
                      && static_cast<std::size_t>(track)
                          < tracks_.size(),
                  "burst on unregistered trace track");

    Event &event = append(*record, EventKind::Burst, dataStart);
    event.track = track;
    event.bank = static_cast<std::uint16_t>(bank);
    event.isWrite = isWrite;
    event.rowHit = rowHit;
    event.row = row;
    event.duration = dataEnd - dataStart;
    event.queueCycles = pickedAt - enqueuedAt;
    event.serviceCycles = dataEnd - pickedAt;

    const auto device = static_cast<unsigned>(
        tracks_[static_cast<std::size_t>(track)].device);
    record->queueCycles[device] += event.queueCycles;
    record->serviceCycles[device] += event.serviceCycles;

    if (actAt != invalidCycle) {
        Event &act = append(*record, EventKind::Point, actAt);
        act.code = static_cast<std::uint8_t>(Point::BankAct);
        act.track = track;
        act.bank = static_cast<std::uint16_t>(bank);
        act.row = row;
        act.arg = row;
    }
    Event &cas = append(*record, EventKind::Point, casAt);
    cas.code = static_cast<std::uint8_t>(Point::BankCas);
    cas.track = track;
    cas.bank = static_cast<std::uint16_t>(bank);
    cas.row = row;
    cas.arg = row;

    Event &depth = append(*record, EventKind::QueueSample, pickedAt);
    depth.track = track;
    depth.readDepth = readDepth;
    depth.writeDepth = writeDepth;
}

void
Tracer::complete(TxnId txn, RequestClass cls, Cycle now)
{
    TxnRecord *record = lookup(txn);
    if (record == nullptr)
        return;
    ACCORD_ASSERT(!record->completed,
                  "transaction completed twice (txn %llu)",
                  static_cast<unsigned long long>(txn));
    record->cls = cls;
    record->end = now;
    record->endSeq = next_seq_++;
    record->completed = true;
    --open_count_;

    ClassStats &stats = class_stats_[static_cast<unsigned>(cls)];
    const Cycle total = now - record->begin;
    stats.latency.sample(total);
    const auto dram = static_cast<unsigned>(Device::Dram);
    const auto nvm = static_cast<unsigned>(Device::Nvm);
    stats.dramQueue.sample(
        static_cast<double>(record->queueCycles[dram]));
    stats.dramService.sample(
        static_cast<double>(record->serviceCycles[dram]));
    stats.nvmQueue.sample(
        static_cast<double>(record->queueCycles[nvm]));
    stats.nvmService.sample(
        static_cast<double>(record->serviceCycles[nvm]));
    // Parallel probes overlap, so attributed cycles can exceed the
    // wall time; the remainder clamps at zero in that case.
    const std::uint64_t attributed = record->queueCycles[dram]
        + record->serviceCycles[dram] + record->queueCycles[nvm]
        + record->serviceCycles[nvm];
    stats.other.sample(total > attributed
                           ? static_cast<double>(total - attributed)
                           : 0.0);

    completed_order_.push_back(txn);
    if (config_.cap > 0) {
        while (completed_order_.size() > config_.cap) {
            txns_.erase(completed_order_.front());
            completed_order_.pop_front();
            ++evicted_;
        }
    }
}

std::vector<const TxnRecord *>
Tracer::completedRecords() const
{
    std::vector<const TxnRecord *> records;
    records.reserve(completed_order_.size());
    for (const TxnId id : completed_order_) {
        const auto it = txns_.find(id);
        if (it != txns_.end())
            records.push_back(&it->second);
    }
    return records;
}

const TxnRecord *
Tracer::find(TxnId txn) const
{
    const auto it = txns_.find(txn);
    return it == txns_.end() ? nullptr : &it->second;
}

const ClassStats &
Tracer::classStats(RequestClass cls) const
{
    return class_stats_[static_cast<unsigned>(cls)];
}

void
Tracer::registerMetrics(MetricRegistry &registry,
                        const std::string &prefix) const
{
    for (unsigned c = 0; c < kNumClasses; ++c) {
        const ClassStats &stats = class_stats_[c];
        const std::string base = MetricRegistry::join(
            prefix, name(static_cast<RequestClass>(c)));
        registry.addHistogram(base + ".latency", stats.latency);
        registry.addAverage(base + ".phase.dram_queue",
                            stats.dramQueue);
        registry.addAverage(base + ".phase.dram_service",
                            stats.dramService);
        registry.addAverage(base + ".phase.nvm_queue", stats.nvmQueue);
        registry.addAverage(base + ".phase.nvm_service",
                            stats.nvmService);
        registry.addAverage(base + ".phase.other", stats.other);
    }
}

// --------------------------------------------------------------------
// Chrome trace-event export
// --------------------------------------------------------------------

namespace
{

/** One renderable Chrome event, sortable by (ts, seq). */
struct DisplayEvent
{
    Cycle ts = 0;
    std::uint64_t seq = 0;
    char ph = 'i';
    std::string eventName;
    std::uint64_t pid = kRequestPid;
    std::uint64_t tid = 0;
    bool hasId = false;
    TxnId id = kNoTxn;
    Cycle dur = 0;
    const TxnRecord *record = nullptr;  // b/e request span args
    const Event *event = nullptr;       // device payload args
    bool isSpanEnd = false;
};

void
writeEvent(JsonWriter &json, const DisplayEvent &display)
{
    json.beginObject();
    json.key("name").value(display.eventName);
    if (display.ph == 'b' || display.ph == 'e' || display.ph == 'n')
        json.key("cat").value("txn");
    json.key("ph").value(std::string(1, display.ph));
    json.key("ts").value(std::uint64_t{display.ts});
    json.key("pid").value(display.pid);
    json.key("tid").value(display.tid);
    if (display.hasId)
        json.key("id").value(std::uint64_t{display.id});
    if (display.ph == 'X')
        json.key("dur").value(std::uint64_t{display.dur});
    if (display.ph == 'i')
        json.key("s").value("t");

    const Event *event = display.event;
    if (display.record != nullptr && display.ph == 'b') {
        json.key("args").beginObject();
        json.key("line").value(hexLine(display.record->line));
        json.key("core").value(
            display.record->core == kNoCore
                ? std::int64_t{-1}
                : static_cast<std::int64_t>(display.record->core));
        json.endObject();
    } else if (display.record != nullptr && display.isSpanEnd) {
        json.key("args").beginObject();
        json.key("class").value(name(display.record->cls));
        json.endObject();
    } else if (event != nullptr && event->kind == EventKind::Burst) {
        json.key("args").beginObject();
        json.key("txn").value(std::uint64_t{display.id});
        json.key("bank").value(unsigned{event->bank});
        json.key("row").value(std::uint64_t{event->row});
        json.key("row_hit").value(event->rowHit);
        json.key("queue").value(std::uint64_t{event->queueCycles});
        json.key("service").value(std::uint64_t{event->serviceCycles});
        json.endObject();
    } else if (event != nullptr
               && event->kind == EventKind::QueueSample) {
        json.key("args").beginObject();
        json.key("read").value(std::uint64_t{event->readDepth});
        json.key("write").value(std::uint64_t{event->writeDepth});
        json.endObject();
    } else if (event != nullptr && event->kind == EventKind::Point
               && display.ph == 'i') {
        json.key("args").beginObject();
        json.key("txn").value(std::uint64_t{display.id});
        json.key("row").value(std::uint64_t{event->row});
        json.endObject();
    } else if (event != nullptr && event->kind == EventKind::Point) {
        json.key("args").beginObject();
        json.key("v").value(std::uint64_t{event->arg});
        json.endObject();
    }
    json.endObject();
}

void
writeMetadata(JsonWriter &json, const char *metaName,
              std::uint64_t pid, bool hasTid, std::uint64_t tid,
              const std::string &label)
{
    json.beginObject();
    json.key("name").value(metaName);
    json.key("ph").value("M");
    json.key("pid").value(pid);
    if (hasTid)
        json.key("tid").value(tid);
    json.key("args").beginObject();
    json.key("name").value(label);
    json.endObject();
    json.endObject();
}

} // namespace

std::string
Tracer::toJson() const
{
    // Gather display events from every retained completed txn; open
    // transactions are excluded so every async begin has its end.
    std::vector<DisplayEvent> display;
    std::set<std::uint64_t> request_tids;
    std::vector<std::set<std::uint64_t>> bank_tids(tracks_.size());

    for (const auto &[id, record] : txns_) {
        if (!record.completed)
            continue;
        request_tids.insert(coreTid(record.core));

        DisplayEvent span_begin;
        span_begin.ts = record.begin;
        span_begin.seq = record.beginSeq;
        span_begin.ph = 'b';
        span_begin.eventName = name(record.kind);
        span_begin.tid = coreTid(record.core);
        span_begin.hasId = true;
        span_begin.id = id;
        span_begin.record = &record;
        display.push_back(span_begin);

        DisplayEvent span_end = span_begin;
        span_end.ts = record.end;
        span_end.seq = record.endSeq;
        span_end.ph = 'e';
        span_end.isSpanEnd = true;
        display.push_back(span_end);

        for (const Event &event : record.events) {
            DisplayEvent entry;
            entry.ts = event.tick;
            entry.seq = event.seq;
            entry.id = id;
            entry.event = &event;
            switch (event.kind) {
            case EventKind::PhaseBegin:
            case EventKind::PhaseEnd:
                entry.ph =
                    event.kind == EventKind::PhaseBegin ? 'b' : 'e';
                entry.eventName =
                    name(static_cast<Phase>(event.code));
                entry.tid = coreTid(record.core);
                entry.hasId = true;
                entry.event = nullptr;
                break;
            case EventKind::Point: {
                const auto point = static_cast<Point>(event.code);
                if (point == Point::BankAct
                    || point == Point::BankCas) {
                    entry.ph = 'i';
                    entry.eventName = name(point);
                    entry.pid = trackPid(event.track);
                    entry.tid = 1 + std::uint64_t{event.bank};
                    bank_tids[static_cast<std::size_t>(event.track)]
                        .insert(entry.tid);
                } else {
                    entry.ph = 'n';
                    entry.eventName = name(point);
                    entry.tid = coreTid(record.core);
                    entry.hasId = true;
                }
                break;
            }
            case EventKind::Burst:
                entry.ph = 'X';
                entry.eventName = event.isWrite ? "wr" : "rd";
                entry.pid = trackPid(event.track);
                entry.tid = 0;
                entry.dur = event.duration;
                break;
            case EventKind::QueueSample:
                entry.ph = 'C';
                entry.eventName = "queue";
                entry.pid = trackPid(event.track);
                entry.tid = 0;
                break;
            }
            display.push_back(entry);
        }
    }

    std::stable_sort(display.begin(), display.end(),
                     [](const DisplayEvent &a, const DisplayEvent &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.seq < b.seq;
                     });

    JsonWriter json;
    json.beginObject();
    json.key("traceEvents").beginArray();

    writeMetadata(json, "process_name", kRequestPid, false, 0,
                  "requests");
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        writeMetadata(json, "process_name", trackPid(
                          static_cast<std::int32_t>(t)),
                      false, 0,
                      std::string(name(tracks_[t].device)) + ".ch"
                          + std::to_string(tracks_[t].channel));
    }
    for (const std::uint64_t tid : request_tids) {
        writeMetadata(json, "thread_name", kRequestPid, true, tid,
                      tid == 0xffff ? std::string("posted")
                                    : "core" + std::to_string(tid));
    }
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        const auto pid = trackPid(static_cast<std::int32_t>(t));
        writeMetadata(json, "thread_name", pid, true, 0, "bus");
        for (const std::uint64_t tid : bank_tids[t]) {
            writeMetadata(json, "thread_name", pid, true, tid,
                          "bank" + std::to_string(tid - 1));
        }
    }

    for (const DisplayEvent &entry : display)
        writeEvent(json, entry);
    json.endArray();

    json.key("displayTimeUnit").value("ns");
    json.key("metadata").beginObject();
    json.key("clock").value("sim-cycles");
    json.key("retained_txns")
        .value(std::uint64_t{completed_order_.size()});
    json.key("open_at_export").value(std::uint64_t{open_count_});
    json.key("evicted_txns").value(std::uint64_t{evicted_});
    json.key("dropped_events").value(std::uint64_t{dropped_events_});
    json.endObject();
    json.endObject();
    return json.str() + "\n";
}

void
Tracer::writeFile(const std::string &text) const
{
    std::ofstream file(config_.path,
                       std::ios::binary | std::ios::trunc);
    if (!file)
        fatal("cannot open trace output '%s'", config_.path.c_str());
    file << text;
    if (!file)
        fatal("failed writing trace output '%s'",
              config_.path.c_str());
}

} // namespace accord::trace_event

/**
 * @file
 * Ring-buffered transaction tracer with Chrome-trace export.
 *
 * The Tracer is wired only when a run sets `trace=`; every
 * instrumentation site guards on a plain pointer (`if (tracer)`), so
 * with tracing off the hot path costs one never-taken branch on a
 * cold null and no event is ever constructed (the bench guard in
 * bench_micro_components.cpp measures exactly this).
 *
 * Two artifacts come out of a traced run:
 *
 *  - toJson()/writeFile(): a deterministic Chrome trace-event JSON
 *    (loads in Perfetto / chrome://tracing) with one async track per
 *    core's in-flight requests and one process per device channel
 *    (bus bursts, per-bank ACT/CAS instants, queue-depth counters);
 *  - registerMetrics(): per-request-class latency histograms
 *    (p50/p95/p99) and per-phase mean breakdowns under `txn.*`, which
 *    flow into run reports like any other metric.
 *
 * Determinism: ids and sequence numbers are assigned in emission
 * order, all containers iterate in id order, and timestamps are
 * simulation cycles — the export is a pure function of the run.
 */

#ifndef ACCORD_COMMON_TRACE_EVENT_TRACER_HPP
#define ACCORD_COMMON_TRACE_EVENT_TRACER_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/metrics/registry.hpp"
#include "common/stats.hpp"
#include "common/trace_event/trace_event.hpp"
#include "common/types.hpp"

namespace accord::trace_event
{

/** Per-request-class latency attribution (registered under txn.*). */
struct ClassStats
{
    /** End-to-end latency, cycles (64-cycle buckets up to 64K). */
    Histogram latency{1024, 64};

    /** Mean per-phase breakdown of completed transactions. */
    Average dramQueue;    ///< waiting in stacked-DRAM channel queues
    Average dramService;  ///< scheduled -> data end on stacked DRAM
    Average nvmQueue;     ///< waiting in NVM channel queues
    Average nvmService;   ///< scheduled -> data end on NVM
    Average other;        ///< remainder (controller think time, gaps)
};

/** Ring-buffered transaction tracer. */
class Tracer
{
  public:
    explicit Tracer(TracerConfig config);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    // --- wiring ---------------------------------------------------

    /**
     * Register one device channel as a trace track; returns the track
     * id the channel passes back with every burst() call.  Call once
     * per channel at attach time, in channel order.
     */
    std::int32_t registerDeviceTrack(Device device, unsigned channel);

    // --- transaction lifecycle (instrumentation sites) ------------

    /** Start a transaction; returns its id (never kNoTxn). */
    TxnId begin(TxnKind kind, unsigned core, LineAddr line, Cycle now);

    void phaseBegin(TxnId txn, Phase phase, Cycle now);
    void phaseEnd(TxnId txn, Phase phase, Cycle now);

    /** Record an instantaneous marker. */
    void point(TxnId txn, Point point, Cycle now,
               std::uint64_t arg = 0);

    /**
     * Record one device burst serving this transaction.  `actAt` is
     * invalidCycle when the access hit the open row (no activate).
     * Queue wait is pickedAt - enqueuedAt; service is
     * dataEnd - pickedAt.
     */
    void burst(TxnId txn, std::int32_t track, unsigned bank,
               std::uint64_t row, bool isWrite, bool rowHit,
               Cycle enqueuedAt, Cycle pickedAt, Cycle actAt,
               Cycle casAt, Cycle dataStart, Cycle dataEnd,
               std::size_t readDepth, std::size_t writeDepth);

    /**
     * Complete a transaction: classify it, fold its latency and phase
     * breakdown into the txn.* metrics, and evict the oldest
     * completed transaction(s) beyond the ring cap.
     */
    void complete(TxnId txn, RequestClass cls, Cycle now);

    // --- introspection (tests, analyzers) -------------------------

    const TracerConfig &config() const { return config_; }

    /** Transactions begun since construction. */
    std::uint64_t beganCount() const { return last_id_; }

    /** Completed transactions still retained, oldest first. */
    std::vector<const TxnRecord *> completedRecords() const;

    /** Transactions begun but not yet completed. */
    std::size_t openCount() const { return open_count_; }

    /** Completed transactions evicted by the ring cap. */
    std::uint64_t evictedCount() const { return evicted_; }

    /** Events that arrived for an already-evicted transaction. */
    std::uint64_t droppedEvents() const { return dropped_events_; }

    /** Record for a retained transaction, or nullptr. */
    const TxnRecord *find(TxnId txn) const;

    /** Attribution stats for one request class. */
    const ClassStats &classStats(RequestClass cls) const;

    // --- artifacts ------------------------------------------------

    /**
     * Register the per-class latency histograms and phase-breakdown
     * averages under `prefix` (typically "txn"):
     * txn.<class>.latency.{count,mean,p50,p95,p99} and
     * txn.<class>.phase.{dram_queue,dram_service,nvm_queue,
     * nvm_service,other}.{count,mean,min,max}.
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Chrome trace-event JSON of every retained *completed*
     * transaction (open transactions are excluded so begin/end pairs
     * always balance; their count is reported in the metadata).
     */
    std::string toJson() const;

    /** Write `text` (normally toJson()) to this tracer's path. */
    void writeFile(const std::string &text) const;

  private:
    struct TrackInfo
    {
        Device device = Device::Dram;
        unsigned channel = 0;
    };

    TxnRecord *lookup(TxnId txn);
    Event &append(TxnRecord &record, EventKind kind, Cycle tick);

    TracerConfig config_;
    std::vector<TrackInfo> tracks_;

    /** All retained transactions, keyed (and iterated) by id. */
    std::map<TxnId, TxnRecord> txns_;

    /** Completion order, for ring eviction. */
    std::deque<TxnId> completed_order_;

    std::array<ClassStats, kNumClasses> class_stats_;

    TxnId last_id_ = kNoTxn;
    std::uint64_t next_seq_ = 0;
    std::size_t open_count_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t dropped_events_ = 0;
};

} // namespace accord::trace_event

#endif // ACCORD_COMMON_TRACE_EVENT_TRACER_HPP

/**
 * @file
 * Transaction-trace vocabulary: ids, request classes, phases, and the
 * per-event record the Tracer accumulates.
 *
 * Every timed demand read, writeback, and cache fill gets a TxnId at
 * issue and carries it through the DRAM-cache controller into the
 * device channels, so each burst on a bus and each bank command can be
 * attributed back to the request that caused it.  Timestamps are
 * simulation cycles exclusively — never wall-clock time — so a trace
 * is a pure function of the run configuration and two runs of the
 * same config serialize to byte-identical JSON.
 */

#ifndef ACCORD_COMMON_TRACE_EVENT_TRACE_EVENT_HPP
#define ACCORD_COMMON_TRACE_EVENT_TRACE_EVENT_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace accord::trace_event
{

/** Per-transaction identifier; 0 means "not traced". */
using TxnId = std::uint64_t;
inline constexpr TxnId kNoTxn = 0;

/** Core id for transactions with no issuing core (posted fills). */
inline constexpr unsigned kNoCore = ~0U;

/** What kind of memory transaction a TxnId names. */
enum class TxnKind : std::uint8_t
{
    Read,       ///< demand read (L3 miss)
    Writeback,  ///< dirty L3 eviction
    Fill,       ///< cache install after a miss (array write + victim)
};
inline constexpr unsigned kNumTxnKinds = 3;

/**
 * Latency class a completed transaction lands in.  Reads split by
 * lookup outcome (the paper's Table I cost classes); writebacks and
 * fills are their own classes.
 */
enum class RequestClass : std::uint8_t
{
    HitPredict,     ///< hit, first probe correct
    HitMispredict,  ///< hit after one or more wrong probes
    Miss,           ///< confirmed miss, served from NVM
    Writeback,      ///< dirty eviction routed to cache or NVM
    Fill,           ///< post-miss install (array write + victim)
};
inline constexpr unsigned kNumClasses = 5;

/** Nested phases within a transaction's lifetime. */
enum class Phase : std::uint8_t
{
    Lookup,  ///< L4 tag/data probes until hit or miss confirmation
    Nvm,     ///< main-memory access after a confirmed miss
};
inline constexpr unsigned kNumPhases = 2;

/** Instantaneous markers within a transaction. */
enum class Point : std::uint8_t
{
    ProbeIssue,      ///< one way probe entered the device (arg: way)
    PredictCorrect,  ///< hit on the first probe (arg: way)
    PredictWrong,    ///< hit after a misprediction (arg: way)
    MissConfirm,     ///< last candidate probe returned absent
    RoutedToCache,   ///< writeback target resolved to the L4 array
    RoutedToNvm,     ///< writeback/victim routed to main memory
    BankAct,         ///< row activate at a device bank (arg: row)
    BankCas,         ///< column access at a device bank (arg: row)
};

/** Which device a track belongs to. */
enum class Device : std::uint8_t
{
    Dram,  ///< the stacked-DRAM array holding the L4
    Nvm,   ///< main memory below the cache
};
inline constexpr unsigned kNumDevices = 2;

const char *name(TxnKind kind);
const char *name(RequestClass cls);
const char *name(Phase phase);
const char *name(Point point);
const char *name(Device device);

/** Tracer knobs (the `trace=` / `trace_cap=` CLI parameters). */
struct TracerConfig
{
    /** Output path of the Chrome-trace JSON. */
    std::string path;

    /**
     * Completed transactions retained in the ring buffer; the oldest
     * completed transaction (and all its events) is evicted beyond
     * this.  0 keeps everything.  Open transactions are never evicted
     * — their count is bounded by cores x MLP — so exported traces
     * always contain whole, well-nested transactions.
     */
    std::uint64_t cap = 0;
};

/** Discriminates the Event payload. */
enum class EventKind : std::uint8_t
{
    PhaseBegin,   ///< code = Phase
    PhaseEnd,     ///< code = Phase
    Point,        ///< code = Point (BankAct/BankCas render on banks)
    Burst,        ///< one data-bus burst on a device channel
    QueueSample,  ///< read/write queue depths at scheduling time
};

/**
 * One timestamped trace event, stored inside its owning transaction's
 * record so ring-buffer eviction drops whole transactions and never
 * leaves dangling halves of a begin/end pair.
 */
struct Event
{
    EventKind kind = EventKind::Point;

    /** Simulation time of the event (CPU cycles). */
    Cycle tick = 0;

    /** Global emission sequence; total order for same-tick events. */
    std::uint64_t seq = 0;

    /** Phase or Point enum value, per `kind`. */
    std::uint8_t code = 0;

    /** Point payload (way index, row, ...). */
    std::uint64_t arg = 0;

    // Device-side fields (Burst / QueueSample / Bank* points).
    std::int32_t track = -1;  ///< device track id, -1 = request track
    std::uint16_t bank = 0;
    bool isWrite = false;
    bool rowHit = false;
    std::uint64_t row = 0;
    Cycle duration = 0;             ///< Burst: data-bus occupancy
    std::uint64_t queueCycles = 0;  ///< Burst: enqueue -> scheduled
    std::uint64_t serviceCycles = 0;  ///< Burst: scheduled -> data end
    std::uint64_t readDepth = 0;    ///< QueueSample
    std::uint64_t writeDepth = 0;   ///< QueueSample
};

/** Everything recorded about one transaction. */
struct TxnRecord
{
    TxnId id = kNoTxn;
    TxnKind kind = TxnKind::Read;
    RequestClass cls = RequestClass::Miss;
    unsigned core = kNoCore;
    LineAddr line = 0;
    Cycle begin = 0;
    Cycle end = 0;
    std::uint64_t beginSeq = 0;
    std::uint64_t endSeq = 0;
    bool completed = false;
    std::vector<Event> events;

    /** Queue/service cycles accumulated from bursts, per device. */
    std::array<std::uint64_t, kNumDevices> queueCycles{};
    std::array<std::uint64_t, kNumDevices> serviceCycles{};
};

} // namespace accord::trace_event

#endif // ACCORD_COMMON_TRACE_EVENT_TRACE_EVENT_HPP

#include "common/event_queue.hpp"

#include "common/log.hpp"

namespace accord
{

void
EventQueue::scheduleAt(Cycle when, Callback callback)
{
    ACCORD_ASSERT(when >= now_,
                  "event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    events.push(Event{when, next_seq++, std::move(callback)});
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because pop() immediately discards the slot.
    auto &top = const_cast<Event &>(events.top());
    const Cycle when = top.when;
    Callback callback = std::move(top.callback);
    events.pop();
    ACCORD_CHECK(when >= now_,
                 "event time regressed (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
    now_ = when;
    ++executed_;
    callback();
    return true;
}

} // namespace accord

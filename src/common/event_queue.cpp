#include "common/event_queue.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace accord
{

EventQueue::EventQueue()
    : buckets_(kBuckets), occupancy_(kBuckets / 64, 0)
{
}

ACCORD_HOT EventQueue::Node *
EventQueue::allocNode()
{
    if (free_nodes_ == nullptr) {
        // accord-lint: allow(hot-alloc) arena growth is amortized; the
        // freelist serves the steady state allocation-free
        chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
        Node *chunk = chunks_.back().get();
        for (std::size_t i = 0; i < kChunkNodes; ++i) {
            chunk[i].next = free_nodes_;
            free_nodes_ = &chunk[i];
        }
    }
    Node *node = free_nodes_;
    free_nodes_ = node->next;
    node->next = nullptr;
    return node;
}

ACCORD_HOT void
EventQueue::freeNode(Node *node)
{
    node->next = free_nodes_;
    free_nodes_ = node;
}

ACCORD_HOT void
EventQueue::appendBucketed(Node *node)
{
    const std::size_t index = node->when & kMask;
    Bucket &bucket = buckets_[index];
    if (bucket.head == nullptr) {
        bucket.head = node;
        occupancy_[index / 64] |= std::uint64_t{1} << (index % 64);
    } else {
        bucket.tail->next = node;
    }
    bucket.tail = node;
    ++bucketed_;
}

ACCORD_HOT void
EventQueue::scheduleAt(Cycle when, Callback callback)
{
    ACCORD_ASSERT(when >= now_,
                  "event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    ++pending_;
    if (pending_ > occupancy_peak_)
        occupancy_peak_ = pending_;
    if (when - now_ < kBuckets) {
        Node *node = allocNode();
        node->when = when;
        node->cb = std::move(callback);
        appendBucketed(node);
        return;
    }
    ++overflow_spills_;
    overflow_.push_back(
        Overflow{when, overflow_seq_++, std::move(callback)});
    std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
}

ACCORD_HOT Cycle
EventQueue::nextBucketedCycle() const
{
    // All bucketed events lie in (now_, now_ + kBuckets), so circular
    // distance from now_ orders them by cycle: the first occupied
    // bucket after the cursor is the earliest pending cycle.
    const std::size_t start = (now_ + 1) & kMask;
    std::size_t word = start / 64;
    std::uint64_t bits =
        occupancy_[word] & (~std::uint64_t{0} << (start % 64));
    for (std::size_t scanned = 0; scanned <= occupancy_.size();
         ++scanned) {
        if (bits != 0) {
            const std::size_t index =
                word * 64
                + static_cast<std::size_t>(__builtin_ctzll(bits));
            const Cycle distance = (index - start) & kMask;
            return now_ + 1 + distance;
        }
        word = (word + 1) % occupancy_.size();
        bits = occupancy_[word];
    }
    panic("event queue: bucketed count positive but no occupied bucket");
}

ACCORD_HOT void
EventQueue::advance()
{
    // Every overflow event satisfies when >= migration-time now_ +
    // kBuckets, so the earliest bucketed cycle (always < now_ +
    // kBuckets) wins whenever the calendar is non-empty.
    Cycle next;
    if (bucketed_ > 0)
        next = nextBucketedCycle();
    else
        next = overflow_.front().when;
    ACCORD_CHECK(next > now_,
                 "event time regressed (%llu <= %llu)",
                 static_cast<unsigned long long>(next),
                 static_cast<unsigned long long>(now_));
    now_ = next;

    // Migrate everything the slid horizon now covers, in (when, seq)
    // order; target buckets are empty (no event for those cycles can
    // have bucketed before this advance), so FIFO order is preserved.
    while (!overflow_.empty()
           && overflow_.front().when - now_ < kBuckets) {
        std::pop_heap(overflow_.begin(), overflow_.end(),
                      OverflowLater{});
        Node *node = allocNode();
        node->when = overflow_.back().when;
        node->cb = std::move(overflow_.back().cb);
        overflow_.pop_back();
        appendBucketed(node);
    }
}

ACCORD_HOT bool
EventQueue::step()
{
    if (pending_ == 0)
        return false;
    if (buckets_[now_ & kMask].head == nullptr)
        advance();

    const std::size_t index = now_ & kMask;
    Bucket &bucket = buckets_[index];
    Node *node = bucket.head;
    ACCORD_CHECK(node->when == now_,
                 "bucket invariant broken (%llu != %llu)",
                 static_cast<unsigned long long>(node->when),
                 static_cast<unsigned long long>(now_));
    bucket.head = node->next;
    if (bucket.head == nullptr) {
        bucket.tail = nullptr;
        occupancy_[index / 64] &=
            ~(std::uint64_t{1} << (index % 64));
    }
    --pending_;
    --bucketed_;
    ++executed_;

    EventCallback callback = std::move(node->cb);
    freeNode(node);
    callback();
    return true;
}

} // namespace accord

/**
 * @file
 * Hierarchical metric registry: the observability backbone.
 *
 * Components keep owning their hot-path Counter/Ratio/Average/Histogram
 * members (common/stats.hpp) and, at construction, register them into a
 * MetricRegistry under dotted paths ("l4.lookup", "dram.ch0.row_buffer").
 * Registration stores a pointer; nothing touches the registry on the
 * hot path.  Sampling happens only at dump time: snapshot() reads every
 * registered metric into a flat, sorted path -> value map.
 *
 * Composite metrics expand into scalar leaves at registration:
 *
 *   Counter   p            -> p
 *   Ratio     p            -> p.hits, p.total, p.hit_rate
 *   Average   p            -> p.count, p.mean, p.min, p.max
 *   Histogram p            -> p.count, p.mean, p.p50, p.p95, p.p99
 *   raw uint64 / gauge fn  -> p
 *
 * Paths are lowercase [a-z0-9_] segments joined by '.'; duplicate or
 * malformed registrations are user errors and fatal() immediately, so
 * naming collisions surface at construction, not in a report diff.
 */

#ifndef ACCORD_COMMON_METRICS_REGISTRY_HPP
#define ACCORD_COMMON_METRICS_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace accord
{

/** Flat, sorted sample of a registry at one instant. */
class MetricSnapshot
{
  public:
    MetricSnapshot() = default;

    /** Sorted (path, value) pairs; construction enforces order. */
    explicit MetricSnapshot(
        std::vector<std::pair<std::string, double>> values);

    bool empty() const { return values_.size() == 0; }
    std::size_t size() const { return values_.size(); }

    /** Pointer to the value at `path`, or nullptr if unknown. */
    const double *find(const std::string &path) const;

    /** Value at `path`; fatal() if the path is unknown. */
    double at(const std::string &path) const;

    const std::vector<std::pair<std::string, double>> &values() const
        { return values_; }

  private:
    std::vector<std::pair<std::string, double>> values_;
};

/**
 * Epoch time-series of snapshots taken at monotonically increasing
 * stream positions (e.g. demand reads completed).  The path set is
 * fixed by the first recorded snapshot; later snapshots must match,
 * and positions must strictly increase — violations are simulator
 * bugs and fatal().
 */
class MetricSeries
{
  public:
    /** Record one epoch sample at `position` units into the run. */
    void record(std::uint64_t position, const MetricSnapshot &snapshot);

    bool empty() const { return positions_.size() == 0; }
    std::size_t size() const { return positions_.size(); }

    const std::vector<std::string> &paths() const { return paths_; }
    const std::vector<std::uint64_t> &positions() const
        { return positions_; }
    const std::vector<std::vector<double>> &samples() const
        { return samples_; }

    /** Value of `path` at epoch index `epoch`; fatal() if unknown. */
    double value(std::size_t epoch, const std::string &path) const;

  private:
    std::vector<std::string> paths_;
    std::vector<std::uint64_t> positions_;
    std::vector<std::vector<double>> samples_;
};

/** Hierarchical registry of component-owned metrics. */
class MetricRegistry
{
  public:
    using Gauge = std::function<double()>;

    MetricRegistry() = default;

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Register a Counter at `path`. */
    void addCounter(const std::string &path, const Counter &counter);

    /** Register a Ratio; expands to .hits/.total/.hit_rate. */
    void addRatio(const std::string &path, const Ratio &ratio);

    /** Register an Average; expands to .count/.mean/.min/.max. */
    void addAverage(const std::string &path, const Average &average);

    /** Register a Histogram; expands to .count/.mean/.p50/.p95/.p99. */
    void addHistogram(const std::string &path,
                      const Histogram &histogram);

    /** Register a raw unsigned event count. */
    void addValue(const std::string &path, const std::uint64_t &value);

    /** Register a derived metric sampled through a callback. */
    void addGauge(const std::string &path, Gauge gauge);

    /** True if `path` was registered (base path, not expanded leaf). */
    bool has(const std::string &path) const;

    /** Number of registered base metrics. */
    std::size_t size() const { return bases_.size(); }

    /** All scalar leaf paths, sorted. */
    std::vector<std::string> leafPaths() const;

    /** Sample one leaf path; fatal() if unknown. */
    double sample(const std::string &leaf_path) const;

    /** Sample every metric into a sorted snapshot. */
    MetricSnapshot snapshot() const;

    /** Join a prefix and a metric name ("l4" + "lookup"). */
    static std::string join(const std::string &prefix,
                            const std::string &name);

  private:
    enum class Leaf
    {
        CounterValue,
        RatioHits,
        RatioTotal,
        RatioRate,
        AverageCount,
        AverageMean,
        AverageMin,
        AverageMax,
        HistCount,
        HistMean,
        HistP50,
        HistP95,
        HistP99,
        RawValue,
        GaugeFn,
    };

    struct LeafEntry
    {
        Leaf kind;
        const void *ptr = nullptr;
        Gauge gauge;
    };

    /** Validate a base path and claim it; fatal() on reuse. */
    void claimBase(const std::string &path);

    /** Register one expanded leaf; fatal() on collision. */
    void addLeaf(const std::string &path, LeafEntry entry);

    static double sampleLeaf(const LeafEntry &entry);

    std::set<std::string> bases_;
    std::map<std::string, LeafEntry> leaves_;
};

} // namespace accord

#endif // ACCORD_COMMON_METRICS_REGISTRY_HPP

#include "common/metrics/registry.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace accord
{

namespace
{

/** Lowercase [a-z0-9_] segments joined by single dots. */
bool
validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    bool prev_dot = false;
    for (const char c : path) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
            || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

// --- MetricSnapshot --------------------------------------------------

MetricSnapshot::MetricSnapshot(
    std::vector<std::pair<std::string, double>> values)
    : values_(std::move(values))
{
    ACCORD_ASSERT(std::is_sorted(values_.begin(), values_.end(),
                                 [](const auto &a, const auto &b) {
                                     return a.first < b.first;
                                 }),
                  "snapshot values must be sorted by path");
}

const double *
MetricSnapshot::find(const std::string &path) const
{
    const auto it = std::lower_bound(
        values_.begin(), values_.end(), path,
        [](const auto &entry, const std::string &key) {
            return entry.first < key;
        });
    if (it == values_.end() || it->first != path)
        return nullptr;
    return &it->second;
}

double
MetricSnapshot::at(const std::string &path) const
{
    const double *value = find(path);
    if (value == nullptr)
        fatal("unknown metric path '%s'", path.c_str());
    return *value;
}

// --- MetricSeries ----------------------------------------------------

void
MetricSeries::record(std::uint64_t position,
                     const MetricSnapshot &snapshot)
{
    if (paths_.empty() && samples_.empty()) {
        paths_.reserve(snapshot.size());
        for (const auto &[path, value] : snapshot.values())
            paths_.push_back(path);
    } else {
        ACCORD_ASSERT(snapshot.size() == paths_.size(),
                      "epoch snapshot path set changed mid-series");
        ACCORD_ASSERT(positions_.empty()
                          || position > positions_.back(),
                      "epoch positions must strictly increase");
    }
    positions_.push_back(position);
    std::vector<double> sample;
    sample.reserve(snapshot.size());
    for (const auto &[path, value] : snapshot.values())
        sample.push_back(value);
    samples_.push_back(std::move(sample));
}

double
MetricSeries::value(std::size_t epoch, const std::string &path) const
{
    ACCORD_ASSERT(epoch < samples_.size(), "epoch index out of range");
    const auto it =
        std::lower_bound(paths_.begin(), paths_.end(), path);
    if (it == paths_.end() || *it != path)
        fatal("unknown series path '%s'", path.c_str());
    return samples_[epoch]
                   [static_cast<std::size_t>(it - paths_.begin())];
}

// --- MetricRegistry --------------------------------------------------

std::string
MetricRegistry::join(const std::string &prefix, const std::string &name)
{
    if (prefix.empty())
        return name;
    if (name.empty())
        return prefix;
    return prefix + "." + name;
}

void
MetricRegistry::claimBase(const std::string &path)
{
    if (!validPath(path))
        fatal("invalid metric path '%s' (want lowercase [a-z0-9_] "
              "segments joined by dots)",
              path.c_str());
    if (!bases_.insert(path).second)
        fatal("duplicate metric registration for path '%s'",
              path.c_str());
}

void
MetricRegistry::addLeaf(const std::string &path, LeafEntry entry)
{
    if (!leaves_.emplace(path, std::move(entry)).second)
        fatal("metric leaf path collision at '%s'", path.c_str());
}

void
MetricRegistry::addCounter(const std::string &path,
                           const Counter &counter)
{
    claimBase(path);
    addLeaf(path, {Leaf::CounterValue, &counter, nullptr});
}

void
MetricRegistry::addRatio(const std::string &path, const Ratio &ratio)
{
    claimBase(path);
    addLeaf(path + ".hits", {Leaf::RatioHits, &ratio, nullptr});
    addLeaf(path + ".total", {Leaf::RatioTotal, &ratio, nullptr});
    addLeaf(path + ".hit_rate", {Leaf::RatioRate, &ratio, nullptr});
}

void
MetricRegistry::addAverage(const std::string &path,
                           const Average &average)
{
    claimBase(path);
    addLeaf(path + ".count", {Leaf::AverageCount, &average, nullptr});
    addLeaf(path + ".mean", {Leaf::AverageMean, &average, nullptr});
    addLeaf(path + ".min", {Leaf::AverageMin, &average, nullptr});
    addLeaf(path + ".max", {Leaf::AverageMax, &average, nullptr});
}

void
MetricRegistry::addHistogram(const std::string &path,
                             const Histogram &histogram)
{
    claimBase(path);
    addLeaf(path + ".count", {Leaf::HistCount, &histogram, nullptr});
    addLeaf(path + ".mean", {Leaf::HistMean, &histogram, nullptr});
    addLeaf(path + ".p50", {Leaf::HistP50, &histogram, nullptr});
    addLeaf(path + ".p95", {Leaf::HistP95, &histogram, nullptr});
    addLeaf(path + ".p99", {Leaf::HistP99, &histogram, nullptr});
}

void
MetricRegistry::addValue(const std::string &path,
                         const std::uint64_t &value)
{
    claimBase(path);
    addLeaf(path, {Leaf::RawValue, &value, nullptr});
}

void
MetricRegistry::addGauge(const std::string &path, Gauge gauge)
{
    ACCORD_ASSERT(gauge != nullptr, "null gauge for '%s'",
                  path.c_str());
    claimBase(path);
    addLeaf(path, {Leaf::GaugeFn, nullptr, std::move(gauge)});
}

bool
MetricRegistry::has(const std::string &path) const
{
    return bases_.count(path) > 0;
}

std::vector<std::string>
MetricRegistry::leafPaths() const
{
    std::vector<std::string> paths;
    paths.reserve(leaves_.size());
    for (const auto &[path, entry] : leaves_)
        paths.push_back(path);
    return paths;
}

double
MetricRegistry::sampleLeaf(const LeafEntry &entry)
{
    switch (entry.kind) {
    case Leaf::CounterValue:
        return static_cast<double>(
            static_cast<const Counter *>(entry.ptr)->value());
    case Leaf::RatioHits:
        return static_cast<double>(
            static_cast<const Ratio *>(entry.ptr)->hits());
    case Leaf::RatioTotal:
        return static_cast<double>(
            static_cast<const Ratio *>(entry.ptr)->total());
    case Leaf::RatioRate:
        return static_cast<const Ratio *>(entry.ptr)->rate();
    case Leaf::AverageCount:
        return static_cast<double>(
            static_cast<const Average *>(entry.ptr)->count());
    case Leaf::AverageMean:
        return static_cast<const Average *>(entry.ptr)->mean();
    case Leaf::AverageMin:
        return static_cast<const Average *>(entry.ptr)->min();
    case Leaf::AverageMax:
        return static_cast<const Average *>(entry.ptr)->max();
    case Leaf::HistCount:
        return static_cast<double>(
            static_cast<const Histogram *>(entry.ptr)->count());
    case Leaf::HistMean:
        return static_cast<const Histogram *>(entry.ptr)->mean();
    case Leaf::HistP50:
        return static_cast<double>(
            static_cast<const Histogram *>(entry.ptr)->percentile(0.50));
    case Leaf::HistP95:
        return static_cast<double>(
            static_cast<const Histogram *>(entry.ptr)->percentile(0.95));
    case Leaf::HistP99:
        return static_cast<double>(
            static_cast<const Histogram *>(entry.ptr)->percentile(0.99));
    case Leaf::RawValue:
        return static_cast<double>(
            *static_cast<const std::uint64_t *>(entry.ptr));
    case Leaf::GaugeFn:
        return entry.gauge();
    }
    panic("unreachable metric leaf kind");
}

double
MetricRegistry::sample(const std::string &leaf_path) const
{
    const auto it = leaves_.find(leaf_path);
    if (it == leaves_.end())
        fatal("unknown metric path '%s'", leaf_path.c_str());
    return sampleLeaf(it->second);
}

MetricSnapshot
MetricRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> values;
    values.reserve(leaves_.size());
    for (const auto &[path, entry] : leaves_)
        values.emplace_back(path, sampleLeaf(entry));
    return MetricSnapshot(std::move(values));
}

} // namespace accord

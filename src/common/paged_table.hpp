/**
 * @file
 * Paged struct-of-arrays storage layer for per-set cache state.
 *
 * Every large per-set structure in the simulator (tag store, MRU
 * table, partial tags, DCP directory, LRU stamps) is a flat array
 * indexed by slot.  At 1/128 bench scale a dense vector is ideal; at
 * full gigascale (4GB cache = 64M lines) eager dense allocation costs
 * gigabytes of host RSS before the first access retires.  This layer
 * makes the representation pluggable:
 *
 *  - Dense: one eagerly allocated vector, zero indirection.
 *  - Paged: fixed-size pages materialized on first write; reads of
 *    never-written slots return the fill value without allocating.
 *
 * Both modes expose identical semantics — a slot reads as the fill
 * value until written — so simulation results are byte-identical
 * across backends (enforced by check_refactor_equivalence.sh at
 * rtol 0).  Resident-page/byte accounting feeds the footprint gauges
 * in SystemMetrics and telemetry heartbeats.
 *
 * Purity contract: read() is the ACCORD_HOT unchecked fast path and
 * never allocates.  materializeSlot()/ensurePage() are the only
 * allocation seams; the analyzer's hot-paged-materialize rule bans
 * them from ACCORD_HOT functions so page materialization can never
 * silently land on the timed read path.
 */

#ifndef ACCORD_COMMON_PAGED_TABLE_HPP
#define ACCORD_COMMON_PAGED_TABLE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace accord
{

/** Storage policy of a PagedColumn. */
enum class StorageMode : std::uint8_t
{
    Dense,  ///< one eager allocation, no page indirection
    Paged,  ///< fixed-size pages materialized on first write
};

/**
 * Slot-count threshold above which autoStorageMode() picks Paged.
 * 4M slots keeps every 1/128-scale bench dense (32MB cache = 512K
 * lines) while full-scale 4GB runs (64M lines) go paged.
 */
inline constexpr std::uint64_t pagedStorageThreshold = 1ULL << 22;

/** Resolve the backend for a table of `slots` entries. */
constexpr StorageMode
autoStorageMode(std::uint64_t slots)
{
    return slots >= pagedStorageThreshold ? StorageMode::Paged
                                          : StorageMode::Dense;
}

/**
 * One column of a struct-of-arrays table: a flat array of `T` indexed
 * by slot, stored dense or in lazily-materialized fixed-size pages.
 * Unwritten slots read as the fill value in both modes.
 */
template <typename T> class PagedColumn
{
  public:
    /** Slots per page (power of two so page math is shifts). */
    static constexpr std::uint64_t kPageSlots = 4096;

    PagedColumn() = default;

    PagedColumn(std::uint64_t slots, StorageMode mode, T fill = T{})
    {
        reset(slots, mode, fill);
    }

    /** Drop all state and reshape the column. */
    void
    reset(std::uint64_t slots, StorageMode mode, T fill = T{})
    {
        slots_ = slots;
        mode_ = mode;
        fill_ = fill;
        dense_.clear();
        pages_.clear();
        resident_pages_ = 0;
        if (mode_ == StorageMode::Dense) {
            dense_.assign(static_cast<std::size_t>(slots_), fill_);
        } else {
            pages_.resize(static_cast<std::size_t>(
                (slots_ + kPageSlots - 1) / kPageSlots));
        }
    }

    /**
     * Unchecked fast-path read (bounds validated only when checks are
     * compiled in).  Never allocates: a non-resident page reads as the
     * fill value.
     */
    ACCORD_HOT T
    read(std::uint64_t slot) const
    {
        ACCORD_CHECK(slot < slots_, "slot %llu outside column of %llu",
                     static_cast<unsigned long long>(slot),
                     static_cast<unsigned long long>(slots_));
        if (mode_ == StorageMode::Dense)
            return dense_[static_cast<std::size_t>(slot)];
        const T *page =
            pages_[static_cast<std::size_t>(slot / kPageSlots)].get();
        return page ? page[slot % kPageSlots] : fill_;
    }

    /** Always-checked read for tests and audits. */
    T
    at(std::uint64_t slot) const
    {
        ACCORD_ASSERT(slot < slots_, "slot %llu outside column of %llu",
                      static_cast<unsigned long long>(slot),
                      static_cast<unsigned long long>(slots_));
        return read(slot);
    }

    /**
     * Mutable slot access, materializing its page if needed.  This is
     * the allocation seam: never call from ACCORD_HOT code without a
     * hot-paged-materialize allow (see tools/accord_analyzer).
     */
    T &
    materializeSlot(std::uint64_t slot)
    {
        ACCORD_CHECK(slot < slots_, "slot %llu outside column of %llu",
                     static_cast<unsigned long long>(slot),
                     static_cast<unsigned long long>(slots_));
        if (mode_ == StorageMode::Dense)
            return dense_[static_cast<std::size_t>(slot)];
        return ensurePage(slot / kPageSlots)[slot % kPageSlots];
    }

    /** Write a slot, materializing its page if needed. */
    void
    write(std::uint64_t slot, T value)
    {
        materializeSlot(slot) = value;
    }

    std::uint64_t size() const { return slots_; }
    StorageMode mode() const { return mode_; }
    T fill() const { return fill_; }

    /** Page index covering a slot. */
    static std::uint64_t pageOf(std::uint64_t slot)
    {
        return slot / kPageSlots;
    }

    /** Pages the column spans (dense mode reports one logical page). */
    std::uint64_t
    pageCount() const
    {
        return mode_ == StorageMode::Dense
            ? (slots_ ? 1 : 0)
            : pages_.size();
    }

    /** True when reads of the page can differ from the fill value. */
    bool
    pageResident(std::uint64_t page) const
    {
        if (mode_ == StorageMode::Dense)
            return slots_ != 0;
        return pages_[static_cast<std::size_t>(page)] != nullptr;
    }

    /**
     * First slot >= `slot` whose page is resident, or size().  Audit
     * sweeps use this to skip whole never-written pages (their slots
     * all read as the fill value, which violates no invariant).
     */
    std::uint64_t
    nextResidentSlot(std::uint64_t slot) const
    {
        if (mode_ == StorageMode::Dense)
            return slot;
        while (slot < slots_
               && pages_[static_cast<std::size_t>(pageOf(slot))]
                   == nullptr)
            slot = (pageOf(slot) + 1) * kPageSlots;
        return slot < slots_ ? slot : slots_;
    }

    /** Materialized pages (dense counts its single allocation). */
    std::uint64_t
    residentPages() const
    {
        return mode_ == StorageMode::Dense ? pageCount()
                                           : resident_pages_;
    }

    /** Host bytes currently backing slot storage. */
    std::uint64_t
    residentBytes() const
    {
        if (mode_ == StorageMode::Dense)
            return slots_ * sizeof(T);
        return resident_pages_ * kPageSlots * sizeof(T);
    }

  private:
    /** Materialize and return a page (the allocation seam). */
    T *
    ensurePage(std::uint64_t page)
    {
        auto &slot = pages_[static_cast<std::size_t>(page)];
        if (!slot) {
            slot = std::make_unique<T[]>(kPageSlots);
            for (std::uint64_t i = 0; i < kPageSlots; ++i)
                slot[i] = fill_;
            ++resident_pages_;
        }
        return slot.get();
    }

    std::uint64_t slots_ = 0;
    StorageMode mode_ = StorageMode::Dense;
    T fill_ = T{};
    std::vector<T> dense_;
    std::vector<std::unique_ptr<T[]>> pages_;
    std::uint64_t resident_pages_ = 0;
};

/**
 * Sparse paged map from a 64-bit key to a small unsigned value,
 * built for the DCP directory: keys are line addresses (sparse over
 * the whole PCM address space) and values are way ids.  Keys live in
 * fixed-size pages keyed by key/kPageSlots in an ordered map, so
 * iteration order — and therefore entries() — is deterministic by
 * construction, and untouched regions of the key space cost nothing.
 */
class SparsePagedMap
{
  public:
    static constexpr std::uint64_t kPageSlots = 4096;

    /** Absent-slot sentinel; stored values must stay below it. */
    static constexpr std::uint8_t kAbsent = 0xff;

    /** Value recorded for `key`, if any. */
    std::optional<unsigned>
    lookup(std::uint64_t key) const
    {
        const auto it = pages_.find(key / kPageSlots);
        if (it == pages_.end())
            return std::nullopt;
        const std::uint8_t value = it->second[key % kPageSlots];
        if (value == kAbsent)
            return std::nullopt;
        return value;
    }

    /** Record (or update) the value for `key`. */
    void
    record(std::uint64_t key, unsigned value)
    {
        ACCORD_ASSERT(value < kAbsent,
                      "sparse map value %u collides with the absent "
                      "sentinel",
                      value);
        std::uint8_t &slot = ensurePage(key / kPageSlots)
            [key % kPageSlots];
        if (slot == kAbsent)
            ++size_;
        slot = static_cast<std::uint8_t>(value);
    }

    /** Drop `key` if present. */
    void
    erase(std::uint64_t key)
    {
        const auto it = pages_.find(key / kPageSlots);
        if (it == pages_.end())
            return;
        std::uint8_t &slot = it->second[key % kPageSlots];
        if (slot != kAbsent) {
            slot = kAbsent;
            --size_;
        }
    }

    /** Recorded keys. */
    std::uint64_t size() const { return size_; }

    /** All (key, value) entries, ordered by key. */
    std::vector<std::pair<std::uint64_t, unsigned>>
    entries() const
    {
        std::vector<std::pair<std::uint64_t, unsigned>> out;
        out.reserve(static_cast<std::size_t>(size_));
        for (const auto &page : pages_) {
            const std::uint64_t base = page.first * kPageSlots;
            for (std::uint64_t i = 0; i < kPageSlots; ++i) {
                if (page.second[i] != kAbsent)
                    out.emplace_back(base + i, page.second[i]);
            }
        }
        return out;
    }

    std::uint64_t residentPages() const { return pages_.size(); }

    std::uint64_t
    residentBytes() const
    {
        return pages_.size() * kPageSlots * sizeof(std::uint8_t);
    }

  private:
    /** Materialize and return a page (the allocation seam). */
    std::uint8_t *
    ensurePage(std::uint64_t page)
    {
        auto &slot = pages_[page];
        if (!slot) {
            slot = std::make_unique<std::uint8_t[]>(kPageSlots);
            for (std::uint64_t i = 0; i < kPageSlots; ++i)
                slot[i] = kAbsent;
        }
        return slot.get();
    }

    std::map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> pages_;
    std::uint64_t size_ = 0;
};

} // namespace accord

#endif // ACCORD_COMMON_PAGED_TABLE_HPP

#include "common/invariant_auditor.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/log.hpp"

namespace accord
{

void
InvariantAuditor::fail(const char *rule, const char *fmt, ...)
{
    char detail[512];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(detail, sizeof detail, fmt, args);
    va_end(args);
    violations_.push_back(Violation{rule, detail});
}

bool
InvariantAuditor::hasRule(std::string_view rule) const
{
    for (const Violation &v : violations_) {
        if (v.rule == rule)
            return true;
    }
    return false;
}

std::string
InvariantAuditor::report() const
{
    std::string text;
    for (const Violation &v : violations_) {
        text += v.rule;
        text += ": ";
        text += v.detail;
        text += '\n';
    }
    return text;
}

void
InvariantAuditor::enforce(const char *context) const
{
    if (clean())
        return;
    panic("invariant audit failed (%s): %zu violation(s)\n%s", context,
          count(), report().c_str());
}

} // namespace accord

#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace accord
{

std::string
canonicalNumber(double value)
{
    if (value == 0.0)
        return "0";
    if (std::isnan(value))
        return "null";
    if (std::isinf(value))
        return value > 0 ? "1e999" : "-1e999";

    char buf[40];
    if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof buf, "%.12g", value);
    }
    return buf;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::element()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_elements_.empty()) {
        if (has_elements_.back())
            out_ += ',';
        has_elements_.back() = true;
        out_ += '\n';
        out_.append(2 * has_elements_.size(), ' ');
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    element();
    out_ += '{';
    has_elements_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    ACCORD_ASSERT(!has_elements_.empty() && !after_key_,
                  "endObject with no open scope");
    const bool any = has_elements_.back();
    has_elements_.pop_back();
    if (any) {
        out_ += '\n';
        out_.append(2 * has_elements_.size(), ' ');
    }
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    element();
    out_ += '[';
    has_elements_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    ACCORD_ASSERT(!has_elements_.empty() && !after_key_,
                  "endArray with no open scope");
    const bool any = has_elements_.back();
    has_elements_.pop_back();
    if (any) {
        out_ += '\n';
        out_.append(2 * has_elements_.size(), ' ');
    }
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    ACCORD_ASSERT(!has_elements_.empty() && !after_key_,
                  "key() outside an object");
    element();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\": ";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    element();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    element();
    out_ += canonicalNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    element();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    element();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    element();
    out_ += flag ? "true" : "false";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    ACCORD_ASSERT(has_elements_.empty() && !after_key_,
                  "str() on an unfinished JSON document");
    return out_;
}

} // namespace accord

/**
 * @file
 * Bit-manipulation helpers shared by address-mapping code.
 */

#ifndef ACCORD_COMMON_BITS_HPP
#define ACCORD_COMMON_BITS_HPP

#include <bit>
#include <cstdint>

namespace accord
{

/** Extract bits [lo, lo+width) of value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned width)
{
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** True iff value is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; requires value > 0. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** Ceil of log2; requires value > 0. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return value <= 1 ? 0 : floorLog2(value - 1) + 1;
}

/** Round value up to the next multiple of a power-of-two boundary. */
constexpr std::uint64_t
roundUpPow2(std::uint64_t value, std::uint64_t boundary)
{
    return (value + boundary - 1) & ~(boundary - 1);
}

/**
 * Mix the bits of a 64-bit value (SplitMix64 finalizer).
 *
 * Used wherever a cheap, high-quality, stateless hash of an address is
 * needed (e.g. skew hashes, synthetic trace scrambling).
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace accord

#endif // ACCORD_COMMON_BITS_HPP

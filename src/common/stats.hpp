/**
 * @file
 * Lightweight statistics primitives.
 *
 * Components own Counter/Ratio/Histogram members and register them in a
 * StatSet for dumping.  Nothing here allocates on the hot path.
 */

#ifndef ACCORD_COMMON_STATS_HPP
#define ACCORD_COMMON_STATS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace accord
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t amount = 1) { count_ += amount; }
    void reset() { count_ = 0; }
    std::uint64_t value() const { return count_; }

  private:
    std::uint64_t count_ = 0;
};

/** Hit/total style ratio; avoids divide-by-zero on empty runs. */
class Ratio
{
  public:
    void hit() { ++hits_; ++total_; }
    void miss() { ++total_; }
    void add(bool was_hit) { was_hit ? hit() : miss(); }
    void reset() { hits_ = 0; total_ = 0; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return total_ - hits_; }
    std::uint64_t total() const { return total_; }

    /** Fraction of hits in [0,1]; 0 when empty. */
    double
    rate() const
    {
        return total_ == 0
            ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total_);
    }

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t total_ = 0;
};

/** Running mean/min/max of a scalar sample stream. */
class Average
{
  public:
    void sample(double value);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram with saturating overflow bucket. */
class Histogram
{
  public:
    /** @param num_buckets bucket count; @param width per-bucket width. */
    Histogram(unsigned num_buckets, std::uint64_t width);

    void sample(std::uint64_t value);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    unsigned numBuckets() const
        { return static_cast<unsigned>(buckets_.size()); }
    double mean() const;

    /** Smallest value v such that at least fraction of samples are <= v. */
    std::uint64_t percentile(double fraction) const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t width_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** Geometric mean of a set of positive values (e.g. per-workload speedups). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 when empty. */
double amean(const std::vector<double> &values);

} // namespace accord

#endif // ACCORD_COMMON_STATS_HPP

/**
 * @file
 * Error reporting helpers, modeled on gem5's panic()/fatal() split.
 *
 * panic() marks simulator bugs ("should never happen"); fatal() marks
 * user errors such as inconsistent configuration.  Both accept
 * printf-style formatting.
 */

#ifndef ACCORD_COMMON_LOG_HPP
#define ACCORD_COMMON_LOG_HPP

#include <cstdarg>
#include <string>

namespace accord
{

/** Abort with a message: a simulator bug was detected. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: the configuration or input is invalid. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message on stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Backend of ACCORD_ASSERT; aborts with condition + context. */
[[noreturn]] void assertFail(const char *cond, const char *file,
                             int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * While alive, warn()/inform() on the constructing thread append to
 * an in-memory buffer instead of writing to stderr.  Parallel sweep
 * workers wrap each simulation in a capture so per-run output can be
 * replayed in deterministic job order once all runs finish.  Captures
 * nest; panic()/fatal() always hit stderr directly because they do
 * not return.
 */
class ScopedLogCapture
{
  public:
    ScopedLogCapture();
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;

    /** Captured text so far (each message ends in '\n'). */
    const std::string &text() const { return buffer; }

    /** Move the captured text out, leaving the buffer empty. */
    std::string take() { return std::move(buffer); }

  private:
    std::string buffer;
    std::string *previous;
};

/** Write previously captured log text to stderr in one call. */
void emitCapturedLog(const std::string &text);

/**
 * panic() with a message unless the condition holds.
 *
 * ACCORD_ASSERT is always compiled in: it guards cheap preconditions
 * (argument bounds, API contracts) whose cost is a predictable branch.
 */
#define ACCORD_ASSERT(cond, ...)                                         \
    do {                                                                 \
        if (!(cond))                                                     \
            ::accord::assertFail(#cond, __FILE__, __LINE__,              \
                                 __VA_ARGS__);                           \
    } while (0)

/**
 * 1 when heavyweight invariant checking is compiled in: Debug builds
 * (no NDEBUG) and any build configured with -DACCORD_CHECKS=ON or
 * -DACCORD_SANITIZE=... (both define ACCORD_ENABLE_CHECKS).
 */
#if defined(ACCORD_ENABLE_CHECKS) || !defined(NDEBUG)
#define ACCORD_CHECKS_ENABLED 1
#else
#define ACCORD_CHECKS_ENABLED 0
#endif

/**
 * Like ACCORD_ASSERT, but for checks too hot or too expensive for
 * release builds (per-access index validation, periodic whole-model
 * audits).  Compiles to nothing unless ACCORD_CHECKS_ENABLED; the
 * dead branch keeps the condition and arguments type-checked and
 * referenced so no -Wunused warnings appear in either mode.
 */
#if ACCORD_CHECKS_ENABLED
#define ACCORD_CHECK(cond, ...) ACCORD_ASSERT(cond, __VA_ARGS__)
#else
#define ACCORD_CHECK(cond, ...)                                          \
    do {                                                                 \
        if (false)                                                       \
            ACCORD_ASSERT(cond, __VA_ARGS__);                            \
    } while (0)
#endif

} // namespace accord

#endif // ACCORD_COMMON_LOG_HPP

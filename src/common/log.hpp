/**
 * @file
 * Error reporting helpers, modeled on gem5's panic()/fatal() split.
 *
 * panic() marks simulator bugs ("should never happen"); fatal() marks
 * user errors such as inconsistent configuration.  Both accept
 * printf-style formatting.
 */

#ifndef ACCORD_COMMON_LOG_HPP
#define ACCORD_COMMON_LOG_HPP

#include <cstdarg>

namespace accord
{

/** Abort with a message: a simulator bug was detected. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: the configuration or input is invalid. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message on stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Backend of ACCORD_ASSERT; aborts with condition + context. */
[[noreturn]] void assertFail(const char *cond, const char *file,
                             int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** panic() with a message unless the condition holds. */
#define ACCORD_ASSERT(cond, ...)                                         \
    do {                                                                 \
        if (!(cond))                                                     \
            ::accord::assertFail(#cond, __FILE__, __LINE__,              \
                                 __VA_ARGS__);                           \
    } while (0)

} // namespace accord

#endif // ACCORD_COMMON_LOG_HPP

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator (probabilistic way
 * steering, random replacement, synthetic traces) draws from an
 * explicitly seeded Rng instance so that runs are reproducible and
 * tests can assert exact outcomes.  The generator is xoshiro256**,
 * seeded via SplitMix64 as its authors recommend.
 */

#ifndef ACCORD_COMMON_RNG_HPP
#define ACCORD_COMMON_RNG_HPP

#include <array>
#include <cstdint>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord
{

/** xoshiro256** pseudo-random generator with convenience helpers. */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 1)
    {
        // SplitMix64 stream expands the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            word = mix64(x);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ACCORD_ASSERT(bound > 0, "Rng::below needs a positive bound");
        // Lemire's nearly-divisionless bounded sampling (without the
        // rejection loop; the bias is < 2^-64 * bound, irrelevant here).
        const std::uint64_t x = next();
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with the given probability. */
    bool
    chance(double probability)
    {
        return uniform() < probability;
    }

    /** Fork a statistically independent child stream. */
    Rng
    fork()
    {
        return Rng(next());
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state{};
};

} // namespace accord

#endif // ACCORD_COMMON_RNG_HPP

#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hpp"

namespace accord
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    ACCORD_ASSERT(!header_.empty(), "table needs at least one column");
}

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    ACCORD_ASSERT(!rows_.empty(), "call row() before cell()");
    ACCORD_ASSERT(rows_.back().size() < header_.size(),
                  "too many cells in row");
    rows_.back().push_back(text);
    return *this;
}

TextTable &
TextTable::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return cell(std::string(buf));
}

TextTable &
TextTable::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
    return cell(std::string(buf));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            out << (c == 0 ? "" : "  ");
            out << text;
            out << std::string(widths[c] - text.size(), ' ');
        }
        out << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace accord

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace accord
{

void
Average::sample(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

void
Average::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Average::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Histogram::Histogram(unsigned num_buckets, std::uint64_t width)
    : buckets_(num_buckets, 0), width_(width)
{
    ACCORD_ASSERT(num_buckets > 0 && width > 0,
                  "histogram shape must be non-empty");
}

void
Histogram::sample(std::uint64_t value)
{
    const std::uint64_t index =
        std::min<std::uint64_t>(value / width_, buckets_.size() - 1);
    ++buckets_[index];
    ++count_;
    sum_ += static_cast<double>(value);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (count_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (i + 1) * width_ - 1;
    }
    return buckets_.size() * width_ - 1;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values) {
        ACCORD_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace accord

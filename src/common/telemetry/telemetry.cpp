#include "common/telemetry/telemetry.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "common/log.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace accord::telemetry
{

namespace
{

/**
 * Compact single-line JSON object builder.  The run-report JsonWriter
 * pretty-prints multi-line documents; telemetry needs one record per
 * line so streams stay appendable, tail-able, and truncation-safe.
 * Field order is the emission order, which is fixed per record type —
 * that is what makes the canonical portion of two streams comparable
 * byte-for-byte.
 */
class Line
{
  public:
    Line() : out_("{") {}

    Line &
    field(const char *key, const std::string &value)
    {
        return raw(key, "\"" + jsonEscape(value) + "\"");
    }

    Line &
    field(const char *key, const char *value)
    {
        return field(key, std::string(value));
    }

    Line &
    field(const char *key, std::uint64_t value)
    {
        return raw(key, std::to_string(value));
    }

    Line &
    field(const char *key, double value)
    {
        return raw(key, canonicalNumber(value));
    }

    /** Splice a pre-rendered JSON value (array/object) under `key`. */
    Line &
    raw(const char *key, const std::string &json)
    {
        if (out_.size() > 1)
            out_ += ',';
        out_ += '"';
        out_ += key;
        out_ += "\":";
        out_ += json;
        return *this;
    }

    std::string
    str() const
    {
        return out_ + "}";
    }

  private:
    std::string out_;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    // accord-lint: allow(wallclock) host-resource profiling is this
    // module's purpose; everything derived from it stays in the
    // volatile partition
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The volatile ("host") object every record type shares. */
std::string
hostJson(double wall_s, std::uint64_t rss_kb, std::uint64_t peak_rss_kb,
         double events_per_sec, double eta_s)
{
    return Line()
        .field("wall_s", wall_s)
        .field("rss_kb", rss_kb)
        .field("peak_rss_kb", peak_rss_kb)
        .field("events_per_sec", events_per_sec)
        .field("eta_s", eta_s)
        .str();
}

/** Canonical gauge fields shared by heartbeat and end records. */
void
addSampleFields(Line &line, const HeartbeatSample &sample)
{
    const double hit_rate = sample.reads > 0
        ? static_cast<double>(sample.readHits)
            / static_cast<double>(sample.reads)
        : 0.0;
    line.field("phase", sample.phase)
        .field("position", sample.position)
        .field("cycles", static_cast<std::uint64_t>(sample.cycles))
        .field("reads", sample.reads)
        .field("read_hits", sample.readHits)
        .field("hit_rate", hit_rate)
        .field("eq_pending", sample.eqPending)
        .field("eq_executed", sample.eqExecuted)
        .field("eq_occupancy_peak", sample.eqOccupancyPeak)
        .field("eq_overflow_spills", sample.eqOverflowSpills)
        .field("pool_live", sample.poolLive)
        .field("pool_block_bytes", sample.poolBlockBytes)
        .field("state_bytes", sample.stateBytes);
}

} // namespace

std::uint64_t
currentRssKb()
{
#if defined(__linux__)
    // One descriptor for the process lifetime, re-read with pread():
    // heartbeats sample RSS at cadence, and fopen-per-sample is the
    // dominant cost of a heartbeat on loaded hosts.
    static const int fd = ::open("/proc/self/statm", O_RDONLY);
    if (fd < 0)
        return 0;
    char buf[64];
    const ssize_t n = ::pread(fd, buf, sizeof buf - 1, 0);
    if (n <= 0)
        return 0;
    buf[n] = '\0';
    unsigned long long vm_pages = 0;
    unsigned long long rss_pages = 0;
    if (std::sscanf(buf, "%llu %llu", &vm_pages, &rss_pages) != 2)
        return 0;
    static const long page = ::sysconf(_SC_PAGESIZE);
    return rss_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096)
        / 1024;
#else
    return 0;
#endif
}

// ---------------------------------------------------------------------
// RunProfiler
// ---------------------------------------------------------------------

void
RunProfiler::enterPhase(const std::string &name, std::uint64_t position,
                        Cycle cycles)
{
    close(position, cycles);
    Phase phase;
    phase.name = name;
    phase.startUnits = position;
    phase.startCycles = cycles;
    phases_.push_back(std::move(phase));
    open_ = true;
    // accord-lint: allow(wallclock) per-phase host-time attribution;
    // wall durations stay in the volatile partition
    phase_start_ = std::chrono::steady_clock::now();
}

void
RunProfiler::close(std::uint64_t position, Cycle cycles)
{
    if (!open_)
        return;
    Phase &phase = phases_.back();
    phase.units = position - phase.startUnits;
    phase.cycles = cycles - phase.startCycles;
    phase.wallS = secondsSince(phase_start_);
    open_ = false;
}

std::vector<double>
RunProfiler::epochDeltas(const MetricSeries &series,
                         const std::string &path)
{
    const auto &paths = series.paths();
    if (std::find(paths.begin(), paths.end(), path) == paths.end())
        return {};
    std::vector<double> deltas;
    deltas.reserve(series.size());
    double prev = 0.0;
    for (std::size_t epoch = 0; epoch < series.size(); ++epoch) {
        const double value = series.value(epoch, path);
        deltas.push_back(value - prev);
        prev = value;
    }
    return deltas;
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

FlightRecorder::FlightRecorder(const TelemetryConfig &config,
                               const Header &header)
    : config_(config),
      interval_(config.resolvedInterval(header.totalUnits)),
      next_at_(config.resolvedInterval(header.totalUnits)),
      total_units_(header.totalUnits)
{
    ACCORD_ASSERT(config_.enabled(),
                  "FlightRecorder needs an output path");
    out_ = std::fopen(config_.path.c_str(), "w");
    if (out_ == nullptr)
        fatal("telemetry: cannot open '%s' for writing",
              config_.path.c_str());
    // accord-lint: allow(wallclock) stream epoch for host profiling
    start_ = std::chrono::steady_clock::now();

    Line line;
    line.field("t", "hdr")
        .field("schema", kSchema)
        .field("units", header.units)
        .field("interval", interval_)
        .field("total_units", total_units_)
        .field("spec", header.spec)
        .raw("volatile",
             "[\"wall_s\",\"rss_kb\",\"peak_rss_kb\","
             "\"events_per_sec\",\"eta_s\"]")
        .field("volatile_container", "host");
    writeLine(line.str());
}

FlightRecorder::~FlightRecorder()
{
    // A recorder destroyed mid-run (exception unwind) still closes its
    // stream cleanly at the last observed state.
    if (!finished_)
        finish(last_sample_, MetricSeries{}, {});
    if (out_ != nullptr)
        std::fclose(out_);
}

FlightRecorder::HostSample
FlightRecorder::sampleHost(const HeartbeatSample &sample)
{
    HostSample host;
    host.wallS = secondsSince(start_);
    host.rssKb = currentRssKb();
    peak_rss_kb_ = std::max(peak_rss_kb_, host.rssKb);
    host.peakRssKb = peak_rss_kb_;
    // Host throughput: executed events per wall second for timed runs;
    // functional runs have no events, so fall back to progress units.
    const auto work = static_cast<double>(
        sample.eqExecuted > 0 ? sample.eqExecuted : sample.position);
    host.eventsPerSec = host.wallS > 0.0 ? work / host.wallS : 0.0;
    if (total_units_ > 0 && sample.position > 0
        && sample.position < total_units_) {
        host.etaS = host.wallS
            * static_cast<double>(total_units_ - sample.position)
            / static_cast<double>(sample.position);
    }
    return host;
}

void
FlightRecorder::heartbeat(const HeartbeatSample &sample)
{
    if (finished_)
        return;
    last_sample_ = sample;
    const HostSample host = sampleHost(sample);

    Line line;
    line.field("t", "hb").field("seq", ++seq_);
    addSampleFields(line, sample);
    line.raw("host",
             hostJson(host.wallS, host.rssKb, host.peakRssKb,
                      host.eventsPerSec, host.etaS));
    writeLine(line.str());
    // Cadence advances from the crossing, not the nominal grid, so a
    // chunked caller that overshoots a boundary cannot double-fire.
    next_at_ = sample.position + interval_;
}

void
FlightRecorder::finish(const HeartbeatSample &sample,
                       const MetricSeries &epochs,
                       const std::vector<std::string> &attr_paths)
{
    if (finished_)
        return;
    finished_ = true;
    last_sample_ = sample;
    profiler_.close(sample.position, sample.cycles);
    const HostSample host = sampleHost(sample);

    Line line;
    line.field("t", "end").field("seq", ++seq_);
    addSampleFields(line, sample);

    std::string phases = "[";
    for (const RunProfiler::Phase &phase : profiler_.phases()) {
        if (phases.size() > 1)
            phases += ',';
        phases += Line()
                      .field("name", phase.name)
                      .field("units", phase.units)
                      .field("cycles",
                             static_cast<std::uint64_t>(phase.cycles))
                      .raw("host",
                           Line().field("wall_s", phase.wallS).str())
                      .str();
    }
    phases += ']';
    line.raw("phases", phases);

    if (!epochs.empty() && !attr_paths.empty()) {
        std::string positions = "[";
        for (const std::uint64_t position : epochs.positions()) {
            if (positions.size() > 1)
                positions += ',';
            positions += std::to_string(position);
        }
        positions += ']';
        line.raw("epoch_positions", positions);

        std::string deltas = "{";
        for (const std::string &path : attr_paths) {
            const std::vector<double> values =
                RunProfiler::epochDeltas(epochs, path);
            if (values.empty())
                continue;
            if (deltas.size() > 1)
                deltas += ',';
            deltas += "\"" + jsonEscape(path) + "\":[";
            for (std::size_t i = 0; i < values.size(); ++i) {
                if (i > 0)
                    deltas += ',';
                deltas += canonicalNumber(values[i]);
            }
            deltas += ']';
        }
        deltas += '}';
        line.raw("epoch_deltas", deltas);
    }

    line.raw("host",
             hostJson(host.wallS, host.rssKb, host.peakRssKb,
                      host.eventsPerSec, host.etaS));
    writeLine(line.str());
}

void
FlightRecorder::writeLine(const std::string &line)
{
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    // Flush-per-record is the survivability contract: a killed run
    // leaves every completed heartbeat readable on disk.
    std::fflush(out_);
}

// ---------------------------------------------------------------------
// SweepProgress
// ---------------------------------------------------------------------

SweepProgress::SweepProgress(std::size_t total) : total_(total)
{
    // accord-lint: allow(wallclock) sweep ETA display only
    start_ = std::chrono::steady_clock::now();
}

SweepProgress::~SweepProgress()
{
    if (rendered_)
        std::fputc('\n', stderr);
}

void
SweepProgress::onRunStart()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++started_;
    render();
}

void
SweepProgress::onRunFinish()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    render();
}

void
SweepProgress::render()
{
    const double elapsed = secondsSince(start_);
    char eta[64] = "";
    if (done_ > 0 && done_ < total_) {
        std::snprintf(eta, sizeof eta, ", eta %.0fs",
                      elapsed * static_cast<double>(total_ - done_)
                          / static_cast<double>(done_));
    }
    std::fprintf(stderr,
                 "\rsweep: %zu/%zu done, %zu in flight, %.1fs%s",
                 done_, total_, started_ - done_, elapsed, eta);
    std::fflush(stderr);
    rendered_ = true;
}

} // namespace accord::telemetry

/**
 * @file
 * Flight-recorder telemetry: a live, append-only JSONL view of a run.
 *
 * The metric registry answers "what happened" after a run finishes and
 * the transaction tracer answers "why was this access slow"; neither
 * says anything while a multi-hour simulation is still in flight, and
 * a crashed or wedged run leaves no record at all.  The FlightRecorder
 * closes that gap: it appends one `accord.telemetry/1` JSON line per
 * heartbeat — and flushes after every line, so a killed run leaves a
 * readable partial stream ending at its last completed heartbeat.
 *
 * Heartbeats fire on DETERMINISTIC cadence (every `interval` progress
 * units — functional accesses or retired demand reads — never wall
 * time), so the canonical fields of two streams from the same config
 * are byte-identical across re-runs and `jobs=` values.  Host-side
 * observations (wall clock, RSS, events/sec, ETA) are genuinely
 * nondeterministic and therefore quarantined: every volatile field
 * lives inside a nested `"host"` object, the header declares the
 * partition, and tools/telemetry_report.py both enforces it and strips
 * it (--strip) to recover the comparable canonical stream.
 *
 * This is the ONLY place in the tree allowed to read the wall clock
 * outside bench harnesses: the analyzer's wallclock rule exempts
 * src/common/telemetry/ by path (tools/accord_analyzer/rules.py).
 */

#ifndef ACCORD_COMMON_TELEMETRY_TELEMETRY_HPP
#define ACCORD_COMMON_TELEMETRY_TELEMETRY_HPP

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics/registry.hpp"
#include "common/types.hpp"

namespace accord::telemetry
{

/** Stream schema identifier (header "schema" field). */
inline constexpr const char *kSchema = "accord.telemetry/1";

/** Flight-recorder knobs (SystemConfig carries a copy). */
struct TelemetryConfig
{
    /** Output JSONL path ("" = telemetry off). */
    std::string path;

    /** Heartbeat cadence in progress units (0 = auto). */
    std::uint64_t interval = 0;

    static constexpr std::uint64_t kDefaultInterval = 10000;
    static constexpr std::uint64_t kAutoHeartbeats = 64;

    bool enabled() const { return !path.empty(); }

    /**
     * Effective cadence for a run of `total_units` (0 = unknown).
     * An explicit interval= wins; the auto cadence is the larger of
     * kDefaultInterval and total/kAutoHeartbeats, so heartbeat cost is
     * bounded (at most ~kAutoHeartbeats per run) no matter how long
     * the run is.  Derived only from config values, so the cadence —
     * like the stream content — is deterministic.
     */
    std::uint64_t
    resolvedInterval(std::uint64_t total_units = 0) const
    {
        if (interval > 0)
            return interval;
        const std::uint64_t scaled = total_units / kAutoHeartbeats;
        return scaled > kDefaultInterval ? scaled : kDefaultInterval;
    }
};

/**
 * Canonical (deterministic) content of one heartbeat.  Everything in
 * here derives from simulator state at a cadence-defined position, so
 * it is identical across re-runs and `jobs=` values; the recorder adds
 * the volatile host observations itself, under the "host" key.
 */
struct HeartbeatSample
{
    /** Which run phase the heartbeat was taken in. */
    const char *phase = "";

    /** Progress units into the run (the cadence domain). */
    std::uint64_t position = 0;

    /** Simulated time (EventQueue::now). */
    Cycle cycles = 0;

    /** Demand reads observed / hit so far (hit-rate-so-far). */
    std::uint64_t reads = 0;
    std::uint64_t readHits = 0;

    /** EventQueue health: live depth, lifetime work, high-waters. */
    std::uint64_t eqPending = 0;
    std::uint64_t eqExecuted = 0;
    std::uint64_t eqOccupancyPeak = 0;
    std::uint64_t eqOverflowSpills = 0;

    /** Transaction BlockPool arena usage. */
    std::uint64_t poolLive = 0;
    std::uint64_t poolBlockBytes = 0;

    /**
     * Host bytes backing per-set cache state (tag/flag columns, DCP
     * pages, predictor tables) at this heartbeat.  Deterministic —
     * resident pages are a pure function of the access stream — so it
     * lives with the canonical gauges, not under "host".
     */
    std::uint64_t stateBytes = 0;
};

/** Resident set size in kB from /proc/self/statm (0 if unreadable). */
std::uint64_t currentRssKb();

/**
 * Per-phase attribution of a run: which phase consumed how many
 * progress units, simulated cycles, and host seconds — plus a reducer
 * turning the existing MetricSeries epoch snapshots into per-epoch
 * deltas so the end-of-run record carries a time-resolved series of
 * any counter path without new instrumentation.
 */
class RunProfiler
{
  public:
    struct Phase
    {
        std::string name;
        std::uint64_t startUnits = 0;
        std::uint64_t units = 0;
        Cycle startCycles = 0;
        Cycle cycles = 0;
        /** Host seconds attributed to the phase (volatile). */
        double wallS = 0.0;
    };

    /** Close the open phase (if any) and start a new one. */
    void enterPhase(const std::string &name, std::uint64_t position,
                    Cycle cycles);

    /** Close the open phase at the run's final position. */
    void close(std::uint64_t position, Cycle cycles);

    const std::vector<Phase> &phases() const { return phases_; }

    /**
     * Successive deltas of `path` across the series' epochs (first
     * delta is from zero).  Empty when the series lacks the path.
     */
    static std::vector<double>
    epochDeltas(const MetricSeries &series, const std::string &path);

  private:
    double wallNow() const;

    std::vector<Phase> phases_;
    bool open_ = false;
    std::chrono::steady_clock::time_point phase_start_{};
};

/**
 * Writes one telemetry stream: header record at construction, one
 * heartbeat record per cadence crossing, one final record on finish()
 * — each its own flushed JSONL line.
 */
class FlightRecorder
{
  public:
    /** Run identity baked into the header record. */
    struct Header
    {
        /** Canonical config spec (sim::canonicalConfigSpec). */
        std::string spec;

        /** Cadence domain name ("accesses" or "reads"). */
        const char *units = "accesses";

        /** Expected total progress units (0 = unknown; no ETA). */
        std::uint64_t totalUnits = 0;
    };

    FlightRecorder(const TelemetryConfig &config, const Header &header);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Resolved heartbeat cadence in progress units. */
    std::uint64_t interval() const { return interval_; }

    /** True once `position` has crossed the next heartbeat cadence. */
    bool due(std::uint64_t position) const
        { return position >= next_at_; }

    /** Emit one heartbeat record and advance the cadence. */
    void heartbeat(const HeartbeatSample &sample);

    /**
     * Emit the final record (end-of-run totals, per-phase attribution,
     * per-epoch deltas of `attr_paths` present in `epochs`) and close
     * the stream.  Idempotent; the destructor calls it with whatever
     * the last heartbeat saw if the caller never did.
     */
    void finish(const HeartbeatSample &sample,
                const MetricSeries &epochs,
                const std::vector<std::string> &attr_paths);

    RunProfiler &profiler() { return profiler_; }

  private:
    struct HostSample
    {
        double wallS = 0.0;
        std::uint64_t rssKb = 0;
        std::uint64_t peakRssKb = 0;
        double eventsPerSec = 0.0;
        double etaS = 0.0;
    };

    HostSample sampleHost(const HeartbeatSample &sample);
    void writeLine(const std::string &line);

    TelemetryConfig config_;
    std::uint64_t interval_;
    std::uint64_t next_at_;
    std::uint64_t total_units_;
    std::uint64_t seq_ = 0;
    std::uint64_t peak_rss_kb_ = 0;
    bool finished_ = false;
    HeartbeatSample last_sample_;
    std::FILE *out_ = nullptr;
    std::chrono::steady_clock::time_point start_;
    RunProfiler profiler_;
};

/**
 * Live done/in-flight/ETA progress line for a sweep batch, rendered to
 * stderr on run start/finish events (never on a timer — there is no
 * background thread).  Thread-safe; the worker threads of the sweep
 * pool drive it directly.  Display only: it never touches results.
 */
class SweepProgress
{
  public:
    explicit SweepProgress(std::size_t total);
    ~SweepProgress();

    SweepProgress(const SweepProgress &) = delete;
    SweepProgress &operator=(const SweepProgress &) = delete;

    void onRunStart();
    void onRunFinish();

  private:
    void render();

    std::mutex mutex_;
    std::size_t total_;
    std::size_t started_ = 0;
    std::size_t done_ = 0;
    bool rendered_ = false;
    std::chrono::steady_clock::time_point start_;
};

} // namespace accord::telemetry

#endif // ACCORD_COMMON_TELEMETRY_TELEMETRY_HPP

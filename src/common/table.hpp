/**
 * @file
 * Plain-text table rendering for bench output.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure; TextTable keeps the output aligned and diff-friendly.
 */

#ifndef ACCORD_COMMON_TABLE_HPP
#define ACCORD_COMMON_TABLE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace accord
{

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Start a new row. */
    TextTable &row();

    /** Append a cell to the current row. */
    TextTable &cell(const std::string &text);
    TextTable &cell(const char *text) { return cell(std::string(text)); }
    TextTable &cell(std::uint64_t value);
    TextTable &cell(std::int64_t value);
    TextTable &cell(int value) { return cell(std::int64_t{value}); }
    TextTable &cell(unsigned value) { return cell(std::uint64_t{value}); }

    /** Append a floating-point cell with fixed precision. */
    TextTable &cell(double value, int precision = 3);

    /** Append a percentage cell ("74.2%"). */
    TextTable &percent(double fraction, int precision = 1);

    /** Render the table (header + separator + rows). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace accord

#endif // ACCORD_COMMON_TABLE_HPP

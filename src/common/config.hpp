/**
 * @file
 * A small typed key/value configuration table.
 *
 * Benches and examples parse "key=value" command-line overrides into a
 * Config; components read their parameters through typed getters with
 * defaults.  Unknown keys are rejected at the end of a run via
 * checkConsumed() so typos in sweeps do not silently do nothing.
 */

#ifndef ACCORD_COMMON_CONFIG_HPP
#define ACCORD_COMMON_CONFIG_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace accord
{

/** Typed key/value configuration with "key=value" parsing. */
class Config
{
  public:
    Config() = default;

    /** Set a key, overwriting any previous value. */
    void set(const std::string &key, const std::string &value);

    /** Parse one "key=value" token; returns false if malformed. */
    bool parseArg(const std::string &arg);

    /** Parse argv[1..argc) of "key=value" tokens; fatal() on error. */
    void parseArgs(int argc, char **argv);

    /** True if the key was explicitly set. */
    bool has(const std::string &key) const;

    /** String getter with default. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** Integer getter with default (accepts k/M/G suffixes). */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;

    /** Unsigned getter with default (accepts k/M/G suffixes). */
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;

    /** Double getter with default. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean getter with default (true/false/1/0/yes/no). */
    bool getBool(const std::string &key, bool def) const;

    /** fatal() if any explicitly set key was never read. */
    void checkConsumed() const;

  private:
    std::map<std::string, std::string> values;
    mutable std::set<std::string> consumed;
};

/** Parse a size string like "4G", "256M", "64k", or plain digits. */
std::uint64_t parseSize(const std::string &text, bool *ok = nullptr);

} // namespace accord

#endif // ACCORD_COMMON_CONFIG_HPP

/**
 * @file
 * Minimal canonical JSON emitter for machine-readable run reports.
 *
 * The writer produces deterministic output: object keys are emitted in
 * the order the caller supplies them (report code iterates sorted
 * containers), numbers use one canonical formatting (canonicalNumber),
 * and indentation is fixed.  Two reports built from bit-identical data
 * therefore serialize to byte-identical text, which is what the
 * report-diff regression gate and the jobs= stability tests rely on.
 */

#ifndef ACCORD_COMMON_JSON_HPP
#define ACCORD_COMMON_JSON_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace accord
{

/**
 * Canonical decimal rendering of a double: integral values print
 * without exponent or trailing ".0" ("42"), everything else uses
 * %.12g.  Negative zero normalizes to "0" so bitwise quirks cannot
 * leak into report bytes.
 */
std::string canonicalNumber(double value);

/** JSON string escaping (control characters, quotes, backslash). */
std::string jsonEscape(const std::string &text);

/**
 * Streaming JSON writer with two-space indentation.  The caller is
 * responsible for well-formedness (the writer asserts on obvious
 * misuse such as closing an unopened scope).
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or scope. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text) { return value(std::string(text)); }
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number) { return value(std::int64_t{number}); }
    JsonWriter &value(unsigned number)
        { return value(std::uint64_t{number}); }
    JsonWriter &value(bool flag);

    /** Finished document (writer must be back at depth zero). */
    const std::string &str() const;

  private:
    /** Comma/newline/indent bookkeeping before any new element. */
    void element();

    std::string out_;
    std::vector<bool> has_elements_;
    bool after_key_ = false;
};

} // namespace accord

#endif // ACCORD_COMMON_JSON_HPP

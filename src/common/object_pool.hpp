/**
 * @file
 * Fixed-block freelist arena for hot-path allocations.
 *
 * A BlockPool recycles same-sized blocks through a freelist backed by
 * chunked arena storage, so steady-state allocation is a pointer pop
 * — no malloc, no lock (each pool belongs to one single-threaded
 * component, like the EventQueue's node arena or a controller's
 * transaction pool).  PoolAllocator adapts a pool to the standard
 * allocator interface so std::allocate_shared can place an object and
 * its control block in one pooled allocation; odd-sized requests fall
 * through to operator new, keeping the adapter safe for any rebound
 * type.
 *
 * PoolAllocator shares ownership of its pool: every live allocation's
 * control block holds an allocator copy, so the arena stays valid
 * until the last pooled object dies — even past the pool's primary
 * owner (e.g. events still queued when a controller is torn down).
 */

#ifndef ACCORD_COMMON_OBJECT_POOL_HPP
#define ACCORD_COMMON_OBJECT_POOL_HPP

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/log.hpp"

namespace accord
{

/** Freelist of uniform blocks; the size locks in on first use. */
class BlockPool
{
  public:
    /** @param blocks_per_chunk arena growth granularity */
    explicit BlockPool(std::size_t blocks_per_chunk = 64)
        : chunk_blocks_(blocks_per_chunk)
    {
        ACCORD_ASSERT(blocks_per_chunk > 0,
                      "pool chunks must hold at least one block");
    }

    BlockPool(const BlockPool &) = delete;
    BlockPool &operator=(const BlockPool &) = delete;

    /** Block size the pool serves (0 until the first take()). */
    std::size_t blockSize() const { return block_size_; }

    /** Blocks currently live (taken and not yet given back). */
    std::size_t live() const { return live_; }

    /**
     * Pop a block of `size` bytes.  The first call fixes the pool's
     * block size; later calls must match it (allocate_shared always
     * does — every allocation is the same node type).
     */
    void *
    take(std::size_t size)
    {
        if (block_size_ == 0) {
            // Round up so every block can host any max-aligned type.
            constexpr std::size_t align = alignof(std::max_align_t);
            block_size_ = (size + align - 1) / align * align;
        }
        ACCORD_ASSERT(size <= block_size_,
                      "pool block size mismatch (%zu > %zu)", size,
                      block_size_);
        if (free_ == nullptr)
            grow();
        FreeNode *node = free_;
        free_ = node->next;
        ++live_;
        return node;
    }

    /** Return a block obtained from take(). */
    void
    give(void *block)
    {
        ACCORD_ASSERT(live_ > 0, "pool freed more blocks than taken");
        auto *node = static_cast<FreeNode *>(block);
        node->next = free_;
        free_ = node;
        --live_;
    }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    void
    grow()
    {
        const std::size_t bytes = block_size_ * chunk_blocks_;
        chunks_.push_back(std::make_unique<unsigned char[]>(bytes));
        unsigned char *base = chunks_.back().get();
        for (std::size_t i = chunk_blocks_; i-- > 0;) {
            auto *node =
                reinterpret_cast<FreeNode *>(base + i * block_size_);
            node->next = free_;
            free_ = node;
        }
    }

    std::size_t chunk_blocks_;
    std::size_t block_size_ = 0;
    std::size_t live_ = 0;
    FreeNode *free_ = nullptr;
    std::vector<std::unique_ptr<unsigned char[]>> chunks_;
};

/**
 * Standard-allocator shim over a BlockPool.  Single-object
 * allocations of the pool's (first-seen) size recycle through the
 * freelist; anything else — array allocations, or a second rebound
 * type of a different size — uses plain operator new, chosen by size
 * again at deallocation so the two paths can never mix.
 */
template <typename T>
struct PoolAllocator
{
    using value_type = T;

    explicit PoolAllocator(std::shared_ptr<BlockPool> pool)
        : pool(std::move(pool))
    {
        ACCORD_ASSERT(this->pool != nullptr,
                      "pool allocator needs a pool");
    }

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) // NOLINT
        : pool(other.pool)
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (n == 1 && poolable(bytes))
            return static_cast<T *>(pool->take(bytes));
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (n == 1 && poolable(bytes)) {
            pool->give(p);
            return;
        }
        ::operator delete(p);
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &other) const
    {
        return pool == other.pool;
    }

    template <typename U>
    bool
    operator!=(const PoolAllocator<U> &other) const
    {
        return pool != other.pool;
    }

    std::shared_ptr<BlockPool> pool;

  private:
    bool
    poolable(std::size_t bytes) const
    {
        return pool->blockSize() == 0 || bytes <= pool->blockSize();
    }
};

} // namespace accord

#endif // ACCORD_COMMON_OBJECT_POOL_HPP

/**
 * @file
 * Runtime invariant auditing.
 *
 * An InvariantAuditor collects violations of model-state invariants
 * instead of aborting on the first one, so a periodic sweep can report
 * every inconsistency it finds in one shot and unit tests can assert
 * that a deliberately corrupted state is detected.  Components expose
 * audit entry points (WayPolicy::audit, the free functions in
 * dramcache/audit.hpp, DramCacheController::audit) that record into a
 * shared auditor; enforce() then panics with the full report if any
 * check failed.
 *
 * The auditor itself is always available — tests run it in any build
 * type.  Only the *automatic* periodic invocation inside the
 * controller (and the ACCORD_CHECK macros) are compiled out in plain
 * release builds; see ACCORD_CHECKS_ENABLED in common/log.hpp.
 */

#ifndef ACCORD_COMMON_INVARIANT_AUDITOR_HPP
#define ACCORD_COMMON_INVARIANT_AUDITOR_HPP

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace accord
{

/** Collects invariant violations for deferred reporting. */
class InvariantAuditor
{
  public:
    /** One failed invariant: a stable rule id plus formatted detail. */
    struct Violation
    {
        std::string rule;
        std::string detail;
    };

    /** Record a violation of `rule` with printf-style detail. */
    void fail(const char *rule, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** True if no violations have been recorded. */
    bool clean() const { return violations_.empty(); }

    std::size_t count() const { return violations_.size(); }

    const std::vector<Violation> &violations() const
        { return violations_; }

    /** True if at least one violation of `rule` was recorded. */
    bool hasRule(std::string_view rule) const;

    /** Human-readable report, one "rule: detail" line per violation. */
    std::string report() const;

    /** Drop all recorded violations. */
    void clear() { violations_.clear(); }

    /** panic() with the full report unless clean(). */
    void enforce(const char *context) const;

  private:
    std::vector<Violation> violations_;
};

} // namespace accord

#endif // ACCORD_COMMON_INVARIANT_AUDITOR_HPP

#include "trace/sample.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace accord::trace
{

namespace
{

/** Squared L2 distance between a window signature and a centroid. */
double
dist2(const float *sig, const double *centroid, unsigned dims)
{
    double sum = 0.0;
    for (unsigned d = 0; d < dims; ++d) {
        const double diff = static_cast<double>(sig[d]) - centroid[d];
        sum += diff * diff;
    }
    return sum;
}

} // namespace

std::string
SampleParams::toString() const
{
    char rate_text[32];
    std::snprintf(rate_text, sizeof(rate_text), "%g", rate);
    std::string out;
    out += "window=" + std::to_string(window);
    out += ",clusters=" + std::to_string(clusters);
    out += ",rate=" + std::string(rate_text);
    out += ",warmup=" + std::to_string(warmup);
    out += ",prewarm=" + std::to_string(prewarm);
    out += ",dims=" + std::to_string(dims);
    out += ",iters=" + std::to_string(iters);
    out += ",seed=" + std::to_string(seed);
    return out;
}

SampleParams
SampleParams::fromString(const std::string &text)
{
    SampleParams params;
    std::string rest = text;
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string item = rest.substr(0, comma);
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("malformed sample option '%s'", item.c_str());
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        char *end = nullptr;
        double num = std::strtod(value.c_str(), &end);
        // Same k/M/G/T suffixes as the CLI and source specs.
        if (end != value.c_str() && *end != '\0') {
            switch (std::tolower(static_cast<unsigned char>(*end))) {
              case 'k': num *= 1ULL << 10; ++end; break;
              case 'm': num *= 1ULL << 20; ++end; break;
              case 'g': num *= 1ULL << 30; ++end; break;
              case 't': num *= 1ULL << 40; ++end; break;
              default: break;
            }
        }
        if (end == value.c_str() || *end != '\0' || num < 0)
            fatal("bad sample value '%s' for '%s'", value.c_str(),
                  key.c_str());
        if (key == "window")
            params.window = static_cast<std::uint64_t>(num);
        else if (key == "clusters")
            params.clusters = static_cast<unsigned>(num);
        else if (key == "rate")
            params.rate = num;
        else if (key == "warmup")
            params.warmup = static_cast<std::uint64_t>(num);
        else if (key == "prewarm")
            params.prewarm = static_cast<std::uint64_t>(num);
        else if (key == "dims")
            params.dims = static_cast<unsigned>(num);
        else if (key == "iters")
            params.iters = static_cast<unsigned>(num);
        else if (key == "seed")
            params.seed = static_cast<std::uint64_t>(num);
        else
            fatal("unknown sample option '%s'", key.c_str());
    }
    if (params.window == 0 || params.clusters == 0 || params.dims == 0
        || params.iters == 0 || params.rate <= 0.0
        || params.rate > 1.0)
        fatal("bad sample parameters '%s' (need window/clusters/dims/"
              "iters > 0 and 0 < rate <= 1)",
              text.c_str());
    return params;
}

SampledSource::SampledSource(std::unique_ptr<TrafficSource> inner,
                             const SampleParams &params)
    : inner_(std::move(inner)), params_(params)
{
    if (!inner_->bounded())
        fatal("sampling needs a bounded source (trace without loop=1 "
              "or synthetic(limit=)); got %s",
              inner_->describe().c_str());
    const std::vector<float> signatures = profile();
    buildPlan(signatures);
    if (!inner_->rewind())
        fatal("sampling needs a rewindable source; got %s",
              inner_->describe().c_str());
}

std::vector<float>
SampledSource::profile()
{
    const unsigned dims = params_.dims;
    std::vector<float> signatures;
    std::vector<std::uint32_t> counts;
    while (!inner_->exhausted()) {
        const Request req = inner_->next();
        const std::uint64_t w = inner_records_ / params_.window;
        if (w >= counts.size()) {
            counts.resize(w + 1, 0);
            signatures.resize((w + 1) * dims, 0.0F);
        }
        const std::uint64_t bucket = mix64(regionOf(req.line)) % dims;
        signatures[w * dims + bucket] += 1.0F;
        ++counts[w];
        ++inner_records_;
    }
    if (inner_records_ == 0)
        fatal("sampling: inner source produced no records");
    window_count_ = counts.size();
    // L1-normalize so the short tail window compares fairly.
    for (std::uint64_t w = 0; w < window_count_; ++w) {
        const float norm = 1.0F / static_cast<float>(counts[w]);
        for (unsigned d = 0; d < dims; ++d)
            signatures[w * dims + d] *= norm;
    }
    return signatures;
}

void
SampledSource::buildPlan(const std::vector<float> &signatures)
{
    const unsigned dims = params_.dims;
    const std::uint64_t windows = window_count_;
    const std::uint64_t k = std::min<std::uint64_t>(
        params_.clusters, windows);
    Rng rng(params_.seed);

    // k-means++ seeding: D^2-weighted draws through the private RNG.
    std::vector<double> centroids(k * dims, 0.0);
    std::vector<double> best_d2(
        windows, std::numeric_limits<double>::infinity());
    std::uint64_t picked = rng.below(windows);
    for (std::uint64_t c = 0; c < k; ++c) {
        if (c > 0) {
            double total = 0.0;
            for (std::uint64_t w = 0; w < windows; ++w)
                total += best_d2[w];
            if (total > 0.0) {
                const double r = rng.uniform() * total;
                double cum = 0.0;
                picked = windows - 1;
                for (std::uint64_t w = 0; w < windows; ++w) {
                    cum += best_d2[w];
                    if (cum >= r) {
                        picked = w;
                        break;
                    }
                }
            } else {
                picked = rng.below(windows);
            }
        }
        for (unsigned d = 0; d < dims; ++d) {
            centroids[c * dims + d] = static_cast<double>(
                signatures[picked * dims + d]);
        }
        for (std::uint64_t w = 0; w < windows; ++w) {
            best_d2[w] = std::min(
                best_d2[w], dist2(&signatures[w * dims],
                                  &centroids[c * dims], dims));
        }
    }

    // Lloyd iterations; ties break toward the lower cluster index and
    // empty clusters keep their previous centroid, so the result is a
    // pure function of (signatures, seed).
    std::vector<std::uint32_t> assign(windows, 0);
    std::vector<double> sums(k * dims);
    std::vector<std::uint64_t> sizes(k);
    for (unsigned iter = 0; iter < params_.iters; ++iter) {
        bool changed = false;
        for (std::uint64_t w = 0; w < windows; ++w) {
            std::uint32_t best = 0;
            double best_dist =
                std::numeric_limits<double>::infinity();
            for (std::uint64_t c = 0; c < k; ++c) {
                const double dist = dist2(&signatures[w * dims],
                                          &centroids[c * dims], dims);
                if (dist < best_dist) {
                    best_dist = dist;
                    best = static_cast<std::uint32_t>(c);
                }
            }
            changed = changed || assign[w] != best;
            assign[w] = best;
        }
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(sizes.begin(), sizes.end(), 0);
        for (std::uint64_t w = 0; w < windows; ++w) {
            ++sizes[assign[w]];
            for (unsigned d = 0; d < dims; ++d) {
                sums[assign[w] * dims + d] +=
                    static_cast<double>(signatures[w * dims + d]);
            }
        }
        for (std::uint64_t c = 0; c < k; ++c) {
            if (sizes[c] == 0)
                continue;
            for (unsigned d = 0; d < dims; ++d) {
                centroids[c * dims + d] = sums[c * dims + d]
                    / static_cast<double>(sizes[c]);
            }
        }
        if (!changed)
            break;
    }

    // Stratified proportional selection: round(rate * W) windows
    // total, split across clusters by size (largest-remainder), then
    // spread evenly inside each cluster.  Proportionality is what lets
    // plain aggregate stats stand in for SimPoint's per-window
    // weights.
    const std::uint64_t target = std::min<std::uint64_t>(
        windows,
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(
                   params_.rate * static_cast<double>(windows)))));
    std::vector<std::vector<std::uint64_t>> members(k);
    for (std::uint64_t w = 0; w < windows; ++w)
        members[assign[w]].push_back(w);
    std::vector<std::uint64_t> quota(k, 0);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> remainders;
    std::uint64_t given = 0;
    for (std::uint64_t c = 0; c < k; ++c) {
        const std::uint64_t exact = target * members[c].size();
        quota[c] = exact / windows;
        given += quota[c];
        if (!members[c].empty() && quota[c] < members[c].size())
            remainders.emplace_back(exact % windows, c);
    }
    // Largest remainder first; equal remainders go to the lower
    // cluster index (sort is stable only with the explicit tiebreak).
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    for (const auto &[rem, c] : remainders) {
        (void)rem;
        if (given >= target)
            break;
        ++quota[c];
        ++given;
    }
    // Midpoint spacing ((2i+1)n/2q), not i*n/q: the latter always
    // starts at a cluster's first member, and with near-stationary
    // signatures every cluster's first occurrence is early in the
    // stream, so the whole selection collapses onto the cold-start
    // ramp.  Midpoints keep each cluster's picks temporally centered.
    for (std::uint64_t c = 0; c < k; ++c) {
        const std::uint64_t n = members[c].size();
        for (std::uint64_t i = 0; i < quota[c]; ++i)
            selected_.push_back(
                members[c][(2 * i + 1) * n / (2 * quota[c])]);
    }
    std::sort(selected_.begin(), selected_.end());

    // Replay coverage: each run of consecutive selected windows with
    // its warmup prefix, unioned with the [0, prewarm) span.  Which
    // replayed records are *measured* is decided per record at replay
    // time (window membership), so measured windows inside the
    // prewarm span stay measured.
    std::vector<Segment> raw;
    if (params_.prewarm > 0)
        raw.push_back(
            {0, std::min(inner_records_, params_.prewarm)});
    std::size_t i = 0;
    while (i < selected_.size()) {
        std::size_t j = i;
        while (j + 1 < selected_.size()
               && selected_[j + 1] == selected_[j] + 1)
            ++j;
        const std::uint64_t start = selected_[i] * params_.window;
        Segment seg;
        seg.from = start - std::min(start, params_.warmup);
        seg.to = std::min(inner_records_,
                          (selected_[j] + 1) * params_.window);
        raw.push_back(seg);
        i = j + 1;
    }
    // raw is sorted by `from` (prewarm starts at 0, runs ascend);
    // merge overlapping or adjacent intervals.
    std::sort(raw.begin(), raw.end(),
              [](const Segment &a, const Segment &b) {
                  return a.from < b.from;
              });
    for (const Segment &seg : raw) {
        if (!segments_.empty() && seg.from <= segments_.back().to) {
            segments_.back().to =
                std::max(segments_.back().to, seg.to);
        } else {
            segments_.push_back(seg);
        }
    }
    for (const Segment &seg : segments_)
        planned_events_ += seg.to - seg.from;
}

Request
SampledSource::next()
{
    ACCORD_ASSERT(!exhausted(),
                  "next() on an exhausted sampled source");
    const Segment &seg = segments_[seg_idx_];
    while (inner_pos_ < seg.from) {
        inner_->next();
        ++inner_pos_;
    }
    Request req = inner_->next();
    const std::uint64_t w = inner_pos_ / params_.window;
    while (sel_idx_ < selected_.size() && selected_[sel_idx_] < w)
        ++sel_idx_;
    req.warmup = !(sel_idx_ < selected_.size()
                   && selected_[sel_idx_] == w);
    req.position = emitted_++;
    ++inner_pos_;
    if (inner_pos_ >= seg.to)
        ++seg_idx_;
    return req;
}

bool
SampledSource::exhausted() const
{
    return seg_idx_ >= segments_.size();
}

bool
SampledSource::rewind()
{
    if (!inner_->rewind())
        return false;
    seg_idx_ = 0;
    sel_idx_ = 0;
    inner_pos_ = 0;
    emitted_ = 0;
    return true;
}

std::string
SampledSource::describe() const
{
    return "sampled " + std::to_string(selected_.size()) + "/"
        + std::to_string(window_count_) + " windows over "
        + inner_->describe();
}

} // namespace accord::trace

/**
 * @file
 * The TrafficSource API: pluggable request streams for the L4.
 *
 * Every traffic frontend — the synthetic workload models, recorded
 * binary traces, the SimPoint-style sampler — implements one narrow
 * pull interface that yields full Request records (line address, kind,
 * request class, stream position) instead of bare line addresses.
 * Sources are built through a registry-backed factory mirroring
 * organizationRegistry(): a spec string "name(key=value,...)" selects
 * and parameterizes the source, so new stream kinds register here and
 * land without touching core_model / system / runner.
 *
 * Spec strings accepted by makeTrafficSource():
 *
 *   synthetic                the workload model (default; limit=N
 *                            bounds the stream for sampling)
 *   cyclic(sets=,iters=)     the Section IV-B1 conflict kernel
 *   trace(file=,loop=,stripe=)  accord.trace/1 binary replay
 *
 * docs/TRACES.md documents the binary format, the converter, and the
 * sampling layer (sample.hpp) that wraps any bounded source.
 */

#ifndef ACCORD_TRACE_SOURCE_HPP
#define ACCORD_TRACE_SOURCE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/enums.hpp"
#include "core/factory.hpp"

namespace accord::trace
{

struct WorkloadSpec;

/** One record of an L4-bound request stream. */
struct Request
{
    LineAddr line = 0;

    /** Demand read or writeback (core/enums.hpp tokens). */
    core::RequestKind kind = core::RequestKind::Demand;

    /** Request class / tenant id carried by the trace (0 = default). */
    std::uint16_t cls = 0;

    /**
     * Cache-warmup replay: the access must update cache state but be
     * excluded from measured statistics (set by SampledSource for the
     * pre-window warmup prefix; always false for raw sources).
     */
    bool warmup = false;

    /** 0-based position in this source's emission order. */
    std::uint64_t position = 0;
};

/**
 * A pull-based stream of L4 requests.
 *
 * Unbounded sources (the synthetic models) never exhaust; bounded
 * sources (trace replay without loop=, synthetic with limit=) report
 * exhaustion and support rewind() so the sampler can make two passes.
 * Callers must not call next() on an exhausted source.
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Next request; precondition: !exhausted(). */
    virtual Request next() = 0;

    /** True once a bounded source has emitted its final record. */
    virtual bool exhausted() const { return false; }

    /** True if the stream is finite (exhausted() eventually holds). */
    virtual bool bounded() const { return false; }

    /** Records the stream will emit (0 = unbounded or unknown). */
    virtual std::uint64_t size() const { return 0; }

    /** Restart from the first record; false if unsupported. */
    virtual bool rewind() { return false; }

    /**
     * Functional warmup accesses a run should spend on this stream
     * when warm= is 0 (auto).  0 means "no warmup by default" — right
     * for bounded traces, where warmup would consume the stream.
     */
    virtual std::uint64_t defaultWarmQuota() const { return 0; }

    /** One-line human description ("synthetic libq core 3", ...). */
    virtual std::string describe() const = 0;
};

/**
 * Everything a source factory may need about the run asking for the
 * stream.  Synthetic sources use the workload spec and seeds; trace
 * sources use core/numCores for striping.
 */
struct SourceContext
{
    /** Benchmark model for this core (null for pure-trace runs). */
    const WorkloadSpec *spec = nullptr;

    unsigned core = 0;
    unsigned numCores = 1;

    /** Footprint divisor of the run (SystemConfig::scale). */
    std::uint64_t scale = 128;

    /** Base RNG seed of the run. */
    std::uint64_t seed = 1;

    /** Demand-to-writeback lag of the writeback mixer. */
    unsigned wbLag = 2048;

    /**
     * Emit the workload's writeback traffic (false in full-hierarchy
     * mode, where the cache stack generates L4 writebacks itself).
     */
    bool mixWritebacks = true;
};

/** A "name(key=value,...)" source spec split into its parts. */
struct SourceSpecParts
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> options;

    /** Value of `key`, or `fallback` if absent. */
    std::string option(const std::string &key,
                       const std::string &fallback) const;

    /** Integer option with k/M/G suffix support; fatal() if bad. */
    std::uint64_t optionUint(const std::string &key,
                             std::uint64_t fallback) const;

    /** fatal() unless every option key is in `known`. */
    void requireKnown(const std::vector<std::string> &known) const;
};

/** Split a source spec; fatal() on malformed syntax. */
SourceSpecParts parseSourceSpec(const std::string &spec);

/** How the registry builds and canonicalizes one source kind. */
struct SourceFactory
{
    /** Build the stream; fatal() on bad options. */
    std::function<std::unique_ptr<TrafficSource>(
        const SourceSpecParts &, const SourceContext &)>
        make;

    /**
     * Canonical fixed-order rendering of the spec for run reports
     * (defaults filled in, file paths reduced to basenames so reports
     * are host-independent).
     */
    std::function<std::string(const SourceSpecParts &)> canonical;
};

/** The name-keyed source registry (see organizationRegistry()). */
core::NamedRegistry<SourceFactory> &trafficSourceRegistry();

/** Register the built-in sources; idempotent. */
void registerBuiltinTrafficSources();

/** Default spec used when no source= override is given. */
inline constexpr const char *kDefaultTrafficSpec = "synthetic";

/**
 * Build a traffic source from a spec string via the registry;
 * fatal() on an unknown name or malformed spec.
 */
std::unique_ptr<TrafficSource>
makeTrafficSource(const std::string &spec, const SourceContext &ctx);

/** Canonical rendering of `spec` (what RunReport embeds). */
std::string canonicalTrafficSpec(const std::string &spec);

} // namespace accord::trace

#endif // ACCORD_TRACE_SOURCE_HPP

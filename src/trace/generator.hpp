/**
 * @file
 * Synthetic access-stream generators.
 *
 * These stand in for the paper's SPEC/GAP/HPC traces (see DESIGN.md,
 * substitutions): each generator emits the stream of line addresses
 * that reaches the DRAM cache (the post-L3 miss stream), shaped by the
 * knobs that matter to ACCORD — footprint vs. cache capacity (capacity
 * and conflict misses), region-level spatial run length (GWS
 * gangability), hot/cold skew (hit rate), and writeback fraction.
 *
 * Address layout mimics paged virtual memory: a workload's region
 * index is hashed to a physical 4KB region, so contiguity within a
 * region survives while region placement is effectively random —
 * exactly the situation a physically indexed DRAM cache sees.
 *
 * All generators implement the TrafficSource interface (source.hpp);
 * they are normally built through the source registry ("synthetic",
 * "cyclic") rather than constructed directly.
 */

#ifndef ACCORD_TRACE_GENERATOR_HPP
#define ACCORD_TRACE_GENERATOR_HPP

#include <cstdint>
#include <deque>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/source.hpp"

namespace accord::trace
{

/** Physical region space the hashed layout maps into (128 GB / 4KB). */
inline constexpr std::uint64_t physRegionSpace = 1ULL << 25;

/** Map (workload region index, salt) to a physical region id. */
std::uint64_t physRegionOf(std::uint64_t region, std::uint64_t salt);

/** Knobs of the two-component hot/cold region workload model. */
struct WorkloadGenParams
{
    /** Total footprint in lines (already scaled). */
    std::uint64_t footprintLines = 1 << 20;

    /** Fraction of the footprint that forms the hot working set. */
    double hotPortion = 0.25;

    /** Probability an access run targets the hot set. */
    double hotAccessFrac = 0.80;

    /** Consecutive lines per run in the hot component (1..64). */
    unsigned hotRunLen = 8;

    /** Consecutive lines per run in the cold component (1..64). */
    unsigned coldRunLen = 8;

    /** Cold regions visited randomly (true) or by cyclic scan. */
    bool coldRandom = false;

    /** Hash salt so cores/workloads occupy distinct physical pages. */
    std::uint64_t salt = 0;

    std::uint64_t seed = 1;

    /**
     * Footprint passes of functional warmup this stream wants
     * (WorkloadSpec::warmPasses; feeds defaultWarmQuota()).
     */
    unsigned warmPasses = 6;
};

/** Hot/cold region-run generator used for all named workloads. */
class WorkloadGen : public TrafficSource
{
  public:
    explicit WorkloadGen(const WorkloadGenParams &params);

    Request next() override;
    bool rewind() override;

    /**
     * Auto warmup quota: enough passes over the footprint to reach a
     * steady-state cache population (at least 50k accesses).
     */
    std::uint64_t defaultWarmQuota() const override;

    std::string describe() const override;

    const WorkloadGenParams &params() const { return params_; }

  private:
    void startRun();

    WorkloadGenParams params_;
    Rng rng;

    std::uint64_t hot_regions;
    std::uint64_t total_regions;
    std::uint64_t cold_scan = 0;
    std::uint64_t position_ = 0;

    // Current run state.
    std::uint64_t run_region = 0;
    unsigned run_offset = 0;
    unsigned run_left = 0;
};

/**
 * The cyclic-reference kernel of Section IV-B1: two lines a and b that
 * map to the same set, accessed as (a, b) repeated N times, then a new
 * conflicting pair, and so on.
 */
class CyclicPairGen : public TrafficSource
{
  public:
    /**
     * @param set_count  number of sets of the target cache (pairs are
     *                   constructed to collide in a set)
     * @param iterations N: how many times each pair repeats
     */
    CyclicPairGen(std::uint64_t set_count, unsigned iterations,
                  std::uint64_t seed);

    Request next() override;
    bool rewind() override;
    std::string describe() const override;

  private:
    void newPair();

    std::uint64_t set_count;
    unsigned iterations;
    std::uint64_t seed_;
    Rng rng;
    std::uint64_t position_ = 0;

    LineAddr line_a = 0;
    LineAddr line_b = 0;
    unsigned remaining = 0;
    bool emit_b = false;
};

/** One element of the L4-bound stream: a demand read or a writeback. */
struct L4Access
{
    LineAddr line = 0;
    bool isWriteback = false;
};

/**
 * Converts a demand stream into the L4 traffic mix by re-emitting a
 * fraction of demand lines as writebacks after a configurable lag
 * (modeling dirty lines leaving the L3 a while after they were used).
 * Once a bounded upstream runs dry the pending writebacks drain, then
 * the mixer itself exhausts.
 */
class WritebackMixer : public TrafficSource
{
  public:
    WritebackMixer(TrafficSource &source, double writeback_frac,
                   unsigned lag, std::uint64_t seed);

    Request next() override;
    bool exhausted() const override;
    bool bounded() const override { return source.bounded(); }
    bool rewind() override;
    std::string describe() const override;

    std::uint64_t
    defaultWarmQuota() const override
    {
        return source.defaultWarmQuota();
    }

  private:
    TrafficSource &source;
    double wb_frac;
    unsigned lag;
    std::uint64_t seed_;
    Rng rng;
    std::uint64_t position_ = 0;
    std::deque<LineAddr> pending;
};

} // namespace accord::trace

#endif // ACCORD_TRACE_GENERATOR_HPP

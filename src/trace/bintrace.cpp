#include "trace/bintrace.hpp"

#include <cstring>

#include "common/log.hpp"

#ifdef ACCORD_HAVE_ZLIB
#include <zlib.h>
#endif

namespace accord::trace
{

namespace
{

/** Buffered-IO chunk size: bounded memory however large the trace. */
constexpr std::size_t kChunkBytes = 64 * 1024;

constexpr unsigned char kCtrlWriteback = 0x01;
constexpr unsigned char kCtrlClassFollows = 0x02;
constexpr unsigned char kCtrlReservedMask = 0xFC;

void
putVarint(std::vector<unsigned char> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<unsigned char>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<unsigned char>(value));
}

std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1)
        ^ static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1)
        ^ -static_cast<std::int64_t>(value & 1);
}

} // namespace

bool
binTraceGzipAvailable()
{
#ifdef ACCORD_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

BinTraceWriter::BinTraceWriter(const std::string &path, bool gzip)
{
    buffer_.reserve(kChunkBytes + 32);
    unsigned char header[kBinTraceHeaderBytes] = {};
    std::memcpy(header, kBinTraceMagic, sizeof(kBinTraceMagic));
    // flags byte and record count stay 0; close() patches the count
    // for plain files.
    if (gzip) {
#ifdef ACCORD_HAVE_ZLIB
        gzFile gz = gzopen(path.c_str(), "wb6");
        if (gz == nullptr)
            fatal("cannot open trace '%s' for writing", path.c_str());
        gz_ = gz;
        if (gzwrite(gz, header, sizeof(header))
            != static_cast<int>(sizeof(header)))
            fatal("write error on trace '%s'", path.c_str());
#else
        fatal("gzip trace output needs zlib (built without "
              "ACCORD_HAVE_ZLIB)");
#endif
        return;
    }
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        fatal("cannot open trace '%s' for writing", path.c_str());
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        fatal("write error on trace '%s'", path.c_str());
}

BinTraceWriter::~BinTraceWriter()
{
    close();
}

void
BinTraceWriter::append(LineAddr line, core::RequestKind kind,
                       std::uint16_t cls)
{
    unsigned char control = 0;
    if (kind == core::RequestKind::Writeback)
        control |= kCtrlWriteback;
    if (cls != prev_cls_)
        control |= kCtrlClassFollows;
    buffer_.push_back(control);
    putVarint(buffer_,
              zigzagEncode(static_cast<std::int64_t>(line - prev_line_)));
    if (control & kCtrlClassFollows)
        putVarint(buffer_, cls);
    prev_line_ = line;
    prev_cls_ = cls;
    ++records_;
    if (buffer_.size() >= kChunkBytes)
        flushBuffer();
}

void
BinTraceWriter::flushBuffer()
{
    if (buffer_.empty())
        return;
#ifdef ACCORD_HAVE_ZLIB
    if (gz_ != nullptr) {
        if (gzwrite(static_cast<gzFile>(gz_), buffer_.data(),
                    static_cast<unsigned>(buffer_.size()))
            != static_cast<int>(buffer_.size()))
            fatal("write error on gzip trace");
        buffer_.clear();
        return;
    }
#endif
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_)
        != buffer_.size())
        fatal("write error on trace");
    buffer_.clear();
}

void
BinTraceWriter::close()
{
    if (file_ == nullptr && gz_ == nullptr)
        return;
    flushBuffer();
#ifdef ACCORD_HAVE_ZLIB
    if (gz_ != nullptr) {
        // Record count stays "unknown" — a gzip stream cannot be
        // patched in place after writing.
        gzclose(static_cast<gzFile>(gz_));
        gz_ = nullptr;
        return;
    }
#endif
    // Patch the record count into the fixed header slot.
    unsigned char count[8];
    for (int i = 0; i < 8; ++i)
        count[i] = static_cast<unsigned char>(records_ >> (8 * i));
    if (std::fseek(file_, 9, SEEK_SET) != 0
        || std::fwrite(count, 1, sizeof(count), file_) != sizeof(count))
        fatal("cannot patch record count into trace header");
    std::fclose(file_);
    file_ = nullptr;
}

BinTraceReader::BinTraceReader(const std::string &path) : path_(path)
{
    buffer_.resize(kChunkBytes);
    open();
}

BinTraceReader::~BinTraceReader()
{
    closeFile();
}

void
BinTraceReader::open()
{
#ifdef ACCORD_HAVE_ZLIB
    // gzread reads gzip-wrapped and plain files transparently.
    gzFile gz = gzopen(path_.c_str(), "rb");
    if (gz == nullptr)
        fatal("cannot open trace '%s'", path_.c_str());
    gz_ = gz;
#else
    file_ = std::fopen(path_.c_str(), "rb");
    if (file_ == nullptr)
        fatal("cannot open trace '%s'", path_.c_str());
#endif
    buf_pos_ = 0;
    buf_len_ = 0;
    records_ = 0;
    prev_line_ = 0;
    cls_ = 0;
    readHeader();
}

void
BinTraceReader::closeFile()
{
#ifdef ACCORD_HAVE_ZLIB
    if (gz_ != nullptr) {
        gzclose(static_cast<gzFile>(gz_));
        gz_ = nullptr;
    }
#endif
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
BinTraceReader::fill()
{
    buf_pos_ = 0;
#ifdef ACCORD_HAVE_ZLIB
    const int n = gzread(static_cast<gzFile>(gz_), buffer_.data(),
                         static_cast<unsigned>(buffer_.size()));
    if (n < 0)
        fatal("read error on trace '%s'", path_.c_str());
    buf_len_ = static_cast<std::size_t>(n);
#else
    buf_len_ = std::fread(buffer_.data(), 1, buffer_.size(), file_);
#endif
    return buf_len_ > 0;
}

bool
BinTraceReader::tryByte(unsigned char &out)
{
    if (buf_pos_ >= buf_len_ && !fill())
        return false;
    out = buffer_[buf_pos_++];
    return true;
}

unsigned char
BinTraceReader::needByte(const char *what)
{
    unsigned char byte;
    if (!tryByte(byte))
        fatal("truncated trace '%s' (eof inside %s)", path_.c_str(),
              what);
    return byte;
}

std::uint64_t
BinTraceReader::readVarint(const char *what)
{
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
        const unsigned char byte = needByte(what);
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            return value;
        shift += 7;
        if (shift >= 64)
            fatal("corrupt trace '%s' (varint overflow in %s)",
                  path_.c_str(), what);
    }
}

void
BinTraceReader::readHeader()
{
    unsigned char header[kBinTraceHeaderBytes];
    for (std::size_t i = 0; i < sizeof(header); ++i) {
        if (!tryByte(header[i]))
            fatal("not an ACCORD binary trace: '%s' (short header)",
                  path_.c_str());
    }
    if (std::memcmp(header, kBinTraceMagic, sizeof(kBinTraceMagic))
        != 0)
        fatal("not an ACCORD binary trace: '%s' (bad magic)",
              path_.c_str());
    if (header[8] != 0)
        fatal("trace '%s': unsupported flags 0x%02x", path_.c_str(),
              header[8]);
    declared_ = 0;
    for (int i = 0; i < 8; ++i)
        declared_ |= static_cast<std::uint64_t>(header[9 + i])
            << (8 * i);
}

bool
BinTraceReader::next(Request &out)
{
    unsigned char control;
    if (!tryByte(control)) {
        if (declared_ > 0 && records_ != declared_)
            fatal("truncated trace '%s' (%llu of %llu records)",
                  path_.c_str(),
                  static_cast<unsigned long long>(records_),
                  static_cast<unsigned long long>(declared_));
        return false;
    }
    if (control & kCtrlReservedMask)
        fatal("corrupt trace '%s' (reserved control bits set)",
              path_.c_str());
    const std::int64_t delta =
        zigzagDecode(readVarint("line delta"));
    prev_line_ += static_cast<std::uint64_t>(delta);
    if (control & kCtrlClassFollows) {
        const std::uint64_t cls = readVarint("request class");
        if (cls > 0xFFFF)
            fatal("corrupt trace '%s' (request class %llu > 16 bit)",
                  path_.c_str(),
                  static_cast<unsigned long long>(cls));
        cls_ = static_cast<std::uint16_t>(cls);
    }
    out.line = prev_line_;
    out.kind = (control & kCtrlWriteback) ? core::RequestKind::Writeback
                                          : core::RequestKind::Demand;
    out.cls = cls_;
    out.warmup = false;
    out.position = records_++;
    return true;
}

void
BinTraceReader::rewind()
{
    closeFile();
    open();
}

TraceSource::TraceSource(const std::string &path, bool loop,
                         unsigned stripe_count, unsigned stripe_index)
    : reader_(path), loop_(loop), stripe_count_(stripe_count),
      stripe_index_(stripe_index)
{
    ACCORD_ASSERT(stripe_count_ >= 1 && stripe_index_ < stripe_count_,
                  "bad trace stripe");
    advance();
}

void
TraceSource::advance()
{
    has_pending_ = false;
    for (;;) {
        Request req;
        if (!reader_.next(req)) {
            if (reader_.recordsRead() == 0)
                fatal("trace has no records");
            if (!loop_)
                return;
            reader_.rewind();
            global_pos_ = 0;
            continue;
        }
        const bool keep =
            global_pos_ % stripe_count_ == stripe_index_;
        ++global_pos_;
        if (keep) {
            pending_ = req;
            pending_.position = emitted_;
            has_pending_ = true;
            return;
        }
    }
}

Request
TraceSource::next()
{
    ACCORD_ASSERT(has_pending_, "next() on an exhausted trace source");
    const Request out = pending_;
    ++emitted_;
    advance();
    return out;
}

std::uint64_t
TraceSource::size() const
{
    if (loop_)
        return 0;
    const std::uint64_t declared = reader_.declaredCount();
    if (declared == 0)
        return 0;
    if (declared <= stripe_index_)
        return 0;
    return (declared - stripe_index_ + stripe_count_ - 1)
        / stripe_count_;
}

bool
TraceSource::rewind()
{
    reader_.rewind();
    global_pos_ = 0;
    emitted_ = 0;
    advance();
    return true;
}

std::string
TraceSource::describe() const
{
    std::string out = "accord.trace replay";
    if (stripe_count_ > 1) {
        out += " stripe " + std::to_string(stripe_index_) + "/"
            + std::to_string(stripe_count_);
    }
    if (loop_)
        out += " (looped)";
    return out;
}

} // namespace accord::trace

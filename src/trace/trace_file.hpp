/**
 * @file
 * Recording and replay of L4 access streams.
 *
 * Users with real traces (e.g. post-LLC miss streams captured from a
 * binary-instrumentation tool) can convert them to this format and
 * drive the DRAM cache with them instead of the synthetic models.  The
 * format is a flat binary stream: an 8-byte header ("ACRDTRC1"), then
 * one 9-byte record per access — 8-byte little-endian line address
 * plus a flags byte (bit 0: writeback).
 */

#ifndef ACCORD_TRACE_TRACE_FILE_HPP
#define ACCORD_TRACE_TRACE_FILE_HPP

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace accord::trace
{

/** Writes an access stream to a trace file. */
class TraceWriter
{
  public:
    /** Open for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one access. */
    void append(const L4Access &access);

    /** Flush and close (also done by the destructor). */
    void close();

    std::uint64_t recordsWritten() const { return records; }

  private:
    std::FILE *file = nullptr;
    std::uint64_t records = 0;
};

/** Replays a trace file, optionally looping at the end. */
class TraceReplay
{
  public:
    /**
     * Load a trace into memory; fatal() on a missing or malformed
     * file.
     *
     * @param loop wrap around at end-of-trace (next() never runs dry)
     */
    explicit TraceReplay(const std::string &path, bool loop = true);

    /** Number of records in the trace. */
    std::uint64_t size() const { return accesses.size(); }

    /** True if the cursor wrapped (or hit the end in no-loop mode). */
    bool exhausted() const { return exhausted_; }

    /** Next access; in no-loop mode repeats the last one when dry. */
    L4Access next();

    /** Rewind to the beginning. */
    void rewind();

  private:
    std::vector<L4Access> accesses;
    std::size_t cursor = 0;
    bool loop;
    bool exhausted_ = false;
};

/**
 * Adapter exposing the demand reads of a TraceReplay as an
 * AccessGenerator (writeback records are skipped), so a recorded
 * trace can drive anything the synthetic generators can.
 */
class TraceDemandGen : public AccessGenerator
{
  public:
    explicit TraceDemandGen(TraceReplay &replay) : replay(replay) {}

    LineAddr
    next() override
    {
        for (;;) {
            const L4Access access = replay.next();
            if (!access.isWriteback)
                return access.line;
        }
    }

  private:
    TraceReplay &replay;
};

} // namespace accord::trace

#endif // ACCORD_TRACE_TRACE_FILE_HPP

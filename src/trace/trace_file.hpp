/**
 * @file
 * Recording and replay of L4 access streams.
 *
 * This is the *legacy* fixed-width format: a flat binary stream with
 * an 8-byte header ("ACRDTRC1"), then one 9-byte record per access —
 * 8-byte little-endian line address plus a flags byte (bit 0:
 * writeback).  It stays readable, but new traces should use the
 * compact accord.trace/1 format (bintrace.hpp, ~2 bytes/record,
 * streaming decode) produced by tools/convert_trace.py; see
 * docs/TRACES.md.
 */

#ifndef ACCORD_TRACE_TRACE_FILE_HPP
#define ACCORD_TRACE_TRACE_FILE_HPP

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace accord::trace
{

/** Writes an access stream to a trace file. */
class TraceWriter
{
  public:
    /** Open for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one access. */
    void append(const L4Access &access);

    /** Flush and close (also done by the destructor). */
    void close();

    std::uint64_t recordsWritten() const { return records; }

  private:
    std::FILE *file = nullptr;
    std::uint64_t records = 0;
};

/** Replays a trace file, optionally looping at the end. */
class TraceReplay
{
  public:
    /**
     * Load a trace into memory; fatal() on a missing or malformed
     * file.
     *
     * @param loop wrap around at end-of-trace (next() never runs dry)
     */
    explicit TraceReplay(const std::string &path, bool loop = true);

    /** Number of records in the trace. */
    std::uint64_t size() const { return accesses.size(); }

    /** True if the cursor wrapped (or hit the end in no-loop mode). */
    bool exhausted() const { return exhausted_; }

    /** Next access; in no-loop mode repeats the last one when dry. */
    L4Access next();

    /** Rewind to the beginning. */
    void rewind();

  private:
    std::vector<L4Access> accesses;
    std::size_t cursor = 0;
    bool loop;
    bool exhausted_ = false;
};

/**
 * Adapter exposing the demand reads of a TraceReplay as a
 * TrafficSource (writeback records are skipped), so a recorded
 * trace can drive anything the synthetic generators can.
 */
class TraceDemandGen : public TrafficSource
{
  public:
    explicit TraceDemandGen(TraceReplay &replay) : replay(replay) {}

    Request
    next() override
    {
        for (;;) {
            const L4Access access = replay.next();
            if (!access.isWriteback) {
                Request req;
                req.line = access.line;
                req.position = position_++;
                return req;
            }
        }
    }

    std::string describe() const override { return "legacy trace"; }

  private:
    TraceReplay &replay;
    std::uint64_t position_ = 0;
};

} // namespace accord::trace

#endif // ACCORD_TRACE_TRACE_FILE_HPP

#include "trace/generator.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::trace
{

std::uint64_t
physRegionOf(std::uint64_t region, std::uint64_t salt)
{
    return mix64(region * 0x100000001b3ULL + salt)
        & (physRegionSpace - 1);
}

WorkloadGen::WorkloadGen(const WorkloadGenParams &params)
    : params_(params), rng(params.seed)
{
    ACCORD_ASSERT(params.footprintLines >= linesPerRegion,
                  "footprint must cover at least one region");
    total_regions = params.footprintLines / linesPerRegion;
    hot_regions = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(total_regions) * params.hotPortion));
    startRun();
}

void
WorkloadGen::startRun()
{
    const bool hot =
        rng.chance(params_.hotAccessFrac) || hot_regions == total_regions;
    unsigned run_len;
    if (hot) {
        run_region = rng.below(hot_regions);
        run_len = params_.hotRunLen;
    } else {
        // Cold regions live after the hot ones in workload space.
        const std::uint64_t cold_count = total_regions - hot_regions;
        std::uint64_t cold_index;
        if (params_.coldRandom) {
            cold_index = rng.below(cold_count);
        } else {
            cold_index = cold_scan;
            cold_scan = (cold_scan + 1) % cold_count;
        }
        run_region = hot_regions + cold_index;
        run_len = params_.coldRunLen;
    }
    run_left = std::max(1u, run_len);
    run_offset = run_len >= linesPerRegion
        ? 0u
        : static_cast<unsigned>(rng.below(linesPerRegion));
}

Request
WorkloadGen::next()
{
    const std::uint64_t phys =
        physRegionOf(run_region, params_.salt);
    Request req;
    req.line = phys * linesPerRegion + (run_offset % linesPerRegion);
    req.position = position_++;
    ++run_offset;
    if (--run_left == 0)
        startRun();
    return req;
}

bool
WorkloadGen::rewind()
{
    rng = Rng(params_.seed);
    cold_scan = 0;
    position_ = 0;
    startRun();
    return true;
}

std::uint64_t
WorkloadGen::defaultWarmQuota() const
{
    return std::max<std::uint64_t>(
        50'000, params_.footprintLines * params_.warmPasses);
}

std::string
WorkloadGen::describe() const
{
    return "synthetic hot/cold model ("
        + std::to_string(params_.footprintLines) + " lines)";
}

CyclicPairGen::CyclicPairGen(std::uint64_t set_count,
                             unsigned iterations, std::uint64_t seed)
    : set_count(set_count), iterations(iterations), seed_(seed),
      rng(seed)
{
    ACCORD_ASSERT(isPow2(set_count), "set count must be pow2");
    ACCORD_ASSERT(iterations >= 1, "need at least one iteration");
    newPair();
}

void
CyclicPairGen::newPair()
{
    // Two distinct lines that map to the same set: same set index,
    // different tags.
    const std::uint64_t set = rng.below(set_count);
    const std::uint64_t tag_a = rng.next() & 0xffff;
    std::uint64_t tag_b = rng.next() & 0xffff;
    if (tag_b == tag_a)
        tag_b ^= 1;
    line_a = (tag_a * set_count) | set;
    line_b = (tag_b * set_count) | set;
    remaining = iterations * 2;
    emit_b = false;
}

Request
CyclicPairGen::next()
{
    if (remaining == 0)
        newPair();
    Request req;
    req.line = emit_b ? line_b : line_a;
    req.position = position_++;
    emit_b = !emit_b;
    --remaining;
    return req;
}

bool
CyclicPairGen::rewind()
{
    rng = Rng(seed_);
    position_ = 0;
    newPair();
    return true;
}

std::string
CyclicPairGen::describe() const
{
    return "cyclic conflict pairs (" + std::to_string(set_count)
        + " sets x " + std::to_string(iterations) + ")";
}

WritebackMixer::WritebackMixer(TrafficSource &source,
                               double writeback_frac, unsigned lag,
                               std::uint64_t seed)
    : source(source), wb_frac(writeback_frac), lag(lag), seed_(seed),
      rng(seed)
{
    ACCORD_ASSERT(writeback_frac >= 0.0 && writeback_frac < 1.0,
                  "writeback fraction must be in [0,1)");
}

Request
WritebackMixer::next()
{
    Request req;
    if (pending.size() >= lag
        || (source.exhausted() && !pending.empty())) {
        req.line = pending.front();
        req.kind = core::RequestKind::Writeback;
        req.position = position_++;
        pending.pop_front();
        return req;
    }
    ACCORD_ASSERT(!source.exhausted(),
                  "next() on an exhausted writeback mixer");
    const Request demand = source.next();
    if (wb_frac > 0.0 && rng.chance(wb_frac))
        pending.push_back(demand.line);
    req.line = demand.line;
    req.cls = demand.cls;
    req.position = position_++;
    return req;
}

bool
WritebackMixer::exhausted() const
{
    return source.exhausted() && pending.empty();
}

bool
WritebackMixer::rewind()
{
    if (!source.rewind())
        return false;
    rng = Rng(seed_);
    pending.clear();
    position_ = 0;
    return true;
}

std::string
WritebackMixer::describe() const
{
    return "writeback mixer over " + source.describe();
}

} // namespace accord::trace

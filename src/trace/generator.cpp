#include "trace/generator.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::trace
{

std::uint64_t
physRegionOf(std::uint64_t region, std::uint64_t salt)
{
    return mix64(region * 0x100000001b3ULL + salt)
        & (physRegionSpace - 1);
}

WorkloadGen::WorkloadGen(const WorkloadGenParams &params)
    : params_(params), rng(params.seed)
{
    ACCORD_ASSERT(params.footprintLines >= linesPerRegion,
                  "footprint must cover at least one region");
    total_regions = params.footprintLines / linesPerRegion;
    hot_regions = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(total_regions) * params.hotPortion));
    startRun();
}

void
WorkloadGen::startRun()
{
    const bool hot =
        rng.chance(params_.hotAccessFrac) || hot_regions == total_regions;
    unsigned run_len;
    if (hot) {
        run_region = rng.below(hot_regions);
        run_len = params_.hotRunLen;
    } else {
        // Cold regions live after the hot ones in workload space.
        const std::uint64_t cold_count = total_regions - hot_regions;
        std::uint64_t cold_index;
        if (params_.coldRandom) {
            cold_index = rng.below(cold_count);
        } else {
            cold_index = cold_scan;
            cold_scan = (cold_scan + 1) % cold_count;
        }
        run_region = hot_regions + cold_index;
        run_len = params_.coldRunLen;
    }
    run_left = std::max(1u, run_len);
    run_offset = run_len >= linesPerRegion
        ? 0u
        : static_cast<unsigned>(rng.below(linesPerRegion));
}

LineAddr
WorkloadGen::next()
{
    const std::uint64_t phys =
        physRegionOf(run_region, params_.salt);
    const LineAddr line =
        phys * linesPerRegion + (run_offset % linesPerRegion);
    ++run_offset;
    if (--run_left == 0)
        startRun();
    return line;
}

CyclicPairGen::CyclicPairGen(std::uint64_t set_count,
                             unsigned iterations, std::uint64_t seed)
    : set_count(set_count), iterations(iterations), rng(seed)
{
    ACCORD_ASSERT(isPow2(set_count), "set count must be pow2");
    ACCORD_ASSERT(iterations >= 1, "need at least one iteration");
    newPair();
}

void
CyclicPairGen::newPair()
{
    // Two distinct lines that map to the same set: same set index,
    // different tags.
    const std::uint64_t set = rng.below(set_count);
    const std::uint64_t tag_a = rng.next() & 0xffff;
    std::uint64_t tag_b = rng.next() & 0xffff;
    if (tag_b == tag_a)
        tag_b ^= 1;
    line_a = (tag_a * set_count) | set;
    line_b = (tag_b * set_count) | set;
    remaining = iterations * 2;
    emit_b = false;
}

LineAddr
CyclicPairGen::next()
{
    if (remaining == 0)
        newPair();
    const LineAddr line = emit_b ? line_b : line_a;
    emit_b = !emit_b;
    --remaining;
    return line;
}

WritebackMixer::WritebackMixer(AccessGenerator &source,
                               double writeback_frac, unsigned lag,
                               std::uint64_t seed)
    : source(source), wb_frac(writeback_frac), lag(lag), rng(seed)
{
    ACCORD_ASSERT(writeback_frac >= 0.0 && writeback_frac < 1.0,
                  "writeback fraction must be in [0,1)");
}

L4Access
WritebackMixer::next()
{
    if (pending.size() >= lag) {
        const LineAddr line = pending.front();
        pending.pop_front();
        return {line, true};
    }
    const LineAddr line = source.next();
    if (wb_frac > 0.0 && rng.chance(wb_frac))
        pending.push_back(line);
    return {line, false};
}

} // namespace accord::trace

/**
 * @file
 * Named workload models for the paper's evaluation (Table IV and
 * Section VI-A: 29 SPEC + 10 SPEC mixes + 6 GAP + 1 HPC = 46).
 *
 * Each spec records the full-scale (16-core rate mode) footprint and
 * L3 MPKI plus the locality knobs of the synthetic generator.  The
 * exact per-benchmark footprints/MPKI were reconstructed from typical
 * published characterizations (EXPERIMENTS.md documents this); the
 * locality knobs were calibrated so the suite reproduces the paper's
 * aggregate behaviour (hit rates by associativity, GWS accuracy
 * classes, sensitivity ordering).
 */

#ifndef ACCORD_TRACE_WORKLOADS_HPP
#define ACCORD_TRACE_WORKLOADS_HPP

#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace accord::trace
{

/** Model of one named benchmark (rate mode: all 16 cores run it). */
struct WorkloadSpec
{
    std::string name;
    std::string suite;          ///< "spec", "gap", "hpc"

    /** Total footprint across all cores at full (4GB-cache) scale. */
    double footprintGB = 1.0;

    /** L3 misses per kilo-instruction (drives the core's issue gap). */
    double mpki = 10.0;

    // Generator locality knobs (see WorkloadGenParams).
    double hotPortion = 0.5;
    double hotAccessFrac = 0.8;
    unsigned hotRunLen = 8;
    unsigned coldRunLen = 8;
    bool coldRandom = false;

    /** Fraction of demand lines that later return as writebacks. */
    double wbFrac = 0.30;

    /** Member of the 21-workload main evaluation set. */
    bool sensitiveSet = false;

    /**
     * Footprint passes of functional warmup this workload needs.
     * Scanning workloads need many: PWS resolves a conflicting pair
     * only after ~1/(1-PIP) encounters (Fig 6), one per pass.
     */
    unsigned warmPasses = 6;
};

/** All 36 single-benchmark models (29 SPEC + 6 GAP + 1 HPC). */
const std::vector<WorkloadSpec> &allBenchmarks();

/** Look up a benchmark by name; fatal() if unknown. */
const WorkloadSpec &findBenchmark(const std::string &name);

/**
 * The 21 main-evaluation workload names in the paper's figure order:
 * milc sphinx nekbone cc_web pr_web mcf xalanc bc_twi pr_twi cc_twi
 * omnet wrf zeusmp gcc libq leslie soplex mix1 mix2 mix3 mix4.
 */
std::vector<std::string> mainWorkloadNames();

/** All 46 workload names (29 SPEC, 10 mixes, 6 GAP, 1 HPC). */
std::vector<std::string> allWorkloadNames();

/** True if the name denotes a mix ("mix1".."mix10"). */
bool isMix(const std::string &name);

/**
 * Per-core benchmark assignment for a workload name: rate mode
 * replicates one spec across all cores; mixes pick 16 benchmarks with
 * MPKI >= 2 (Section III-B).
 */
std::vector<const WorkloadSpec *>
coreAssignment(const std::string &workload, unsigned num_cores);

/**
 * Generator parameters for one core of a workload.
 *
 * @param spec      benchmark model for this core
 * @param core      core id (isolates the core's address space)
 * @param num_cores cores sharing the footprint (rate mode divides it)
 * @param scale     footprint divisor matching the cache-size scale
 * @param seed      base RNG seed
 */
WorkloadGenParams
generatorParams(const WorkloadSpec &spec, unsigned core,
                unsigned num_cores, std::uint64_t scale,
                std::uint64_t seed);

} // namespace accord::trace

#endif // ACCORD_TRACE_WORKLOADS_HPP

#include "trace/source.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "trace/bintrace.hpp"
#include "trace/generator.hpp"
#include "trace/workloads.hpp"

namespace accord::trace
{

namespace
{

/** Parse an unsigned with the CLI's k/M/G/T suffixes; fatal if bad. */
std::uint64_t
parseScaledUint(const std::string &key, const std::string &text)
{
    char *end = nullptr;
    const double base = std::strtod(text.c_str(), &end);
    std::uint64_t multiplier = 1;
    if (end != text.c_str() && *end != '\0') {
        switch (std::tolower(static_cast<unsigned char>(*end))) {
          case 'k': multiplier = 1ULL << 10; ++end; break;
          case 'm': multiplier = 1ULL << 20; ++end; break;
          case 'g': multiplier = 1ULL << 30; ++end; break;
          case 't': multiplier = 1ULL << 40; ++end; break;
          default: break;
        }
    }
    if (end == text.c_str() || *end != '\0' || base < 0)
        fatal("source spec: bad value '%s' for option '%s'",
              text.c_str(), key.c_str());
    return static_cast<std::uint64_t>(base)
        * multiplier;
}

/** Path tail after the last '/' (report-embedded file names). */
std::string
basenameOf(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/**
 * The synthetic workload model behind the "synthetic" registry entry:
 * a WorkloadGen stream, optionally mixed with writeback traffic,
 * optionally bounded to `limit` requests so the sampler can take two
 * passes over it.
 */
class SyntheticSource final : public TrafficSource
{
  public:
    SyntheticSource(const WorkloadGenParams &gen_params, double wb_frac,
                    unsigned lag, std::uint64_t mixer_seed,
                    bool mix_writebacks, std::uint64_t limit)
        : gen_(gen_params), limit_(limit), left_(limit)
    {
        if (mix_writebacks)
            mixer_.emplace(gen_, wb_frac, lag, mixer_seed);
    }

    Request
    next() override
    {
        ACCORD_ASSERT(!exhausted(),
                      "next() on an exhausted synthetic source");
        const Request req = mixer_ ? mixer_->next() : gen_.next();
        if (limit_ > 0)
            --left_;
        return req;
    }

    bool
    exhausted() const override
    {
        return limit_ > 0 && left_ == 0;
    }

    bool bounded() const override { return limit_ > 0; }
    std::uint64_t size() const override { return limit_; }

    bool
    rewind() override
    {
        if (mixer_)
            mixer_->rewind();
        else
            gen_.rewind();
        left_ = limit_;
        return true;
    }

    std::uint64_t
    defaultWarmQuota() const override
    {
        // Bounded streams get no automatic warmup: it would consume
        // the records the measurement phase is there to replay.
        return limit_ > 0 ? 0 : gen_.defaultWarmQuota();
    }

    std::string
    describe() const override
    {
        return (mixer_ ? mixer_->describe() : gen_.describe())
            + (limit_ > 0 ? " limit " + std::to_string(limit_) : "");
    }

  private:
    WorkloadGen gen_;
    std::optional<WritebackMixer> mixer_;
    std::uint64_t limit_;
    std::uint64_t left_;
};

void
registerSynthetic(core::NamedRegistry<SourceFactory> &registry)
{
    SourceFactory factory;
    factory.make = [](const SourceSpecParts &parts,
                      const SourceContext &ctx)
        -> std::unique_ptr<TrafficSource> {
        parts.requireKnown({"limit"});
        if (ctx.spec == nullptr)
            fatal("source=synthetic needs a workload spec");
        const WorkloadGenParams gen_params = generatorParams(
            *ctx.spec, ctx.core, ctx.numCores, ctx.scale, ctx.seed);
        return std::make_unique<SyntheticSource>(
            gen_params, ctx.spec->wbFrac, ctx.wbLag,
            mix64(ctx.seed * 977 + ctx.core), ctx.mixWritebacks,
            parts.optionUint("limit", 0));
    };
    factory.canonical = [](const SourceSpecParts &parts) {
        parts.requireKnown({"limit"});
        const std::uint64_t limit = parts.optionUint("limit", 0);
        if (limit == 0)
            return std::string("synthetic");
        return "synthetic(limit=" + std::to_string(limit) + ")";
    };
    registry.add("synthetic", std::move(factory));
}

void
registerCyclic(core::NamedRegistry<SourceFactory> &registry)
{
    SourceFactory factory;
    factory.make = [](const SourceSpecParts &parts,
                      const SourceContext &ctx)
        -> std::unique_ptr<TrafficSource> {
        parts.requireKnown({"sets", "iters"});
        return std::make_unique<CyclicPairGen>(
            parts.optionUint("sets", 1024),
            static_cast<unsigned>(parts.optionUint("iters", 100)),
            mix64(ctx.seed * 613 + ctx.core));
    };
    factory.canonical = [](const SourceSpecParts &parts) {
        parts.requireKnown({"sets", "iters"});
        return "cyclic(sets="
            + std::to_string(parts.optionUint("sets", 1024)) + ",iters="
            + std::to_string(parts.optionUint("iters", 100)) + ")";
    };
    registry.add("cyclic", std::move(factory));
}

void
registerTrace(core::NamedRegistry<SourceFactory> &registry)
{
    SourceFactory factory;
    factory.make = [](const SourceSpecParts &parts,
                      const SourceContext &ctx)
        -> std::unique_ptr<TrafficSource> {
        parts.requireKnown({"file", "loop", "stripe"});
        const std::string file = parts.option("file", "");
        if (file.empty())
            fatal("source=trace needs file=<path.trc>");
        const bool loop = parts.optionUint("loop", 0) != 0;
        const bool stripe = parts.optionUint("stripe", 1) != 0;
        return std::make_unique<TraceSource>(
            file, loop, stripe ? ctx.numCores : 1,
            stripe ? ctx.core : 0);
    };
    factory.canonical = [](const SourceSpecParts &parts) {
        parts.requireKnown({"file", "loop", "stripe"});
        // Basename only: reports must not embed host-specific paths.
        return "trace(file=" + basenameOf(parts.option("file", ""))
            + ",loop=" + std::to_string(parts.optionUint("loop", 0))
            + ",stripe="
            + std::to_string(parts.optionUint("stripe", 1)) + ")";
    };
    registry.add("trace", std::move(factory));
}

} // namespace

std::string
SourceSpecParts::option(const std::string &key,
                        const std::string &fallback) const
{
    for (const auto &[k, v] : options) {
        if (k == key)
            return v;
    }
    return fallback;
}

std::uint64_t
SourceSpecParts::optionUint(const std::string &key,
                            std::uint64_t fallback) const
{
    const std::string text = option(key, "");
    if (text.empty())
        return fallback;
    return parseScaledUint(key, text);
}

void
SourceSpecParts::requireKnown(
    const std::vector<std::string> &known) const
{
    for (const auto &[k, v] : options) {
        (void)v;
        bool found = false;
        for (const std::string &candidate : known)
            found = found || candidate == k;
        if (!found)
            fatal("source '%s': unknown option '%s'", name.c_str(),
                  k.c_str());
    }
}

SourceSpecParts
parseSourceSpec(const std::string &spec)
{
    SourceSpecParts parts;
    const auto open = spec.find('(');
    if (open == std::string::npos) {
        parts.name = spec;
    } else {
        if (spec.empty() || spec.back() != ')')
            fatal("malformed source spec '%s'", spec.c_str());
        parts.name = spec.substr(0, open);
        std::string inner =
            spec.substr(open + 1, spec.size() - open - 2);
        while (!inner.empty()) {
            const auto comma = inner.find(',');
            const std::string item = inner.substr(0, comma);
            inner = comma == std::string::npos
                ? std::string()
                : inner.substr(comma + 1);
            const auto eq = item.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("malformed source option '%s' in '%s'",
                      item.c_str(), spec.c_str());
            parts.options.emplace_back(item.substr(0, eq),
                                       item.substr(eq + 1));
        }
    }
    if (parts.name.empty())
        fatal("empty source name in spec '%s'", spec.c_str());
    return parts;
}

core::NamedRegistry<SourceFactory> &
trafficSourceRegistry()
{
    static core::NamedRegistry<SourceFactory> registry;
    return registry;
}

void
registerBuiltinTrafficSources()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    auto &registry = trafficSourceRegistry();
    registerSynthetic(registry);
    registerCyclic(registry);
    registerTrace(registry);
}

std::unique_ptr<TrafficSource>
makeTrafficSource(const std::string &spec, const SourceContext &ctx)
{
    registerBuiltinTrafficSources();
    const SourceSpecParts parts = parseSourceSpec(spec);
    const SourceFactory *factory =
        trafficSourceRegistry().find(parts.name);
    if (factory == nullptr)
        fatal("unknown traffic source '%s' (spec '%s')",
              parts.name.c_str(), spec.c_str());
    return factory->make(parts, ctx);
}

std::string
canonicalTrafficSpec(const std::string &spec)
{
    registerBuiltinTrafficSources();
    const SourceSpecParts parts = parseSourceSpec(spec);
    const SourceFactory *factory =
        trafficSourceRegistry().find(parts.name);
    if (factory == nullptr)
        fatal("unknown traffic source '%s' (spec '%s')",
              parts.name.c_str(), spec.c_str());
    return factory->canonical(parts);
}

} // namespace accord::trace

/**
 * @file
 * BBV/SimPoint-style sampled simulation over any bounded
 * TrafficSource.
 *
 * The classic SimPoint recipe (Sherwood et al., ASPLOS 2002) profiles
 * a program as basic-block vectors over fixed-length instruction
 * windows, clusters the vectors with k-means, and simulates one
 * representative window per cluster.  This reproduction has no
 * instruction stream, so the analog signature is a *region-access
 * vector*: for each fixed-length window of the L4 request stream, a
 * histogram over hashed 4KB-region ids (L1-normalized, fixed
 * dimensionality) — phases that touch different page sets land far
 * apart, exactly like differing basic-block mixes.
 *
 * Cold-start bias is handled two ways: every selected window gets a
 * `warmup`-record replay prefix, and `prewarm` additionally replays
 * the first N records of the stream so the cache reaches a populated
 * state before (and exactly as in) the full run — the checkpoint-free
 * stand-in for SimPoint's architectural checkpoints.  Warmup-replay
 * records carry Request::warmup and are excluded from measured
 * statistics (the functional shell brackets them with the
 * controller's stats exclusion); records inside selected windows are
 * measured even when they fall inside the prewarm span.
 *
 * SampledSource wraps a bounded, rewindable inner source and makes
 * two passes: pass 1 streams the whole trace computing window
 * signatures (bounded memory: dims floats per window); then k-means
 * (deterministically seeded via common/rng.hpp) clusters the windows
 * and a *stratified proportional* selection picks round(rate * W)
 * windows, spread evenly inside each cluster so aggregate statistics
 * honor phase weights without per-window weighting machinery.  Pass 2
 * re-streams the trace, emitting only the selected windows, each
 * preceded by `warmup` accesses flagged Request::warmup so the cache
 * warms up but the statistics stay clean (the functional shell
 * excludes them; see DramCacheController stats exclusion).
 *
 * docs/TRACES.md documents methodology and accuracy expectations.
 */

#ifndef ACCORD_TRACE_SAMPLE_HPP
#define ACCORD_TRACE_SAMPLE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace accord::trace
{

/** Knobs of the sampling layer (the sample= CLI spec). */
struct SampleParams
{
    /** Requests per signature window. */
    std::uint64_t window = 4096;

    /** k-means cluster count (clamped to the window count). */
    unsigned clusters = 8;

    /** Target fraction of windows to replay (0 < rate <= 1). */
    double rate = 0.04;

    /** Cache-warmup requests replayed before each selected window
     *  (excluded from measured statistics). */
    std::uint64_t warmup = 1024;

    /**
     * Replay the first `prewarm` records of the stream as cache
     * warmup regardless of window selection (0 = off).  Size it near
     * the cache's line capacity so measured windows see a populated
     * cache; docs/TRACES.md discusses the policy.
     */
    std::uint64_t prewarm = 0;

    /** Signature dimensionality (hashed region-id buckets). */
    unsigned dims = 32;

    /** Maximum k-means iterations. */
    unsigned iters = 10;

    /** Seed of the sampler's private RNG stream. */
    std::uint64_t seed = 1;

    /**
     * Canonical fixed-order rendering
     * ("window=4096,clusters=8,rate=0.04,warmup=1024,prewarm=0,
     * dims=32,iters=10,seed=1"): every knob always appears, so run
     * reports fully identify the sampling configuration.
     */
    std::string toString() const;

    /**
     * Inverse of toString(); accepts any subset of knobs in any order,
     * unset knobs keep their defaults.  fatal() on unknown keys or
     * malformed values.
     */
    static SampleParams fromString(const std::string &text);
};

/** SimPoint-style sampling wrapper; see the file comment. */
class SampledSource final : public TrafficSource
{
  public:
    /**
     * Profile `inner` (must be bounded and rewindable; fatal()
     * otherwise) and build the replay plan.
     */
    SampledSource(std::unique_ptr<TrafficSource> inner,
                  const SampleParams &params);

    Request next() override;
    bool exhausted() const override;
    bool bounded() const override { return true; }

    /** Requests the plan will emit (warmup prefixes included). */
    std::uint64_t size() const override { return planned_events_; }

    bool rewind() override;
    std::string describe() const override;

    // --- plan introspection (tests, bench_trace_replay) ---

    /** Records the inner source held (pass-1 count). */
    std::uint64_t innerRecords() const { return inner_records_; }

    /** Signature windows the inner stream divided into. */
    std::uint64_t windowCount() const { return window_count_; }

    /** Selected window indices, ascending. */
    const std::vector<std::uint64_t> &
    selectedWindows() const
    {
        return selected_;
    }

  private:
    /**
     * One contiguous replay range of inner-stream positions.  Whether
     * a replayed record is measured or warmup is not a segment
     * property: a record is measured iff its window is selected (the
     * prewarm span interleaves warmup gaps with measured windows).
     */
    struct Segment
    {
        std::uint64_t from;  ///< first replayed position
        std::uint64_t to;    ///< one past the last replayed position
    };

    std::vector<float> profile();
    void buildPlan(const std::vector<float> &signatures);

    std::unique_ptr<TrafficSource> inner_;
    SampleParams params_;

    std::uint64_t inner_records_ = 0;
    std::uint64_t window_count_ = 0;
    std::vector<std::uint64_t> selected_;
    std::vector<Segment> segments_;
    std::uint64_t planned_events_ = 0;

    // Pass-2 replay cursor.
    std::size_t seg_idx_ = 0;
    std::size_t sel_idx_ = 0;
    std::uint64_t inner_pos_ = 0;
    std::uint64_t emitted_ = 0;
};

} // namespace accord::trace

#endif // ACCORD_TRACE_SAMPLE_HPP

#include "trace/workloads.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::trace
{

namespace
{

/** Helper to keep the table below readable. */
WorkloadSpec
spec(const char *name, const char *suite, double fp_gb, double mpki,
     double hot_portion, double hot_frac, unsigned hot_run,
     unsigned cold_run, bool cold_random, double wb_frac,
     bool sensitive)
{
    WorkloadSpec s;
    s.name = name;
    s.suite = suite;
    s.footprintGB = fp_gb;
    s.mpki = mpki;
    s.hotPortion = hot_portion;
    s.hotAccessFrac = hot_frac;
    s.hotRunLen = hot_run;
    s.coldRunLen = cold_run;
    s.coldRandom = cold_random;
    s.wbFrac = wb_frac;
    s.sensitiveSet = sensitive;
    return s;
}

std::vector<WorkloadSpec>
buildBenchmarks()
{
    std::vector<WorkloadSpec> v;

    // --- the 11 SPEC benchmarks of Table IV (associativity study) ---
    //    name      suite   fpGB  mpki  hotP  hotF  hR  cR  rnd  wb    main
    v.push_back(spec("soplex", "spec", 8.60, 43.2, 0.160, 0.60, 16, 16,
                     false, 0.30, true));
    v.push_back(spec("leslie", "spec", 6.50, 33.6, 0.120, 0.62, 32, 32,
                     false, 0.30, true));
    v.push_back(spec("libq", "spec", 2.20, 40.0, 1.00, 1.00, 64, 64,
                     false, 0.15, true));
    v.push_back(spec("gcc", "spec", 2.20, 25.6, 0.150, 0.72, 8, 8,
                     false, 0.35, true));
    v.push_back(spec("zeusmp", "spec", 3.20, 8.0, 0.100, 0.70, 32, 32,
                     false, 0.30, true));
    v.push_back(spec("wrf", "spec", 2.50, 12.8, 0.120, 0.70, 32, 32,
                     false, 0.30, true));
    v.push_back(spec("omnet", "spec", 2.50, 33.6, 0.110, 0.66, 4, 4,
                     true, 0.35, true));
    v.push_back(spec("xalanc", "spec", 1.90, 3.7, 0.115, 0.76, 8, 8,
                     false, 0.25, true));
    v.push_back(spec("mcf", "spec", 6.80, 108.8, 0.040, 0.54, 1, 1,
                     true, 0.30, true));
    v.push_back(spec("sphinx", "spec", 0.50, 19.2, 0.160, 0.90, 16, 16,
                     false, 0.10, true));
    v.push_back(spec("milc", "spec", 9.00, 20.8, 0.010, 0.50, 16, 16,
                     false, 0.35, true));

    // --- GAP graph analytics (twitter and web sk-2005 inputs) -------
    v.push_back(spec("pr_twi", "gap", 4.80, 49.6, 0.050, 0.64, 1, 1,
                     true, 0.25, true));
    v.push_back(spec("cc_twi", "gap", 4.80, 43.2, 0.050, 0.64, 1, 1,
                     true, 0.25, true));
    v.push_back(spec("bc_twi", "gap", 6.10, 30.4, 0.050, 0.62, 2, 1,
                     true, 0.25, true));
    v.push_back(spec("pr_web", "gap", 6.40, 14.4, 0.045, 0.62, 8, 4,
                     true, 0.25, true));
    v.push_back(spec("cc_web", "gap", 6.40, 12.8, 0.045, 0.62, 8, 4,
                     true, 0.25, true));
    v.push_back(spec("bc_web", "gap", 6.00, 11.2, 0.045, 0.62, 8, 4,
                     true, 0.25, false));

    // --- HPC ---------------------------------------------------------
    v.push_back(spec("nekbone", "hpc", 0.5, 11.2, 1.00, 1.00, 64, 64,
                     false, 0.25, true));

    // --- remaining SPEC (not associativity-sensitive; Section VI-A) --
    v.push_back(spec("perlbench", "spec", 0.25, 1.3, 0.70, 0.90, 8, 8,
                     false, 0.25, false));
    v.push_back(spec("bzip2", "spec", 0.9, 5.1, 0.60, 0.85, 16, 16,
                     false, 0.30, false));
    v.push_back(spec("bwaves", "spec", 1.6, 14.4, 0.80, 0.90, 64, 64,
                     false, 0.30, false));
    v.push_back(spec("gamess", "spec", 0.1, 0.5, 0.80, 0.95, 8, 8,
                     false, 0.15, false));
    v.push_back(spec("gromacs", "spec", 0.2, 1.0, 0.80, 0.90, 16, 16,
                     false, 0.20, false));
    v.push_back(spec("cactus", "spec", 1.4, 7.2, 0.70, 0.85, 32, 32,
                     false, 0.30, false));
    v.push_back(spec("namd", "spec", 0.15, 0.6, 0.80, 0.95, 16, 16,
                     false, 0.15, false));
    v.push_back(spec("gobmk", "spec", 0.2, 1.1, 0.70, 0.90, 4, 4,
                     false, 0.25, false));
    v.push_back(spec("dealII", "spec", 0.5, 3.4, 0.70, 0.85, 8, 8,
                     false, 0.25, false));
    v.push_back(spec("povray", "spec", 0.05, 0.2, 0.90, 0.95, 8, 8,
                     false, 0.10, false));
    v.push_back(spec("calculix", "spec", 0.3, 1.4, 0.75, 0.90, 16, 16,
                     false, 0.20, false));
    v.push_back(spec("hmmer", "spec", 0.3, 1.8, 0.80, 0.90, 16, 16,
                     false, 0.20, false));
    v.push_back(spec("sjeng", "spec", 2.8, 4.0, 0.40, 0.75, 2, 2,
                     true, 0.25, false));
    v.push_back(spec("gems", "spec", 1.7, 16.0, 0.75, 0.85, 32, 32,
                     false, 0.35, false));
    v.push_back(spec("h264", "spec", 0.2, 0.8, 0.80, 0.90, 16, 16,
                     false, 0.20, false));
    v.push_back(spec("tonto", "spec", 0.1, 0.5, 0.85, 0.95, 8, 8,
                     false, 0.15, false));
    v.push_back(spec("lbm", "spec", 6.4, 35.2, 0.10, 0.30, 64, 64,
                     false, 0.40, false));
    v.push_back(spec("astar", "spec", 1.3, 6.4, 0.55, 0.80, 2, 2,
                     true, 0.30, false));

    // Scanning workloads: PWS needs many footprint passes to resolve
    // conflicting pairs (Fig 6), so give them deeper warmup.
    for (WorkloadSpec &s : v) {
        if (s.name == "libq")
            s.warmPasses = 30;
        else if (s.name == "nekbone" || s.name == "bwaves")
            s.warmPasses = 16;
    }

    return v;
}

/** SPEC benchmarks with MPKI >= 2, the mix candidate pool (III-B). */
std::vector<const WorkloadSpec *>
mixPool()
{
    std::vector<const WorkloadSpec *> pool;
    for (const WorkloadSpec &s : allBenchmarks()) {
        if (s.suite == "spec" && s.mpki >= 2.0)
            pool.push_back(&s);
    }
    return pool;
}

} // namespace

const std::vector<WorkloadSpec> &
allBenchmarks()
{
    static const std::vector<WorkloadSpec> benchmarks =
        buildBenchmarks();
    return benchmarks;
}

const WorkloadSpec &
findBenchmark(const std::string &name)
{
    for (const WorkloadSpec &s : allBenchmarks()) {
        if (s.name == name)
            return s;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

bool
isMix(const std::string &name)
{
    return name.size() > 3 && name.compare(0, 3, "mix") == 0;
}

std::vector<std::string>
mainWorkloadNames()
{
    return {"milc", "sphinx", "nekbone", "cc_web", "pr_web", "mcf",
            "xalanc", "bc_twi", "pr_twi", "cc_twi", "omnet", "wrf",
            "zeusmp", "gcc", "libq", "leslie", "soplex",
            "mix1", "mix2", "mix3", "mix4"};
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadSpec &s : allBenchmarks())
        names.push_back(s.name);
    for (int i = 1; i <= 10; ++i)
        names.push_back("mix" + std::to_string(i));
    return names;
}

std::vector<const WorkloadSpec *>
coreAssignment(const std::string &workload, unsigned num_cores)
{
    std::vector<const WorkloadSpec *> assignment;
    assignment.reserve(num_cores);

    if (!isMix(workload)) {
        const WorkloadSpec &s = findBenchmark(workload);
        for (unsigned core = 0; core < num_cores; ++core)
            assignment.push_back(&s);
        return assignment;
    }

    const int mix_id = std::stoi(workload.substr(3));
    if (mix_id < 1 || mix_id > 10)
        fatal("mix id out of range in '%s'", workload.c_str());

    // Deterministic shuffled pick from the >=2-MPKI pool: stride
    // through the pool with a mix-specific phase and step.
    const auto pool = mixPool();
    const std::size_t n = pool.size();
    ACCORD_ASSERT(n >= 4, "mix pool too small");
    for (unsigned core = 0; core < num_cores; ++core) {
        const std::size_t index =
            (static_cast<std::size_t>(mix_id) * 7 + core * 5
             + (core % 3) * static_cast<std::size_t>(mix_id))
            % n;
        assignment.push_back(pool[index]);
    }
    return assignment;
}

WorkloadGenParams
generatorParams(const WorkloadSpec &spec, unsigned core,
                unsigned num_cores, std::uint64_t scale,
                std::uint64_t seed)
{
    WorkloadGenParams p;
    const double total_lines =
        spec.footprintGB * (1024.0 * 1024.0 * 1024.0 / lineSize);
    const double per_core = total_lines
        / static_cast<double>(scale) / static_cast<double>(num_cores);
    p.footprintLines = std::max<std::uint64_t>(
        linesPerRegion * 4, static_cast<std::uint64_t>(per_core));
    p.hotPortion = spec.hotPortion;
    p.hotAccessFrac = spec.hotAccessFrac;
    p.hotRunLen = spec.hotRunLen;
    p.coldRunLen = spec.coldRunLen;
    p.coldRandom = spec.coldRandom;
    p.warmPasses = spec.warmPasses;

    // Distinct physical pages per (workload, core).
    std::uint64_t salt = 0xcafef00dULL + core * 0x9e3779b9ULL;
    for (const char c : spec.name)
        salt = salt * 131 + static_cast<unsigned char>(c);
    p.salt = mix64(salt);
    p.seed = mix64(seed ^ (salt + core));
    return p;
}

} // namespace accord::trace

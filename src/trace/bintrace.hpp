/**
 * @file
 * The accord.trace/1 compact binary trace format and its replay
 * source.
 *
 * Layout (docs/TRACES.md has the full specification):
 *
 *   bytes 0..8    magic "ACRDBT01"
 *   byte  8       flags (reserved, must be 0)
 *   bytes 9..17   record count, little-endian u64 (0 = unknown)
 *   records       per record:
 *                   control byte  bit0 = writeback, bit1 = class
 *                                 varint follows, bits 2..7 zero
 *                   zigzag-varint delta of the line address vs. the
 *                                 previous record (first record:
 *                                 delta from 0)
 *                   [class varint]  new request class (persists
 *                                 until the next change; initial 0)
 *
 * Varint-delta encoding makes sequential streams ~2 bytes/record vs.
 * 9 for the legacy fixed-width format (trace_file.hpp, which remains
 * readable).  A trace may additionally be gzip-wrapped: the reader
 * auto-detects the wrapper and streams through zlib, so multi-GB
 * traces decode with bounded memory.  Built without zlib
 * (ACCORD_HAVE_ZLIB undefined) plain files still work; gzip input is
 * rejected with a clear fatal().
 *
 * tools/convert_trace.py produces this format from ChampSim/gem5-style
 * text traces.
 */

#ifndef ACCORD_TRACE_BINTRACE_HPP
#define ACCORD_TRACE_BINTRACE_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace accord::trace
{

/** Magic bytes opening every accord.trace/1 file. */
inline constexpr char kBinTraceMagic[8] = {'A', 'C', 'R', 'D',
                                           'B', 'T', '0', '1'};

/**
 * Whether this build can write gzip-wrapped traces (zlib present).
 * Runtime probe because ACCORD_HAVE_ZLIB is private to the trace
 * library; tests and tools use it to skip gzip paths gracefully.
 */
bool binTraceGzipAvailable();

/** Fixed header size: magic + flags + record count. */
inline constexpr std::size_t kBinTraceHeaderBytes = 17;

/** Streams an access stream out in accord.trace/1. */
class BinTraceWriter
{
  public:
    /**
     * Open for writing; fatal() on failure.
     *
     * @param gzip write a gzip-wrapped stream (needs zlib; the record
     *             count stays 0/unknown because the wrapper cannot be
     *             patched after the fact)
     */
    explicit BinTraceWriter(const std::string &path, bool gzip = false);
    ~BinTraceWriter();

    BinTraceWriter(const BinTraceWriter &) = delete;
    BinTraceWriter &operator=(const BinTraceWriter &) = delete;

    /** Append one record. */
    void append(LineAddr line, core::RequestKind kind,
                std::uint16_t cls = 0);

    void
    append(const Request &req)
    {
        append(req.line, req.kind, req.cls);
    }

    /** Flush, patch the record count, close (destructor does too). */
    void close();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    void flushBuffer();

    std::FILE *file_ = nullptr;
    void *gz_ = nullptr;  ///< gzFile when gzip output is active
    std::vector<unsigned char> buffer_;
    std::uint64_t records_ = 0;
    LineAddr prev_line_ = 0;
    std::uint16_t prev_cls_ = 0;
};

/**
 * Streaming accord.trace/1 reader with bounded memory (64 KB chunks).
 * fatal() on a missing file, bad magic, or mid-record truncation.
 */
class BinTraceReader
{
  public:
    explicit BinTraceReader(const std::string &path);
    ~BinTraceReader();

    BinTraceReader(const BinTraceReader &) = delete;
    BinTraceReader &operator=(const BinTraceReader &) = delete;

    /**
     * Read the next record into `out` (line/kind/cls; position is the
     * record's 0-based index).  False at clean end-of-trace.
     */
    bool next(Request &out);

    /** Header record count (0 = unknown, e.g. gzip-streamed write). */
    std::uint64_t declaredCount() const { return declared_; }

    std::uint64_t recordsRead() const { return records_; }

    /** Reopen at the first record. */
    void rewind();

  private:
    void open();
    void closeFile();
    void readHeader();
    bool fill();
    bool tryByte(unsigned char &out);
    unsigned char needByte(const char *what);
    std::uint64_t readVarint(const char *what);

    std::string path_;
    std::FILE *file_ = nullptr;
    void *gz_ = nullptr;  ///< gzFile handle when zlib is available
    std::vector<unsigned char> buffer_;
    std::size_t buf_pos_ = 0;
    std::size_t buf_len_ = 0;
    std::uint64_t declared_ = 0;
    std::uint64_t records_ = 0;
    LineAddr prev_line_ = 0;
    std::uint16_t cls_ = 0;
};

/**
 * Replays an accord.trace/1 file as a TrafficSource.
 *
 * With stripe_count > 1 the reader keeps every stripe_count-th record
 * (offset stripe_index), so N cores can share one trace file without
 * replaying identical streams.  loop=true restarts at end-of-trace
 * (the source becomes unbounded); loop=false exhausts.
 */
class TraceSource final : public TrafficSource
{
  public:
    TraceSource(const std::string &path, bool loop,
                unsigned stripe_count, unsigned stripe_index);

    Request next() override;
    bool exhausted() const override { return !has_pending_; }
    bool bounded() const override { return !loop_; }
    std::uint64_t size() const override;
    bool rewind() override;
    std::string describe() const override;

    /** Records in the underlying file (header count; 0 = unknown). */
    std::uint64_t fileRecords() const { return reader_.declaredCount(); }

  private:
    void advance();

    BinTraceReader reader_;
    bool loop_;
    unsigned stripe_count_;
    unsigned stripe_index_;
    std::uint64_t global_pos_ = 0;
    std::uint64_t emitted_ = 0;
    Request pending_;
    bool has_pending_ = false;
};

} // namespace accord::trace

#endif // ACCORD_TRACE_BINTRACE_HPP

#include "trace/trace_file.hpp"

#include <array>
#include <cstring>

#include "common/log.hpp"

namespace accord::trace
{

namespace
{

constexpr char magic[8] = {'A', 'C', 'R', 'D', 'T', 'R', 'C', '1'};
constexpr std::size_t recordBytes = 9;

void
encode(const L4Access &access, unsigned char *out)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(access.line >> (8 * i));
    out[8] = access.isWriteback ? 1 : 0;
}

L4Access
decode(const unsigned char *in)
{
    L4Access access;
    for (int i = 0; i < 8; ++i)
        access.line |= static_cast<LineAddr>(in[i]) << (8 * i);
    access.isWriteback = (in[8] & 1) != 0;
    return access;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    if (std::fwrite(magic, 1, sizeof magic, file) != sizeof magic)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const L4Access &access)
{
    ACCORD_ASSERT(file != nullptr, "trace writer already closed");
    unsigned char buffer[recordBytes];
    encode(access, buffer);
    if (std::fwrite(buffer, 1, recordBytes, file) != recordBytes)
        fatal("short write to trace file");
    ++records;
}

void
TraceWriter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

TraceReplay::TraceReplay(const std::string &path, bool loop)
    : loop(loop)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());

    char header[sizeof magic];
    if (std::fread(header, 1, sizeof header, file) != sizeof header
        || std::memcmp(header, magic, sizeof magic) != 0) {
        std::fclose(file);
        fatal("'%s' is not an ACCORD trace file", path.c_str());
    }

    unsigned char buffer[recordBytes];
    std::size_t got;
    while ((got = std::fread(buffer, 1, recordBytes, file)) > 0) {
        if (got != recordBytes) {
            std::fclose(file);
            fatal("'%s' is truncated mid-record", path.c_str());
        }
        accesses.push_back(decode(buffer));
    }
    std::fclose(file);

    if (accesses.empty())
        fatal("trace file '%s' contains no records", path.c_str());
}

L4Access
TraceReplay::next()
{
    if (cursor >= accesses.size()) {
        exhausted_ = true;
        if (!loop)
            return accesses.back();
        cursor = 0;
    }
    return accesses[cursor++];
}

void
TraceReplay::rewind()
{
    cursor = 0;
    exhausted_ = false;
}

} // namespace accord::trace

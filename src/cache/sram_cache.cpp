#include "cache/sram_cache.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::cache
{

SramCache::SramCache(const SramCacheParams &params)
    : params_(params), num_sets(params.numSets())
{
    if (num_sets == 0 || !isPow2(num_sets))
        fatal("%s: set count %llu must be a nonzero power of two",
              params_.name.c_str(),
              static_cast<unsigned long long>(num_sets));
    if (params_.ways == 0 || params_.ways > 64)
        fatal("%s: unsupported way count %u", params_.name.c_str(),
              params_.ways);
    set_mask = num_sets - 1;
    lines.resize(num_sets * params_.ways);
    repl = makeReplacement(params_.replacement, num_sets, params_.ways,
                           params_.seed);
}

SramCache::Line *
SramCache::find(LineAddr line)
{
    const std::uint64_t set = setOf(line);
    for (unsigned way = 0; way < params_.ways; ++way) {
        Line &e = entry(set, way);
        if (e.valid && e.tag == line)
            return &e;
    }
    return nullptr;
}

const SramCache::Line *
SramCache::find(LineAddr line) const
{
    return const_cast<SramCache *>(this)->find(line);
}

SramAccessResult
SramCache::access(LineAddr line, AccessType type)
{
    SramAccessResult result;
    const std::uint64_t set = setOf(line);

    if (Line *e = find(line)) {
        result.hit = true;
        result.way = static_cast<unsigned>(e - &entry(set, 0));
        if (type != AccessType::Read)
            e->dirty = true;
        repl->touch(set, result.way);
        hits_.hit();
        return result;
    }

    hits_.miss();

    std::uint64_t valid_mask = 0;
    for (unsigned way = 0; way < params_.ways; ++way) {
        if (entry(set, way).valid)
            valid_mask |= std::uint64_t{1} << way;
    }

    const unsigned way = repl->victim(set, valid_mask);
    ACCORD_ASSERT(way < params_.ways, "victim way out of range");
    Line &e = entry(set, way);

    if (e.valid) {
        result.evictedValid = true;
        result.evictedDirty = e.dirty;
        result.evictedLine = e.tag;
        result.evictedMeta = e.meta;
    }

    e.valid = true;
    e.tag = line;
    e.dirty = (type != AccessType::Read);
    e.meta = 0;
    repl->fill(set, way);
    result.way = way;
    return result;
}

bool
SramCache::probe(LineAddr line) const
{
    return find(line) != nullptr;
}

std::optional<bool>
SramCache::invalidate(LineAddr line)
{
    if (Line *e = find(line)) {
        const bool dirty = e->dirty;
        e->valid = false;
        e->dirty = false;
        e->meta = 0;
        return dirty;
    }
    return std::nullopt;
}

std::uint16_t
SramCache::metadata(LineAddr line) const
{
    const Line *e = find(line);
    ACCORD_ASSERT(e, "metadata() on absent line");
    return e->meta;
}

void
SramCache::setMetadata(LineAddr line, std::uint16_t value)
{
    Line *e = find(line);
    ACCORD_ASSERT(e, "setMetadata() on absent line");
    e->meta = value;
}

std::uint64_t
SramCache::validLines() const
{
    std::uint64_t count = 0;
    for (const Line &e : lines)
        count += e.valid ? 1 : 0;
    return count;
}

} // namespace accord::cache

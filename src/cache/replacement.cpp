#include "cache/replacement.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace accord::cache
{

LruPolicy::LruPolicy(std::uint64_t num_sets, unsigned num_ways)
    : num_ways(num_ways), stamps(num_sets * num_ways, 0)
{
}

void
LruPolicy::stamp(std::uint64_t set, unsigned way)
{
    stamps[set * num_ways + way] = next_stamp++;
}

void
LruPolicy::touch(std::uint64_t set, unsigned way)
{
    stamp(set, way);
}

void
LruPolicy::fill(std::uint64_t set, unsigned way)
{
    stamp(set, way);
}

unsigned
LruPolicy::victim(std::uint64_t set, std::uint64_t valid_mask)
{
    unsigned best = 0;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (unsigned way = 0; way < num_ways; ++way) {
        if (!(valid_mask & (std::uint64_t{1} << way)))
            return way;     // always prefer an invalid way
        const std::uint64_t s = stamps[set * num_ways + way];
        if (s < best_stamp) {
            best_stamp = s;
            best = way;
        }
    }
    return best;
}

RandomPolicy::RandomPolicy(unsigned num_ways, std::uint64_t seed)
    : num_ways(num_ways), rng(seed)
{
}

unsigned
RandomPolicy::victim(std::uint64_t, std::uint64_t valid_mask)
{
    for (unsigned way = 0; way < num_ways; ++way) {
        if (!(valid_mask & (std::uint64_t{1} << way)))
            return way;
    }
    return static_cast<unsigned>(rng.below(num_ways));
}

SrripPolicy::SrripPolicy(std::uint64_t num_sets, unsigned num_ways)
    : num_ways(num_ways), rrpv(num_sets * num_ways, maxRrpv)
{
}

void
SrripPolicy::touch(std::uint64_t set, unsigned way)
{
    rrpv[set * num_ways + way] = 0;     // hit promotion (SRRIP-HP)
}

void
SrripPolicy::fill(std::uint64_t set, unsigned way)
{
    rrpv[set * num_ways + way] = maxRrpv - 1;   // long re-reference
}

unsigned
SrripPolicy::victim(std::uint64_t set, std::uint64_t valid_mask)
{
    for (unsigned way = 0; way < num_ways; ++way) {
        if (!(valid_mask & (std::uint64_t{1} << way)))
            return way;
    }
    // Find an RRPV == max way, aging everyone until one appears.
    for (;;) {
        for (unsigned way = 0; way < num_ways; ++way) {
            if (rrpv[set * num_ways + way] == maxRrpv)
                return way;
        }
        for (unsigned way = 0; way < num_ways; ++way)
            ++rrpv[set * num_ways + way];
    }
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(const std::string &name, std::uint64_t num_sets,
                unsigned num_ways, std::uint64_t seed)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>(num_sets, num_ways);
    if (name == "random")
        return std::make_unique<RandomPolicy>(num_ways, seed);
    if (name == "srrip")
        return std::make_unique<SrripPolicy>(num_sets, num_ways);
    fatal("unknown replacement policy '%s'", name.c_str());
}

} // namespace accord::cache

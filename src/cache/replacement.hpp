/**
 * @file
 * Replacement policies for set-associative SRAM caches.
 *
 * Policies are stateful per set; the cache calls touch()/fill() on hits
 * and installs and victim() when it needs a way to evict.  The DRAM
 * cache deliberately does NOT use these (it uses update-free random
 * replacement / way steering, Section II-B4); these serve the on-chip
 * L1/L2/L3 and the LRU-in-DRAM ablation.
 */

#ifndef ACCORD_CACHE_REPLACEMENT_HPP
#define ACCORD_CACHE_REPLACEMENT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace accord::cache
{

/** Per-set replacement state and victim selection. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Called on a hit to the given way. */
    virtual void touch(std::uint64_t set, unsigned way) = 0;

    /** Called when a line is installed into the given way. */
    virtual void fill(std::uint64_t set, unsigned way) = 0;

    /**
     * Pick a victim way.  @param valid_mask bit i set iff way i holds a
     * valid line; policies must prefer invalid ways.
     */
    virtual unsigned victim(std::uint64_t set,
                            std::uint64_t valid_mask) = 0;

    /** Policy name for stat dumps. */
    virtual std::string name() const = 0;
};

/** True LRU via per-set recency stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t num_sets, unsigned num_ways);

    void touch(std::uint64_t set, unsigned way) override;
    void fill(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set, std::uint64_t valid_mask) override;
    std::string name() const override { return "lru"; }

  private:
    void stamp(std::uint64_t set, unsigned way);

    unsigned num_ways;
    std::uint64_t next_stamp = 1;
    std::vector<std::uint64_t> stamps;  // [set * ways + way]
};

/** Update-free random replacement. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(unsigned num_ways, std::uint64_t seed);

    void touch(std::uint64_t, unsigned) override {}
    void fill(std::uint64_t, unsigned) override {}
    unsigned victim(std::uint64_t set, std::uint64_t valid_mask) override;
    std::string name() const override { return "random"; }

  private:
    unsigned num_ways;
    Rng rng;
};

/** Static re-reference interval prediction (SRRIP-HP, 2-bit). */
class SrripPolicy : public ReplacementPolicy
{
  public:
    SrripPolicy(std::uint64_t num_sets, unsigned num_ways);

    void touch(std::uint64_t set, unsigned way) override;
    void fill(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set, std::uint64_t valid_mask) override;
    std::string name() const override { return "srrip"; }

  private:
    static constexpr std::uint8_t maxRrpv = 3;

    unsigned num_ways;
    std::vector<std::uint8_t> rrpv;  // [set * ways + way]
};

/** Factory by name ("lru", "random", "srrip"); fatal() on unknown. */
std::unique_ptr<ReplacementPolicy>
makeReplacement(const std::string &name, std::uint64_t num_sets,
                unsigned num_ways, std::uint64_t seed);

} // namespace accord::cache

#endif // ACCORD_CACHE_REPLACEMENT_HPP

/**
 * @file
 * Generic set-associative SRAM cache (functional model).
 *
 * Used for the on-chip L1/L2/L3 levels.  The model tracks tags, dirty
 * bits, and 16 bits of per-line user metadata; the L3 uses the metadata
 * to hold the DRAM-Cache-Presence (DCP) bit plus the resident-way hint
 * that lets writebacks skip the L4 probe (paper Section II-B3).
 *
 * Timing is not modeled here: the system model charges fixed hit
 * latencies per level, and only L3 misses reach the timed L4/NVM.
 */

#ifndef ACCORD_CACHE_SRAM_CACHE_HPP
#define ACCORD_CACHE_SRAM_CACHE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "common/metrics/registry.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace accord::cache
{

/** Geometry and policy of one SRAM cache level. */
struct SramCacheParams
{
    std::string name = "cache";
    std::uint64_t capacityBytes = 32 * 1024;
    unsigned ways = 8;
    std::string replacement = "lru";
    std::uint64_t seed = 1;

    std::uint64_t numSets() const
        { return capacityBytes / lineSize / ways; }
};

/** Result of one cache access. */
struct SramAccessResult
{
    /** True if the line was present. */
    bool hit = false;

    /** Way the line resides in (valid for hits and after fills). */
    unsigned way = 0;

    /** A valid line was evicted to make room. */
    bool evictedValid = false;

    /** The evicted line was dirty (must be written back below). */
    bool evictedDirty = false;

    /** Address of the evicted line (valid if evictedValid). */
    LineAddr evictedLine = 0;

    /** User metadata of the evicted line. */
    std::uint16_t evictedMeta = 0;
};

/** A set-associative, write-back, write-allocate SRAM cache. */
class SramCache
{
  public:
    explicit SramCache(const SramCacheParams &params);

    /**
     * Perform a demand access; on miss, allocates the line (evicting a
     * victim chosen by the replacement policy).
     *
     * @param line line address
     * @param type Read, Write (marks dirty), or Writeback (marks dirty;
     *             misses allocate, modeling an inclusive-ish hierarchy)
     */
    SramAccessResult access(LineAddr line, AccessType type);

    /** Non-allocating presence check. */
    bool probe(LineAddr line) const;

    /** Drop the line if present; returns its dirtiness. */
    std::optional<bool> invalidate(LineAddr line);

    /** Read per-line user metadata; line must be present. */
    std::uint16_t metadata(LineAddr line) const;

    /** Write per-line user metadata; line must be present. */
    void setMetadata(LineAddr line, std::uint16_t value);

    /** Number of valid lines (for tests). */
    std::uint64_t validLines() const;

    const SramCacheParams &params() const { return params_; }
    const Ratio &hitRatio() const { return hits_; }
    std::uint64_t numSets() const { return num_sets; }

    /** Register the hit ratio under `prefix` ("core0.l1.lookup.*"). */
    void
    registerMetrics(MetricRegistry &registry,
                    const std::string &prefix) const
    {
        registry.addRatio(MetricRegistry::join(prefix, "lookup"),
                          hits_);
    }

  private:
    struct Line
    {
        LineAddr tag = 0;   // full line address; simple and unambiguous
        bool valid = false;
        bool dirty = false;
        std::uint16_t meta = 0;
    };

    std::uint64_t setOf(LineAddr line) const { return line & set_mask; }
    Line *find(LineAddr line);
    const Line *find(LineAddr line) const;
    Line &entry(std::uint64_t set, unsigned way)
        { return lines[set * params_.ways + way]; }
    const Line &entry(std::uint64_t set, unsigned way) const
        { return lines[set * params_.ways + way]; }

    SramCacheParams params_;
    std::uint64_t num_sets;
    std::uint64_t set_mask;
    std::vector<Line> lines;
    std::unique_ptr<ReplacementPolicy> repl;
    Ratio hits_;
};

} // namespace accord::cache

#endif // ACCORD_CACHE_SRAM_CACHE_HPP

/**
 * @file
 * Functional on-chip cache hierarchy (L1 -> L2 -> L3).
 *
 * The hierarchy filters a core's access stream and produces the traffic
 * that reaches the DRAM cache: demand fills on L3 misses and writebacks
 * on dirty L3 evictions.  Hit timing is a fixed per-level cost charged
 * by the core model; only the L4-bound transactions are timed in the
 * memory system.
 */

#ifndef ACCORD_CACHE_HIERARCHY_HPP
#define ACCORD_CACHE_HIERARCHY_HPP

#include <cstdint>
#include <vector>

#include "cache/sram_cache.hpp"
#include "common/types.hpp"

namespace accord::cache
{

/** Parameters of the three on-chip levels (paper Table III). */
struct HierarchyParams
{
    SramCacheParams l1{"l1", 32 * 1024, 8, "lru", 11};
    SramCacheParams l2{"l2", 256 * 1024, 8, "lru", 12};
    SramCacheParams l3{"l3", 8 * 1024 * 1024, 16, "srrip", 13};
};

/** One transaction the hierarchy sends to the DRAM cache. */
struct L4Transaction
{
    LineAddr line = 0;
    AccessType type = AccessType::Read;

    /** DCP metadata carried by an L3 victim (writebacks only). */
    std::uint16_t dcpMeta = 0;
};

/** Result of filtering one core access through L1/L2/L3. */
struct FilterResult
{
    /** 1, 2, 3 = hit level; 4 = missed all SRAM levels. */
    unsigned hitLevel = 4;

    /** Transactions bound for the L4 (demand miss and/or writebacks). */
    std::vector<L4Transaction> toL4;
};

/** Three-level functional cache hierarchy for one core. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params);

    /** Filter one demand access (read or write). */
    FilterResult access(LineAddr line, bool is_write);

    SramCache &l1() { return l1_; }
    SramCache &l2() { return l2_; }
    SramCache &l3() { return l3_; }
    const SramCache &l3() const { return l3_; }

    /** L3 misses per demand access so far. */
    double l3MissRate() const { return 1.0 - l3_.hitRatio().rate(); }

    /** Register all three levels under `prefix`.l1/.l2/.l3. */
    void
    registerMetrics(MetricRegistry &registry,
                    const std::string &prefix) const
    {
        l1_.registerMetrics(registry,
                            MetricRegistry::join(prefix, "l1"));
        l2_.registerMetrics(registry,
                            MetricRegistry::join(prefix, "l2"));
        l3_.registerMetrics(registry,
                            MetricRegistry::join(prefix, "l3"));
    }

  private:
    SramCache l1_;
    SramCache l2_;
    SramCache l3_;
};

} // namespace accord::cache

#endif // ACCORD_CACHE_HIERARCHY_HPP

#include "cache/hierarchy.hpp"

namespace accord::cache
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : l1_(params.l1), l2_(params.l2), l3_(params.l3)
{
}

FilterResult
Hierarchy::access(LineAddr line, bool is_write)
{
    FilterResult result;
    const AccessType type =
        is_write ? AccessType::Write : AccessType::Read;

    // L1.
    const SramAccessResult r1 = l1_.access(line, type);
    if (r1.evictedValid && r1.evictedDirty) {
        // Dirty L1 victim flows into L2 as a writeback.
        const SramAccessResult wb =
            l2_.access(r1.evictedLine, AccessType::Writeback);
        if (wb.evictedValid && wb.evictedDirty) {
            const SramAccessResult wb3 =
                l3_.access(wb.evictedLine, AccessType::Writeback);
            if (wb3.evictedValid && wb3.evictedDirty)
                result.toL4.push_back({wb3.evictedLine,
                                       AccessType::Writeback,
                                       wb3.evictedMeta});
        }
    }
    if (r1.hit) {
        result.hitLevel = 1;
        return result;
    }

    // L2 (the L1 fill allocates here too on miss: inclusive-ish).
    const SramAccessResult r2 = l2_.access(line, AccessType::Read);
    if (r2.evictedValid && r2.evictedDirty) {
        const SramAccessResult wb3 =
            l3_.access(r2.evictedLine, AccessType::Writeback);
        if (wb3.evictedValid && wb3.evictedDirty)
            result.toL4.push_back({wb3.evictedLine,
                                   AccessType::Writeback,
                                   wb3.evictedMeta});
    }
    if (r2.hit) {
        result.hitLevel = 2;
        return result;
    }

    // L3.
    const SramAccessResult r3 = l3_.access(line, AccessType::Read);
    if (r3.evictedValid && r3.evictedDirty)
        result.toL4.push_back({r3.evictedLine, AccessType::Writeback,
                               r3.evictedMeta});
    if (r3.hit) {
        result.hitLevel = 3;
        return result;
    }

    // Missed all SRAM levels: demand fill from the L4.
    result.hitLevel = 4;
    result.toL4.push_back({line, AccessType::Read, 0});
    return result;
}

} // namespace accord::cache

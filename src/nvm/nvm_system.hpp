/**
 * @file
 * PCM-style non-volatile main memory.
 *
 * NvmSystem composes the generic banked-memory machinery with PCM
 * timing: long array reads (2-4X DRAM read latency) and very long cell
 * programming on writes (~4X DRAM write latency), which occupies the
 * bank and forces write-drain episodes that delay reads.  This is the
 * memory below the DRAM cache in the paper's system (Table III).
 */

#ifndef ACCORD_NVM_NVM_SYSTEM_HPP
#define ACCORD_NVM_NVM_SYSTEM_HPP

#include "common/event_queue.hpp"
#include "common/stats.hpp"
#include "dram/dram_system.hpp"

namespace accord::nvm
{

/** Non-volatile main memory device. */
class NvmSystem
{
  public:
    /** Build with default PCM timing. */
    explicit NvmSystem(EventQueue &eq)
        : NvmSystem(dram::pcmMainMemoryTiming(), eq)
    {
    }

    /** Build with custom timing (tests / sensitivity studies). */
    NvmSystem(const dram::TimingParams &params, EventQueue &eq)
        : device(params, eq)
    {
    }

    /** Read a line; callback fires when data returns. */
    void
    readLine(LineAddr line, dram::MemCallback on_complete,
             trace_event::TxnId txn = trace_event::kNoTxn)
    {
        reads_.inc();
        device.accessLine(line, false, std::move(on_complete), txn);
    }

    /** Write a line (posted; callback optional). */
    void
    writeLine(LineAddr line, dram::MemCallback on_complete = nullptr,
              trace_event::TxnId txn = trace_event::kNoTxn)
    {
        writes_.inc();
        device.accessLine(line, true, std::move(on_complete), txn);
    }

    bool idle() const { return device.idle(); }

    const dram::TimingParams &params() const { return device.params(); }

    dram::DeviceStats aggregateStats() const
        { return device.aggregateStats(); }

    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }

    /**
     * Register device metrics under `prefix` ("nvm"): the line
     * read/write counters plus every underlying channel's stats
     * ("nvm.ch0.reads", ...).
     */
    void
    registerMetrics(MetricRegistry &registry,
                    const std::string &prefix) const
    {
        registry.addCounter(MetricRegistry::join(prefix, "reads"),
                            reads_);
        registry.addCounter(MetricRegistry::join(prefix, "writes"),
                            writes_);
        device.registerMetrics(registry, prefix);
    }

    /** Attach a tracer: one NVM track per underlying channel. */
    void
    attachTracer(trace_event::Tracer &tracer)
    {
        device.attachTracer(tracer, trace_event::Device::Nvm);
    }

  private:
    dram::DramSystem device;
    Counter reads_;
    Counter writes_;
};

} // namespace accord::nvm

#endif // ACCORD_NVM_NVM_SYSTEM_HPP

// NvmSystem is header-only today; this translation unit anchors the
// library and keeps a home for future out-of-line definitions (e.g.
// wear statistics).
#include "nvm/nvm_system.hpp"

/**
 * @file
 * Single-bank timing state machine.
 *
 * The bank resolves command timing algebraically: given the cycle a
 * request is chosen by the channel scheduler and the current data-bus
 * free time, it computes when the column access can start, honoring
 * tRP/tRCD/tRAS/tCCD/tWR constraints, and updates its state.  This
 * "next-free-time" formulation gives command-level fidelity without
 * per-cycle ticking.
 */

#ifndef ACCORD_DRAM_BANK_HPP
#define ACCORD_DRAM_BANK_HPP

#include <cstdint>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace accord::dram
{

/** Timing state of one DRAM/NVM bank. */
class Bank
{
  public:
    /** Sentinel row id meaning "no row open". */
    static constexpr std::uint64_t noRow = ~std::uint64_t{0};

    /** Outcome of serving one column access. */
    struct ServeResult
    {
        /** Cycle the column command issues (CAS). */
        Cycle casAt;

        /** Cycle the activate issued, or invalidCycle on a row hit. */
        Cycle actAt = invalidCycle;

        /** True if the access hit the open row buffer. */
        bool rowHit;

        /** True if a precharge was needed (row conflict). */
        bool rowConflict;
    };

    /**
     * Reserve the bank for a read or write to the given row.
     *
     * @param now      cycle the scheduler picked this request
     * @param row      target row
     * @param is_write true for writes (adds tWr recovery)
     * @param p        device timing parameters
     * @return timing of the column access
     */
    ServeResult serve(Cycle now, std::uint64_t row, bool is_write,
                      const TimingParams &p);

    /** Currently open row, or noRow. */
    std::uint64_t openRow() const { return open_row; }

    /** True if a request to this row would be a row-buffer hit now. */
    bool wouldHit(std::uint64_t row) const { return open_row == row; }

    /** Earliest cycle the next column command may issue. */
    Cycle nextCmdAt() const { return next_cmd; }

  private:
    std::uint64_t open_row = noRow;

    /** When the open row was activated (for tRAS). */
    Cycle act_at = 0;

    /** Earliest next column command (tCCD / tWR recovery). */
    Cycle next_cmd = 0;
};

} // namespace accord::dram

#endif // ACCORD_DRAM_BANK_HPP

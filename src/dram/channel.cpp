#include "dram/channel.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/trace_event/tracer.hpp"

namespace accord::dram
{

Channel::Channel(unsigned id, const TimingParams &params, EventQueue &eq)
    : id_(id), params(params), eq(eq), banks(params.banksPerChannel)
{
}

bool
Channel::idle() const
{
    return read_queue.empty() && write_queue.empty() && in_flight == 0;
}

ACCORD_HOT void
Channel::enqueue(MemOp op)
{
    ACCORD_ASSERT(op.loc.channel == id_, "op routed to wrong channel");
    ACCORD_ASSERT(op.loc.bank < banks.size(), "bank out of range");
    op.enqueuedAt = eq.now();
    if (op.isWrite)
        write_queue.push_back(std::move(op));
    else
        read_queue.push_back(std::move(op));
    ensureKick(eq.now());
}

ACCORD_HOT void
Channel::ensureKick(Cycle when)
{
    if (kick_at <= when)
        return;     // an earlier (or equal) kick is already pending
    kick_at = when;
    eq.scheduleAt(when, [this, when] {
        // Only the most recently requested kick runs; stale ones no-op.
        if (kick_at == when) {
            kick_at = invalidCycle;
            kick();
        }
    });
}

ACCORD_HOT std::size_t
Channel::pick(const std::deque<MemOp> &queue) const
{
    // Transaction continuations first, then the oldest row-buffer hit,
    // then plain FCFS.
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].priority)
            return i;
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const MemOp &op = queue[i];
        if (banks[op.loc.bank].wouldHit(op.loc.row))
            return i;
    }
    return 0;
}

ACCORD_HOT void
Channel::issue(std::deque<MemOp> &queue, std::size_t index)
{
    MemOp op = std::move(queue[index]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));

    const Cycle now = eq.now();
    Bank &bank = banks[op.loc.bank];
    const Bank::ServeResult served =
        bank.serve(now, op.loc.row, op.isWrite, params);

    const Cycle data_start =
        std::max(served.casAt + params.tCas, bus_free_at);
    const Cycle data_end = data_start + params.tBurst;
    bus_free_at = data_end;

    if (served.rowHit)
        stats_.rowHits.inc();
    if (served.rowConflict)
        stats_.rowConflicts.inc();
    stats_.busBusyCycles.inc(params.tBurst);

    const Cycle latency = data_end - op.enqueuedAt;
    if (op.isWrite) {
        stats_.writesServed.inc();
        stats_.writeLatency.sample(static_cast<double>(latency));
    } else {
        stats_.readsServed.inc();
        stats_.readLatency.sample(static_cast<double>(latency));
    }

    if (tracer_ != nullptr && op.txn != 0) {
        tracer_->burst(op.txn, track_, op.loc.bank, op.loc.row,
                       op.isWrite, served.rowHit, op.enqueuedAt, now,
                       served.actAt, served.casAt, data_start,
                       data_end, read_queue.size(),
                       write_queue.size());
    }

    ++in_flight;
    eq.scheduleAt(data_end,
                  [this, cb = std::move(op.onComplete), data_end] {
        --in_flight;
        if (cb)
            cb(data_end);
        // Completion may unblock nothing, but if queues are non-empty
        // and no kick is pending (e.g. all earlier kicks consumed),
        // make sure service continues.
        if (!read_queue.empty() || !write_queue.empty())
            ensureKick(eq.now());
    });

    // Pipeline: pick the next request one burst slot later, so bank
    // preparation (PRE/ACT/tRCD) of queued requests overlaps both this
    // transfer and each other — bank-level parallelism.  The data bus
    // itself is serialized by the bus_free_at algebra.
    if (!read_queue.empty() || !write_queue.empty())
        ensureKick(now + params.tBurst);
}

ACCORD_HOT void
Channel::kick()
{
    // Only commit a request to the bus shortly before its slot could
    // start; issuing further ahead would freeze the queue order and
    // make late-arriving priority/row-hit requests wait their full
    // backlog.  The lookahead still covers closed-row preparation
    // (PRE+ACT+tRCD) so bank work overlaps the bus backlog.
    const Cycle lookahead = params.tRp + params.tRcd + params.tCas;
    if (bus_free_at > eq.now() + lookahead) {
        ensureKick(bus_free_at - lookahead);
        return;
    }

    stats_.readQueueDepth.sample(static_cast<double>(read_queue.size()));
    stats_.writeQueueDepth.sample(static_cast<double>(write_queue.size()));

    // Write-drain hysteresis (reads have priority otherwise).  Even
    // while draining, pending reads are interleaved 1:1 so a burst of
    // long-recovery writes (NVM cell programming) cannot starve the
    // read path.
    if (write_queue.size() >= params.writeDrainHigh)
        draining = true;
    else if (write_queue.size() <= params.writeDrainLow)
        draining = false;

    bool serve_write =
        !write_queue.empty() && (draining || read_queue.empty());
    if (serve_write && draining && !read_queue.empty()) {
        drain_toggle = !drain_toggle;
        if (drain_toggle)
            serve_write = false;
    }

    if (serve_write)
        issue(write_queue, pick(write_queue));
    else if (!read_queue.empty())
        issue(read_queue, pick(read_queue));
    // else: idle; the next enqueue() will kick us.
}

void
Channel::registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const
{
    const auto path = [&prefix](const char *name) {
        return MetricRegistry::join(prefix, name);
    };
    registry.addCounter(path("reads"), stats_.readsServed);
    registry.addCounter(path("writes"), stats_.writesServed);
    registry.addCounter(path("row_buffer.hits"), stats_.rowHits);
    registry.addCounter(path("row_buffer.conflicts"),
                        stats_.rowConflicts);
    registry.addCounter(path("bus_busy_cycles"),
                        stats_.busBusyCycles);
    registry.addAverage(path("read_latency"), stats_.readLatency);
    registry.addAverage(path("write_latency"), stats_.writeLatency);
    registry.addAverage(path("read_queue_depth"),
                        stats_.readQueueDepth);
    registry.addAverage(path("write_queue_depth"),
                        stats_.writeQueueDepth);
}

} // namespace accord::dram

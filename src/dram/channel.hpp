/**
 * @file
 * One memory channel: request queues, FR-FCFS scheduling, write-drain
 * hysteresis, and data-bus serialization.
 *
 * The channel issues at most one column access per data-bus burst slot;
 * bank preparation (PRE/ACT) of the next request overlaps the current
 * transfer, while the Bank algebra enforces all per-bank constraints.
 */

#ifndef ACCORD_DRAM_CHANNEL_HPP
#define ACCORD_DRAM_CHANNEL_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/event_queue.hpp"
#include "common/metrics/registry.hpp"
#include "common/stats.hpp"
#include "dram/bank.hpp"
#include "dram/mem_op.hpp"
#include "dram/timing.hpp"

namespace accord::trace_event
{
class Tracer;
}

namespace accord::dram
{

/** Aggregatable per-channel statistics. */
struct ChannelStats
{
    Counter readsServed;
    Counter writesServed;
    Counter rowHits;
    Counter rowConflicts;
    Counter busBusyCycles;
    Average readLatency;   ///< enqueue -> data complete, CPU cycles
    Average writeLatency;
    Average readQueueDepth;
    Average writeQueueDepth;
};

/** One channel of a banked memory device. */
class Channel
{
  public:
    Channel(unsigned id, const TimingParams &params, EventQueue &eq);

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Queue a line-sized op; the channel self-schedules service. */
    void enqueue(MemOp op);

    /** Pending reads (for backpressure heuristics). */
    std::size_t readQueueSize() const { return read_queue.size(); }

    /** Pending writes. */
    std::size_t writeQueueSize() const { return write_queue.size(); }

    /** True if nothing is queued or in flight. */
    bool idle() const;

    const ChannelStats &stats() const { return stats_; }

    /** Zero all statistics (e.g. at the warmup/measurement boundary). */
    void resetStats() { stats_ = ChannelStats{}; }

    /**
     * Register this channel's statistics under `prefix` (typically
     * "dram.ch0"): reads, writes, row_buffer.{hits,conflicts},
     * bus_busy_cycles, and the latency/queue-depth averages.
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach a transaction tracer; `track` is this channel's track id
     * from Tracer::registerDeviceTrack().  Every issued op whose txn
     * id is non-zero then emits a burst record.
     */
    void attachTracer(trace_event::Tracer *tracer, std::int32_t track)
    {
        tracer_ = tracer;
        track_ = track;
    }

  private:
    /** Scheduler entry point; issues at most one request. */
    void kick();

    /** Make sure a kick() is scheduled no later than `when`. */
    void ensureKick(Cycle when);

    /**
     * FR-FCFS pick from a queue: oldest row-buffer hit anywhere in the
     * queue (row hits — e.g. the second probe of an in-flight lookup
     * in the same row — must not wait behind closed-row requests),
     * else the oldest request.  Returns queue index.
     */
    std::size_t pick(const std::deque<MemOp> &queue) const;

    /** Issue one op picked from the given queue. */
    void issue(std::deque<MemOp> &queue, std::size_t index);

    const unsigned id_;
    const TimingParams &params;
    EventQueue &eq;

    std::vector<Bank> banks;
    std::deque<MemOp> read_queue;
    std::deque<MemOp> write_queue;

    /** Data bus next-free time. */
    Cycle bus_free_at = 0;

    /** Write-drain hysteresis state. */
    bool draining = false;

    /** Alternation flag: interleave reads during drain episodes. */
    bool drain_toggle = false;

    /** Time of the currently scheduled kick (invalidCycle if none). */
    Cycle kick_at = invalidCycle;

    /** Number of ops issued but not yet completed. */
    unsigned in_flight = 0;

    /** Transaction tracer (null when tracing is off). */
    trace_event::Tracer *tracer_ = nullptr;

    /** This channel's tracer track id. */
    std::int32_t track_ = -1;

    ChannelStats stats_;
};

} // namespace accord::dram

#endif // ACCORD_DRAM_CHANNEL_HPP

/**
 * @file
 * The unit of work a banked memory device executes.
 *
 * A MemOp is one line-sized (64/72-byte) read or write at an explicit
 * physical location.  The DRAM-cache controller addresses the stacked
 * DRAM by (channel, bank, row) directly because the cache layout owns
 * the mapping; main memory users go through an address-interleaving
 * helper in DramSystem.
 */

#ifndef ACCORD_DRAM_MEM_OP_HPP
#define ACCORD_DRAM_MEM_OP_HPP

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace accord::dram
{

/** Physical coordinates of one line within a device. */
struct PhysLoc
{
    unsigned channel = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;

    bool
    operator==(const PhysLoc &other) const
    {
        return channel == other.channel && bank == other.bank
            && row == other.row;
    }
};

/** Completion callback: invoked with the cycle the data finished. */
using MemCallback = std::function<void(Cycle done)>;

/** One line-sized read or write request to a banked memory device. */
struct MemOp
{
    PhysLoc loc;
    bool isWrite = false;

    /**
     * Continuation of an in-flight transaction (e.g. the second probe
     * of a lookup whose first probe missed): served before ordinary
     * requests so a multi-probe lookup does not pay the full queueing
     * delay at every step.
     */
    bool priority = false;

    /** Cycle the op entered the device queue (set by the device). */
    Cycle enqueuedAt = 0;

    /**
     * Owning transaction for trace attribution (trace_event::TxnId);
     * 0 = untraced.  Raw integer so this header stays dependency-free.
     */
    std::uint64_t txn = 0;

    /** Invoked when the data transfer completes; may be empty. */
    MemCallback onComplete;
};

} // namespace accord::dram

#endif // ACCORD_DRAM_MEM_OP_HPP

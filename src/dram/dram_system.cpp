#include "dram/dram_system.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/trace_event/tracer.hpp"

namespace accord::dram
{

double
DeviceStats::rowHitRate() const
{
    const std::uint64_t total = readsServed + writesServed;
    return total == 0
        ? 0.0 : static_cast<double>(rowHits) / static_cast<double>(total);
}

DramSystem::DramSystem(const TimingParams &params, EventQueue &eq)
    : params_(params), eq(eq)
{
    params_.validate();
    channels.reserve(params_.channels);
    for (unsigned i = 0; i < params_.channels; ++i)
        channels.push_back(std::make_unique<Channel>(i, params_, eq));

    channel_shift_bits = floorLog2(params_.channels);
    bank_shift_bits = floorLog2(params_.banksPerChannel);
    lines_per_row = params_.rowBytes / lineSize;
}

void
DramSystem::enqueue(MemOp op)
{
    ACCORD_ASSERT(op.loc.channel < channels.size(),
                  "channel %u out of range", op.loc.channel);
    channels[op.loc.channel]->enqueue(std::move(op));
}

PhysLoc
DramSystem::mapLine(LineAddr line) const
{
    PhysLoc loc;
    std::uint64_t rest = line;
    loc.channel = static_cast<unsigned>(bits(rest, 0, channel_shift_bits));
    rest >>= channel_shift_bits;
    loc.bank = static_cast<unsigned>(bits(rest, 0, bank_shift_bits));
    rest >>= bank_shift_bits;
    loc.row = rest / lines_per_row;
    return loc;
}

void
DramSystem::accessLine(LineAddr line, bool is_write,
                       MemCallback on_complete, trace_event::TxnId txn)
{
    MemOp op;
    op.loc = mapLine(line);
    op.isWrite = is_write;
    op.onComplete = std::move(on_complete);
    op.txn = txn;
    enqueue(std::move(op));
}

bool
DramSystem::idle() const
{
    for (const auto &ch : channels) {
        if (!ch->idle())
            return false;
    }
    return true;
}

DeviceStats
DramSystem::aggregateStats() const
{
    DeviceStats agg;
    double read_lat_weighted = 0.0;
    double write_lat_weighted = 0.0;
    for (const auto &ch : channels) {
        const ChannelStats &s = ch->stats();
        agg.readsServed += s.readsServed.value();
        agg.writesServed += s.writesServed.value();
        agg.rowHits += s.rowHits.value();
        agg.rowConflicts += s.rowConflicts.value();
        agg.busBusyCycles += s.busBusyCycles.value();
        read_lat_weighted += s.readLatency.mean()
            * static_cast<double>(s.readsServed.value());
        write_lat_weighted += s.writeLatency.mean()
            * static_cast<double>(s.writesServed.value());
    }
    if (agg.readsServed > 0)
        agg.avgReadLatency =
            read_lat_weighted / static_cast<double>(agg.readsServed);
    if (agg.writesServed > 0)
        agg.avgWriteLatency =
            write_lat_weighted / static_cast<double>(agg.writesServed);
    return agg;
}

void
DramSystem::resetStats()
{
    for (const auto &ch : channels)
        ch->resetStats();
}

void
DramSystem::attachTracer(trace_event::Tracer &tracer,
                         trace_event::Device device)
{
    for (std::size_t i = 0; i < channels.size(); ++i) {
        channels[i]->attachTracer(
            &tracer, tracer.registerDeviceTrack(
                         device, static_cast<unsigned>(i)));
    }
}

void
DramSystem::registerMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    for (std::size_t i = 0; i < channels.size(); ++i) {
        channels[i]->registerMetrics(
            registry,
            MetricRegistry::join(prefix, "ch" + std::to_string(i)));
    }
}

} // namespace accord::dram

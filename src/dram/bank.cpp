#include "dram/bank.hpp"

#include <algorithm>

namespace accord::dram
{

Bank::ServeResult
Bank::serve(Cycle now, std::uint64_t row, bool is_write,
            const TimingParams &p)
{
    ServeResult result{};
    Cycle cas_at;

    if (open_row == row) {
        // Row-buffer hit: only the column command spacing applies.
        cas_at = std::max(now, next_cmd);
        result.rowHit = true;
    } else {
        // Row closed or conflict: (PRE +) ACT + tRCD before CAS.
        Cycle act_start = std::max(now, next_cmd);
        if (open_row != noRow) {
            // Precharge may not cut tRAS short.
            const Cycle pre_at =
                std::max(act_start, act_at + p.tRas);
            act_start = pre_at + p.tRp;
            result.rowConflict = true;
        }
        act_at = act_start;
        result.actAt = act_start;
        open_row = row;
        cas_at = act_start + p.tRcd;
    }

    next_cmd = cas_at + p.tCcd;
    if (is_write) {
        // Write recovery blocks the bank after the last data beat.
        next_cmd = std::max(next_cmd, cas_at + p.tCas + p.tBurst + p.tWr);
    }

    result.casAt = cas_at;
    return result;
}

} // namespace accord::dram

/**
 * @file
 * Timing and geometry parameters for banked memory devices.
 *
 * One parameter block describes either the HBM-style stacked DRAM that
 * backs the L4 cache or the PCM-style non-volatile main memory (paper
 * Table III).  All latencies are stored in CPU cycles (3 GHz domain);
 * the presets convert from nanoseconds.
 */

#ifndef ACCORD_DRAM_TIMING_HPP
#define ACCORD_DRAM_TIMING_HPP

#include <cstdint>

#include "common/types.hpp"

namespace accord::dram
{

/** Timing/geometry description of a banked memory device. */
struct TimingParams
{
    /** Human-readable device name for stat dumps. */
    const char *name = "mem";

    /** Number of independent channels. */
    unsigned channels = 8;

    /** Banks per channel. */
    unsigned banksPerChannel = 16;

    /** Row-buffer size in bytes. */
    std::uint64_t rowBytes = 2048;

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes = 4ULL << 30;

    /** CAS (column access) latency, CPU cycles. */
    Cycle tCas = 42;

    /** RAS-to-CAS (activate) latency, CPU cycles. */
    Cycle tRcd = 42;

    /** Precharge latency, CPU cycles. */
    Cycle tRp = 42;

    /** Minimum row-open time before precharge, CPU cycles. */
    Cycle tRas = 99;

    /** Write recovery after the last write data beat, CPU cycles. */
    Cycle tWr = 45;

    /** Data-bus occupancy of one 64/72-byte line transfer, CPU cycles. */
    Cycle tBurst = 12;

    /** Column-to-column command spacing, CPU cycles. */
    Cycle tCcd = 12;

    /** Read-queue capacity per channel. */
    unsigned readQueueCap = 64;

    /** Write-queue capacity per channel. */
    unsigned writeQueueCap = 64;

    /** Start draining writes when the write queue reaches this size. */
    unsigned writeDrainHigh = 40;

    /** Stop draining writes when the write queue falls to this size. */
    unsigned writeDrainLow = 16;

    /** Rows per bank implied by the geometry. */
    std::uint64_t rowsPerBank() const;

    /** Peak data bandwidth in bytes per CPU cycle (for sanity checks). */
    double peakBytesPerCycle() const;

    /** fatal() if the parameters are inconsistent. */
    void validate() const;
};

/**
 * HBM-style stacked DRAM used as the L4 cache array.
 *
 * 8 channels x 128-bit bus at DDR 1 GHz = 128 GB/s aggregate; a 72-byte
 * tag+data unit moves in 4 beats (tag rides the ECC lanes), i.e. 4 ns =
 * 12 CPU cycles at 3 GHz.
 */
TimingParams hbmCacheTiming();

/**
 * PCM-style non-volatile main memory.
 *
 * 2 channels x 64-bit bus at DDR 2 GHz = 32 GB/s aggregate.  Array read
 * is 2-4X the DRAM latency and write recovery is ~4X (paper Section
 * III-A), which is what makes DRAM-cache hit rate matter.
 */
TimingParams pcmMainMemoryTiming();

/**
 * Conventional DDR main memory, for the paper's Section II-B premise:
 * when memory latency is close to DRAM-cache latency, trading hit rate
 * for hit latency is acceptable and associativity buys little.  Same
 * channel/bus geometry as the PCM preset, DRAM-class latencies.
 */
TimingParams ddrMainMemoryTiming();

} // namespace accord::dram

#endif // ACCORD_DRAM_TIMING_HPP

/**
 * @file
 * A multi-channel banked memory device.
 *
 * DramSystem instantiates Channels per TimingParams and routes MemOps.
 * It serves both roles in the paper's system: the HBM array holding the
 * L4 cache (addressed by explicit PhysLoc from the cache layout) and,
 * via NvmSystem, the PCM main memory (addressed by line address through
 * the interleaving mapper).
 */

#ifndef ACCORD_DRAM_DRAM_SYSTEM_HPP
#define ACCORD_DRAM_DRAM_SYSTEM_HPP

#include <memory>
#include <vector>

#include "common/event_queue.hpp"
#include "common/trace_event/trace_event.hpp"
#include "dram/channel.hpp"
#include "dram/mem_op.hpp"
#include "dram/timing.hpp"

namespace accord::dram
{

/** Aggregated device statistics (sum/mean over channels). */
struct DeviceStats
{
    std::uint64_t readsServed = 0;
    std::uint64_t writesServed = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t busBusyCycles = 0;
    double avgReadLatency = 0.0;
    double avgWriteLatency = 0.0;

    /** Row-hit fraction over all column accesses. */
    double rowHitRate() const;
};

/** Multi-channel banked memory device. */
class DramSystem
{
  public:
    DramSystem(const TimingParams &params, EventQueue &eq);

    /** Issue an op to its channel (op.loc.channel selects it). */
    void enqueue(MemOp op);

    /** Convenience: read/write a line by interleaved address mapping. */
    void accessLine(LineAddr line, bool is_write, MemCallback on_complete,
                    trace_event::TxnId txn = trace_event::kNoTxn);

    /**
     * Map a line address to physical coordinates: channel bits lowest
     * (maximize channel parallelism), then bank, then row.
     */
    PhysLoc mapLine(LineAddr line) const;

    /** True when all channels are idle. */
    bool idle() const;

    /** Device geometry/timing. */
    const TimingParams &params() const { return params_; }

    unsigned numChannels() const
        { return static_cast<unsigned>(channels.size()); }

    const Channel &channel(unsigned i) const { return *channels.at(i); }

    /** Sum/average stats over all channels. */
    DeviceStats aggregateStats() const;

    /** Zero every channel's statistics. */
    void resetStats();

    /**
     * Register every channel's statistics under `prefix` ("dram" ->
     * "dram.ch0.reads", "dram.ch1.row_buffer.hits", ...).
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach a transaction tracer: registers one device track per
     * channel (in channel order, for deterministic track ids) and
     * points every channel at it.
     */
    void attachTracer(trace_event::Tracer &tracer,
                      trace_event::Device device);

  private:
    TimingParams params_;
    EventQueue &eq;
    std::vector<std::unique_ptr<Channel>> channels;

    unsigned channel_shift_bits;
    unsigned bank_shift_bits;
    std::uint64_t lines_per_row;
};

} // namespace accord::dram

#endif // ACCORD_DRAM_DRAM_SYSTEM_HPP

#include "dram/timing.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::dram
{

namespace
{

/** CPU cycles for a duration in nanoseconds at a 3 GHz core clock. */
constexpr Cycle
ns(double nanoseconds)
{
    return static_cast<Cycle>(nanoseconds * 3.0 + 0.5);
}

} // namespace

std::uint64_t
TimingParams::rowsPerBank() const
{
    const std::uint64_t per_bank =
        capacityBytes / channels / banksPerChannel;
    return per_bank / rowBytes;
}

double
TimingParams::peakBytesPerCycle() const
{
    // One line (64 bytes of payload) per tBurst per channel.
    return static_cast<double>(channels) * lineSize
        / static_cast<double>(tBurst);
}

void
TimingParams::validate() const
{
    if (!isPow2(channels) || !isPow2(banksPerChannel))
        fatal("%s: channels/banks must be powers of two", name);
    if (!isPow2(rowBytes) || rowBytes < lineSize)
        fatal("%s: bad row size %llu", name,
              static_cast<unsigned long long>(rowBytes));
    if (capacityBytes % (static_cast<std::uint64_t>(channels)
                         * banksPerChannel * rowBytes) != 0)
        fatal("%s: capacity not divisible by channel*bank*row", name);
    if (tBurst == 0 || tCas == 0)
        fatal("%s: zero timing parameter", name);
    if (writeDrainLow >= writeDrainHigh
        || writeDrainHigh > writeQueueCap)
        fatal("%s: bad write drain watermarks", name);
}

TimingParams
hbmCacheTiming()
{
    TimingParams p;
    p.name = "hbm";
    p.channels = 8;
    p.banksPerChannel = 16;
    p.rowBytes = 2048;
    p.capacityBytes = 4ULL << 30;
    p.tCas = ns(14);
    p.tRcd = ns(14);
    p.tRp = ns(14);
    p.tRas = ns(33);
    p.tWr = ns(15);
    p.tBurst = ns(4);   // 72B over a 144-bit effective bus at DDR 1 GHz
    p.tCcd = ns(4);
    return p;
}

TimingParams
pcmMainMemoryTiming()
{
    TimingParams p;
    p.name = "pcm";
    p.channels = 2;
    p.rowBytes = 4096;
    p.capacityBytes = 128ULL << 30;
    p.tCas = ns(14);
    p.tRcd = ns(95);   // array read: ~2-4X overall DRAM read latency
    p.tRp = ns(14);     // writeback of the row happens on write, not PRE
    p.tRas = ns(109);
    p.tWr = ns(350);    // cell programming: ~4X DRAM write latency
    p.banksPerChannel = 64;     // PCM arrays are heavily banked to
                                // hide long cell-programming times
    p.tBurst = ns(4);   // 64B over an 8-byte-wide bus at DDR 2 GHz
    p.tCcd = ns(4);
    p.writeQueueCap = 128;
    p.writeDrainHigh = 64;
    p.writeDrainLow = 16;
    return p;
}

TimingParams
ddrMainMemoryTiming()
{
    TimingParams p;
    p.name = "ddr";
    p.channels = 2;
    p.banksPerChannel = 16;
    p.rowBytes = 4096;
    p.capacityBytes = 128ULL << 30;
    p.tCas = ns(14);
    p.tRcd = ns(14);
    p.tRp = ns(14);
    p.tRas = ns(33);
    p.tWr = ns(15);
    p.tBurst = ns(4);
    p.tCcd = ns(4);
    return p;
}

} // namespace accord::dram

#include "core/predictors.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::core
{

MruPolicy::MruPolicy(const CacheGeometry &geom, std::uint64_t seed)
    : WayPolicy(geom), mru(geom.sets, 0), rng(seed)
{
}

unsigned
MruPolicy::predict(const LineRef &ref)
{
    return mru[ref.set];
}

unsigned
MruPolicy::install(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

void
MruPolicy::onHit(const LineRef &ref, unsigned way)
{
    mru[ref.set] = static_cast<std::uint8_t>(way);
}

void
MruPolicy::onInstall(const LineRef &ref, unsigned way)
{
    mru[ref.set] = static_cast<std::uint8_t>(way);
}

std::uint64_t
MruPolicy::storageBits() const
{
    const unsigned way_bits =
        geom_.ways > 1 ? floorLog2(geom_.ways) : 1;
    return geom_.sets * way_bits;
}

PartialTagPolicy::PartialTagPolicy(const CacheGeometry &geom,
                                   unsigned tag_bits, std::uint64_t seed)
    : WayPolicy(geom), tag_bits(tag_bits),
      tags(geom.lines(), 0), valid(geom.lines(), 0), rng(seed)
{
    ACCORD_ASSERT(tag_bits >= 1 && tag_bits <= 8,
                  "partial tags of 1..8 bits supported");
    tag_mask = static_cast<std::uint8_t>((1u << tag_bits) - 1);
}

std::uint8_t
PartialTagPolicy::partialOf(const LineRef &ref) const
{
    // Hash the tag down so adjacent tags do not collide trivially.
    return static_cast<std::uint8_t>(mix64(ref.tag) & tag_mask);
}

unsigned
PartialTagPolicy::predict(const LineRef &ref)
{
    const std::uint8_t partial = partialOf(ref);
    const std::uint64_t base = ref.set * geom_.ways;
    for (unsigned way = 0; way < geom_.ways; ++way) {
        if (valid[base + way] && tags[base + way] == partial)
            return way;
    }
    // No partial match: the line is almost certainly absent; probe
    // way 0 first (the order barely matters on a confirmed miss).
    return 0;
}

unsigned
PartialTagPolicy::install(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

void
PartialTagPolicy::onInstall(const LineRef &ref, unsigned way)
{
    const std::uint64_t index = ref.set * geom_.ways + way;
    tags[index] = partialOf(ref);
    valid[index] = 1;
}

std::uint64_t
PartialTagPolicy::storageBits() const
{
    return geom_.lines() * tag_bits;
}

PerfectPolicy::PerfectPolicy(const CacheGeometry &geom,
                             std::uint64_t seed)
    : WayPolicy(geom), rng(seed)
{
}

unsigned
PerfectPolicy::predict(const LineRef &ref)
{
    ACCORD_ASSERT(oracle_ != nullptr, "perfect predictor needs an oracle");
    const int way = oracle_(ref);
    return way >= 0 ? static_cast<unsigned>(way) : 0u;
}

unsigned
PerfectPolicy::install(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

} // namespace accord::core

#include "core/predictors.hpp"

#include "common/bits.hpp"
#include "common/invariant_auditor.hpp"
#include "common/log.hpp"

namespace accord::core
{

MruPolicy::MruPolicy(const CacheGeometry &geom, std::uint64_t seed,
                     TableStorage storage)
    : WayPolicy(geom),
      mru(geom.sets, storage.value_or(autoStorageMode(geom.sets)), 0),
      rng(seed)
{
}

unsigned
MruPolicy::predict(const LineRef &ref)
{
    return mru.read(ref.set);
}

unsigned
MruPolicy::install(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

void
MruPolicy::onHit(const LineRef &ref, unsigned way)
{
    ACCORD_ASSERT(way < geom_.ways, "onHit way %u out of range", way);
    mru.write(ref.set, static_cast<std::uint8_t>(way));
}

void
MruPolicy::onInstall(const LineRef &ref, unsigned way)
{
    ACCORD_ASSERT(way < geom_.ways, "onInstall way %u out of range",
                  way);
    mru.write(ref.set, static_cast<std::uint8_t>(way));
}

std::uint64_t
MruPolicy::storageBits() const
{
    const unsigned way_bits =
        geom_.ways > 1 ? floorLog2(geom_.ways) : 1;
    return geom_.sets * way_bits;
}

std::uint64_t
MruPolicy::residentStateBytes() const
{
    return mru.residentBytes();
}

void
MruPolicy::audit(InvariantAuditor &auditor) const
{
    // Never-written pages read as way 0, which is always in range, so
    // the sweep can skip them wholesale.
    for (std::uint64_t set = mru.nextResidentSlot(0); set < geom_.sets;
         set = mru.nextResidentSlot(set + 1)) {
        if (mru.at(set) >= geom_.ways) {
            auditor.fail("mru-way-range",
                         "set %llu: mru way %u out of range (ways=%u)",
                         static_cast<unsigned long long>(set),
                         mru.at(set), geom_.ways);
        }
    }
}

PartialTagPolicy::PartialTagPolicy(const CacheGeometry &geom,
                                   unsigned tag_bits, std::uint64_t seed,
                                   TableStorage storage)
    : WayPolicy(geom), tag_bits(tag_bits),
      tags(geom.lines(),
           storage.value_or(autoStorageMode(geom.lines())), 0),
      valid(geom.lines(),
            storage.value_or(autoStorageMode(geom.lines())), 0),
      rng(seed)
{
    ACCORD_ASSERT(tag_bits >= 1 && tag_bits <= 8,
                  "partial tags of 1..8 bits supported");
    tag_mask = static_cast<std::uint8_t>((1u << tag_bits) - 1);
}

std::uint8_t
PartialTagPolicy::partialOf(const LineRef &ref) const
{
    // Hash the tag down so adjacent tags do not collide trivially.
    return static_cast<std::uint8_t>(mix64(ref.tag) & tag_mask);
}

unsigned
PartialTagPolicy::predict(const LineRef &ref)
{
    const std::uint8_t partial = partialOf(ref);
    const std::uint64_t base = ref.set * geom_.ways;
    for (unsigned way = 0; way < geom_.ways; ++way) {
        if (valid.read(base + way) && tags.read(base + way) == partial)
            return way;
    }
    // No partial match: the line is almost certainly absent; probe
    // way 0 first (the order barely matters on a confirmed miss).
    return 0;
}

unsigned
PartialTagPolicy::install(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

void
PartialTagPolicy::onInstall(const LineRef &ref, unsigned way)
{
    ACCORD_ASSERT(way < geom_.ways, "onInstall way %u out of range",
                  way);
    const std::uint64_t index = ref.set * geom_.ways + way;
    tags.write(index, partialOf(ref));
    valid.write(index, 1);
}

std::uint64_t
PartialTagPolicy::storageBits() const
{
    return geom_.lines() * tag_bits;
}

std::uint64_t
PartialTagPolicy::residentStateBytes() const
{
    return tags.residentBytes() + valid.residentBytes();
}

void
PartialTagPolicy::audit(InvariantAuditor &auditor) const
{
    // Never-written slots read invalid and violate nothing; skip
    // whole non-resident pages.
    for (std::uint64_t i = valid.nextResidentSlot(0);
         i < geom_.lines(); i = valid.nextResidentSlot(i + 1)) {
        if (valid.at(i) > 1) {
            auditor.fail("ptag-valid-flag",
                         "slot %llu: valid flag %u is not boolean",
                         static_cast<unsigned long long>(i),
                         valid.at(i));
        }
        if (valid.at(i) && (tags.at(i) & ~tag_mask) != 0) {
            auditor.fail("ptag-tag-range",
                         "slot %llu: partial tag %02x exceeds %u-bit "
                         "mask",
                         static_cast<unsigned long long>(i),
                         tags.at(i), tag_bits);
        }
    }
}

PerfectPolicy::PerfectPolicy(const CacheGeometry &geom,
                             std::uint64_t seed)
    : WayPolicy(geom), rng(seed)
{
}

unsigned
PerfectPolicy::predict(const LineRef &ref)
{
    ACCORD_ASSERT(oracle_ != nullptr, "perfect predictor needs an oracle");
    const int way = oracle_(ref);
    return way >= 0 ? static_cast<unsigned>(way) : 0u;
}

unsigned
PerfectPolicy::install(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

} // namespace accord::core

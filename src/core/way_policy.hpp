/**
 * @file
 * The ACCORD way-steering / way-prediction framework (paper Section IV).
 *
 * A WayPolicy couples the two decisions the paper coordinates:
 *
 *  - install side: which way an incoming line is steered into, and
 *  - prediction side: which way a lookup probes first.
 *
 * The DRAM-cache controller consults predict() before probing,
 * candidates() to bound miss confirmation (all ways for conventional
 * designs, two for Skewed Way-Steering), and install() when filling.
 * The controller reports outcomes back through the on*() hooks so
 * history-based policies (GWS, MRU, partial tags) can learn.
 */

#ifndef ACCORD_CORE_WAY_POLICY_HPP
#define ACCORD_CORE_WAY_POLICY_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace accord
{
class InvariantAuditor;
class MetricRegistry;
} // namespace accord

namespace accord::core
{

/** Geometry of the set-associative cache a policy serves. */
struct CacheGeometry
{
    /** Number of sets. */
    std::uint64_t sets = 1;

    /** Ways per set. */
    unsigned ways = 1;

    /** Bits of set index. */
    unsigned setBits() const;

    /** All-ways candidate mask. */
    std::uint64_t
    allWaysMask() const
    {
        return ways >= 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << ways) - 1;
    }

    /** Total lines the cache can hold. */
    std::uint64_t lines() const { return sets * ways; }
};

/** A line as the policy sees it: address plus derived set/tag. */
struct LineRef
{
    LineAddr line = 0;
    std::uint64_t set = 0;

    /** Tag = line address with the set bits stripped. */
    std::uint64_t tag = 0;

    /** Build a LineRef for a geometry. */
    static LineRef make(LineAddr line, const CacheGeometry &geom);
};

/** Coupled install-steering and way-prediction policy. */
class WayPolicy
{
  public:
    explicit WayPolicy(const CacheGeometry &geom) : geom_(geom) {}
    virtual ~WayPolicy() = default;

    WayPolicy(const WayPolicy &) = delete;
    WayPolicy &operator=(const WayPolicy &) = delete;

    /** Way to probe first on a lookup. */
    virtual unsigned predict(const LineRef &ref) = 0;

    /** Way to install a missing line into. */
    virtual unsigned install(const LineRef &ref) = 0;

    /**
     * Ways that may legally hold this line.  Miss confirmation probes
     * only these (Section V-A); defaults to all ways.
     */
    virtual std::uint64_t
    candidates(const LineRef &) const
    {
        return geom_.allWaysMask();
    }

    /** A lookup found the line in `way`. */
    virtual void onHit(const LineRef &, unsigned /* way */) {}

    /** A lookup confirmed the line absent. */
    virtual void onMiss(const LineRef &) {}

    /** The line was installed into `way`. */
    virtual void onInstall(const LineRef &, unsigned /* way */) {}

    /** SRAM bits this policy needs (paper Tables II and IX). */
    virtual std::uint64_t storageBits() const { return 0; }

    /**
     * Host bytes currently backing the policy's own tables (modeled
     * SRAM state, not the simulated array).  Stateless policies cost
     * nothing; table-based ones report their resident columns so the
     * footprint gauges cover predictor state too.
     */
    virtual std::uint64_t residentStateBytes() const { return 0; }

    /**
     * Record violations of policy-internal invariants (table bounds,
     * stored way ids, ...) into the auditor.  Stateless policies have
     * nothing to check; stateful ones (GWS, MRU, partial tags)
     * override.
     */
    virtual void audit(InvariantAuditor &) const {}

    /**
     * Register internal observables (table hit counts, coverage)
     * into the metric registry under `prefix`.  Stateless policies
     * expose nothing; decorators recurse into their base policy.
     */
    virtual void registerMetrics(MetricRegistry &,
                                 const std::string &) const
    {
    }

    /** Short name for stat dumps ("pws", "pws+gws", ...). */
    virtual std::string name() const = 0;

    const CacheGeometry &geometry() const { return geom_; }

  protected:
    CacheGeometry geom_;
};

} // namespace accord::core

#endif // ACCORD_CORE_WAY_POLICY_HPP

/**
 * @file
 * Core-side request vocabulary and its canonical string tokens.
 *
 * Mirrors dramcache/enums.hpp for the traffic layer: the request-kind
 * tokens here are the single source of truth for every enum <-> string
 * rendering a TrafficSource or run report performs (describe()
 * strings, canonical source specs, the text-trace converter contract),
 * so a new kind added here is automatically spelled the same
 * everywhere.
 */

#ifndef ACCORD_CORE_ENUMS_HPP
#define ACCORD_CORE_ENUMS_HPP

#include <cstdint>
#include <string>

namespace accord::core
{

/** What a traffic-stream record asks of the DRAM cache. */
enum class RequestKind : std::uint8_t
{
    Demand,     ///< demand read (post-L3 miss reaching the L4)
    Writeback,  ///< dirty eviction from the level above
};

/** Canonical token ("demand", "writeback"). */
const char *toToken(RequestKind kind);

/** Inverse of toToken(); fatal() on an unknown token. */
RequestKind requestKindFromToken(const std::string &token);

} // namespace accord::core

#endif // ACCORD_CORE_ENUMS_HPP

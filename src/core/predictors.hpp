/**
 * @file
 * Conventional way predictors the paper compares against (Sections
 * II-D and VII): MRU prediction, partial-tag prediction, and a perfect
 * oracle bound.
 *
 * These predict independently of the install policy, so they pair with
 * unbiased random installs — which is exactly why they need per-set or
 * per-line SRAM state that does not scale to gigascale caches
 * (Table II: 4MB for MRU, 32MB for 4-bit partial tags on a 4GB cache).
 */

#ifndef ACCORD_CORE_PREDICTORS_HPP
#define ACCORD_CORE_PREDICTORS_HPP

#include <functional>
#include <optional>

#include "common/paged_table.hpp"
#include "common/rng.hpp"
#include "core/way_policy.hpp"

namespace accord::core
{

/**
 * Storage mode for a predictor table: an explicit mode forces it
 * (the `state_backend=` knob), nullopt resolves per table by size
 * (autoStorageMode), keeping bench-scale tables dense.
 */
using TableStorage = std::optional<StorageMode>;

/** MRU way prediction: one most-recently-used way id per set. */
class MruPolicy : public WayPolicy
{
  public:
    MruPolicy(const CacheGeometry &geom, std::uint64_t seed,
              TableStorage storage = std::nullopt);

    unsigned predict(const LineRef &ref) override;
    unsigned install(const LineRef &ref) override;
    void onHit(const LineRef &ref, unsigned way) override;
    void onInstall(const LineRef &ref, unsigned way) override;
    std::uint64_t storageBits() const override;
    std::uint64_t residentStateBytes() const override;
    std::string name() const override { return "mru"; }
    void audit(InvariantAuditor &auditor) const override;

  private:
    PagedColumn<std::uint8_t> mru;  // [set]
    Rng rng;
};

/**
 * Partial-tag way prediction: a few tag bits per line; the first way
 * whose partial tag matches is probed first.  Accuracy degrades with
 * associativity because of false partial matches.
 */
class PartialTagPolicy : public WayPolicy
{
  public:
    PartialTagPolicy(const CacheGeometry &geom, unsigned tag_bits,
                     std::uint64_t seed,
                     TableStorage storage = std::nullopt);

    unsigned predict(const LineRef &ref) override;
    unsigned install(const LineRef &ref) override;
    void onInstall(const LineRef &ref, unsigned way) override;
    std::uint64_t storageBits() const override;
    std::uint64_t residentStateBytes() const override;
    std::string name() const override { return "ptag"; }
    void audit(InvariantAuditor &auditor) const override;

  private:
    std::uint8_t partialOf(const LineRef &ref) const;

    unsigned tag_bits;
    std::uint8_t tag_mask;
    PagedColumn<std::uint8_t> tags;     // [set * ways + way]
    PagedColumn<std::uint8_t> valid;    // [set * ways + way]
    Rng rng;
};

/**
 * Perfect way prediction: an oracle that always probes the resident
 * way first (upper bound in Fig 10).  The oracle callback is wired to
 * the cache's tag store by the controller; misses still pay full
 * confirmation.
 */
class PerfectPolicy : public WayPolicy
{
  public:
    /** Returns the resident way of the line, or -1 if absent. */
    using Oracle = std::function<int(const LineRef &)>;

    PerfectPolicy(const CacheGeometry &geom, std::uint64_t seed);

    /** Install the oracle; must be set before the first predict(). */
    void setOracle(Oracle oracle) { oracle_ = std::move(oracle); }

    unsigned predict(const LineRef &ref) override;
    unsigned install(const LineRef &ref) override;
    std::string name() const override { return "perfect"; }

  private:
    Oracle oracle_;
    Rng rng;
};

} // namespace accord::core

#endif // ACCORD_CORE_PREDICTORS_HPP

/**
 * @file
 * Ganged Way-Steering (GWS, paper Section IV-C).
 *
 * GWS coordinates install decisions across the sets spanned by a 4KB
 * region: the first missing line of a region picks a way (via the base
 * policy) and subsequent installs from that region follow it (Recent
 * Install Table).  Prediction tracks the last way seen per region
 * (Recent Lookup Table).  Two 64-entry tables -> 320 bytes of SRAM.
 *
 * GWS is a decorator: it wraps any base policy (unbiased random for
 * plain "GWS", PWS for "PWS+GWS", SWS for the high-associativity
 * ACCORD) and defers to it on table misses.
 */

#ifndef ACCORD_CORE_GANGED_HPP
#define ACCORD_CORE_GANGED_HPP

#include <cstdint>
#include <memory>
#include <optional>

#include "common/paged_table.hpp"
#include "core/way_policy.hpp"

namespace accord::core
{

/**
 * Small fully-associative LRU table mapping region id -> way.
 *
 * Models the paper's RIT and RLT; entries() is small (64) so a linear
 * scan is both faithful to the hardware and fast.  Slot state lives
 * in struct-of-arrays columns on the shared storage layer; at these
 * sizes autoStorageMode() always picks the dense backend.
 */
class RegionTable
{
  public:
    explicit RegionTable(unsigned entries,
                         std::optional<StorageMode> storage
                         = std::nullopt);

    /** Way recorded for the region, if tracked; refreshes LRU. */
    std::optional<unsigned> lookup(std::uint64_t region);

    /** Record (or update) the way for a region, evicting LRU. */
    void insert(std::uint64_t region, unsigned way);

    /** Drop a region's entry if present. */
    void invalidate(std::uint64_t region);

    unsigned entries() const
        { return static_cast<unsigned>(regions.size()); }

    /** Valid entries (for tests). */
    unsigned occupancy() const;

    /**
     * Record table-consistency violations: capacity above the
     * configured bound, stored ways >= maxWays, duplicate regions, or
     * LRU stamps ahead of the use clock.  `label` distinguishes RIT
     * from RLT in the report.
     */
    void audit(InvariantAuditor &auditor, const char *label,
               unsigned maxWays, unsigned maxEntries) const;

    /** Host bytes currently backing the table's columns. */
    std::uint64_t residentStateBytes() const;

  private:
    /** Slot index holding `region`, or -1. */
    int find(std::uint64_t region) const;

    // Struct-of-arrays slot state (shared storage layer).
    PagedColumn<std::uint64_t> regions;
    PagedColumn<std::uint64_t> last_use;
    PagedColumn<std::uint8_t> ways_;
    PagedColumn<std::uint8_t> valid_;
    std::uint64_t use_clock = 0;
};

/** Configuration for GWS tables. */
struct GangedParams
{
    unsigned ritEntries = 64;
    unsigned rltEntries = 64;

    /** Region tag bits assumed for the storage estimate (paper: 19). */
    unsigned regionTagBits = 19;

    /** Table backend; nullopt resolves per table by size. */
    std::optional<StorageMode> storage;
};

/** Ganged Way-Steering decorator over a base policy. */
class GangedPolicy : public WayPolicy
{
  public:
    GangedPolicy(std::unique_ptr<WayPolicy> base,
                 const GangedParams &params);

    unsigned predict(const LineRef &ref) override;
    unsigned install(const LineRef &ref) override;
    std::uint64_t candidates(const LineRef &ref) const override;
    void onHit(const LineRef &ref, unsigned way) override;
    void onMiss(const LineRef &ref) override;
    void onInstall(const LineRef &ref, unsigned way) override;
    std::uint64_t storageBits() const override;
    std::uint64_t residentStateBytes() const override;
    std::string name() const override;
    void audit(InvariantAuditor &auditor) const override;
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const override;

    /** Fraction of predictions served by the RLT (for analysis). */
    double rltCoverage() const;

    WayPolicy &base() { return *base_; }

  private:
    std::unique_ptr<WayPolicy> base_;
    GangedParams params;
    RegionTable rit;
    RegionTable rlt;
    std::uint64_t rlt_hits = 0;
    std::uint64_t predictions = 0;
};

} // namespace accord::core

#endif // ACCORD_CORE_GANGED_HPP

/**
 * @file
 * Policy factory used by benches, examples, and tests.
 *
 * Builds any of the paper's way-steering / way-prediction
 * configurations from a short spec string.
 */

#ifndef ACCORD_CORE_FACTORY_HPP
#define ACCORD_CORE_FACTORY_HPP

#include <memory>
#include <string>

#include "core/way_policy.hpp"

namespace accord::core
{

/** Knobs shared by the policy constructors. */
struct PolicyOptions
{
    /** Preferred-way install probability for PWS/SWS (Section IV-B). */
    double pip = 0.85;

    /** Allowed locations per line for SWS(N,k). */
    unsigned swsK = 2;

    /** RIT/RLT entries for GWS. */
    unsigned gwsEntries = 64;

    /** Partial tag width for the partial-tag predictor. */
    unsigned partialTagBits = 4;

    /** RNG seed for the policy's private stream. */
    std::uint64_t seed = 42;
};

/**
 * Build a policy from a spec string.
 *
 * Recognized specs: "rand", "pws", "gws", "pws+gws" (2-way ACCORD),
 * "sws", "sws+gws" (high-associativity ACCORD), "mru", "ptag",
 * "perfect".
 */
std::unique_ptr<WayPolicy>
makePolicy(const std::string &spec, const CacheGeometry &geom,
           const PolicyOptions &options = {});

} // namespace accord::core

#endif // ACCORD_CORE_FACTORY_HPP

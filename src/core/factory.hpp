/**
 * @file
 * Policy factory used by benches, examples, and tests.
 *
 * Builds any of the paper's way-steering / way-prediction
 * configurations from a short spec string.
 */

#ifndef ACCORD_CORE_FACTORY_HPP
#define ACCORD_CORE_FACTORY_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/paged_table.hpp"
#include "core/way_policy.hpp"

namespace accord::core
{

/**
 * A name-keyed registry of factories, the generic half of the
 * registry-backed construction pattern: components (cache
 * organizations, future lookup strategies, ...) register a factory
 * under a string key, and configs select one by name — so adding a
 * variant never edits the code that constructs it.
 *
 * Deliberately ordered (std::map) so names() is deterministic, and
 * duplicate registration is fatal so two translation units cannot
 * silently fight over a name.
 */
template <typename Factory> class NamedRegistry
{
  public:
    /** Register `factory` under `name`; fatal() on a duplicate. */
    void
    add(const std::string &name, Factory factory)
    {
        const auto [it, inserted] =
            entries_.emplace(name, std::move(factory));
        (void)it;
        if (!inserted)
            fatal("registry: duplicate entry '%s'", name.c_str());
    }

    /** Factory registered under `name`, or nullptr. */
    const Factory *
    find(const std::string &name) const
    {
        const auto it = entries_.find(name);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** All registered names, sorted. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &entry : entries_)
            out.push_back(entry.first);
        return out;
    }

  private:
    std::map<std::string, Factory> entries_;
};

/** Knobs shared by the policy constructors. */
struct PolicyOptions
{
    /** Preferred-way install probability for PWS/SWS (Section IV-B). */
    double pip = 0.85;

    /** Allowed locations per line for SWS(N,k). */
    unsigned swsK = 2;

    /** RIT/RLT entries for GWS. */
    unsigned gwsEntries = 64;

    /** Partial tag width for the partial-tag predictor. */
    unsigned partialTagBits = 4;

    /** RNG seed for the policy's private stream. */
    std::uint64_t seed = 42;

    /**
     * Table backend for stateful policies (MRU, partial tags, GWS):
     * an explicit mode forces it, nullopt resolves per table by size.
     * Deliberately NOT part of toString()/fromString() — the backend
     * never changes simulation results, only the host footprint, so
     * canonical policy specs (and every committed baseline embedding
     * them) stay byte-identical across backends.
     */
    std::optional<StorageMode> storage;

    /**
     * Canonical one-line rendering, e.g.
     * "pip=0.85,k=2,gws=64,ptag=4,seed=42".  Every knob always
     * appears, in this fixed order, so equal options produce equal
     * strings and reports fully identify their configuration.
     */
    std::string toString() const;

    /**
     * Inverse of toString().  Accepts any subset of the knobs in any
     * order ("pip=0.9,seed=3"); unset knobs keep their defaults.
     * fatal() on unknown keys or malformed values.
     */
    static PolicyOptions fromString(const std::string &text);
};

/**
 * Build a policy from a spec string.
 *
 * Recognized specs: "rand", "pws", "gws", "pws+gws" (2-way ACCORD),
 * "sws", "sws+gws" (high-associativity ACCORD), "mru", "ptag",
 * "perfect".  A spec may embed options in parentheses —
 * "pws+gws(pip=0.9,gws=128)" — which override `options`.
 */
std::unique_ptr<WayPolicy>
makePolicy(const std::string &spec, const CacheGeometry &geom,
           const PolicyOptions &options = {});

/**
 * Canonical "name(options)" spec: the bare policy name plus the full
 * PolicyOptions::toString() rendering, e.g.
 * "pws+gws(pip=0.85,k=2,gws=64,ptag=4,seed=42)".  Round-trips through
 * parseSpec()/makePolicy() and is what RunReport embeds.
 */
std::string canonicalSpec(const std::string &spec,
                          const PolicyOptions &options = {});

/**
 * Split a spec into its bare name and options: "pws+gws(pip=0.9)"
 * applies pip=0.9 on top of `base`; a bare "pws+gws" returns `base`
 * unchanged.
 */
std::pair<std::string, PolicyOptions>
parseSpec(const std::string &spec, const PolicyOptions &base = {});

} // namespace accord::core

#endif // ACCORD_CORE_FACTORY_HPP

#include "core/ganged.hpp"

#include "common/bits.hpp"
#include "common/invariant_auditor.hpp"
#include "common/log.hpp"
#include "common/metrics/registry.hpp"

namespace accord::core
{

RegionTable::RegionTable(unsigned entries) : slots(entries)
{
    ACCORD_ASSERT(entries > 0, "region table needs entries");
}

RegionTable::Slot *
RegionTable::find(std::uint64_t region)
{
    for (Slot &slot : slots) {
        if (slot.valid && slot.region == region)
            return &slot;
    }
    return nullptr;
}

std::optional<unsigned>
RegionTable::lookup(std::uint64_t region)
{
    if (Slot *slot = find(region)) {
        slot->lastUse = ++use_clock;
        return slot->way;
    }
    return std::nullopt;
}

void
RegionTable::insert(std::uint64_t region, unsigned way)
{
    if (Slot *slot = find(region)) {
        slot->way = way;
        slot->lastUse = ++use_clock;
        return;
    }
    Slot *victim = &slots[0];
    for (Slot &slot : slots) {
        if (!slot.valid) {
            victim = &slot;
            break;
        }
        if (slot.lastUse < victim->lastUse)
            victim = &slot;
    }
    victim->valid = true;
    victim->region = region;
    victim->way = way;
    victim->lastUse = ++use_clock;
}

void
RegionTable::invalidate(std::uint64_t region)
{
    if (Slot *slot = find(region))
        slot->valid = false;
}

unsigned
RegionTable::occupancy() const
{
    unsigned count = 0;
    for (const Slot &slot : slots)
        count += slot.valid ? 1 : 0;
    return count;
}

void
RegionTable::audit(InvariantAuditor &auditor, const char *label,
                   unsigned maxWays, unsigned maxEntries) const
{
    if (slots.size() > maxEntries) {
        auditor.fail("gws-table-bound",
                     "%s holds %zu slots, configured bound is %u",
                     label, slots.size(), maxEntries);
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Slot &slot = slots[i];
        if (!slot.valid)
            continue;
        if (slot.way >= maxWays) {
            auditor.fail("gws-way-range",
                         "%s slot %zu: way %u out of range (ways=%u)",
                         label, i, slot.way, maxWays);
        }
        if (slot.lastUse > use_clock) {
            auditor.fail("gws-lru-clock",
                         "%s slot %zu: stamp %llu ahead of clock %llu",
                         label, i,
                         static_cast<unsigned long long>(slot.lastUse),
                         static_cast<unsigned long long>(use_clock));
        }
        for (std::size_t j = i + 1; j < slots.size(); ++j) {
            if (slots[j].valid && slots[j].region == slot.region) {
                auditor.fail("gws-dup-region",
                             "%s slots %zu and %zu both map region "
                             "%llx",
                             label, i, j,
                             static_cast<unsigned long long>(
                                 slot.region));
            }
        }
    }
}

GangedPolicy::GangedPolicy(std::unique_ptr<WayPolicy> base,
                           const GangedParams &params)
    : WayPolicy(base->geometry()), base_(std::move(base)), params(params),
      rit(params.ritEntries), rlt(params.rltEntries)
{
    // Lines of one 4KB region must share their tag so the ganged way is
    // always inside the base policy's candidate set; this holds as long
    // as the set index covers the in-region line bits.
    ACCORD_ASSERT(geom_.setBits() >= regionShift - lineShift,
                  "GWS requires at least 64 sets");
}

unsigned
GangedPolicy::predict(const LineRef &ref)
{
    ++predictions;
    if (const auto way = rlt.lookup(regionOf(ref.line))) {
        ++rlt_hits;
        return *way;
    }
    return base_->predict(ref);
}

unsigned
GangedPolicy::install(const LineRef &ref)
{
    const std::uint64_t region = regionOf(ref.line);
    if (const auto way = rit.lookup(region))
        return *way;
    const unsigned way = base_->install(ref);
    rit.insert(region, way);
    return way;
}

std::uint64_t
GangedPolicy::candidates(const LineRef &ref) const
{
    return base_->candidates(ref);
}

void
GangedPolicy::onHit(const LineRef &ref, unsigned way)
{
    ACCORD_ASSERT(way < geom_.ways, "onHit way %u out of range", way);
    rlt.insert(regionOf(ref.line), way);
    base_->onHit(ref, way);
}

void
GangedPolicy::onMiss(const LineRef &ref)
{
    base_->onMiss(ref);
}

void
GangedPolicy::onInstall(const LineRef &ref, unsigned way)
{
    ACCORD_ASSERT(way < geom_.ways, "onInstall way %u out of range",
                  way);
    rlt.insert(regionOf(ref.line), way);
    base_->onInstall(ref, way);
}

std::uint64_t
GangedPolicy::storageBits() const
{
    const unsigned way_bits =
        geom_.ways > 1 ? floorLog2(geom_.ways) : 1;
    const std::uint64_t per_entry =
        params.regionTagBits + 1 /* valid */ + way_bits;
    return (params.ritEntries + params.rltEntries) * per_entry
        + base_->storageBits();
}

std::string
GangedPolicy::name() const
{
    const std::string inner = base_->name();
    return inner == "rand" ? "gws" : inner + "+gws";
}

void
GangedPolicy::audit(InvariantAuditor &auditor) const
{
    rit.audit(auditor, "rit", geom_.ways, params.ritEntries);
    rlt.audit(auditor, "rlt", geom_.ways, params.rltEntries);
    if (rlt_hits > predictions) {
        auditor.fail("gws-coverage",
                     "rlt hits %llu exceed predictions %llu",
                     static_cast<unsigned long long>(rlt_hits),
                     static_cast<unsigned long long>(predictions));
    }
    base_->audit(auditor);
}

double
GangedPolicy::rltCoverage() const
{
    return predictions == 0
        ? 0.0
        : static_cast<double>(rlt_hits)
            / static_cast<double>(predictions);
}

void
GangedPolicy::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    registry.addValue(MetricRegistry::join(prefix, "rlt_hits"),
                      rlt_hits);
    registry.addValue(MetricRegistry::join(prefix, "predictions"),
                      predictions);
    registry.addGauge(MetricRegistry::join(prefix, "rlt_coverage"),
                      [this] { return rltCoverage(); });
    base_->registerMetrics(registry,
                           MetricRegistry::join(prefix, "base"));
}

} // namespace accord::core

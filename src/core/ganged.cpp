#include "core/ganged.hpp"

#include "common/bits.hpp"
#include "common/invariant_auditor.hpp"
#include "common/log.hpp"
#include "common/metrics/registry.hpp"

namespace accord::core
{

RegionTable::RegionTable(unsigned entries,
                         std::optional<StorageMode> storage)
{
    ACCORD_ASSERT(entries > 0, "region table needs entries");
    const StorageMode mode =
        storage.value_or(autoStorageMode(entries));
    regions.reset(entries, mode, 0);
    last_use.reset(entries, mode, 0);
    ways_.reset(entries, mode, 0);
    valid_.reset(entries, mode, 0);
}

int
RegionTable::find(std::uint64_t region) const
{
    for (std::uint64_t i = 0; i < regions.size(); ++i) {
        if (valid_.read(i) && regions.read(i) == region)
            return static_cast<int>(i);
    }
    return -1;
}

std::optional<unsigned>
RegionTable::lookup(std::uint64_t region)
{
    const int slot = find(region);
    if (slot < 0)
        return std::nullopt;
    last_use.write(static_cast<std::uint64_t>(slot), ++use_clock);
    return ways_.read(static_cast<std::uint64_t>(slot));
}

void
RegionTable::insert(std::uint64_t region, unsigned way)
{
    const int hit = find(region);
    if (hit >= 0) {
        const auto slot = static_cast<std::uint64_t>(hit);
        ways_.write(slot, static_cast<std::uint8_t>(way));
        last_use.write(slot, ++use_clock);
        return;
    }
    std::uint64_t victim = 0;
    for (std::uint64_t i = 0; i < regions.size(); ++i) {
        if (!valid_.read(i)) {
            victim = i;
            break;
        }
        if (last_use.read(i) < last_use.read(victim))
            victim = i;
    }
    valid_.write(victim, 1);
    regions.write(victim, region);
    ways_.write(victim, static_cast<std::uint8_t>(way));
    last_use.write(victim, ++use_clock);
}

void
RegionTable::invalidate(std::uint64_t region)
{
    const int slot = find(region);
    if (slot >= 0)
        valid_.write(static_cast<std::uint64_t>(slot), 0);
}

unsigned
RegionTable::occupancy() const
{
    unsigned count = 0;
    for (std::uint64_t i = 0; i < regions.size(); ++i)
        count += valid_.read(i) ? 1 : 0;
    return count;
}

std::uint64_t
RegionTable::residentStateBytes() const
{
    return regions.residentBytes() + last_use.residentBytes()
        + ways_.residentBytes() + valid_.residentBytes();
}

void
RegionTable::audit(InvariantAuditor &auditor, const char *label,
                   unsigned maxWays, unsigned maxEntries) const
{
    if (regions.size() > maxEntries) {
        auditor.fail("gws-table-bound",
                     "%s holds %llu slots, configured bound is %u",
                     label,
                     static_cast<unsigned long long>(regions.size()),
                     maxEntries);
    }
    for (std::uint64_t i = 0; i < regions.size(); ++i) {
        if (!valid_.at(i))
            continue;
        if (ways_.at(i) >= maxWays) {
            auditor.fail("gws-way-range",
                         "%s slot %llu: way %u out of range (ways=%u)",
                         label, static_cast<unsigned long long>(i),
                         ways_.at(i), maxWays);
        }
        if (last_use.at(i) > use_clock) {
            auditor.fail("gws-lru-clock",
                         "%s slot %llu: stamp %llu ahead of clock %llu",
                         label, static_cast<unsigned long long>(i),
                         static_cast<unsigned long long>(last_use.at(i)),
                         static_cast<unsigned long long>(use_clock));
        }
        for (std::uint64_t j = i + 1; j < regions.size(); ++j) {
            if (valid_.at(j) && regions.at(j) == regions.at(i)) {
                auditor.fail("gws-dup-region",
                             "%s slots %llu and %llu both map region "
                             "%llx",
                             label, static_cast<unsigned long long>(i),
                             static_cast<unsigned long long>(j),
                             static_cast<unsigned long long>(
                                 regions.at(i)));
            }
        }
    }
}

GangedPolicy::GangedPolicy(std::unique_ptr<WayPolicy> base,
                           const GangedParams &params)
    : WayPolicy(base->geometry()), base_(std::move(base)), params(params),
      rit(params.ritEntries, params.storage),
      rlt(params.rltEntries, params.storage)
{
    // Lines of one 4KB region must share their tag so the ganged way is
    // always inside the base policy's candidate set; this holds as long
    // as the set index covers the in-region line bits.
    ACCORD_ASSERT(geom_.setBits() >= regionShift - lineShift,
                  "GWS requires at least 64 sets");
}

unsigned
GangedPolicy::predict(const LineRef &ref)
{
    ++predictions;
    if (const auto way = rlt.lookup(regionOf(ref.line))) {
        ++rlt_hits;
        return *way;
    }
    return base_->predict(ref);
}

unsigned
GangedPolicy::install(const LineRef &ref)
{
    const std::uint64_t region = regionOf(ref.line);
    if (const auto way = rit.lookup(region))
        return *way;
    const unsigned way = base_->install(ref);
    rit.insert(region, way);
    return way;
}

std::uint64_t
GangedPolicy::candidates(const LineRef &ref) const
{
    return base_->candidates(ref);
}

void
GangedPolicy::onHit(const LineRef &ref, unsigned way)
{
    ACCORD_ASSERT(way < geom_.ways, "onHit way %u out of range", way);
    rlt.insert(regionOf(ref.line), way);
    base_->onHit(ref, way);
}

void
GangedPolicy::onMiss(const LineRef &ref)
{
    base_->onMiss(ref);
}

void
GangedPolicy::onInstall(const LineRef &ref, unsigned way)
{
    ACCORD_ASSERT(way < geom_.ways, "onInstall way %u out of range",
                  way);
    rlt.insert(regionOf(ref.line), way);
    base_->onInstall(ref, way);
}

std::uint64_t
GangedPolicy::storageBits() const
{
    const unsigned way_bits =
        geom_.ways > 1 ? floorLog2(geom_.ways) : 1;
    const std::uint64_t per_entry =
        params.regionTagBits + 1 /* valid */ + way_bits;
    return (params.ritEntries + params.rltEntries) * per_entry
        + base_->storageBits();
}

std::uint64_t
GangedPolicy::residentStateBytes() const
{
    return rit.residentStateBytes() + rlt.residentStateBytes()
        + base_->residentStateBytes();
}

std::string
GangedPolicy::name() const
{
    const std::string inner = base_->name();
    return inner == "rand" ? "gws" : inner + "+gws";
}

void
GangedPolicy::audit(InvariantAuditor &auditor) const
{
    rit.audit(auditor, "rit", geom_.ways, params.ritEntries);
    rlt.audit(auditor, "rlt", geom_.ways, params.rltEntries);
    if (rlt_hits > predictions) {
        auditor.fail("gws-coverage",
                     "rlt hits %llu exceed predictions %llu",
                     static_cast<unsigned long long>(rlt_hits),
                     static_cast<unsigned long long>(predictions));
    }
    base_->audit(auditor);
}

double
GangedPolicy::rltCoverage() const
{
    return predictions == 0
        ? 0.0
        : static_cast<double>(rlt_hits)
            / static_cast<double>(predictions);
}

void
GangedPolicy::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    registry.addValue(MetricRegistry::join(prefix, "rlt_hits"),
                      rlt_hits);
    registry.addValue(MetricRegistry::join(prefix, "predictions"),
                      predictions);
    registry.addGauge(MetricRegistry::join(prefix, "rlt_coverage"),
                      [this] { return rltCoverage(); });
    base_->registerMetrics(registry,
                           MetricRegistry::join(prefix, "base"));
}

} // namespace accord::core

/**
 * @file
 * Stateless way-steering policies: unbiased random, Probabilistic
 * Way-Steering (PWS, Section IV-B), and Skewed Way-Steering (SWS,
 * Section V-A).
 *
 * All three derive the preferred way from the line's tag, so prediction
 * needs no storage at all; only the install bias differs.
 */

#ifndef ACCORD_CORE_STEER_HPP
#define ACCORD_CORE_STEER_HPP

#include <vector>

#include "common/rng.hpp"
#include "core/way_policy.hpp"

namespace accord::core
{

/** Preferred way of a line: the low log2(ways) bits of its tag. */
unsigned preferredWay(const LineRef &ref, unsigned ways);

/**
 * Alternate ways of a line under SWS.
 *
 * Scans log2(ways)-bit groups of the tag from above the preferred-way
 * group toward the MSB; the first `count` distinct values that differ
 * from the preferred way are the alternates.  If the tag runs out of
 * differing groups, the list is padded with (preferred + i) mod ways,
 * so an alternate always exists and never equals the preferred way.
 */
std::vector<unsigned> alternateWays(const LineRef &ref, unsigned ways,
                                    unsigned count);

/**
 * Baseline conventional install: victim way chosen uniformly at random
 * (update-free random replacement), prediction uniformly random.
 */
class UnbiasedPolicy : public WayPolicy
{
  public:
    UnbiasedPolicy(const CacheGeometry &geom, std::uint64_t seed);

    unsigned predict(const LineRef &ref) override;
    unsigned install(const LineRef &ref) override;
    std::string name() const override { return "rand"; }

  private:
    Rng rng;
};

/**
 * Probabilistic Way-Steering.
 *
 * Installs into the preferred way with probability PIP (default 0.85),
 * else uniformly into one of the other ways; predicts the preferred
 * way.  PIP=1/ways reproduces unbiased random; PIP=1.0 degenerates into
 * a direct-mapped cache (Section IV-B).
 */
class PwsPolicy : public WayPolicy
{
  public:
    PwsPolicy(const CacheGeometry &geom, double pip, std::uint64_t seed);

    unsigned predict(const LineRef &ref) override;
    unsigned install(const LineRef &ref) override;
    std::string name() const override;

    double pip() const { return pip_; }

  private:
    double pip_;
    Rng rng;
};

/**
 * Skewed Way-Steering: SWS(N, k).
 *
 * Each line may live in its preferred way or one of (k-1) tag-hashed
 * alternates, so miss confirmation costs k probes instead of N.
 * Within the candidate set the install is PWS-biased toward the
 * preferred way.
 */
class SwsPolicy : public WayPolicy
{
  public:
    SwsPolicy(const CacheGeometry &geom, unsigned k, double pip,
              std::uint64_t seed);

    unsigned predict(const LineRef &ref) override;
    unsigned install(const LineRef &ref) override;
    std::uint64_t candidates(const LineRef &ref) const override;
    std::string name() const override;

    unsigned k() const { return k_; }

  private:
    unsigned k_;
    double pip_;
    Rng rng;
};

} // namespace accord::core

#endif // ACCORD_CORE_STEER_HPP

#include "core/way_policy.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::core
{

unsigned
CacheGeometry::setBits() const
{
    ACCORD_ASSERT(isPow2(sets), "set count must be a power of two");
    return floorLog2(sets);
}

LineRef
LineRef::make(LineAddr line, const CacheGeometry &geom)
{
    LineRef ref;
    ref.line = line;
    ref.set = line & (geom.sets - 1);
    ref.tag = line >> geom.setBits();
    return ref;
}

} // namespace accord::core

#include "core/factory.hpp"

#include "common/log.hpp"
#include "core/ganged.hpp"
#include "core/predictors.hpp"
#include "core/steer.hpp"

namespace accord::core
{

std::unique_ptr<WayPolicy>
makePolicy(const std::string &spec, const CacheGeometry &geom,
           const PolicyOptions &options)
{
    GangedParams ganged;
    ganged.ritEntries = options.gwsEntries;
    ganged.rltEntries = options.gwsEntries;

    if (spec == "rand")
        return std::make_unique<UnbiasedPolicy>(geom, options.seed);
    if (spec == "pws")
        return std::make_unique<PwsPolicy>(geom, options.pip,
                                           options.seed);
    if (spec == "gws") {
        auto base = std::make_unique<UnbiasedPolicy>(geom, options.seed);
        return std::make_unique<GangedPolicy>(std::move(base), ganged);
    }
    if (spec == "pws+gws") {
        auto base = std::make_unique<PwsPolicy>(geom, options.pip,
                                                options.seed);
        return std::make_unique<GangedPolicy>(std::move(base), ganged);
    }
    if (spec == "sws")
        return std::make_unique<SwsPolicy>(geom, options.swsK,
                                           options.pip, options.seed);
    if (spec == "sws+gws") {
        auto base = std::make_unique<SwsPolicy>(geom, options.swsK,
                                                options.pip, options.seed);
        return std::make_unique<GangedPolicy>(std::move(base), ganged);
    }
    if (spec == "mru")
        return std::make_unique<MruPolicy>(geom, options.seed);
    if (spec == "ptag")
        return std::make_unique<PartialTagPolicy>(
            geom, options.partialTagBits, options.seed);
    if (spec == "perfect")
        return std::make_unique<PerfectPolicy>(geom, options.seed);

    fatal("unknown way policy spec '%s'", spec.c_str());
}

} // namespace accord::core

#include "core/factory.hpp"

#include <cstdlib>

#include "common/json.hpp"
#include "common/log.hpp"
#include "core/ganged.hpp"
#include "core/predictors.hpp"
#include "core/steer.hpp"

namespace accord::core
{

std::string
PolicyOptions::toString() const
{
    std::string out;
    out += "pip=" + canonicalNumber(pip);
    out += ",k=" + std::to_string(swsK);
    out += ",gws=" + std::to_string(gwsEntries);
    out += ",ptag=" + std::to_string(partialTagBits);
    out += ",seed=" + std::to_string(seed);
    return out;
}

namespace
{

/** Apply "key=value,..." onto existing options; fatal() on errors. */
void
applyOptions(PolicyOptions &options, const std::string &text)
{
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("bad policy option '%s' (want key=value)",
                  item.c_str());
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        char *rest = nullptr;
        if (key == "pip") {
            options.pip = std::strtod(value.c_str(), &rest);
        } else if (key == "k") {
            options.swsK = static_cast<unsigned>(
                std::strtoul(value.c_str(), &rest, 10));
        } else if (key == "gws") {
            options.gwsEntries = static_cast<unsigned>(
                std::strtoul(value.c_str(), &rest, 10));
        } else if (key == "ptag") {
            options.partialTagBits = static_cast<unsigned>(
                std::strtoul(value.c_str(), &rest, 10));
        } else if (key == "seed") {
            options.seed = std::strtoull(value.c_str(), &rest, 10);
        } else {
            fatal("unknown policy option '%s'", key.c_str());
        }
        if (value.empty() || rest == nullptr || *rest != '\0')
            fatal("bad value '%s' for policy option '%s'",
                  value.c_str(), key.c_str());
    }
}

} // namespace

PolicyOptions
PolicyOptions::fromString(const std::string &text)
{
    PolicyOptions options;
    applyOptions(options, text);
    return options;
}

std::pair<std::string, PolicyOptions>
parseSpec(const std::string &spec, const PolicyOptions &base)
{
    const std::size_t open = spec.find('(');
    if (open == std::string::npos)
        return {spec, base};
    if (spec.back() != ')' || open + 1 >= spec.size())
        fatal("bad policy spec '%s' (unbalanced parentheses)",
              spec.c_str());
    PolicyOptions options = base;
    applyOptions(options,
                 spec.substr(open + 1, spec.size() - open - 2));
    return {spec.substr(0, open), options};
}

std::string
canonicalSpec(const std::string &spec, const PolicyOptions &options)
{
    const auto [name, merged] = parseSpec(spec, options);
    return name + "(" + merged.toString() + ")";
}

std::unique_ptr<WayPolicy>
makePolicy(const std::string &full_spec, const CacheGeometry &geom,
           const PolicyOptions &base_options)
{
    const auto [spec, options] = parseSpec(full_spec, base_options);

    GangedParams ganged;
    ganged.ritEntries = options.gwsEntries;
    ganged.rltEntries = options.gwsEntries;
    ganged.storage = options.storage;

    if (spec == "rand")
        return std::make_unique<UnbiasedPolicy>(geom, options.seed);
    if (spec == "pws")
        return std::make_unique<PwsPolicy>(geom, options.pip,
                                           options.seed);
    if (spec == "gws") {
        auto base = std::make_unique<UnbiasedPolicy>(geom, options.seed);
        return std::make_unique<GangedPolicy>(std::move(base), ganged);
    }
    if (spec == "pws+gws") {
        auto base = std::make_unique<PwsPolicy>(geom, options.pip,
                                                options.seed);
        return std::make_unique<GangedPolicy>(std::move(base), ganged);
    }
    if (spec == "sws")
        return std::make_unique<SwsPolicy>(geom, options.swsK,
                                           options.pip, options.seed);
    if (spec == "sws+gws") {
        auto base = std::make_unique<SwsPolicy>(geom, options.swsK,
                                                options.pip, options.seed);
        return std::make_unique<GangedPolicy>(std::move(base), ganged);
    }
    if (spec == "mru")
        return std::make_unique<MruPolicy>(geom, options.seed,
                                           options.storage);
    if (spec == "ptag")
        return std::make_unique<PartialTagPolicy>(
            geom, options.partialTagBits, options.seed,
            options.storage);
    if (spec == "perfect")
        return std::make_unique<PerfectPolicy>(geom, options.seed);

    fatal("unknown way policy spec '%s'", spec.c_str());
}

} // namespace accord::core

#include "core/enums.hpp"

#include "common/log.hpp"

namespace accord::core
{

const char *
toToken(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Demand: return "demand";
      case RequestKind::Writeback: return "writeback";
    }
    fatal("unknown RequestKind %d", static_cast<int>(kind));
}

RequestKind
requestKindFromToken(const std::string &token)
{
    for (const auto kind :
         {RequestKind::Demand, RequestKind::Writeback}) {
        if (token == toToken(kind))
            return kind;
    }
    fatal("unknown request kind '%s'", token.c_str());
}

} // namespace accord::core

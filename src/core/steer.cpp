#include "core/steer.hpp"

#include <cstdio>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::core
{

unsigned
preferredWay(const LineRef &ref, unsigned ways)
{
    return static_cast<unsigned>(ref.tag & (ways - 1));
}

std::vector<unsigned>
alternateWays(const LineRef &ref, unsigned ways, unsigned count)
{
    ACCORD_ASSERT(isPow2(ways) && ways >= 2, "ways must be pow2 >= 2");
    ACCORD_ASSERT(count >= 1 && count < ways, "bad alternate count");

    const unsigned way_bits = floorLog2(ways);
    const unsigned preferred = preferredWay(ref, ways);

    std::vector<unsigned> alts;
    alts.reserve(count);
    auto contains = [&](unsigned w) {
        for (const unsigned a : alts) {
            if (a == w)
                return true;
        }
        return false;
    };

    // Scan way_bits-sized groups above the preferred-way group.
    for (unsigned lo = way_bits; lo + way_bits <= 64 && alts.size() < count;
         lo += way_bits) {
        const auto group =
            static_cast<unsigned>(bits(ref.tag, lo, way_bits));
        if (group != preferred && !contains(group))
            alts.push_back(group);
    }

    // Rare case: not enough distinct groups in the tag; pad
    // deterministically with rotations of the preferred way.
    for (unsigned i = 1; alts.size() < count && i < ways; ++i) {
        const unsigned w = (preferred + i) & (ways - 1);
        if (!contains(w))
            alts.push_back(w);
    }
    return alts;
}

UnbiasedPolicy::UnbiasedPolicy(const CacheGeometry &geom,
                               std::uint64_t seed)
    : WayPolicy(geom), rng(seed)
{
}

unsigned
UnbiasedPolicy::predict(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

unsigned
UnbiasedPolicy::install(const LineRef &)
{
    return static_cast<unsigned>(rng.below(geom_.ways));
}

PwsPolicy::PwsPolicy(const CacheGeometry &geom, double pip,
                     std::uint64_t seed)
    : WayPolicy(geom), pip_(pip), rng(seed)
{
    ACCORD_ASSERT(pip >= 0.0 && pip <= 1.0, "PIP must be a probability");
}

unsigned
PwsPolicy::predict(const LineRef &ref)
{
    return preferredWay(ref, geom_.ways);
}

unsigned
PwsPolicy::install(const LineRef &ref)
{
    const unsigned preferred = preferredWay(ref, geom_.ways);
    if (geom_.ways == 1 || rng.chance(pip_))
        return preferred;
    // Uniform over the other ways.
    const auto skip = rng.below(geom_.ways - 1);
    const unsigned way = static_cast<unsigned>(skip);
    return way >= preferred ? way + 1 : way;
}

std::string
PwsPolicy::name() const
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "pws%.0f", pip_ * 100.0);
    return buf;
}

SwsPolicy::SwsPolicy(const CacheGeometry &geom, unsigned k, double pip,
                     std::uint64_t seed)
    : WayPolicy(geom), k_(k), pip_(pip), rng(seed)
{
    ACCORD_ASSERT(k >= 2 && k <= geom.ways,
                  "SWS needs 2 <= k <= ways");
}

unsigned
SwsPolicy::predict(const LineRef &ref)
{
    return preferredWay(ref, geom_.ways);
}

unsigned
SwsPolicy::install(const LineRef &ref)
{
    const unsigned preferred = preferredWay(ref, geom_.ways);
    if (rng.chance(pip_))
        return preferred;
    const auto alts = alternateWays(ref, geom_.ways, k_ - 1);
    return alts[rng.below(alts.size())];
}

std::uint64_t
SwsPolicy::candidates(const LineRef &ref) const
{
    std::uint64_t mask =
        std::uint64_t{1} << preferredWay(ref, geom_.ways);
    for (const unsigned alt : alternateWays(ref, geom_.ways, k_ - 1))
        mask |= std::uint64_t{1} << alt;
    return mask;
}

std::string
SwsPolicy::name() const
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "sws(%u,%u)", geom_.ways, k_);
    return buf;
}

} // namespace accord::core

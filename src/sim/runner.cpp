#include "sim/runner.hpp"

#include "common/log.hpp"
#include "sim/sweep.hpp"
#include "trace/sample.hpp"
#include "trace/source.hpp"

namespace accord::sim
{

SystemMetrics
runSystem(const SystemConfig &config)
{
    System system(config);
    return system.run();
}

double
weightedSpeedup(const SystemMetrics &config,
                const SystemMetrics &baseline)
{
    ACCORD_ASSERT(config.coreIpc.size() == baseline.coreIpc.size()
                      && !config.coreIpc.empty(),
                  "weighted speedup needs matching timed runs");
    double sum = 0.0;
    for (std::size_t i = 0; i < config.coreIpc.size(); ++i) {
        ACCORD_ASSERT(baseline.coreIpc[i] > 0.0,
                      "baseline core IPC must be positive");
        sum += config.coreIpc[i] / baseline.coreIpc[i];
    }
    return sum / static_cast<double>(config.coreIpc.size());
}

void
applyCliOverrides(SystemConfig &config, const Config &cli)
{
    if (cli.getBool("full", false))
        config.scale = 1;
    config.scale = cli.getUint("scale", config.scale);
    config.numCores =
        static_cast<unsigned>(cli.getUint("cores", config.numCores));
    config.timedPerCore = cli.getUint("timed", config.timedPerCore);
    config.warmPerCore = cli.getUint("warm", config.warmPerCore);
    config.measurePerCore =
        cli.getUint("measure", config.measurePerCore);
    config.seed = cli.getUint("seed", config.seed);
    config.mlp = static_cast<unsigned>(cli.getUint("mlp", config.mlp));
    config.jobs =
        static_cast<unsigned>(cli.getUint("jobs", config.jobs));
    config.epochEvery = cli.getUint("epoch", config.epochEvery);
    config.tracePath = cli.getString("trace", config.tracePath);
    config.traceCap = cli.getUint("trace_cap", config.traceCap);
    config.trafficSpec = cli.getString("source", config.trafficSpec);
    config.sampleSpec = cli.getString("sample", config.sampleSpec);
    config.stateBackend = dramcache::stateBackendFromToken(
        cli.getString("state_backend",
                      dramcache::toToken(config.stateBackend)));
    // Telemetry is pure observability: like jobs= and trace= it never
    // changes simulation results, so canonicalConfigSpec excludes it
    // and reports stay byte-identical with it on or off.
    config.telemetryPath =
        cli.getString("telemetry", config.telemetryPath);
    config.telemetryInterval =
        cli.getUint("telemetry_interval", config.telemetryInterval);
}

std::string
canonicalConfigSpec(const SystemConfig &config)
{
    const auto u64 = [](std::uint64_t v) { return std::to_string(v); };

    std::string spec;
    spec += "workload=" + config.workload;
    spec += " cores=" + u64(config.numCores);
    spec += " scale=" + u64(config.scale);
    spec += " cache_bytes=" + u64(config.cacheBytes());
    spec += " ways=" + u64(config.ways);
    spec += std::string(" org=") + dramcache::toToken(config.org);
    spec += std::string(" lookup=") + dramcache::toToken(config.lookup);
    spec += std::string(" dcp=") + (config.dcpWayBits ? "1" : "0");
    spec += std::string(" repl=")
        + dramcache::toToken(config.replacement);
    spec += std::string(" layout=") + dramcache::toToken(config.layout);
    spec += std::string(" mem=")
        + (config.nvmMainMemory ? "nvm" : "ddr");
    spec += " policy="
        + (config.policySpec.empty()
               ? std::string("none")
               : core::canonicalSpec(config.policySpec,
                                     config.policyOpts));
    spec += std::string(" phase=")
        + (config.runTimed ? "timed" : "functional");
    spec += " warm=" + u64(config.warmPerCore);
    spec += " measure=" + u64(config.measurePerCore);
    spec += " timed=" + u64(config.timedPerCore);
    spec += " mlp=" + u64(config.mlp);
    spec += " wb_lag=" + u64(config.wbLag);
    spec += std::string(" hierarchy=")
        + (config.fullHierarchy ? "full" : "post_l3");
    spec += " epoch=" + u64(config.epochEvery);
    spec += " seed=" + u64(config.seed);

    // Appended only for non-default frontends so reports produced
    // before the TrafficSource API stay byte-identical.
    if (config.trafficSpec != trace::kDefaultTrafficSpec
        || !config.sampleSpec.empty()) {
        spec += " source="
            + trace::canonicalTrafficSpec(config.trafficSpec);
        spec += " sample="
            + (config.sampleSpec.empty()
                   ? std::string("off")
                   : trace::SampleParams::fromString(config.sampleSpec)
                         .toString());
    }

    // Appended only when forced off Auto so reports produced before
    // the storage layer stay byte-identical.  The backend never
    // changes results (check_refactor_equivalence.sh proves dense and
    // paged runs identical at rtol 0), but a forced backend is still
    // part of the run's identity for footprint comparisons.
    if (config.stateBackend != dramcache::StateBackend::Auto) {
        spec += std::string(" state_backend=")
            + dramcache::toToken(config.stateBackend);
    }
    return spec;
}

SystemConfig
baselineConfig(const std::string &workload)
{
    SystemConfig config;
    config.workload = workload;
    config.ways = 1;
    config.policySpec.clear();
    return config;
}

SystemConfig
namedConfig(const std::string &workload,
            const std::string &config_name)
{
    SystemConfig config = baselineConfig(workload);
    if (config_name == "dm")
        return config;
    if (config_name == "ca") {
        config.org = dramcache::Organization::ColumnAssoc;
        return config;
    }

    // "<N>way-<mode-or-policy>"
    const auto dash = config_name.find('-');
    const auto way_pos = config_name.find("way");
    if (dash == std::string::npos || way_pos == std::string::npos
        || way_pos == 0 || dash < way_pos)
        fatal("bad config name '%s'", config_name.c_str());

    config.ways = static_cast<unsigned>(
        std::stoul(config_name.substr(0, way_pos)));
    const std::string tail = config_name.substr(dash + 1);

    if (tail == "lru") {
        // The LRU-in-DRAM ablation (paper footnote 2): serial lookup,
        // no steering, recency updates cost array writes.
        config.lookup = dramcache::LookupMode::Serial;
        config.replacement = dramcache::L4Replacement::Lru;
    } else if (tail == "parallel") {
        config.lookup = dramcache::LookupMode::Parallel;
    } else if (tail == "serial") {
        config.lookup = dramcache::LookupMode::Serial;
    } else if (tail == "ideal") {
        config.lookup = dramcache::LookupMode::Ideal;
    } else {
        config.lookup = dramcache::LookupMode::Predicted;
        config.policySpec = tail;
    }
    return config;
}

const SystemMetrics &
BaselineCache::get(const std::string &workload, const Config &cli)
{
    const auto it = cache.find(workload);
    if (it != cache.end())
        return it->second;
    SystemConfig config = baselineConfig(workload);
    applyCliOverrides(config, cli);
    return cache.emplace(workload, runSystem(config)).first->second;
}

void
BaselineCache::prefetch(const std::vector<std::string> &workloads,
                        const Config &cli)
{
    std::vector<std::string> missing;
    std::vector<SystemConfig> configs;
    for (const std::string &workload : workloads) {
        if (cache.count(workload))
            continue;
        SystemConfig config = baselineConfig(workload);
        applyCliOverrides(config, cli);
        missing.push_back(workload);
        configs.push_back(std::move(config));
    }
    if (missing.empty())
        return;
    const SweepRunner runner(cli);
    std::vector<SystemMetrics> metrics = runner.runConfigs(configs);
    for (std::size_t i = 0; i < missing.size(); ++i)
        cache.emplace(missing[i], std::move(metrics[i]));
}

} // namespace accord::sim

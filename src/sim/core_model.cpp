#include "sim/core_model.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/trace_event/tracer.hpp"

namespace accord::sim
{

CoreModel::CoreModel(unsigned id, const CoreParams &params,
                     trace::TrafficSource &stream,
                     dramcache::DramCacheController &cache,
                     EventQueue &eq)
    : id_(id), params(params), stream(stream), cache(cache), eq(eq),
      quota_(params.quota)
{
    ACCORD_ASSERT(params.mpki > 0.0, "core needs a positive MPKI");
    ACCORD_ASSERT(params.mlp >= 1, "core needs at least one MSHR");
    gap_cycles = std::max<Cycle>(
        1, static_cast<Cycle>(instrPerAccess() * params.baseCpi));
}

void
CoreModel::start()
{
    start_time = eq.now();
    next_ready = eq.now();
    tryIssue();
}

void
CoreModel::tryIssue()
{
    while (issued < quota_ && outstanding < params.mlp) {
        if (eq.now() < next_ready) {
            if (!issue_scheduled) {
                issue_scheduled = true;
                eq.scheduleAt(next_ready, [this] {
                    issue_scheduled = false;
                    tryIssue();
                });
            }
            return;
        }

        // A bounded stream that runs dry simply ends the core's run:
        // shrink the quota to what was actually issued.
        if (stream.exhausted()) {
            quota_ = issued;
            return;
        }

        // Drain any writebacks interleaved in the stream: they are
        // posted and do not consume an MSHR or pacing slot.
        trace::Request req = stream.next();
        while (req.kind == core::RequestKind::Writeback) {
            trace_event::TxnId wb = trace_event::kNoTxn;
            if (tracer_ != nullptr) {
                wb = tracer_->begin(trace_event::TxnKind::Writeback,
                                    id_, req.line, eq.now());
            }
            cache.writeback(req.line, wb);
            if (stream.exhausted()) {
                quota_ = issued;
                return;
            }
            req = stream.next();
        }

        ++issued;
        ++outstanding;
        next_ready = std::max(eq.now(), next_ready) + gap_cycles;
        trace_event::TxnId txn = trace_event::kNoTxn;
        if (tracer_ != nullptr) {
            txn = tracer_->begin(trace_event::TxnKind::Read, id_,
                                 req.line, eq.now());
        }
        cache.read(req.line, [this](bool, Cycle when) {
            onReadDone(when);
        }, txn);
    }
}

void
CoreModel::onReadDone(Cycle when)
{
    --outstanding;
    ++completed;
    if (completed >= quota_) {
        finish_time = when;
        return;
    }
    tryIssue();
    // tryIssue may have shrunk the quota on stream exhaustion; if that
    // made this completion the last one, record the finish now.
    if (finished() && outstanding == 0 && finish_time == 0)
        finish_time = when;
}

double
CoreModel::ipc() const
{
    ACCORD_ASSERT(finished(), "ipc() before the core finished");
    const double cycles =
        static_cast<double>(finish_time - start_time);
    if (cycles <= 0.0)
        return 0.0;
    const double instructions =
        static_cast<double>(quota_) * instrPerAccess();
    return instructions / cycles;
}

} // namespace accord::sim

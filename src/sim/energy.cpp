#include "sim/energy.hpp"

namespace accord::sim
{

EnergyBreakdown
computeEnergy(const dram::DeviceStats &hbm, const dram::DeviceStats &nvm,
              Cycle cycles, const EnergyParams &params)
{
    EnergyBreakdown e;
    const double pj = 1e-12;

    const double hbm_ops =
        static_cast<double>(hbm.readsServed + hbm.writesServed);
    const double hbm_acts = hbm_ops - static_cast<double>(hbm.rowHits);
    e.cacheEnergyJ = (hbm_acts * params.hbmActivatePj
                      + hbm_ops * params.hbmTransferPj) * pj;

    e.memEnergyJ = (static_cast<double>(nvm.readsServed)
                        * params.nvmReadPj
                    + static_cast<double>(nvm.writesServed)
                          * params.nvmWritePj) * pj;

    e.seconds = static_cast<double>(cycles) / (params.cpuGhz * 1e9);
    e.backgroundJ =
        (params.hbmBackgroundW + params.nvmBackgroundW) * e.seconds;

    e.totalJ = e.cacheEnergyJ + e.memEnergyJ + e.backgroundJ;
    return e;
}

} // namespace accord::sim

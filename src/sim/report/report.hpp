/**
 * @file
 * Machine-readable run reports.
 *
 * A RunReport captures everything one bench invocation produced: the
 * run parameters, the canonical config specs it exercised, every table
 * it printed (cell-for-cell, so the human-readable output can never
 * drift from the machine-readable one), free-form notes, and per-run
 * final metric snapshots plus optional epoch time-series.
 *
 * Serialization is canonical and deterministic: sorted maps, one
 * number formatting, fixed indentation.  Re-running a bench with any
 * jobs= value yields byte-identical JSON/CSV, which is what the CI
 * report-diff gate (tools/compare_reports.py) builds on.
 */

#ifndef ACCORD_SIM_REPORT_REPORT_HPP
#define ACCORD_SIM_REPORT_REPORT_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics/registry.hpp"

namespace accord::report
{

/** Identifies the JSON layout; bump on incompatible changes. */
inline constexpr const char *kReportSchema = "accord.run_report/1";

/**
 * A table that renders as aligned text AND serializes its cells into
 * the run report.  The cell/row chain mirrors TextTable so benches
 * port mechanically; numeric cells remember their raw value, so the
 * JSON carries full precision while the text keeps the paper's
 * formatting.
 */
class ReportTable
{
  public:
    ReportTable(std::string name, std::vector<std::string> columns);

    /** Start a new row. */
    ReportTable &row();

    /** Append a text cell. */
    ReportTable &cell(const std::string &text);
    ReportTable &cell(const char *text)
        { return cell(std::string(text)); }

    /** Append an integer cell. */
    ReportTable &cell(std::uint64_t value);
    ReportTable &cell(std::int64_t value);
    ReportTable &cell(int value) { return cell(std::int64_t{value}); }
    ReportTable &cell(unsigned value)
        { return cell(std::uint64_t{value}); }

    /** Append a floating-point cell with fixed text precision. */
    ReportTable &cell(double value, int precision = 3);

    /** Append a percentage cell ("74.2%"); stores the raw fraction. */
    ReportTable &percent(double fraction, int precision = 1);

    const std::string &name() const { return name_; }
    const std::vector<std::string> &columns() const { return columns_; }
    std::size_t numRows() const { return rows_.size(); }

    /** Render the aligned-text form (header + separator + rows). */
    std::string renderText() const;

    /** Render to stdout — the sanctioned way benches print metrics. */
    void print() const;

    void writeJson(JsonWriter &json) const;

    /** Append this table's CSV block ("# table <name>" + rows). */
    void writeCsv(std::string &out) const;

  private:
    struct Cell
    {
        enum class Kind
        {
            Text,
            Number,
            Percent,
        };

        Kind kind = Kind::Text;
        std::string text;
        double number = 0.0;
    };

    ReportTable &push(Cell cell);

    std::string name_;
    std::vector<std::string> columns_;
    std::vector<std::vector<Cell>> rows_;
};

/** Everything one bench invocation reports. */
class RunReport
{
  public:
    RunReport(std::string title, std::string reproduces);

    /** Record a run parameter (scale, seed, ...). */
    void setParam(const std::string &key, const std::string &value);

    /** Record the canonical spec of a named configuration. */
    void setConfigSpec(const std::string &name, const std::string &spec);

    /** Append a free-form note (also part of the serialized report). */
    void addNote(std::string note);

    /**
     * Create a table.  The reference stays valid for the report's
     * lifetime; names must be unique within the report.
     */
    ReportTable &addTable(const std::string &name,
                          std::vector<std::string> columns);

    /** Record one run's canonical config spec. */
    void setRunSpec(const std::string &run, const std::string &spec);

    /** Record one run's final metric snapshot. */
    void addRunMetrics(const std::string &run,
                       const MetricSnapshot &metrics);

    /** Add/overwrite a single derived value (e.g. "speedup"). */
    void addRunValue(const std::string &run, const std::string &key,
                     double value);

    /**
     * Add/overwrite a volatile host-side observation for one run
     * (resident state bytes, peak RSS, ...).  Host values serialize
     * into a separate "host" object — never into "metrics" — so the
     * canonical comparison surface (spec/metrics/epochs, what
     * tools/compare_reports.py diffs) stays byte-identical no matter
     * what the host happened to measure.  Emitted only when non-empty,
     * so reports that record no host values keep their exact bytes.
     */
    void addRunHostValue(const std::string &run, const std::string &key,
                         double value);

    /** Record one run's epoch time-series. */
    void addRunSeries(const std::string &run,
                      const MetricSeries &series);

    const std::string &title() const { return title_; }

    /** Canonical JSON document (ends in a newline). */
    std::string toJson() const;

    /** Canonical CSV rendering of the tables. */
    std::string toCsv() const;

    /** Write toJson()/toCsv() to a file; fatal() on I/O failure. */
    void writeJsonFile(const std::string &path) const;
    void writeCsvFile(const std::string &path) const;

  private:
    struct Run
    {
        std::string spec;
        std::map<std::string, double> metrics;
        std::map<std::string, double> host;
        MetricSeries epochs;
    };

    static void writeFile(const std::string &path,
                          const std::string &text);

    std::string title_;
    std::string reproduces_;
    std::map<std::string, std::string> params_;
    std::map<std::string, std::string> configs_;
    std::vector<std::string> notes_;
    std::deque<ReportTable> tables_;
    std::map<std::string, Run> runs_;
};

} // namespace accord::report

#endif // ACCORD_SIM_REPORT_REPORT_HPP

#include "sim/report/reporter.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "common/log.hpp"

namespace accord::report
{

namespace
{

/** Value of "--<flag>=<value>" if `arg` matches, else nullptr. */
const char *
flagValue(const char *arg, const char *flag)
{
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) != 0)
        return nullptr;
    if (arg[len] != '=')
        return nullptr;
    return arg + len + 1;
}

} // namespace

Reporter::Reporter(int argc, char **argv, const char *title,
                   const char *paper_ref)
    : report_(title, paper_ref)
{
    for (int i = 1; i < argc; ++i) {
        if (const char *path = flagValue(argv[i], "--json")) {
            json_path_ = path;
            continue;
        }
        if (const char *path = flagValue(argv[i], "--csv")) {
            csv_path_ = path;
            continue;
        }
        if (!cli_.parseArg(argv[i]))
            fatal("malformed argument '%s' (want key=value, "
                  "--json=<path>, or --csv=<path>)",
                  argv[i]);
        const std::string arg = argv[i];
        const std::string key = arg.substr(0, arg.find('='));
        // jobs= only picks the worker count; results are bit-identical
        // across values, and reports must stay byte-identical too.
        if (key != "jobs")
            report_.setParam(key, arg.substr(arg.find('=') + 1));
    }

    const std::uint64_t scale = cli_.getUint("scale", 128);
    const std::uint64_t seed = cli_.getUint("seed", 1);
    report_.setParam("scale", std::to_string(scale));
    report_.setParam("seed", std::to_string(seed));

    std::printf("=== %s ===\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("scale=1/%llu seed=%llu (override with key=value args)"
                "\n",
                static_cast<unsigned long long>(scale),
                static_cast<unsigned long long>(seed));
}

ReportTable &
Reporter::table(const std::string &name,
                std::vector<std::string> columns)
{
    ReportTable &table = report_.addTable(name, std::move(columns));
    tables_.push_back(&table);
    return table;
}

void
Reporter::note(const char *fmt, ...)
{
    char buf[512];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    std::printf("%s\n", buf);
    report_.addNote(buf);
}

int
Reporter::finish()
{
    ACCORD_ASSERT(!finished_, "Reporter::finish() called twice");
    finished_ = true;

    for (const ReportTable *table : tables_) {
        std::printf("\n-- %s --\n", table->name().c_str());
        table->print();
    }

    cli_.checkConsumed();

    if (!json_path_.empty())
        report_.writeJsonFile(json_path_);
    if (!csv_path_.empty())
        report_.writeCsvFile(csv_path_);
    return 0;
}

} // namespace accord::report

#include "sim/report/report.hpp"

#include <cstdio>
#include <fstream>

#include "common/log.hpp"
#include "common/table.hpp"

namespace accord::report
{

// --- ReportTable -----------------------------------------------------

ReportTable::ReportTable(std::string name,
                         std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns))
{
    ACCORD_ASSERT(!columns_.empty(), "table '%s' needs columns",
                  name_.c_str());
}

ReportTable &
ReportTable::row()
{
    ACCORD_ASSERT(rows_.empty() || rows_.back().size() == columns_.size(),
                  "table '%s': row has %zu cells, want %zu",
                  name_.c_str(), rows_.back().size(), columns_.size());
    rows_.emplace_back();
    return *this;
}

ReportTable &
ReportTable::push(Cell cell)
{
    ACCORD_ASSERT(!rows_.empty(), "cell before row() in table '%s'",
                  name_.c_str());
    ACCORD_ASSERT(rows_.back().size() < columns_.size(),
                  "table '%s': too many cells in row", name_.c_str());
    rows_.back().push_back(std::move(cell));
    return *this;
}

ReportTable &
ReportTable::cell(const std::string &text)
{
    return push({Cell::Kind::Text, text, 0.0});
}

ReportTable &
ReportTable::cell(std::uint64_t value)
{
    return push({Cell::Kind::Number, std::to_string(value),
                 static_cast<double>(value)});
}

ReportTable &
ReportTable::cell(std::int64_t value)
{
    return push({Cell::Kind::Number, std::to_string(value),
                 static_cast<double>(value)});
}

ReportTable &
ReportTable::cell(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return push({Cell::Kind::Number, buf, value});
}

ReportTable &
ReportTable::percent(double fraction, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision,
                  100.0 * fraction);
    return push({Cell::Kind::Percent, buf, fraction});
}

std::string
ReportTable::renderText() const
{
    TextTable text(columns_);
    for (const auto &cells : rows_) {
        text.row();
        for (const auto &cell : cells)
            text.cell(cell.text);
    }
    return text.render();
}

void
ReportTable::print() const
{
    std::fputs(renderText().c_str(), stdout);
}

void
ReportTable::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("columns").beginArray();
    for (const auto &column : columns_)
        json.value(column);
    json.endArray();
    json.key("rows").beginArray();
    for (const auto &cells : rows_) {
        json.beginArray();
        for (const auto &cell : cells) {
            if (cell.kind == Cell::Kind::Text)
                json.value(cell.text);
            else
                json.value(cell.number);
        }
        json.endArray();
    }
    json.endArray();
    json.endObject();
}

void
ReportTable::writeCsv(std::string &out) const
{
    const auto csvField = [](const std::string &field) {
        if (field.find_first_of(",\"\n") == std::string::npos)
            return field;
        std::string quoted = "\"";
        for (const char c : field) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };

    out += "# table ";
    out += name_;
    out += '\n';
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0)
            out += ',';
        out += csvField(columns_[i]);
    }
    out += '\n';
    for (const auto &cells : rows_) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                out += ',';
            if (cells[i].kind == Cell::Kind::Text)
                out += csvField(cells[i].text);
            else
                out += canonicalNumber(cells[i].number);
        }
        out += '\n';
    }
}

// --- RunReport -------------------------------------------------------

RunReport::RunReport(std::string title, std::string reproduces)
    : title_(std::move(title)), reproduces_(std::move(reproduces))
{
}

void
RunReport::setParam(const std::string &key, const std::string &value)
{
    params_[key] = value;
}

void
RunReport::setConfigSpec(const std::string &name,
                         const std::string &spec)
{
    configs_[name] = spec;
}

void
RunReport::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

ReportTable &
RunReport::addTable(const std::string &name,
                    std::vector<std::string> columns)
{
    for (const auto &table : tables_)
        if (table.name() == name)
            fatal("duplicate report table '%s'", name.c_str());
    tables_.emplace_back(name, std::move(columns));
    return tables_.back();
}

void
RunReport::setRunSpec(const std::string &run, const std::string &spec)
{
    runs_[run].spec = spec;
}

void
RunReport::addRunMetrics(const std::string &run,
                         const MetricSnapshot &metrics)
{
    auto &slot = runs_[run].metrics;
    for (const auto &[path, value] : metrics.values())
        slot[path] = value;
}

void
RunReport::addRunValue(const std::string &run, const std::string &key,
                       double value)
{
    runs_[run].metrics[key] = value;
}

void
RunReport::addRunHostValue(const std::string &run,
                           const std::string &key, double value)
{
    runs_[run].host[key] = value;
}

void
RunReport::addRunSeries(const std::string &run,
                        const MetricSeries &series)
{
    runs_[run].epochs = series;
}

std::string
RunReport::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.key("schema").value(kReportSchema);
    json.key("title").value(title_);
    json.key("reproduces").value(reproduces_);

    json.key("params").beginObject();
    for (const auto &[key, value] : params_)
        json.key(key).value(value);
    json.endObject();

    json.key("configs").beginObject();
    for (const auto &[name, spec] : configs_)
        json.key(name).value(spec);
    json.endObject();

    json.key("notes").beginArray();
    for (const auto &note : notes_)
        json.value(note);
    json.endArray();

    json.key("tables").beginObject();
    for (const auto &table : tables_) {
        json.key(table.name());
        table.writeJson(json);
    }
    json.endObject();

    json.key("runs").beginObject();
    for (const auto &[name, run] : runs_) {
        json.key(name).beginObject();
        json.key("spec").value(run.spec);
        json.key("metrics").beginObject();
        for (const auto &[path, value] : run.metrics)
            json.key(path).value(value);
        json.endObject();
        // Volatile partition: compare_reports.py diffs only
        // spec/metrics/epochs, so host values never participate in
        // the byte-identity gate.
        if (!run.host.empty()) {
            json.key("host").beginObject();
            for (const auto &[key, value] : run.host)
                json.key(key).value(value);
            json.endObject();
        }
        if (!run.epochs.empty()) {
            json.key("epochs").beginObject();
            json.key("positions").beginArray();
            for (const std::uint64_t position : run.epochs.positions())
                json.value(position);
            json.endArray();
            json.key("paths").beginArray();
            for (const auto &path : run.epochs.paths())
                json.value(path);
            json.endArray();
            json.key("samples").beginArray();
            for (const auto &sample : run.epochs.samples()) {
                json.beginArray();
                for (const double value : sample)
                    json.value(value);
                json.endArray();
            }
            json.endArray();
            json.endObject();
        }
        json.endObject();
    }
    json.endObject();

    json.endObject();
    return json.str() + "\n";
}

std::string
RunReport::toCsv() const
{
    std::string out;
    out += "# ";
    out += title_;
    out += '\n';
    for (const auto &table : tables_) {
        out += '\n';
        table.writeCsv(out);
    }
    return out;
}

void
RunReport::writeFile(const std::string &path, const std::string &text)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    file.write(text.data(),
               static_cast<std::streamsize>(text.size()));
    file.flush();
    if (!file)
        fatal("failed writing report to '%s'", path.c_str());
}

void
RunReport::writeJsonFile(const std::string &path) const
{
    writeFile(path, toJson());
}

void
RunReport::writeCsvFile(const std::string &path) const
{
    writeFile(path, toCsv());
}

} // namespace accord::report

/**
 * @file
 * Bench-facing front end of the report layer.
 *
 * A Reporter owns one bench invocation's CLI, RunReport, and console
 * output.  Benches build tables and notes through it; the same cells
 * feed both the human-readable text on stdout and the machine-readable
 * JSON/CSV report, so the two can never diverge.  `--json=<path>` and
 * `--csv=<path>` (parsed here, before the key=value Config) select the
 * report files written by finish().
 *
 * This layer is the one place allowed to print metrics: the
 * determinism lint (tools/lint_determinism.py, rule printf-metrics)
 * flags direct std::printf of results inside bench/ sources.
 */

#ifndef ACCORD_SIM_REPORT_REPORTER_HPP
#define ACCORD_SIM_REPORT_REPORTER_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/report/report.hpp"

namespace accord::report
{

/** One bench invocation: CLI + report + console output. */
class Reporter
{
  public:
    /**
     * Parse `--json=<path>` / `--csv=<path>` out of argv, feed the
     * remaining key=value tokens to the Config, print the bench
     * banner, and seed the report with the run parameters.
     */
    Reporter(int argc, char **argv, const char *title,
             const char *paper_ref);

    Reporter(const Reporter &) = delete;
    Reporter &operator=(const Reporter &) = delete;

    /** CLI overrides (without the --json/--csv flags). */
    const Config &cli() const { return cli_; }

    /** The underlying report, for run records and canonical specs. */
    RunReport &report() { return report_; }

    /**
     * Create a table that finish() will both print and serialize.
     * The reference stays valid for the Reporter's lifetime.
     */
    ReportTable &table(const std::string &name,
                       std::vector<std::string> columns);

    /** Print a free-form line now and record it in the report. */
    void note(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /**
     * Print every table (in creation order), verify all CLI keys were
     * consumed, and write the JSON/CSV files if requested.  Returns 0
     * so benches can `return reporter.finish();`.
     */
    int finish();

  private:
    Config cli_;
    RunReport report_;
    std::string json_path_;
    std::string csv_path_;
    std::vector<ReportTable *> tables_;
    bool finished_ = false;
};

} // namespace accord::report

#endif // ACCORD_SIM_REPORT_REPORTER_HPP

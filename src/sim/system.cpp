#include "sim/system.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/trace_event/tracer.hpp"
#include "sim/runner.hpp"
#include "trace/sample.hpp"

namespace accord::sim
{

System::System(const SystemConfig &config) : config_(config)
{
    nvm = std::make_unique<nvm::NvmSystem>(
        config_.nvmMainMemory ? dram::pcmMainMemoryTiming()
                              : dram::ddrMainMemoryTiming(),
        eq);

    dramcache::DramCacheParams cache_params;
    cache_params.capacityBytes = config_.cacheBytes();
    cache_params.ways = config_.ways;
    cache_params.org = config_.org;
    cache_params.lookup = config_.lookup;
    cache_params.dcpWayBits = config_.dcpWayBits;
    cache_params.replacement = config_.replacement;
    cache_params.layout = config_.layout;
    cache_params.stateBackend = config_.stateBackend;
    cache_params.seed = config_.seed * 0x9e3779b9ULL + 0x7;

    std::unique_ptr<core::WayPolicy> policy;
    if (!config_.policySpec.empty()) {
        core::CacheGeometry geom;
        geom.ways = config_.ways;
        geom.sets = cache_params.capacityBytes / lineSize / config_.ways;
        core::PolicyOptions opts = config_.policyOpts;
        opts.seed = mix64(config_.seed ^ 0xacc0d);
        // Auto stays nullopt so each policy table resolves by its own
        // size; an explicit backend forces every table.
        if (config_.stateBackend != dramcache::StateBackend::Auto) {
            opts.storage = dramcache::resolveStorageMode(
                config_.stateBackend, geom.lines());
        }
        policy = core::makePolicy(config_.policySpec, geom, opts);
    }

    cache_ = std::make_unique<dramcache::DramCacheController>(
        cache_params, std::move(policy), dram::hbmCacheTiming(), eq,
        *nvm);

    assignment =
        trace::coreAssignment(config_.workload, config_.numCores);
    if (config_.fullHierarchy
        && trace::parseSourceSpec(config_.trafficSpec).name
            != "synthetic")
        fatal("full-hierarchy mode filters CPU demand streams and "
              "supports source=synthetic only");
    if (!config_.sampleSpec.empty() && config_.fullHierarchy)
        fatal("sample= cannot be combined with full-hierarchy mode "
              "(the hierarchy holds unwarmable filter state)");
    if (!config_.sampleSpec.empty() && config_.runTimed)
        fatal("sample= supports functional runs only "
              "(set runTimed=false)");
    for (unsigned core = 0; core < config_.numCores; ++core) {
        trace::SourceContext ctx;
        ctx.spec = assignment[core];
        ctx.core = core;
        ctx.numCores = config_.numCores;
        ctx.scale = config_.scale;
        ctx.seed = config_.seed;
        ctx.wbLag = config_.wbLag;
        // The hierarchy generates L4 writebacks itself, so in
        // full-hierarchy mode the source emits pure demand traffic.
        ctx.mixWritebacks = !config_.fullHierarchy;
        auto source =
            trace::makeTrafficSource(config_.trafficSpec, ctx);
        if (!config_.sampleSpec.empty()) {
            trace::SampleParams sample =
                trace::SampleParams::fromString(config_.sampleSpec);
            // Per-core sampler stream: fold the core id in so cores
            // sharing a spec still cluster independently.
            sample.seed = mix64(sample.seed ^ (0x5a3fULL + core));
            source = std::make_unique<trace::SampledSource>(
                std::move(source), sample);
        }
        sources.push_back(std::move(source));
        if (config_.fullHierarchy) {
            hierarchies.push_back(std::make_unique<cache::Hierarchy>(
                cache::HierarchyParams{}));
            write_rngs.emplace_back(mix64(config_.seed * 31 + core));
        }
    }
    if (config_.fullHierarchy && config_.runTimed)
        fatal("full-hierarchy mode supports functional runs only "
              "(set runTimed=false)");

    // Registration happens once, here; the hot paths never touch the
    // registry.  Timed cores register later (runTimed creates them).
    cache_->registerMetrics(registry_, "l4");
    cache_->hbm().registerMetrics(registry_, "dram");
    nvm->registerMetrics(registry_, "nvm");

    if (!config_.tracePath.empty()) {
        if (!config_.runTimed)
            fatal("trace= requires a timed run (the functional path "
                  "has no cycle timeline)");
        trace_event::TracerConfig trace_config;
        trace_config.path = config_.tracePath;
        trace_config.cap = config_.traceCap;
        tracer_ = std::make_unique<trace_event::Tracer>(trace_config);
        cache_->attachTracer(*tracer_);
        nvm->attachTracer(*tracer_);
        // txn.* metrics exist only on traced runs, so untraced run
        // reports keep their baseline key set.
        tracer_->registerMetrics(registry_, "txn");
    }
    for (std::size_t core = 0; core < hierarchies.size(); ++core) {
        hierarchies[core]->registerMetrics(
            registry_, "core" + std::to_string(core));
    }

    if (!config_.telemetryPath.empty()) {
        telemetry::TelemetryConfig telem;
        telem.path = config_.telemetryPath;
        telem.interval = config_.telemetryInterval;
        telemetry::FlightRecorder::Header header;
        header.spec = canonicalConfigSpec(config_);
        header.units = config_.runTimed ? "reads" : "accesses";
        // Expected final position (warm accesses plus the measured
        // phase), for the auto cadence and the (volatile) ETA field.
        // warm=0 means source-chosen auto quotas, so the warm leg is
        // an estimate then; 0 total = run-to-exhaustion, no ETA.
        std::uint64_t warm_units =
            config_.warmPerCore * config_.numCores;
        if (config_.warmPerCore == 0) {
            for (const auto &source : sources)
                warm_units += source->defaultWarmQuota();
        }
        header.totalUnits = warm_units
            + (config_.runTimed
                   ? config_.timedPerCore * config_.numCores
                   : config_.measurePerCore * config_.numCores);
        recorder_ = std::make_unique<telemetry::FlightRecorder>(
            telem, header);
    }
}

System::~System() = default;

void
System::warm()
{
    if (recorder_)
        recorder_->profiler().enterPhase("warm", telemetry_units_,
                                         eq.now());

    // Auto quota: each source knows how much functional warmup makes
    // sense for it (enough footprint passes for the synthetic models,
    // none for bounded streams that warmup would consume).
    std::vector<std::uint64_t> remaining(config_.numCores);
    for (unsigned core = 0; core < config_.numCores; ++core) {
        remaining[core] = config_.warmPerCore > 0
            ? config_.warmPerCore
            : sources[core]->defaultWarmQuota();
    }

    // Fine-grained round-robin so cores interleave in the sets the way
    // concurrent execution would.
    bool any = true;
    constexpr unsigned chunk = 8;
    while (any) {
        any = false;
        for (unsigned core = 0; core < config_.numCores; ++core) {
            std::uint64_t n =
                std::min<std::uint64_t>(chunk, remaining[core]);
            while (n > 0 && !sources[core]->exhausted()) {
                funcAccess(core);
                --n;
                --remaining[core];
            }
            if (sources[core]->exhausted())
                remaining[core] = 0;
            any = any || remaining[core] > 0;
        }
        maybeHeartbeat("warm", telemetry_units_);
    }
}

void
System::measureFunctional()
{
    if (recorder_)
        recorder_->profiler().enterPhase("measure", telemetry_units_,
                                         eq.now());

    // A bounded source with measure=0 runs to exhaustion (trace and
    // sampled replays); an unbounded one needs an explicit budget.
    std::vector<std::uint64_t> remaining(config_.numCores);
    bool any = false;
    for (unsigned core = 0; core < config_.numCores; ++core) {
        if (config_.measurePerCore > 0)
            remaining[core] = config_.measurePerCore;
        else if (sources[core]->bounded())
            remaining[core] = ~std::uint64_t(0);
        if (sources[core]->exhausted())
            remaining[core] = 0;
        any = any || remaining[core] > 0;
    }

    std::uint64_t done = 0;
    constexpr unsigned chunk = 8;
    while (any) {
        any = false;
        for (unsigned core = 0; core < config_.numCores; ++core) {
            std::uint64_t n =
                std::min<std::uint64_t>(chunk, remaining[core]);
            while (n > 0 && !sources[core]->exhausted()) {
                --n;
                --remaining[core];
                ++accesses_executed_;
                // Sampled warmup-replay accesses update cache state
                // but do not advance the measured-epoch position.
                if (funcAccess(core))
                    ++done;
            }
            if (sources[core]->exhausted())
                remaining[core] = 0;
            any = any || remaining[core] > 0;
        }
        maybeSampleEpoch(done);
        maybeHeartbeat("measure", telemetry_units_);
    }
}

void
System::maybeSampleEpoch(std::uint64_t position)
{
    if (config_.epochEvery == 0 || position < next_epoch_at_)
        return;
    epoch_series_.record(position, registry_.snapshot());
    next_epoch_at_ = position + config_.epochEvery;
}

void
System::maybeHeartbeat(const char *phase, std::uint64_t position)
{
    if (!recorder_ || !recorder_->due(position))
        return;
    recorder_->heartbeat(telemetrySample(phase, position));
}

telemetry::HeartbeatSample
System::telemetrySample(const char *phase, std::uint64_t position) const
{
    // Every field is simulator state at a cadence-defined position —
    // deterministic, so the canonical stream is byte-identical across
    // re-runs and jobs= values.  The recorder adds the volatile host
    // fields itself, under the partitioned "host" object.
    telemetry::HeartbeatSample s;
    s.phase = phase;
    s.position = position;
    s.cycles = eq.now();
    const Ratio &reads = cache_->stats().readHits;
    s.reads = reads.total();
    s.readHits = reads.hits();
    s.eqPending = eq.size();
    s.eqExecuted = eq.executed();
    s.eqOccupancyPeak = eq.occupancyPeak();
    s.eqOverflowSpills = eq.overflowSpills();
    s.poolLive = cache_->txnPool().live();
    s.poolBlockBytes = cache_->txnPool().blockSize();
    s.stateBytes = cache_->residentStateBytes();
    return s;
}

bool
System::funcAccess(unsigned core)
{
    if (!config_.fullHierarchy) {
        const trace::Request req = sources[core]->next();
        // Warmup-replay accesses (sampled simulation) update cache
        // state under stats exclusion so measurements stay clean.
        if (req.warmup)
            cache_->beginStatsExclusion();
        if (req.kind == core::RequestKind::Writeback)
            cache_->warmWriteback(req.line);
        else
            cache_->warmRead(req.line);
        if (req.warmup)
            cache_->endStatsExclusion();
        ++telemetry_units_;
        return !req.warmup;
    }

    // Full-hierarchy mode: the source's line is a CPU demand access;
    // stores follow the benchmark's writeback fraction, and the
    // hierarchy decides what reaches the L4.
    const LineAddr line = sources[core]->next().line;
    const bool is_write =
        write_rngs[core].chance(assignment[core]->wbFrac);
    const cache::FilterResult result =
        hierarchies[core]->access(line, is_write);
    for (const cache::L4Transaction &txn : result.toL4) {
        if (txn.type == AccessType::Writeback)
            cache_->warmWriteback(txn.line);
        else
            cache_->warmRead(txn.line);
    }
    ++telemetry_units_;
    return true;
}

void
System::runTimed()
{
    if (recorder_)
        recorder_->profiler().enterPhase("timed", telemetry_units_,
                                         eq.now());
    cores.clear();
    for (unsigned core = 0; core < config_.numCores; ++core) {
        CoreParams params;
        params.mpki = assignment[core]->mpki;
        params.mlp = config_.mlp;
        params.quota = config_.timedPerCore;
        cores.push_back(std::make_unique<CoreModel>(
            core, params, *sources[core], *cache_, eq));
        cores.back()->setTracer(tracer_.get());
        cores.back()->registerMetrics(
            registry_, "core" + std::to_string(core));
    }
    for (auto &core : cores)
        core->start();

    const auto all_done = [this] {
        for (const auto &core : cores) {
            if (!core->finished())
                return false;
        }
        return true;
    };
    // Telemetry-only tick work is throttled to every 256 executed
    // events so an enabled recorder stays within its <=1% overhead
    // contract.  The stride keys on eq.executed() — deterministic
    // simulation state — so heartbeat positions are still identical
    // for any jobs= count; epoch sampling keeps its exact historical
    // per-tick cadence (report stability).
    constexpr std::uint64_t kTelemetryTickStride = 256;
    const auto tick = [this, &all_done] {
        const bool epoch_tick = config_.epochEvery > 0;
        const bool telem_tick = recorder_ != nullptr
            && eq.executed() % kTelemetryTickStride == 0;
        if (epoch_tick || telem_tick) {
            std::uint64_t completed = 0;
            for (const auto &core : cores)
                completed += core->completedReads();
            if (epoch_tick)
                maybeSampleEpoch(completed);
            // Timed heartbeats key on retired demand reads — the
            // tick runs between events, so the first stride boundary
            // past the cadence is a deterministic event boundary.
            if (telem_tick)
                maybeHeartbeat("timed", telemetry_units_ + completed);
        }
        return all_done();
    };
    eq.runUntil(tick);
    if (!all_done())
        panic("timed phase deadlocked: event queue drained with "
              "unfinished cores");
    if (recorder_) {
        std::uint64_t completed = 0;
        for (const auto &core : cores)
            completed += core->completedReads();
        telemetry_units_ += completed;
    }
}

SystemMetrics
System::run()
{
    warm();
    cache_->resetStats();

    // Epoch positions count measurement-phase progress only; the
    // first sample lands once epochEvery units have elapsed.
    next_epoch_at_ = config_.epochEvery;

    if (config_.runTimed)
        runTimed();
    else
        measureFunctional();

    SystemMetrics m;
    m.eventsExecuted = eq.executed();
    m.accessesExecuted = accesses_executed_;
    m.eqOccupancyPeak = eq.occupancyPeak();
    m.eqOverflowSpills = eq.overflowSpills();
    m.cacheStats = cache_->stats();
    m.hitRate = m.cacheStats.readHits.rate();
    m.wpAccuracy = m.cacheStats.wayPrediction.rate();
    m.transfersPerRead = m.cacheStats.transfersPerRead();
    m.hbmStats = cache_->hbm().aggregateStats();
    m.nvmStats = nvm->aggregateStats();
    if (cache_->policy())
        m.policyStorageBits = cache_->policy()->storageBits();
    m.residentStateBytes = cache_->residentStateBytes();
    m.finalMetrics = registry_.snapshot();
    m.epochs = epoch_series_;

    if (config_.runTimed) {
        Cycle last = 0;
        for (const auto &core : cores) {
            m.coreIpc.push_back(core->ipc());
            last = std::max(last, core->finishTime());
        }
        m.cycles = last;
        m.energy = computeEnergy(m.hbmStats, m.nvmStats, m.cycles);
    }

    if (tracer_) {
        m.traceJson = tracer_->toJson();
        tracer_->writeFile(m.traceJson);
    }

    if (recorder_) {
        // Per-epoch hit-attribution rides on the existing epoch
        // series when epoch= sampling was on; a run shorter than one
        // heartbeat interval still gets exactly this final record.
        recorder_->finish(telemetrySample("end", telemetry_units_),
                          epoch_series_,
                          {"l4.lookup.hits", "l4.lookup.total"});
    }
    return m;
}

} // namespace accord::sim

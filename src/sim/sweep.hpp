/**
 * @file
 * Parallel experiment fan-out: run many independent (workload,
 * config) simulations across a thread pool and collect their metrics
 * in a deterministic layout.
 *
 * Every simulation seeds its RNGs from (seed, workload, config), so
 * results are bit-identical for any job count; scheduling order only
 * affects wall-clock time.  All SystemConfigs are resolved on the
 * calling thread before any worker starts (the CLI Config tracks
 * consumed keys and is not thread-safe), and per-run warn()/inform()
 * output is captured and replayed in job order after the batch
 * completes.
 */

#ifndef ACCORD_SIM_SWEEP_HPP
#define ACCORD_SIM_SWEEP_HPP

#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/system.hpp"

namespace accord::sim
{

/** Resolve a jobs= override: 0 means all hardware threads. */
unsigned resolveJobs(unsigned jobs);

/**
 * Per-run trace output path for run `index` of a batch: inserts
 * ".run<index>" before the extension ("out.json" -> "out.run3.json",
 * "out" -> "out.run3").  Derived from the batch position — never from
 * scheduling — so paths are identical for any job count.
 */
std::string perRunTracePath(const std::string &path, std::size_t index);

/**
 * Per-run telemetry stream path for run `index` of a batch.  The
 * conventional "<base>.telemetry.jsonl" spelling keeps its compound
 * extension intact ("out.telemetry.jsonl" -> "out.run3.telemetry.jsonl")
 * so every stream of a sweep stays recognizable by suffix; any other
 * spelling falls back to the perRunTracePath rule.  Like trace paths,
 * derived from the batch position — never from scheduling.
 */
std::string perRunTelemetryPath(const std::string &path,
                                std::size_t index);

/** Timed baseline+config sweep results in bench table layout. */
struct SweepResult
{
    std::vector<std::string> workloads;
    std::vector<std::string> configs;

    /** Direct-mapped baseline metrics, indexed by workload. */
    std::vector<SystemMetrics> baselines;

    /** metrics[config][workload-index]. */
    std::map<std::string, std::vector<SystemMetrics>> metrics;

    /** speedups[config][workload-index] over the baseline. */
    std::map<std::string, std::vector<double>> speedups;
};

/**
 * Schedules batches of independent simulations over a ThreadPool.
 * jobs=1 reproduces the historical serial execution order exactly.
 */
class SweepRunner
{
  public:
    /** @param jobs worker count; 0 means all hardware threads. */
    explicit SweepRunner(unsigned jobs = 0);

    /** Read the jobs= override from CLI configuration. */
    explicit SweepRunner(const Config &cli);

    unsigned jobs() const { return jobs_; }

    /**
     * Run every config and return metrics in input order, regardless
     * of the job count.  The first exception any run throws is
     * rethrown (lowest input index wins) after all runs finish.
     */
    std::vector<SystemMetrics>
    runConfigs(const std::vector<SystemConfig> &configs) const;

    /**
     * The bench sweep: for each workload run the direct-mapped
     * baseline plus every named configuration (timed), baselines
     * scheduled first, and compute weighted speedups.
     */
    SweepResult
    runSpeedupSweep(std::vector<std::string> workloads,
                    std::vector<std::string> configs,
                    const Config &cli) const;

    /**
     * Functional (untimed) grid over workloads x named configs;
     * returns metrics[config][workload-index].
     */
    std::map<std::string, std::vector<SystemMetrics>>
    runFunctionalGrid(const std::vector<std::string> &workloads,
                      const std::vector<std::string> &configs,
                      const Config &cli) const;

  private:
    unsigned jobs_;
};

} // namespace accord::sim

#endif // ACCORD_SIM_SWEEP_HPP

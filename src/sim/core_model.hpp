/**
 * @file
 * Timed core model.
 *
 * Each core replays its workload's L4-bound stream against the DRAM
 * cache: demand reads are paced by a compute gap derived from the
 * benchmark's L3 MPKI (a 2-wide core at base CPI executes
 * 1000/MPKI instructions between misses) and bounded by a miss-level
 * parallelism window; writebacks are posted for free.  IPC over the
 * timed phase feeds the weighted-speedup metric (Section III-B).
 */

#ifndef ACCORD_SIM_CORE_MODEL_HPP
#define ACCORD_SIM_CORE_MODEL_HPP

#include <cstdint>
#include <string>

#include "common/event_queue.hpp"
#include "common/metrics/registry.hpp"
#include "dramcache/controller.hpp"
#include "trace/source.hpp"

namespace accord::sim
{

/** Per-core timing parameters. */
struct CoreParams
{
    /** L3 misses per kilo-instruction of this core's benchmark. */
    double mpki = 10.0;

    /** Base CPI of the 2-wide core when not memory-stalled. */
    double baseCpi = 0.5;

    /** Outstanding demand reads the core can sustain. */
    unsigned mlp = 4;

    /** Demand reads to issue in the timed phase. */
    std::uint64_t quota = 6000;
};

/**
 * One timed core.
 *
 * The core pulls Request records from any TrafficSource: demand reads
 * are paced and issued, writeback records are posted for free, and a
 * bounded source that exhausts mid-run simply shrinks the quota to
 * what was actually issued.
 */
class CoreModel
{
  public:
    CoreModel(unsigned id, const CoreParams &params,
              trace::TrafficSource &stream,
              dramcache::DramCacheController &cache, EventQueue &eq);

    CoreModel(const CoreModel &) = delete;
    CoreModel &operator=(const CoreModel &) = delete;

    /** Begin issuing (call once, before running the queue). */
    void start();

    /** All quota reads have completed (quota may have shrunk if the
     *  stream exhausted). */
    bool finished() const { return completed >= quota_; }

    /** Cycle the last read completed (valid once finished). */
    Cycle finishTime() const { return finish_time; }

    /** Instructions per cycle over the timed phase. */
    double ipc() const;

    /** Instructions represented by one demand read. */
    double instrPerAccess() const { return 1000.0 / params.mpki; }

    /** Demand reads completed so far (epoch-sampling progress). */
    std::uint64_t completedReads() const { return completed; }

    /**
     * Register issue/completion progress under `prefix` ("core0").
     * ipc() is deliberately not exposed as a gauge: it is only
     * defined once the core has finished, and epoch snapshots sample
     * mid-run.
     */
    void
    registerMetrics(MetricRegistry &registry,
                    const std::string &prefix) const
    {
        registry.addValue(MetricRegistry::join(prefix, "issued"),
                          issued);
        registry.addValue(MetricRegistry::join(prefix, "completed"),
                          completed);
    }

    unsigned id() const { return id_; }

    /** Trace demand reads/writebacks issued by this core (may be
     *  null; set before start()). */
    void setTracer(trace_event::Tracer *tracer) { tracer_ = tracer; }

  private:
    void tryIssue();
    void onReadDone(Cycle when);

    unsigned id_;
    CoreParams params;
    trace::TrafficSource &stream;
    dramcache::DramCacheController &cache;
    EventQueue &eq;

    /** Effective demand-read quota (params.quota, shrunk on stream
     *  exhaustion). */
    std::uint64_t quota_;

    Cycle gap_cycles;
    Cycle next_ready = 0;
    Cycle start_time = 0;
    Cycle finish_time = 0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    unsigned outstanding = 0;
    bool issue_scheduled = false;

    /** Transaction tracer (null when tracing is off). */
    trace_event::Tracer *tracer_ = nullptr;
};

} // namespace accord::sim

#endif // ACCORD_SIM_CORE_MODEL_HPP

#include "sim/pool.hpp"

#include <algorithm>

namespace accord::sim
{

ThreadPool::ThreadPool(unsigned jobs)
{
    const unsigned count = jobs == 0 ? defaultJobs() : jobs;
    workers.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    ready.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

unsigned
ThreadPool::defaultJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
    }
    ready.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            ready.wait(lock,
                       [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

} // namespace accord::sim

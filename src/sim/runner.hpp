/**
 * @file
 * Experiment-runner helpers shared by benches and examples: config
 * construction shorthands, CLI overrides, weighted speedup, and a
 * per-workload baseline cache so each bench simulates the
 * direct-mapped baseline once.
 */

#ifndef ACCORD_SIM_RUNNER_HPP
#define ACCORD_SIM_RUNNER_HPP

#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/system.hpp"

namespace accord::sim
{

/** Build and run a System in one call. */
SystemMetrics runSystem(const SystemConfig &config);

/**
 * Weighted speedup of a configuration over a baseline: the mean of
 * per-core IPC ratios (Section III-B).
 */
double weightedSpeedup(const SystemMetrics &config,
                       const SystemMetrics &baseline);

/**
 * Apply common CLI overrides (key=value) to a config:
 * scale=, cores=, timed=, warm=, measure=, seed=, mlp=, jobs=,
 * epoch= (metric snapshot period; 0 disables epoch sampling),
 * full=1 (full sets scale=1: paper-sized 4GB cache and footprints).
 * jobs= sets the sweep worker count (0 = all hardware threads,
 * jobs=1 = the historical serial path); results never depend on it.
 * trace= writes a Chrome trace-event JSON of the timed phase and
 * trace_cap= bounds its ring buffer; like jobs=, tracing never
 * changes simulation results (and so stays out of the canonical
 * config spec).
 */
void applyCliOverrides(SystemConfig &config, const Config &cli);

/**
 * Canonical one-line description of a SystemConfig, embedded in run
 * reports so a report fully identifies its configuration.  Every
 * field that affects simulation results appears (jobs= does not,
 * because it never changes results); the policy spec uses
 * core::canonicalSpec() so policy knobs round-trip too.
 */
std::string canonicalConfigSpec(const SystemConfig &config);

/** Direct-mapped baseline config for a workload. */
SystemConfig baselineConfig(const std::string &workload);

/**
 * Shorthand for the paper's named configurations:
 *   "dm"            direct-mapped baseline
 *   "Nway-parallel" N-way, parallel lookup, random install
 *   "Nway-serial"   N-way, serial lookup, random install
 *   "Nway-ideal"    N-way with 1-transfer hits and misses (Fig 1c)
 *   "Nway-lru"      N-way, serial lookup, LRU with in-DRAM recency
 *                   updates (paper footnote 2 ablation)
 *   "Nway-rand"     N-way, predicted lookup, random predictor
 *   "Nway-<spec>"   N-way, predicted lookup, policy spec from
 *                   core::makePolicy ("pws", "gws", "pws+gws", "mru",
 *                   "ptag", "perfect", "sws", "sws+gws")
 *   "ca"            column-associative cache (hash-rehash with swaps)
 */
SystemConfig namedConfig(const std::string &workload,
                         const std::string &config_name);

/**
 * Memoizes the baseline run per workload so sweeps over many
 * configurations pay for the baseline only once.
 */
class BaselineCache
{
  public:
    /** Baseline metrics for the workload under the given overrides. */
    const SystemMetrics &get(const std::string &workload,
                             const Config &cli);

    /**
     * Simulate all not-yet-cached workloads in parallel (jobs= from
     * the CLI) so later get() calls are pure lookups.
     */
    void prefetch(const std::vector<std::string> &workloads,
                  const Config &cli);

  private:
    std::map<std::string, SystemMetrics> cache;
};

} // namespace accord::sim

#endif // ACCORD_SIM_RUNNER_HPP

#include "sim/sweep.hpp"

#include <exception>
#include <future>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"
#include "sim/pool.hpp"
#include "sim/runner.hpp"

namespace accord::sim
{

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? ThreadPool::defaultJobs() : jobs;
}

SweepRunner::SweepRunner(unsigned jobs) : jobs_(resolveJobs(jobs)) {}

SweepRunner::SweepRunner(const Config &cli)
    : jobs_(resolveJobs(
          static_cast<unsigned>(cli.getUint("jobs", 0))))
{
}

std::string
perRunTracePath(const std::string &path, std::size_t index)
{
    const std::string suffix = ".run" + std::to_string(index);
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.find_last_of("/\\");
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash))
        return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
}

std::string
perRunTelemetryPath(const std::string &path, std::size_t index)
{
    static constexpr const char kExt[] = ".telemetry.jsonl";
    static constexpr std::size_t kExtLen = sizeof(kExt) - 1;
    if (path.size() > kExtLen
        && path.compare(path.size() - kExtLen, kExtLen, kExt) == 0) {
        return path.substr(0, path.size() - kExtLen) + ".run"
            + std::to_string(index) + kExt;
    }
    return perRunTracePath(path, index);
}

std::vector<SystemMetrics>
SweepRunner::runConfigs(const std::vector<SystemConfig> &configs) const
{
    // Workers write disjoint slots; the pool (declared last) joins
    // before the result vectors go away even on exception paths.
    std::vector<SystemMetrics> results(configs.size());
    std::vector<std::string> logs(configs.size());
    std::vector<std::future<void>> futures;
    futures.reserve(configs.size());

    // Telemetry-enabled batches get a live done/in-flight/ETA line on
    // stderr (display only — results and streams are unaffected).
    bool any_telemetry = false;
    for (const SystemConfig &config : configs)
        any_telemetry = any_telemetry || !config.telemetryPath.empty();
    std::unique_ptr<telemetry::SweepProgress> progress;
    if (any_telemetry && configs.size() > 1)
        progress =
            std::make_unique<telemetry::SweepProgress>(configs.size());

    ThreadPool pool(jobs_);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        futures.push_back(pool.submit([&, i] {
            ScopedLogCapture capture;
            SystemConfig config = configs[i];
            // One trace= applied to a whole batch would have every run
            // clobber the same file; write one trace per run instead.
            if (!config.tracePath.empty() && configs.size() > 1)
                config.tracePath =
                    perRunTracePath(config.tracePath, i);
            // Same for telemetry streams: one flight-recorder file
            // per run, named by batch position.
            if (!config.telemetryPath.empty() && configs.size() > 1)
                config.telemetryPath =
                    perRunTelemetryPath(config.telemetryPath, i);
            if (progress)
                progress->onRunStart();
            results[i] = runSystem(config);
            if (progress)
                progress->onRunFinish();
            logs[i] = capture.take();
        }));
    }

    // Wait for every run, remember the first failure by input index,
    // then replay captured log output in deterministic job order.
    std::exception_ptr first_error;
    for (std::future<void> &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    // Terminate the progress line before replaying captured logs so
    // buffered warn()/inform() output starts on a fresh line.
    progress.reset();
    for (const std::string &text : logs)
        emitCapturedLog(text);
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

SweepResult
SweepRunner::runSpeedupSweep(std::vector<std::string> workloads,
                             std::vector<std::string> configs,
                             const Config &cli) const
{
    SweepResult result;
    result.workloads = std::move(workloads);
    result.configs = std::move(configs);
    const std::size_t num_workloads = result.workloads.size();
    const std::size_t num_configs = result.configs.size();

    // Resolve every run's SystemConfig up front on this thread;
    // baselines occupy [0, W), then configs workload-major.
    std::vector<SystemConfig> runs;
    runs.reserve(num_workloads * (1 + num_configs));
    for (const std::string &workload : result.workloads) {
        SystemConfig base = baselineConfig(workload);
        applyCliOverrides(base, cli);
        runs.push_back(std::move(base));
    }
    for (const std::string &workload : result.workloads) {
        for (const std::string &name : result.configs) {
            SystemConfig config = namedConfig(workload, name);
            config.runTimed = true;
            applyCliOverrides(config, cli);
            runs.push_back(std::move(config));
        }
    }

    std::vector<SystemMetrics> metrics = runConfigs(runs);

    for (std::size_t w = 0; w < num_workloads; ++w)
        result.baselines.push_back(std::move(metrics[w]));
    for (std::size_t w = 0; w < num_workloads; ++w) {
        for (std::size_t c = 0; c < num_configs; ++c) {
            const std::string &name = result.configs[c];
            SystemMetrics &m =
                metrics[num_workloads + w * num_configs + c];
            result.speedups[name].push_back(
                weightedSpeedup(m, result.baselines[w]));
            result.metrics[name].push_back(std::move(m));
        }
    }
    return result;
}

std::map<std::string, std::vector<SystemMetrics>>
SweepRunner::runFunctionalGrid(
    const std::vector<std::string> &workloads,
    const std::vector<std::string> &configs, const Config &cli) const
{
    std::vector<SystemConfig> runs;
    runs.reserve(workloads.size() * configs.size());
    for (const std::string &name : configs) {
        for (const std::string &workload : workloads) {
            SystemConfig config = namedConfig(workload, name);
            config.runTimed = false;
            applyCliOverrides(config, cli);
            runs.push_back(std::move(config));
        }
    }

    std::vector<SystemMetrics> metrics = runConfigs(runs);

    std::map<std::string, std::vector<SystemMetrics>> grid;
    std::size_t i = 0;
    for (const std::string &name : configs) {
        std::vector<SystemMetrics> &column = grid[name];
        for (std::size_t w = 0; w < workloads.size(); ++w)
            column.push_back(std::move(metrics[i++]));
    }
    return grid;
}

} // namespace accord::sim

/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel
 * experiment fan-out.
 *
 * Tasks are plain callables; submit() returns a std::future so
 * exceptions thrown inside a task propagate to the caller at get().
 * Workers pop tasks FIFO, so with jobs=1 the pool degenerates to the
 * serial execution order benches used before parallelism existed.
 * Determinism of simulation results does not depend on the pool at
 * all: every run seeds its RNGs from (seed, workload, config), never
 * from scheduling order.
 */

#ifndef ACCORD_SIM_POOL_HPP
#define ACCORD_SIM_POOL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace accord::sim
{

/** Fixed-size FIFO thread pool; join on destruction. */
class ThreadPool
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit ThreadPool(unsigned jobs = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    /** Number of worker threads. */
    unsigned jobs() const
        { return static_cast<unsigned>(workers.size()); }

    /** Hardware concurrency, or 1 when it is unknown. */
    static unsigned defaultJobs();

    /**
     * Queue a callable; the future delivers its result or rethrows
     * whatever it threw.
     */
    template <typename F>
    auto
    submit(F fn) -> std::future<std::invoke_result_t<F &>>
    {
        using Result = std::invoke_result_t<F &>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::move(fn));
        std::future<Result> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace accord::sim

#endif // ACCORD_SIM_POOL_HPP

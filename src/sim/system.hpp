/**
 * @file
 * Full-system assembly: N cores -> DRAM cache -> NVM main memory.
 *
 * A System owns one experiment run.  It builds one TrafficSource per
 * core through the source registry (identical streams for every cache
 * configuration given the same seed and spec), optionally wraps each
 * in the SimPoint-style sampler, warms the cache functionally, and
 * then either measures functional statistics (hit rate, way-prediction
 * accuracy, transfer counts) over the stream or runs the timed phase
 * to obtain per-core IPC for weighted speedup.
 */

#ifndef ACCORD_SIM_SYSTEM_HPP
#define ACCORD_SIM_SYSTEM_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/event_queue.hpp"
#include "common/metrics/registry.hpp"
#include "common/telemetry/telemetry.hpp"
#include "core/factory.hpp"
#include "dramcache/controller.hpp"
#include "nvm/nvm_system.hpp"
#include "sim/core_model.hpp"
#include "sim/energy.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

namespace accord::sim
{

/** Everything one experiment run needs. */
struct SystemConfig
{
    /** Workload name ("libq", "mix3", ...). */
    std::string workload = "libq";

    unsigned numCores = 16;

    /** Footprints and cache are both divided by this (DESIGN.md §2). */
    std::uint64_t scale = 128;

    /** Full-scale cache capacity (paper default: 4GB). */
    std::uint64_t fullCacheBytes = 4ULL << 30;

    // Cache organization.
    unsigned ways = 1;
    dramcache::Organization org = dramcache::Organization::SetAssoc;
    dramcache::LookupMode lookup = dramcache::LookupMode::Predicted;
    bool dcpWayBits = true;
    dramcache::L4Replacement replacement =
        dramcache::L4Replacement::Random;
    dramcache::LayoutMode layout = dramcache::LayoutMode::RowCoLocated;

    /**
     * Backend for per-set cache state (tag store, predictor tables,
     * DCP, LRU stamps): dense vectors, lazily-materialized pages, or
     * auto (per table by size).  Never changes simulation results —
     * only host memory footprint — so the canonical spec carries it
     * only when forced off Auto.
     */
    dramcache::StateBackend stateBackend =
        dramcache::StateBackend::Auto;

    /**
     * Main memory below the cache: true = PCM-class NVM (the paper's
     * system), false = conventional DDR (the Section II-B premise
     * ablation: associativity buys little when memory is fast).
     */
    bool nvmMainMemory = true;

    /** Way policy spec ("" = none; see core::makePolicy). */
    std::string policySpec;
    core::PolicyOptions policyOpts;

    /** Functional warmup accesses per core (0 = auto from footprint). */
    std::uint64_t warmPerCore = 0;

    /** Functional measurement accesses per core (untimed runs). */
    std::uint64_t measurePerCore = 20000;

    /** Timed demand reads per core (timed runs). */
    std::uint64_t timedPerCore = 6000;

    /** Run the timed phase (else functional measurement only). */
    bool runTimed = true;

    unsigned mlp = 8;

    /**
     * Worker threads for sweeps this run belongs to (0 = all
     * hardware threads; 1 = the historical serial path).  Scheduling
     * metadata only — it never changes simulation results, which are
     * bit-identical for any job count.
     */
    unsigned jobs = 0;

    /** Demand-to-writeback lag of the writeback mixer. */
    unsigned wbLag = 2048;

    /**
     * Traffic source spec per core ("name(key=value,...)"; see
     * trace/source.hpp).  The default keeps the synthetic workload
     * models; "trace(file=...)" replays a recorded binary trace.
     */
    std::string trafficSpec = trace::kDefaultTrafficSpec;

    /**
     * SimPoint-style sampling spec applied on top of the source
     * ("" = off; knob syntax in trace::SampleParams::fromString).
     * Requires a bounded source and a functional run.
     */
    std::string sampleSpec;

    /**
     * Filter each core's stream through a real L1/L2/L3 hierarchy
     * instead of treating it as the post-L3 miss stream (functional
     * runs only).  Slower but exercises the full cache stack; the
     * hierarchy generates the L4 writebacks itself, so the writeback
     * mixer is bypassed.
     */
    bool fullHierarchy = false;

    /**
     * Snapshot the metric registry every this many demand accesses
     * (functional runs) or completed demand reads (timed runs) during
     * the measurement phase, into SystemMetrics::epochs.  0 (the
     * default) disables epoch sampling entirely — no snapshots, no
     * overhead.
     */
    std::uint64_t epochEvery = 0;

    /**
     * Write a Chrome trace-event JSON of the timed phase to this path
     * ("" = tracing off).  Timed runs only — the functional path has
     * no cycle timeline to trace.  Like jobs=, tracing never changes
     * simulation results.
     */
    std::string tracePath;

    /**
     * Ring-buffer cap: completed transactions retained in the trace
     * (0 = keep everything).  See trace_event::TracerConfig.
     */
    std::uint64_t traceCap = 0;

    /**
     * Flight-recorder telemetry stream path ("" = telemetry off).
     * Appends one accord.telemetry/1 JSONL heartbeat every
     * telemetryInterval progress units (functional accesses, or
     * retired demand reads on timed runs) — deterministic cadence, so
     * the canonical fields are byte-identical across re-runs and
     * jobs= values.  Like jobs= and trace=, telemetry never changes
     * simulation results and stays out of canonicalConfigSpec.
     */
    std::string telemetryPath;

    /** Heartbeat cadence in progress units (0 = recorder default). */
    std::uint64_t telemetryInterval = 0;

    std::uint64_t seed = 1;

    /** Scaled cache capacity in bytes. */
    std::uint64_t cacheBytes() const { return fullCacheBytes / scale; }
};

/** Results of one run. */
struct SystemMetrics
{
    double hitRate = 0.0;
    double wpAccuracy = 0.0;
    double transfersPerRead = 0.0;

    /** Per-core IPC (empty for functional-only runs). */
    std::vector<double> coreIpc;
    // accord-lint: allow(metric-unregistered) reported via per-core
    // IPC, not as a registry leaf
    Cycle cycles = 0;

    /**
     * Discrete events the queue executed over the whole run (warmup
     * included; 0 for functional-only runs).  Host-side throughput
     * denominator for bench_throughput — deliberately NOT a registry
     * metric, so run reports stay byte-identical across engine
     * refactors.
     */
    // accord-lint: allow(metric-unregistered) see above: host-side
    // denominator only, kept out of canonical reports on purpose
    std::uint64_t eventsExecuted = 0;

    /**
     * Functional accesses executed in the measurement phase, sampled
     * warmup-replay accesses included (0 for timed runs).  The
     * replayed-event numerator of bench_trace_replay's sampled-vs-full
     * ratio; like eventsExecuted, kept out of the registry so run
     * reports stay byte-identical across frontend refactors.
     */
    // accord-lint: allow(metric-unregistered) see above: host-side
    // denominator only, kept out of canonical reports on purpose
    std::uint64_t accessesExecuted = 0;

    /**
     * EventQueue occupancy high-water mark over the run (peak
     * simultaneously pending events; 0 for functional-only runs).
     * The same EventQueue counter telemetry heartbeats sample, so
     * mid-run and end-of-run views share one source of truth; kept
     * out of the registry like eventsExecuted so canonical run
     * reports keep their baseline key set.
     */
    // accord-lint: allow(metric-unregistered) see above: engine-health
    // gauge, kept out of canonical reports on purpose
    std::uint64_t eqOccupancyPeak = 0;

    /**
     * Events that spilled past the EventQueue's calendar horizon into
     * the overflow heap (see EventQueue::overflowSpills).  Same
     * source feeds the telemetry heartbeats.
     */
    // accord-lint: allow(metric-unregistered) see above: engine-health
    // gauge, kept out of canonical reports on purpose
    std::uint64_t eqOverflowSpills = 0;

    dramcache::DramCacheStats cacheStats;
    dram::DeviceStats hbmStats;
    dram::DeviceStats nvmStats;
    EnergyBreakdown energy;

    /** SRAM bits the way policy required. */
    // accord-lint: allow(metric-unregistered) static hardware cost, not
    // a run-time counter; reported in bench tables directly
    std::uint64_t policyStorageBits = 0;

    /**
     * Host bytes backing per-set cache state (tag/flag columns, DCP
     * pages, predictor tables) at the end of the run.  Host-side
     * footprint gauge for the gigascale RSS budget — deliberately NOT
     * a registry metric (it varies with the state backend while
     * simulation results do not), so canonical run reports keep their
     * baseline key set; reports carry it in the volatile host
     * partition instead.
     */
    // accord-lint: allow(metric-unregistered) see above: host-side
    // footprint gauge, kept out of canonical reports on purpose
    std::uint64_t residentStateBytes = 0;

    /** Registry snapshot at the end of the measurement phase. */
    MetricSnapshot finalMetrics;

    /** Epoch time-series (empty unless SystemConfig::epochEvery). */
    MetricSeries epochs;

    /** The trace JSON written to SystemConfig::tracePath ("" when
     *  tracing was off). */
    std::string traceJson;
};

/** One assembled simulation instance. */
class System
{
  public:
    explicit System(const SystemConfig &config);

    System(const System &) = delete;
    System &operator=(const System &) = delete;
    ~System();

    /** Warm, (measure | run timed), and report. */
    SystemMetrics run();

    dramcache::DramCacheController &cache() { return *cache_; }
    const SystemConfig &config() const { return config_; }

    /** The hierarchical metric registry every component feeds. */
    const MetricRegistry &metrics() const { return registry_; }

  private:
    void warm();
    void measureFunctional();
    void runTimed();

    /**
     * One functional access for a core (direct or via hierarchy).
     * Returns false when the access carried Request::warmup and was
     * therefore excluded from measured statistics.
     */
    bool funcAccess(unsigned core);

    /** Record an epoch sample if `position` crossed the next epoch. */
    void maybeSampleEpoch(std::uint64_t position);

    /** Emit a telemetry heartbeat if `position` crossed the cadence. */
    void maybeHeartbeat(const char *phase, std::uint64_t position);

    /** Snapshot the canonical heartbeat gauges at `position`. */
    telemetry::HeartbeatSample
    telemetrySample(const char *phase, std::uint64_t position) const;

    SystemConfig config_;
    EventQueue eq;
    MetricRegistry registry_;
    MetricSeries epoch_series_;
    std::uint64_t next_epoch_at_ = 0;
    std::unique_ptr<telemetry::FlightRecorder> recorder_;

    /**
     * Telemetry progress units consumed so far (warm + measured
     * accesses; timed completed reads are added as the tick observes
     * them).  Advanced only on deterministic simulation progress.
     */
    std::uint64_t telemetry_units_ = 0;
    std::unique_ptr<trace_event::Tracer> tracer_;
    std::unique_ptr<nvm::NvmSystem> nvm;
    std::unique_ptr<dramcache::DramCacheController> cache_;

    std::vector<const trace::WorkloadSpec *> assignment;
    std::vector<std::unique_ptr<trace::TrafficSource>> sources;
    std::vector<std::unique_ptr<CoreModel>> cores;

    /** Measurement-phase access count (SystemMetrics::accessesExecuted). */
    std::uint64_t accesses_executed_ = 0;

    // Full-hierarchy mode state (empty otherwise).
    std::vector<std::unique_ptr<cache::Hierarchy>> hierarchies;
    std::vector<Rng> write_rngs;
};

} // namespace accord::sim

#endif // ACCORD_SIM_SYSTEM_HPP

/**
 * @file
 * Analytic off-chip memory-system energy model (paper Section VI-D).
 *
 * Energy is composed from device event counts: row activations and
 * line transfers on the stacked DRAM, array reads and cell programming
 * on the NVM, plus background power integrated over runtime.  Fig 15
 * reports these normalized to the direct-mapped baseline, so only the
 * relative magnitudes matter.
 */

#ifndef ACCORD_SIM_ENERGY_HPP
#define ACCORD_SIM_ENERGY_HPP

#include "common/types.hpp"
#include "dram/dram_system.hpp"

namespace accord::sim
{

/** Per-event energies (pJ) and background powers (W). */
struct EnergyParams
{
    double hbmActivatePj = 900.0;
    double hbmTransferPj = 450.0;
    double hbmBackgroundW = 2.0;

    double nvmReadPj = 2500.0;
    double nvmWritePj = 16000.0;
    double nvmBackgroundW = 1.0;

    double cpuGhz = 3.0;
};

/** Energy accounting for one run. */
struct EnergyBreakdown
{
    double cacheEnergyJ = 0.0;
    double memEnergyJ = 0.0;
    double backgroundJ = 0.0;
    double totalJ = 0.0;
    double seconds = 0.0;

    /** Average power in watts. */
    double powerW() const { return seconds > 0 ? totalJ / seconds : 0; }

    /** Energy-delay product (J * s). */
    double edp() const { return totalJ * seconds; }
};

/** Compose the energy breakdown from device stats and runtime. */
EnergyBreakdown
computeEnergy(const dram::DeviceStats &hbm, const dram::DeviceStats &nvm,
              Cycle cycles, const EnergyParams &params = {});

} // namespace accord::sim

#endif // ACCORD_SIM_ENERGY_HPP

#include "dramcache/org_setassoc.hpp"

#include <cstdio>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "core/predictors.hpp"
#include "dramcache/audit.hpp"
#include "dramcache/enums.hpp"

namespace accord::dramcache
{

core::CacheGeometry
SetAssocOrg::geometryFor(const DramCacheParams &params)
{
    core::CacheGeometry geom;
    if (params.ways == 0 || params.ways > kMaxWays
        || !isPow2(params.ways))
        fatal("dram cache: ways must be a power of two in [1,64]");
    geom.ways = params.ways;
    geom.sets = params.capacityBytes / lineSize / params.ways;
    if (!isPow2(geom.sets))
        fatal("dram cache: set count must be a power of two");
    return geom;
}

SetAssocOrg::SetAssocOrg(const OrgContext &ctx)
    : OrgStrategy(ctx), install_rng(ctx.params.seed ^ 0x1e57a11ULL)
{
    if (ctx_.params.replacement == L4Replacement::Lru) {
        ACCORD_ASSERT(!ctx_.policy,
                      "LRU replacement is the unsteered ablation; it "
                      "cannot be combined with a way policy");
        lru_stamps.reset(ctx_.geom.lines(),
                         resolveStorageMode(ctx_.params.stateBackend,
                                            ctx_.geom.lines()),
                         0);
    }
    if (ctx_.policy) {
        ACCORD_ASSERT(ctx_.policy->geometry().sets == ctx_.geom.sets
                          && ctx_.policy->geometry().ways
                              == ctx_.geom.ways,
                      "policy geometry mismatch");
        // Wire the oracle for the perfect-prediction bound.
        if (auto *perfect =
                dynamic_cast<core::PerfectPolicy *>(ctx_.policy)) {
            TagStore &tags = ctx_.tags;
            perfect->setOracle([&tags](const core::LineRef &ref) {
                return tags.findWay(ref.set, ref.tag);
            });
        }
    }
}

ACCORD_HOT AccessPlan
SetAssocOrg::planRead(LineAddr line)
{
    return planLookup(core::LineRef::make(line, ctx_.geom), ctx_.policy,
                      ctx_.geom, ctx_.params.lookup);
}

AccessPlan
SetAssocOrg::planDemandLocate(LineAddr line)
{
    return planLocate(core::LineRef::make(line, ctx_.geom), ctx_.policy,
                      ctx_.geom);
}

ACCORD_HOT void
SetAssocOrg::onReadHit(const HitContext &hit)
{
    const auto ref = core::LineRef::make(hit.line, ctx_.geom);
    if (ctx_.policy)
        ctx_.policy->onHit(ref, hit.way);
    touchReplacement(ref, hit.way, hit.timed, hit.trace);
    ctx_.dcp.record(hit.line, hit.way);
}

ACCORD_HOT void
SetAssocOrg::onReadMiss(const core::LineRef &ref)
{
    if (ctx_.policy)
        ctx_.policy->onMiss(ref);
}

ACCORD_HOT unsigned
SetAssocOrg::unsteeredVictim(const core::LineRef &ref)
{
    if (ctx_.geom.ways == 1)
        return 0;
    if (ctx_.params.replacement == L4Replacement::Random)
        return static_cast<unsigned>(install_rng.below(ctx_.geom.ways));

    // LRU: prefer an invalid way, else the oldest stamp.
    unsigned best = 0;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (unsigned way = 0; way < ctx_.geom.ways; ++way) {
        if (!ctx_.tags.valid(ref.set, way))
            return way;
        const std::uint64_t stamp =
            lru_stamps.read(ref.set * ctx_.geom.ways + way);
        if (stamp < best_stamp) {
            best_stamp = stamp;
            best = way;
        }
    }
    return best;
}

ACCORD_HOT void
SetAssocOrg::touchReplacement(const core::LineRef &ref, unsigned way,
                              bool timed, trace_event::TxnId txn)
{
    if (ctx_.params.replacement != L4Replacement::Lru)
        return;
    // A hit implies the way was installed, so its stamp page is
    // already resident; this never allocates on the hit path.
    // accord-lint: allow(hot-paged-materialize) hit stamps touch
    // already-resident pages
    lru_stamps.materializeSlot(ref.set * ctx_.geom.ways + way)
        = ++lru_clock;
    // The recency state lives in the DRAM array next to the tags:
    // updating it on a hit costs a line write (paper footnote 2).
    ctx_.stats.replacementUpdateWrites.inc();
    ctx_.stats.cacheWriteTransfers.inc();
    if (timed)
        ctx_.services.cacheOp(ref.set, way, true, {}, false, txn);
}

ACCORD_HOT SetAssocOrg::InstallResult
SetAssocOrg::installLine(const core::LineRef &ref)
{
    // Two overlapping misses to one line (cores sharing a hashed
    // region, or a re-reference inside the MLP window) can both reach
    // the fill path; the second fill must not create a duplicate copy.
    if (const int existing = ctx_.tags.findWay(ref.set, ref.tag);
        existing >= 0) {
        ctx_.dcp.record(ref.line, static_cast<unsigned>(existing));
        return {static_cast<unsigned>(existing), false, 0};
    }

    const unsigned way = ctx_.policy ? ctx_.policy->install(ref)
                                     : unsteeredVictim(ref);

    if (ctx_.params.replacement == L4Replacement::Lru) {
        // Fill-side stamp write: materializes at most one page per
        // page lifetime, amortized over the installs that land there.
        // accord-lint: allow(hot-paged-materialize) install-side
        // materialization is amortized
        lru_stamps.materializeSlot(ref.set * ctx_.geom.ways + way)
            = ++lru_clock;
    }

    const TagStore::Victim victim =
        ctx_.tags.install(ref.set, way, ref.tag, false);
    if (ctx_.policy)
        ctx_.policy->onInstall(ref, way);

    ctx_.stats.cacheWriteTransfers.inc();   // the fill write
    ctx_.dcp.record(ref.line, way);

    InstallResult result;
    result.way = way;
    if (victim.valid) {
        const LineAddr victim_line =
            (victim.tag << ctx_.geom.setBits()) | ref.set;
        ctx_.dcp.erase(victim_line);
        if (victim.dirty) {
            ctx_.stats.nvmWrites.inc();
            result.victimDirty = true;
            result.victimLine = victim_line;
        }
    }
    return result;
}

ACCORD_HOT void
SetAssocOrg::installAfterMiss(LineAddr line, bool timed,
                              trace_event::TxnId parent)
{
    // Fill off the critical path: functional install now, the array
    // write and any victim writeback posted on the devices when
    // timed.  The fill is its own trace transaction (the demand read
    // already completed) grouped over its member ops.
    trace_event::TxnId fill_txn = trace_event::kNoTxn;
    auto member = ctx_.services.beginFillGroup(parent, line, fill_txn);
    const auto ref = core::LineRef::make(line, ctx_.geom);
    const InstallResult fill = installLine(ref);
    if (timed)
        ctx_.services.cacheOp(ref.set, fill.way, true, member(), false,
                              fill_txn);
    if (fill.victimDirty && timed)
        ctx_.services.nvmWrite(fill.victimLine, member(), fill_txn);
}

DcpTarget
SetAssocOrg::dcpTarget(LineAddr line, unsigned selector) const
{
    const auto ref = core::LineRef::make(line, ctx_.geom);
    DcpTarget target;
    target.set = ref.set;
    target.way = selector;
    target.present = ctx_.tags.valid(ref.set, selector)
        && ctx_.tags.tag(ref.set, selector) == ref.tag;
    return target;
}

void
SetAssocOrg::auditRange(InvariantAuditor &auditor,
                        std::uint64_t firstSet,
                        std::uint64_t lastSet) const
{
    if (ctx_.policy) {
        auditPlacementRange(ctx_.tags, *ctx_.policy, auditor, firstSet,
                            lastSet);
        // Policy tables are global, not per-set; audit them once per
        // rotation instead of once per window.
        if (firstSet == 0)
            ctx_.policy->audit(auditor);
    }
    auditDcpForward(ctx_.dcp, ctx_.tags, auditor, firstSet, lastSet);
}

void
SetAssocOrg::auditFull(InvariantAuditor &auditor) const
{
    if (ctx_.policy) {
        auditPlacement(ctx_.tags, *ctx_.policy, auditor);
        ctx_.policy->audit(auditor);
    }
    auditDcp(ctx_.dcp, ctx_.tags, auditor);
}

std::uint64_t
SetAssocOrg::residentStateBytes() const
{
    return lru_stamps.residentBytes();
}

std::string
SetAssocOrg::describe() const
{
    if (ctx_.geom.ways == 1)
        return "direct-mapped";
    char buf[128];
    std::snprintf(buf, sizeof buf, "%u-way %s %s", ctx_.geom.ways,
                  ctx_.policy ? ctx_.policy->name().c_str() : "rand",
                  toToken(ctx_.params.lookup));
    return buf;
}

} // namespace accord::dramcache

/**
 * @file
 * The timed demand-read engine: executes an organization's AccessPlan
 * against the stacked-DRAM device, one transaction at a time.
 *
 * The engine dispatches on the plan's IssueShape only — which ways to
 * probe, in what order, and what each outcome costs was decided by the
 * plan core, so this file contains no lookup-mode or organization
 * logic.
 */

#include "common/object_pool.hpp"
#include "common/trace_event/tracer.hpp"
#include "dramcache/access_plan.hpp"
#include "dramcache/controller.hpp"
#include "dramcache/org_setassoc.hpp"

namespace accord::dramcache
{

/** In-flight state of one timed demand read. */
struct DramCacheController::ReadTxn
{
    AccessPlan plan;
    ReadDone done;
    Cycle start = 0;

    /** Trace transaction of this read (kNoTxn when untraced). */
    trace_event::TxnId trace = trace_event::kNoTxn;

    /** Broadside issue: probe index of the resident way, -1 if absent. */
    int parallelHitPos = -1;
    unsigned parallelArrived = 0;
};

ACCORD_HOT void
DramCacheController::read(LineAddr line, ReadDone done,
                          trace_event::TxnId trace)
{
#if ACCORD_CHECKS_ENABLED
    maybeAudit();
#endif

    // Pool-allocated: the transaction and its shared_ptr control
    // block recycle through txn_pool_ instead of hitting the heap on
    // every demand read.
    auto txn =
        std::allocate_shared<ReadTxn>(PoolAllocator<ReadTxn>(txn_pool_));
    // Devirtualized fast path: when the organization is exactly the
    // built-in SetAssocOrg, qualified calls skip the vtable and inline.
    txn->plan = setassoc_ != nullptr ? setassoc_->SetAssocOrg::planRead(line)
                                     : org_->planRead(line);
    txn->done = std::move(done);
    txn->start = eq.now();
    txn->trace = tracer_ != nullptr ? trace : trace_event::kNoTxn;
    ++in_flight;

    if (txn->trace != trace_event::kNoTxn) {
        tracer_->phaseBegin(txn->trace, trace_event::Phase::Lookup,
                            txn->start);
    }

    switch (txn->plan.shape) {
      case IssueShape::Single: {
        // One magic probe resolves hit and miss alike (Fig 1c bound).
        stats_.cacheReadTransfers.inc();
        stats_.probesPerRead.sample(1.0);
        if (txn->trace != trace_event::kNoTxn) {
            tracer_->point(txn->trace, trace_event::Point::ProbeIssue,
                           eq.now(), txn->plan.probes[0].traceWay);
        }
        cacheOp(txn->plan.probes[0].set, txn->plan.probes[0].way,
                false, [this, txn](Cycle when) {
            const HitLocation loc = resolve(txn->plan, tags);
            if (loc.index >= 0)
                finishHit(txn, loc.way, loc.way, 0, when);
            else
                missConfirmed(txn, when);
        }, false, txn->trace);
        return;
      }

      case IssueShape::Broadside: {
        // All probes leave at once; the hit position is fixed now,
        // against the tag state at issue.
        const HitLocation loc = resolve(txn->plan, tags);
        txn->parallelHitPos = loc.index;
        stats_.probesPerRead.sample(
            static_cast<double>(txn->plan.probeCount));
        for (unsigned i = 0; i < txn->plan.probeCount; ++i) {
            stats_.cacheReadTransfers.inc();
            if (txn->trace != trace_event::kNoTxn) {
                tracer_->point(txn->trace,
                               trace_event::Point::ProbeIssue,
                               eq.now(), txn->plan.probes[i].traceWay);
            }
            cacheOp(txn->plan.probes[i].set, txn->plan.probes[i].way,
                    false, [this, txn](Cycle when) {
                ++txn->parallelArrived;
                const auto hit_pos =
                    static_cast<unsigned>(txn->parallelHitPos);
                if (txn->parallelHitPos >= 0
                    && txn->parallelArrived == hit_pos + 1) {
                    finishHit(txn, txn->plan.probes[hit_pos].way,
                              txn->plan.probes[hit_pos].traceWay,
                              hit_pos, when);
                } else if (txn->parallelHitPos < 0
                           && txn->parallelArrived
                               == txn->plan.probeCount) {
                    missConfirmed(txn, when);
                }
            }, false, txn->trace);
        }
        return;
      }

      case IssueShape::Chained:
        issueProbe(txn, 0);
        return;
    }
}

ACCORD_HOT void
DramCacheController::issueProbe(const std::shared_ptr<ReadTxn> &txn,
                                unsigned index)
{
    stats_.cacheReadTransfers.inc();
    if (txn->trace != trace_event::kNoTxn) {
        tracer_->point(txn->trace, trace_event::Point::ProbeIssue,
                       eq.now(), txn->plan.probes[index].traceWay);
    }
    // Follow-up probes jump the device queue: the lookup already paid
    // a miss at the predicted slot and sits on the critical path.
    cacheOp(txn->plan.probes[index].set, txn->plan.probes[index].way,
            false, [this, txn, index](Cycle when) {
        probeDone(txn, index, when);
    }, /* priority */ index > 0, txn->trace);
}

ACCORD_HOT void
DramCacheController::probeDone(const std::shared_ptr<ReadTxn> &txn,
                               unsigned index, Cycle when)
{
    // Chained probes check live tags: an overlapping fill may have
    // installed or moved the line since this probe was issued.
    if (stepHits(txn->plan.probes[index], tags)) {
        stats_.probesPerRead.sample(static_cast<double>(index + 1));
        finishHit(txn, txn->plan.probes[index].way,
                  txn->plan.probes[index].traceWay, index, when);
        return;
    }
    if (index + 1 < txn->plan.probeCount) {
        issueProbe(txn, index + 1);
        return;
    }
    stats_.probesPerRead.sample(
        static_cast<double>(txn->plan.probeCount));
    missConfirmed(txn, when);
}

ACCORD_HOT void
DramCacheController::finishHit(const std::shared_ptr<ReadTxn> &txn,
                               unsigned way, unsigned trace_way,
                               unsigned probe_index, Cycle when)
{
    stats_.readHits.hit();
    stats_.wayPrediction.add(AccessPlan::predictedAt(probe_index));
    stats_.readHitLatency.sample(static_cast<double>(when - txn->start));

    HitContext hit;
    hit.line = txn->plan.ref.line;
    hit.set = txn->plan.probes[probe_index].set;
    hit.way = way;
    hit.probeIndex = probe_index;
    hit.timed = true;
    hit.trace = txn->trace;
    if (setassoc_ != nullptr)
        setassoc_->SetAssocOrg::onReadHit(hit);
    else
        org_->onReadHit(hit);

    --in_flight;
    if (txn->trace != trace_event::kNoTxn) {
        tracer_->point(txn->trace,
                       probe_index == 0
                           ? trace_event::Point::PredictCorrect
                           : trace_event::Point::PredictWrong,
                       when, trace_way);
        tracer_->phaseEnd(txn->trace, trace_event::Phase::Lookup,
                          when);
        tracer_->complete(
            txn->trace,
            probe_index == 0
                ? trace_event::RequestClass::HitPredict
                : trace_event::RequestClass::HitMispredict,
            when);
    }
    if (txn->done)
        txn->done(true, when);

    // Post-completion work (e.g. the CA swap-to-primary) runs off the
    // critical path, after the requester has its data.
    if (setassoc_ != nullptr)
        setassoc_->OrgStrategy::afterReadHit(hit); // the base no-op
    else
        org_->afterReadHit(hit);
}

ACCORD_HOT void
DramCacheController::missConfirmed(const std::shared_ptr<ReadTxn> &txn,
                                   Cycle when)
{
    stats_.readHits.miss();
    if (setassoc_ != nullptr)
        setassoc_->SetAssocOrg::onReadMiss(txn->plan.ref);
    else
        org_->onReadMiss(txn->plan.ref);
    stats_.nvmReads.inc();

    if (txn->trace != trace_event::kNoTxn) {
        tracer_->point(txn->trace, trace_event::Point::MissConfirm,
                       when);
        tracer_->phaseEnd(txn->trace, trace_event::Phase::Lookup,
                          when);
        tracer_->phaseBegin(txn->trace, trace_event::Phase::Nvm,
                            when);
    }

    nvm.readLine(txn->plan.ref.line, [this, txn](Cycle nvm_done) {
        stats_.readMissLatency.sample(
            static_cast<double>(nvm_done - txn->start));
        --in_flight;
        if (txn->trace != trace_event::kNoTxn) {
            tracer_->phaseEnd(txn->trace, trace_event::Phase::Nvm,
                              nvm_done);
            tracer_->complete(txn->trace,
                              trace_event::RequestClass::Miss,
                              nvm_done);
        }
        if (txn->done)
            txn->done(false, nvm_done);

        // Fill off the critical path: functional install now, the
        // array writes and any victim writeback posted.
        if (setassoc_ != nullptr)
            setassoc_->SetAssocOrg::installAfterMiss(txn->plan.ref.line,
                                        /* timed */ true, txn->trace);
        else
            org_->installAfterMiss(txn->plan.ref.line, /* timed */ true,
                                   txn->trace);
    }, txn->trace);
}

} // namespace accord::dramcache

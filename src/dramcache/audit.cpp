#include "dramcache/audit.hpp"

#include "dramcache/controller.hpp"

namespace accord::dramcache
{

std::uint64_t
auditTagStoreRange(const TagStore &tags, InvariantAuditor &auditor,
                   std::uint64_t firstSet, std::uint64_t lastSet)
{
    const core::CacheGeometry &geom = tags.geometry();
    std::uint64_t valid_count = 0;
    for (std::uint64_t set = firstSet; set < lastSet; ++set) {
        // Sets whose slots sit entirely on never-written pages read
        // all-invalid, which violates nothing — skip them so paged
        // gigascale sweeps cost resident pages, not geometry.
        if (!tags.setPossiblyOccupied(set))
            continue;
        for (unsigned way = 0; way < geom.ways; ++way) {
            if (!tags.valid(set, way)) {
                if (tags.dirty(set, way)) {
                    auditor.fail("tag-dirty-invalid",
                                 "set %llu way %u: dirty but invalid",
                                 static_cast<unsigned long long>(set),
                                 way);
                }
                continue;
            }
            ++valid_count;
            for (unsigned other = way + 1; other < geom.ways;
                 ++other) {
                if (tags.valid(set, other)
                    && tags.tag(set, other) == tags.tag(set, way)) {
                    auditor.fail(
                        "tag-duplicate",
                        "set %llu: tag %llx in ways %u and %u",
                        static_cast<unsigned long long>(set),
                        static_cast<unsigned long long>(
                            tags.tag(set, way)),
                        way, other);
                }
            }
        }
    }
    return valid_count;
}

void
auditTagStore(const TagStore &tags, InvariantAuditor &auditor)
{
    const std::uint64_t valid_count =
        auditTagStoreRange(tags, auditor, 0, tags.geometry().sets);
    if (valid_count != tags.occupancy()) {
        auditor.fail("tag-occupancy",
                     "occupancy counter %llu != %llu valid entries",
                     static_cast<unsigned long long>(tags.occupancy()),
                     static_cast<unsigned long long>(valid_count));
    }
}

void
auditPlacementRange(const TagStore &tags, const core::WayPolicy &policy,
                    InvariantAuditor &auditor, std::uint64_t firstSet,
                    std::uint64_t lastSet)
{
    const core::CacheGeometry &geom = tags.geometry();
    for (std::uint64_t set = firstSet; set < lastSet; ++set) {
        if (!tags.setPossiblyOccupied(set))
            continue;
        for (unsigned way = 0; way < geom.ways; ++way) {
            if (!tags.valid(set, way))
                continue;
            const auto ref =
                core::LineRef::make(tags.lineAt(set, way), geom);
            if ((policy.candidates(ref)
                 & (std::uint64_t{1} << way)) == 0) {
                auditor.fail(
                    "placement",
                    "set %llu way %u: line %llx outside its %s "
                    "candidate set %llx",
                    static_cast<unsigned long long>(set), way,
                    static_cast<unsigned long long>(ref.line),
                    policy.name().c_str(),
                    static_cast<unsigned long long>(
                        policy.candidates(ref)));
            }
        }
    }
}

void
auditPlacement(const TagStore &tags, const core::WayPolicy &policy,
               InvariantAuditor &auditor)
{
    auditPlacementRange(tags, policy, auditor, 0,
                        tags.geometry().sets);
}

void
auditDcp(const DcpDirectory &dcp, const TagStore &tags,
         InvariantAuditor &auditor)
{
    const core::CacheGeometry &geom = tags.geometry();
    for (const auto &[line, way] : dcp.entries()) {
        if (way >= geom.ways) {
            auditor.fail("dcp-way-range",
                         "line %llx: way %u out of range (ways=%u)",
                         static_cast<unsigned long long>(line), way,
                         geom.ways);
            continue;
        }
        const auto ref = core::LineRef::make(line, geom);
        if (!tags.valid(ref.set, way)
            || tags.tag(ref.set, way) != ref.tag) {
            auditor.fail("dcp-coherence",
                         "line %llx: directory says way %u of set "
                         "%llu, but that way holds %s tag %llx",
                         static_cast<unsigned long long>(line), way,
                         static_cast<unsigned long long>(ref.set),
                         tags.valid(ref.set, way) ? "valid"
                                                  : "invalid",
                         static_cast<unsigned long long>(
                             tags.tag(ref.set, way)));
        }
    }
}

void
auditDcpForward(const DcpDirectory &dcp, const TagStore &tags,
                InvariantAuditor &auditor, std::uint64_t firstSet,
                std::uint64_t lastSet)
{
    const core::CacheGeometry &geom = tags.geometry();
    for (std::uint64_t set = firstSet; set < lastSet; ++set) {
        if (!tags.setPossiblyOccupied(set))
            continue;
        for (unsigned way = 0; way < geom.ways; ++way) {
            if (!tags.valid(set, way))
                continue;
            const LineAddr line = tags.lineAt(set, way);
            const auto recorded = dcp.lookup(line);
            if (recorded && *recorded != way) {
                auditor.fail(
                    "dcp-coherence",
                    "line %llx: directory says way %u, but set %llu "
                    "holds it in way %u",
                    static_cast<unsigned long long>(line), *recorded,
                    static_cast<unsigned long long>(set), way);
            }
        }
    }
}

void
auditCaSlotRange(const TagStore &tags, const DcpDirectory &dcp,
                 std::uint64_t pairMask, InvariantAuditor &auditor,
                 std::uint64_t firstSlot, std::uint64_t lastSlot)
{
    const std::uint64_t slots = tags.geometry().sets;
    for (std::uint64_t slot = firstSlot; slot < lastSlot; ++slot) {
        if (!tags.setPossiblyOccupied(slot) || !tags.valid(slot, 0))
            continue;
        const LineAddr line = tags.tag(slot, 0);
        const std::uint64_t primary = line & (slots - 1);
        if (slot != primary && slot != (primary ^ pairMask)) {
            auditor.fail(
                "ca-slot",
                "slot %llu holds line %llx whose primary is %llu",
                static_cast<unsigned long long>(slot),
                static_cast<unsigned long long>(line),
                static_cast<unsigned long long>(primary));
        }
        const auto sel = dcp.lookup(line);
        if (sel && *sel > 1) {
            auditor.fail("dcp-way-range",
                         "line %llx: CA slot selector %u not 0/1",
                         static_cast<unsigned long long>(line), *sel);
        } else if (sel
                   && (*sel == 0 ? primary : primary ^ pairMask)
                          != slot) {
            auditor.fail(
                "dcp-coherence",
                "line %llx: directory selector %u resolves to slot "
                "%llu, but slot %llu holds it",
                static_cast<unsigned long long>(line), *sel,
                static_cast<unsigned long long>(
                    *sel == 0 ? primary : primary ^ pairMask),
                static_cast<unsigned long long>(slot));
        }
    }
}

void
auditCaDcpReverse(const TagStore &tags, const DcpDirectory &dcp,
                  std::uint64_t pairMask, InvariantAuditor &auditor)
{
    const std::uint64_t slots = tags.geometry().sets;
    for (const auto &[line, sel] : dcp.entries()) {
        if (sel > 1) {
            auditor.fail("dcp-way-range",
                         "line %llx: CA slot selector %u not 0/1",
                         static_cast<unsigned long long>(line), sel);
            continue;
        }
        const std::uint64_t primary = line & (slots - 1);
        const std::uint64_t slot =
            sel == 0 ? primary : primary ^ pairMask;
        if (!(tags.valid(slot, 0) && tags.tag(slot, 0) == line)) {
            auditor.fail(
                "dcp-coherence",
                "line %llx: directory says slot %llu, which does "
                "not hold it",
                static_cast<unsigned long long>(line),
                static_cast<unsigned long long>(slot));
        }
    }
}

void
auditStats(const DramCacheStats &stats, InvariantAuditor &auditor)
{
    if (stats.wayPrediction.total() != stats.readHits.hits()) {
        auditor.fail("stats-way-prediction",
                     "way prediction sampled %llu times over %llu "
                     "read hits",
                     static_cast<unsigned long long>(
                         stats.wayPrediction.total()),
                     static_cast<unsigned long long>(
                         stats.readHits.hits()));
    }
    if (stats.nvmReads.value() != stats.readHits.misses()) {
        auditor.fail("stats-miss-fills",
                     "%llu NVM reads for %llu read misses",
                     static_cast<unsigned long long>(
                         stats.nvmReads.value()),
                     static_cast<unsigned long long>(
                         stats.readHits.misses()));
    }
    if (stats.probesPerRead.count() != stats.readHits.total()) {
        auditor.fail("stats-probe-samples",
                     "probe count sampled %llu times over %llu reads",
                     static_cast<unsigned long long>(
                         stats.probesPerRead.count()),
                     static_cast<unsigned long long>(
                         stats.readHits.total()));
    }
    if (stats.readHitLatency.count() + stats.readMissLatency.count()
        > stats.readHits.total()) {
        auditor.fail("stats-latency-samples",
                     "%llu latency samples exceed %llu reads",
                     static_cast<unsigned long long>(
                         stats.readHitLatency.count()
                         + stats.readMissLatency.count()),
                     static_cast<unsigned long long>(
                         stats.readHits.total()));
    }
}

} // namespace accord::dramcache

/**
 * @file
 * The pure lookup-decision core of the DRAM cache.
 *
 * Given a line, a tag-store view, the way policy, and the lookup mode,
 * planLookup() produces a side-effect-free AccessPlan: which array
 * slots to probe, in what order, with what issue shape, and what each
 * outcome costs in line transfers.  Both the untimed warm shell and
 * the timed transaction engine execute the SAME plan, so the
 * functional and timed paths cannot diverge by construction — the
 * drift the old duplicated `switch (params.lookup)` blocks allowed.
 *
 * This header owns the probe-count bound: every probe sequence fits in
 * kMaxWays steps, and geometries are validated against it at
 * construction instead of each caller re-declaring the magic array.
 */

#ifndef ACCORD_DRAMCACHE_ACCESS_PLAN_HPP
#define ACCORD_DRAMCACHE_ACCESS_PLAN_HPP

#include <array>
#include <cstdint>

#include "core/way_policy.hpp"
#include "dramcache/tag_store.hpp"

namespace accord::dramcache
{

enum class LookupMode;

/** Hard upper bound on probes per access (and ways per set). */
inline constexpr unsigned kMaxWays = 64;

/** How the probes of a plan go to the device. */
enum class IssueShape
{
    /** One probe at a time; each checks live tags before the next. */
    Chained,

    /** All probes issued at once; hit position fixed at issue. */
    Broadside,

    /** One magic probe resolves hit and miss alike (Ideal bound). */
    Single,
};

/** One array slot a lookup may touch. */
struct ProbeStep
{
    /** Array set (a CA plan probes two different slots). */
    std::uint64_t set = 0;

    /** Way within the set. */
    unsigned way = 0;

    /** Tag value that means "hit" at this slot. */
    std::uint64_t matchTag = 0;

    /** Way argument for trace points (CA reports the slot index). */
    unsigned traceWay = 0;
};

/** Where a plan's probes found the line. */
struct HitLocation
{
    /** Probe index of the hit, or -1 when the line is absent. */
    int index = -1;

    /** Way holding the line (valid when index >= 0). */
    unsigned way = 0;
};

/**
 * A side-effect-free lookup decision: probe sequence plus the
 * transfer accounting both execution shells share.
 */
struct AccessPlan
{
    core::LineRef ref;
    IssueShape shape = IssueShape::Chained;
    std::array<ProbeStep, kMaxWays> probes{};
    unsigned probeCount = 0;

    /** Line transfers a hit at probe index `index` costs. */
    unsigned
    hitTransfers(unsigned index) const
    {
        switch (shape) {
          case IssueShape::Broadside: return probeCount;
          case IssueShape::Single: return 1;
          case IssueShape::Chained: break;
        }
        return index + 1;
    }

    /** Line transfers a miss costs (full confirmation sweep). */
    unsigned
    missTransfers() const
    {
        return shape == IssueShape::Single ? 1 : probeCount;
    }

    /** Whether a hit at probe index `index` counts as predicted. */
    static bool
    predictedAt(unsigned index)
    {
        return index == 0;
    }
};

/** True when the tag store currently holds the step's line. */
inline bool
stepHits(const ProbeStep &step, const TagStore &tags)
{
    return tags.valid(step.set, step.way)
        && tags.tag(step.set, step.way) == step.matchTag;
}

/**
 * Resolve a plan against the current tag state.  Chained and
 * Broadside plans scan their probe sequence; a Single plan consults
 * the tag store directly (the magic probe sees the whole set).
 */
HitLocation resolve(const AccessPlan &plan, const TagStore &tags);

/**
 * Plan a set-associative lookup: probe order (predicted way first,
 * then the remaining policy candidates) plus the issue shape and
 * transfer accounting of `mode`.  This function is the ONE place that
 * dispatches on LookupMode.
 */
AccessPlan planLookup(const core::LineRef &ref, core::WayPolicy *policy,
                      const core::CacheGeometry &geom, LookupMode mode);

/**
 * Plan a set-associative locate sweep (writeback routing without DCP
 * way bits): always chained over the full candidate order, regardless
 * of the demand-lookup mode.
 */
AccessPlan planLocate(const core::LineRef &ref, core::WayPolicy *policy,
                      const core::CacheGeometry &geom);

/**
 * Plan a column-associative lookup: primary slot then its pair slot,
 * chained, with full line addresses as match tags.
 */
AccessPlan planCaLookup(LineAddr line, std::uint64_t primary,
                        std::uint64_t secondary);

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_ACCESS_PLAN_HPP

// DcpDirectory is header-only; this translation unit anchors the
// library component list.
#include "dramcache/dcp.hpp"

/**
 * @file
 * Mapping of cache sets onto the stacked-DRAM array.
 *
 * All ways of a set are consecutive tag+data units inside one row
 * buffer (Fig 2b), so serial second probes and SWS miss confirmation
 * usually hit an open row.  Consecutive sets stripe across channels so
 * a spatial region exercises all channels.
 */

#ifndef ACCORD_DRAMCACHE_LAYOUT_HPP
#define ACCORD_DRAMCACHE_LAYOUT_HPP

#include "core/way_policy.hpp"
#include "dram/mem_op.hpp"
#include "dram/timing.hpp"

namespace accord::dramcache
{

/** How a set's ways are placed in the array. */
enum class LayoutMode
{
    /**
     * All ways of a set in one row buffer (the paper's design,
     * Fig 2b / Section VII): second probes and SWS confirmation are
     * row-buffer hits.
     */
    RowCoLocated,

    /**
     * Ablation: ways striped across channels/banks like independent
     * lines.  Probes of one set spread out (more bank parallelism)
     * but the second probe opens a new row.
     */
    WayStriped,
};

/** Set/way -> (channel, bank, row) mapping for the DRAM cache array. */
class CacheLayout
{
  public:
    CacheLayout(const core::CacheGeometry &geom,
                const dram::TimingParams &timing,
                LayoutMode mode = LayoutMode::RowCoLocated);

    /** Physical coordinates of one way of a set. */
    dram::PhysLoc locate(std::uint64_t set, unsigned way = 0) const;

    /** Sets that share one DRAM row (RowCoLocated mode). */
    std::uint64_t setsPerRow() const { return sets_per_row; }

    LayoutMode mode() const { return mode_; }

  private:
    LayoutMode mode_;
    unsigned ways;
    std::uint64_t sets_per_row;
    unsigned channel_bits;
    unsigned bank_bits;
    unsigned sets_per_row_bits;
    std::uint64_t lines_per_row = 1;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_LAYOUT_HPP

/**
 * @file
 * The Organization strategy interface of the DRAM cache.
 *
 * An Organization decides WHERE lines live and WHAT state changes on
 * each outcome: probe placement (via the access-plan core), hit
 * bookkeeping (policy feedback, replacement state, DCP updates),
 * install/eviction, and writeback routing.  The controller keeps the
 * WHEN: event scheduling, device issue, tracing, and latency stats.
 *
 * Concrete strategies (set-associative, column-associative, or any
 * new organization) register themselves by name in
 * organizationRegistry(); the controller constructs whichever one the
 * config names, so adding an organization never touches the
 * controller or the plan core.
 */

#ifndef ACCORD_DRAMCACHE_ORGANIZATION_HPP
#define ACCORD_DRAMCACHE_ORGANIZATION_HPP

#include <functional>
#include <memory>
#include <string>

#include "common/invariant_auditor.hpp"
#include "common/trace_event/trace_event.hpp"
#include "core/factory.hpp"
#include "core/way_policy.hpp"
#include "dram/mem_op.hpp"
#include "dramcache/access_plan.hpp"
#include "dramcache/dcp.hpp"
#include "dramcache/params.hpp"
#include "dramcache/tag_store.hpp"

namespace accord::dramcache
{

/**
 * Timed-device services the controller lends its organization:
 * everything an install or swap needs to mirror functional state
 * changes onto the stacked-DRAM array and the NVM below it.  The
 * functional path never calls these (timed == false everywhere).
 */
class OrgServices
{
  public:
    /** Issue a timed read/write of one way unit of a set. */
    virtual void cacheOp(std::uint64_t set, unsigned way, bool is_write,
                         dram::MemCallback on_complete = {},
                         bool priority = false,
                         trace_event::TxnId txn = trace_event::kNoTxn)
        = 0;

    /** Timed line write to the NVM main memory. */
    virtual void nvmWrite(LineAddr line, dram::MemCallback on_complete,
                          trace_event::TxnId txn)
        = 0;

    /**
     * Start a posted Fill trace transaction (kNoTxn when the parent
     * read is untraced) and return a completion-callback factory:
     * each call registers one member op, and the transaction
     * completes when the last member finishes.
     */
    virtual std::function<dram::MemCallback()>
    beginFillGroup(trace_event::TxnId parent, LineAddr line,
                   trace_event::TxnId &fill_txn)
        = 0;

  protected:
    ~OrgServices() = default;
};

/** Shared state an organization operates on, owned by the controller. */
struct OrgContext
{
    const DramCacheParams &params;
    const core::CacheGeometry &geom;
    TagStore &tags;
    DcpDirectory &dcp;
    DramCacheStats &stats;
    core::WayPolicy *policy;
    OrgServices &services;
};

/** One resolved read hit, as the engine reports it to the strategy. */
struct HitContext
{
    LineAddr line = 0;
    std::uint64_t set = 0;
    unsigned way = 0;
    unsigned probeIndex = 0;
    bool timed = false;
    trace_event::TxnId trace = trace_event::kNoTxn;
};

/** Where a DCP entry routes a writeback. */
struct DcpTarget
{
    std::uint64_t set = 0;
    unsigned way = 0;
    bool present = false;
};

/** A cache organization strategy (set-assoc, CA, ...). */
class OrgStrategy
{
  public:
    explicit OrgStrategy(const OrgContext &ctx) : ctx_(ctx) {}
    virtual ~OrgStrategy() = default;

    OrgStrategy(const OrgStrategy &) = delete;
    OrgStrategy &operator=(const OrgStrategy &) = delete;

    /** Lookup plan for a demand read of `line`. */
    virtual AccessPlan planRead(LineAddr line) = 0;

    /**
     * Probe plan for locating `line` on a writeback without DCP way
     * bits: always a chained sweep, independent of the lookup mode.
     */
    virtual AccessPlan planDemandLocate(LineAddr line) = 0;

    /**
     * A read hit resolved: update policy feedback, replacement state,
     * and the DCP.  Runs before the engine completes the transaction.
     */
    virtual void onReadHit(const HitContext &hit) = 0;

    /**
     * Post-completion hit work off the critical path (the CA-cache
     * swap-to-primary).  Runs after the demand read's callback.
     */
    virtual void afterReadHit(const HitContext &hit) { (void)hit; }

    /** A read miss confirmed (policy feedback). */
    virtual void onReadMiss(const core::LineRef &ref) { (void)ref; }

    /**
     * Install `line` after a confirmed miss: functional tag/DCP/stat
     * updates always; array writes and victim writebacks mirrored on
     * the devices when `timed`.
     */
    virtual void installAfterMiss(LineAddr line, bool timed,
                                  trace_event::TxnId parent)
        = 0;

    /** Resolve a DCP entry's way/slot selector for writeback routing. */
    virtual DcpTarget dcpTarget(LineAddr line, unsigned selector) const
        = 0;

    /**
     * Organization-specific invariants over sets [firstSet, lastSet)
     * — the bounded slice the periodic self-audit rotates.
     */
    virtual void auditRange(InvariantAuditor &auditor,
                            std::uint64_t firstSet,
                            std::uint64_t lastSet) const
    {
        (void)auditor;
        (void)firstSet;
        (void)lastSet;
    }

    /** Full-sweep invariants (adds global checks auditRange cannot see). */
    virtual void auditFull(InvariantAuditor &auditor) const
    {
        auditRange(auditor, 0, ctx_.geom.sets);
    }

    /**
     * Host bytes backing organization-private per-set state beyond
     * the shared tag store (e.g. the LRU-ablation recency stamps).
     */
    virtual std::uint64_t residentStateBytes() const { return 0; }

    /** Short human description ("dm", "2-way pws+gws predicted"). */
    virtual std::string describe() const = 0;

  protected:
    OrgContext ctx_;
};

/** Name-keyed constructor pair for one organization. */
struct OrgFactory
{
    /** Array geometry this organization imposes on the params. */
    std::function<core::CacheGeometry(const DramCacheParams &)> geometry;

    /** Build the strategy over the controller's shared state. */
    std::function<std::unique_ptr<OrgStrategy>(const OrgContext &)> make;
};

/** The process-wide organization registry. */
core::NamedRegistry<OrgFactory> &organizationRegistry();

/**
 * Ensure the built-in organizations ("set_assoc", "ca") are
 * registered.  Idempotent; the controller calls it before resolving
 * its factory so registration order never matters.
 */
void registerBuiltinOrganizations();

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_ORGANIZATION_HPP

/**
 * @file
 * Functional tag array of the DRAM cache.
 *
 * In the modeled hardware the tags live in unused ECC bits next to the
 * data (KNL-style, Section II-A), so every tag check costs a DRAM line
 * transfer — the timing side charges those.  This class is the
 * simulator's functional mirror of that in-DRAM state.
 *
 * Storage is a struct-of-arrays pair of PagedColumn columns (tags and
 * flags) behind the StateBackend knob: dense for bench-scale runs,
 * lazily-paged for gigascale ones.  Untouched slots read as invalid in
 * both backends, so results are byte-identical across them.
 */

#ifndef ACCORD_DRAMCACHE_TAG_STORE_HPP
#define ACCORD_DRAMCACHE_TAG_STORE_HPP

#include <cstdint>

#include "common/log.hpp"
#include "common/paged_table.hpp"
#include "core/way_policy.hpp"
#include "dramcache/enums.hpp"

namespace accord::dramcache
{

/** Tag/dirty/valid state of every line slot in the cache. */
class TagStore
{
  public:
    /** What install() displaced. */
    struct Victim
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
    };

    explicit TagStore(const core::CacheGeometry &geom,
                      StateBackend backend = StateBackend::Auto);

    /** Way holding the tag in the set, or -1 if absent. */
    int findWay(std::uint64_t set, std::uint64_t tag) const;

    bool valid(std::uint64_t set, unsigned way) const
        { return (flags.read(index(set, way)) & flagValid) != 0; }
    bool dirty(std::uint64_t set, unsigned way) const
        { return (flags.read(index(set, way)) & flagDirty) != 0; }
    std::uint64_t tag(std::uint64_t set, unsigned way) const
        { return tags.read(index(set, way)); }

    /** Install a tag into a way, returning the displaced victim. */
    Victim install(std::uint64_t set, unsigned way, std::uint64_t tag,
                   bool dirty);

    /** Mark a resident way dirty (writeback hit). */
    void markDirty(std::uint64_t set, unsigned way);

    /** Drop a way's line. */
    void invalidate(std::uint64_t set, unsigned way);

    /** Valid lines currently held (for tests/occupancy checks). */
    std::uint64_t occupancy() const;

    const core::CacheGeometry &geometry() const { return geom; }

    /** Storage mode the backend knob resolved to. */
    StorageMode storageMode() const { return flags.mode(); }

    /** Host bytes currently backing the tag/flag columns. */
    std::uint64_t
    residentStateBytes() const
    {
        return tags.residentBytes() + flags.residentBytes();
    }

    /**
     * True unless every slot of the set is on a never-written page
     * (then all its ways read invalid).  Audit sweeps skip such sets.
     */
    bool
    setPossiblyOccupied(std::uint64_t set) const
    {
        const std::uint64_t first = set * geom.ways;
        return flags.nextResidentSlot(first) < first + geom.ways;
    }

    /** Reconstruct the full line address stored in a way. */
    LineAddr
    lineAt(std::uint64_t set, unsigned way) const
    {
        return (tag(set, way) << geom.setBits()) | set;
    }

  private:
    static constexpr std::uint8_t flagValid = 1;
    static constexpr std::uint8_t flagDirty = 2;

    std::uint64_t
    index(std::uint64_t set, unsigned way) const
    {
        ACCORD_CHECK(set < geom.sets && way < geom.ways,
                     "set %llu way %u outside %llu x %u geometry",
                     static_cast<unsigned long long>(set), way,
                     static_cast<unsigned long long>(geom.sets),
                     geom.ways);
        return set * geom.ways + way;
    }

    core::CacheGeometry geom;
    PagedColumn<std::uint64_t> tags;
    PagedColumn<std::uint8_t> flags;
    std::uint64_t occupancy_ = 0;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_TAG_STORE_HPP

#include "dramcache/access_plan.hpp"

#include <bit>

#include "common/log.hpp"
#include "dramcache/enums.hpp"

namespace accord::dramcache
{

namespace
{

/**
 * Candidate probe order for a set-associative line: the predicted way
 * first, then the remaining candidate ways ascending.
 */
unsigned
probeOrder(const core::LineRef &ref, core::WayPolicy *policy,
           const core::CacheGeometry &geom,
           std::array<unsigned, kMaxWays> &order)
{
    if (geom.ways == 1) {
        order[0] = 0;
        return 1;
    }

    std::uint64_t mask =
        policy ? policy->candidates(ref) : geom.allWaysMask();
    unsigned first;
    if (policy) {
        first = policy->predict(ref);
        if (!(mask & (std::uint64_t{1} << first))) {
            // A prediction outside the candidate set cannot be probed;
            // fall back to the lowest candidate.
            first = static_cast<unsigned>(std::countr_zero(mask));
        }
    } else {
        first = static_cast<unsigned>(std::countr_zero(mask));
    }

    unsigned count = 0;
    order[count++] = first;
    mask &= ~(std::uint64_t{1} << first);
    while (mask != 0) {
        const unsigned way =
            static_cast<unsigned>(std::countr_zero(mask));
        order[count++] = way;
        mask &= mask - 1;
    }
    return count;
}

/** Fill a set-associative plan's probe steps from a way order. */
void
fillSteps(AccessPlan &plan, const std::array<unsigned, kMaxWays> &order,
          unsigned count)
{
    plan.probeCount = count;
    for (unsigned i = 0; i < count; ++i) {
        plan.probes[i].set = plan.ref.set;
        plan.probes[i].way = order[i];
        plan.probes[i].matchTag = plan.ref.tag;
        plan.probes[i].traceWay = order[i];
    }
}

} // namespace

HitLocation
resolve(const AccessPlan &plan, const TagStore &tags)
{
    HitLocation loc;
    if (plan.shape == IssueShape::Single) {
        // The magic probe sees the whole set, wherever the line sits.
        const int way = tags.findWay(plan.ref.set, plan.ref.tag);
        if (way >= 0) {
            loc.index = 0;
            loc.way = static_cast<unsigned>(way);
        }
        return loc;
    }
    for (unsigned i = 0; i < plan.probeCount; ++i) {
        if (stepHits(plan.probes[i], tags)) {
            loc.index = static_cast<int>(i);
            loc.way = plan.probes[i].way;
            return loc;
        }
    }
    return loc;
}

AccessPlan
planLookup(const core::LineRef &ref, core::WayPolicy *policy,
           const core::CacheGeometry &geom, LookupMode mode)
{
    ACCORD_ASSERT(geom.ways <= kMaxWays,
                  "geometry exceeds the plan-core way bound");
    AccessPlan plan;
    plan.ref = ref;

    std::array<unsigned, kMaxWays> order;
    const unsigned count = probeOrder(ref, policy, geom, order);

    switch (mode) {
      case LookupMode::Serial:
      case LookupMode::Predicted:
        // Both probe one way at a time in candidate order; Predicted
        // differs only in how the policy picked the first way.
        plan.shape = IssueShape::Chained;
        fillSteps(plan, order, count);
        break;
      case LookupMode::Parallel:
        plan.shape = IssueShape::Broadside;
        fillSteps(plan, order, count);
        break;
      case LookupMode::Ideal:
        plan.shape = IssueShape::Single;
        plan.probeCount = 1;
        plan.probes[0].set = ref.set;
        plan.probes[0].way = 0;
        plan.probes[0].matchTag = ref.tag;
        plan.probes[0].traceWay = 0;
        break;
    }
    return plan;
}

AccessPlan
planLocate(const core::LineRef &ref, core::WayPolicy *policy,
           const core::CacheGeometry &geom)
{
    ACCORD_ASSERT(geom.ways <= kMaxWays,
                  "geometry exceeds the plan-core way bound");
    AccessPlan plan;
    plan.ref = ref;
    plan.shape = IssueShape::Chained;
    std::array<unsigned, kMaxWays> order;
    const unsigned count = probeOrder(ref, policy, geom, order);
    fillSteps(plan, order, count);
    return plan;
}

AccessPlan
planCaLookup(LineAddr line, std::uint64_t primary,
             std::uint64_t secondary)
{
    AccessPlan plan;
    // CA slots index a ways==1 geometry: set = slot, tag = full line.
    plan.ref.line = line;
    plan.ref.set = primary;
    plan.ref.tag = line;
    plan.shape = IssueShape::Chained;
    plan.probeCount = 2;
    plan.probes[0] = {primary, 0, line, 0};
    plan.probes[1] = {secondary, 0, line, 1};
    return plan;
}

} // namespace accord::dramcache

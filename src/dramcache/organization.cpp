#include "dramcache/organization.hpp"

#include "dramcache/enums.hpp"
#include "dramcache/org_colassoc.hpp"
#include "dramcache/org_setassoc.hpp"

namespace accord::dramcache
{

core::NamedRegistry<OrgFactory> &
organizationRegistry()
{
    static core::NamedRegistry<OrgFactory> registry;
    return registry;
}

void
registerBuiltinOrganizations()
{
    // Explicit and idempotent rather than static-initializer magic:
    // the controller calls this before resolving its factory, so
    // builtins exist regardless of link order, and user-registered
    // organizations can never race them.
    static bool done = false;
    if (done)
        return;
    done = true;

    organizationRegistry().add(
        toToken(Organization::SetAssoc),
        {&SetAssocOrg::geometryFor, [](const OrgContext &ctx) {
             return std::unique_ptr<OrgStrategy>(
                 std::make_unique<SetAssocOrg>(ctx));
         }});
    organizationRegistry().add(
        toToken(Organization::ColumnAssoc),
        {&ColAssocOrg::geometryFor, [](const OrgContext &ctx) {
             return std::unique_ptr<OrgStrategy>(
                 std::make_unique<ColAssocOrg>(ctx));
         }});
}

} // namespace accord::dramcache

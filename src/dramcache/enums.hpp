/**
 * @file
 * DRAM-cache organization enums and their canonical string tokens.
 *
 * The token functions here are the single source of truth for every
 * enum <-> string rendering in the simulator: describe() strings,
 * canonical run-report config specs, and the name-keyed organization
 * factory all share them, so a new mode added here is automatically
 * spelled the same everywhere.
 */

#ifndef ACCORD_DRAMCACHE_ENUMS_HPP
#define ACCORD_DRAMCACHE_ENUMS_HPP

#include <cstdint>
#include <string>

#include "dramcache/layout.hpp"

namespace accord
{
enum class StorageMode : std::uint8_t;
} // namespace accord

namespace accord::dramcache
{

/** How lookups locate a line within a set (Section II-C). */
enum class LookupMode
{
    Serial,     ///< probe ways one by one in a fixed order
    Parallel,   ///< stream all candidate ways per access
    Predicted,  ///< probe the predicted way first, then the rest
    Ideal,      ///< magic 1-transfer hit AND miss (Fig 1c bound)
};

/** Overall array organization. */
enum class Organization
{
    SetAssoc,       ///< ways==1 gives the direct-mapped baseline
    ColumnAssoc,    ///< hash-rehash with swap-to-primary (CA-cache)
};

/** Victim selection when no way policy steers installs. */
enum class L4Replacement
{
    /** Update-free random replacement (the paper's choice, II-B4). */
    Random,

    /**
     * True LRU.  Because the replacement state lives with the tags in
     * DRAM, every hit pays an extra line write to update it — the
     * paper's footnote 2 measures this costing ~9% vs random.
     */
    Lru,
};

/**
 * Backend for per-set cache state (tag store, predictor tables, LRU
 * stamps) — see common/paged_table.hpp.  Auto resolves by geometry:
 * dense below the paged-storage threshold, paged above it, so 1/128
 * bench runs stay dense while full-gigascale runs page lazily.
 */
enum class StateBackend
{
    Dense,  ///< eager dense vectors (the historical representation)
    Paged,  ///< lazily-materialized fixed-size pages
    Auto,   ///< pick by table size (autoStorageMode)
};

/** Canonical token ("serial", "parallel", "predicted", "ideal"). */
const char *toToken(LookupMode mode);

/** Canonical token ("set_assoc", "ca"). */
const char *toToken(Organization org);

/** Canonical token ("random", "lru"). */
const char *toToken(L4Replacement repl);

/** Canonical token ("row_co_located", "way_striped"). */
const char *toToken(LayoutMode layout);

/** Canonical token ("dense", "paged", "auto"). */
const char *toToken(StateBackend backend);

/** Inverse of toToken(); fatal() on an unknown token. */
LookupMode lookupModeFromToken(const std::string &token);
Organization organizationFromToken(const std::string &token);
L4Replacement replacementFromToken(const std::string &token);
LayoutMode layoutModeFromToken(const std::string &token);
StateBackend stateBackendFromToken(const std::string &token);

/** Concrete storage mode for a table of `slots` under `backend`. */
StorageMode resolveStorageMode(StateBackend backend,
                               std::uint64_t slots);

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_ENUMS_HPP

/**
 * @file
 * DRAM-Cache-Presence directory (DCP + way bits).
 *
 * The paper keeps a presence bit per L3 line, extended with the
 * resident way, so writebacks can go straight to the right way without
 * a probe (Section II-B3).  This directory models that metadata: it is
 * written by the L4 controller whenever it returns or installs a line
 * (i.e. whenever the L3 would fill) and erased when the L4 evicts.
 */

#ifndef ACCORD_DRAMCACHE_DCP_HPP
#define ACCORD_DRAMCACHE_DCP_HPP

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/paged_table.hpp"
#include "common/types.hpp"

namespace accord::dramcache
{

/**
 * line -> resident-way directory for writeback routing.
 *
 * Backed by the sparse paged map of the storage layer: line addresses
 * span the whole PCM address space, so entries live in lazily
 * materialized fixed-size pages rather than a per-key hash table.
 * Iteration order is deterministic by construction (pages are ordered
 * by key), so entries() needs no post-sort quarantine.
 */
class DcpDirectory
{
  public:
    /** Resident way of the line, if the cache holds it. */
    std::optional<unsigned>
    lookup(LineAddr line) const
    {
        return map.lookup(line);
    }

    /** Record that `line` now resides in `way`. */
    void record(LineAddr line, unsigned way) { map.record(line, way); }

    /** The cache evicted `line`. */
    void erase(LineAddr line) { map.erase(line); }

    std::size_t size() const
        { return static_cast<std::size_t>(map.size()); }

    /** All (line, way) entries, sorted by line address. */
    std::vector<std::pair<LineAddr, unsigned>>
    entries() const
    {
        return map.entries();
    }

    /** Host bytes currently backing directory pages. */
    std::uint64_t residentBytes() const { return map.residentBytes(); }

  private:
    SparsePagedMap map;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_DCP_HPP

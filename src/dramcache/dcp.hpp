/**
 * @file
 * DRAM-Cache-Presence directory (DCP + way bits).
 *
 * The paper keeps a presence bit per L3 line, extended with the
 * resident way, so writebacks can go straight to the right way without
 * a probe (Section II-B3).  This directory models that metadata: it is
 * written by the L4 controller whenever it returns or installs a line
 * (i.e. whenever the L3 would fill) and erased when the L4 evicts.
 */

#ifndef ACCORD_DRAMCACHE_DCP_HPP
#define ACCORD_DRAMCACHE_DCP_HPP

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace accord::dramcache
{

/** line -> resident-way directory for writeback routing. */
class DcpDirectory
{
  public:
    /** Resident way of the line, if the cache holds it. */
    std::optional<unsigned>
    lookup(LineAddr line) const
    {
        const auto it = map.find(line);
        if (it == map.end())
            return std::nullopt;
        return it->second;
    }

    /** Record that `line` now resides in `way`. */
    void
    record(LineAddr line, unsigned way)
    {
        map[line] = static_cast<std::uint8_t>(way);
    }

    /** The cache evicted `line`. */
    void erase(LineAddr line) { map.erase(line); }

    std::size_t size() const { return map.size(); }

    /**
     * All (line, way) entries, sorted by line address.  This is the
     * only way directory contents escape the hash table, so hash
     * layout can never reach stats, logs, or audit reports.
     */
    std::vector<std::pair<LineAddr, unsigned>>
    entries() const
    {
        std::vector<std::pair<LineAddr, unsigned>> out;
        out.reserve(map.size());
        // Hash-order iteration is safe here: entries are sorted below
        // before they become visible to any caller, so the AST-grade
        // unordered-iteration rule stays silent without an allow.
        for (const auto &entry : map)
            out.emplace_back(entry.first, entry.second);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    // The hot lookup/record path keeps the hash map; iteration order
    // is quarantined behind the sorting entries() accessor above.
    std::unordered_map<LineAddr, std::uint8_t> map;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_DCP_HPP

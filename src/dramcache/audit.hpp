/**
 * @file
 * Cross-structure invariant audits for the DRAM-cache model.
 *
 * These free functions check the consistency rules that tie the tag
 * store, the way-steering policy, the DCP directory, and the
 * controller's statistics together — the metadata whose silent
 * corruption would skew reported hit rates without failing any
 * end-to-end test.  DramCacheController::audit() composes them over a
 * live controller; unit tests call them directly on deliberately
 * corrupted standalone state.
 */

#ifndef ACCORD_DRAMCACHE_AUDIT_HPP
#define ACCORD_DRAMCACHE_AUDIT_HPP

#include "common/invariant_auditor.hpp"
#include "core/way_policy.hpp"
#include "dramcache/dcp.hpp"
#include "dramcache/tag_store.hpp"

namespace accord::dramcache
{

struct DramCacheStats;

/**
 * Tag-store internal consistency: the occupancy counter matches a
 * recount of the valid flags, and no set holds the same tag in two
 * ways (a duplicate line would make hits way-order dependent).
 */
void auditTagStore(const TagStore &tags, InvariantAuditor &auditor);

/**
 * Per-set half of auditTagStore over sets [firstSet, lastSet): the
 * dirty-but-invalid and duplicate-tag checks.  Returns the number of
 * valid entries seen so a full sweep can recount occupancy.  The
 * bounded range is what lets the controller's periodic self-audit
 * rotate through a gigascale array a slice at a time.
 */
std::uint64_t auditTagStoreRange(const TagStore &tags,
                                 InvariantAuditor &auditor,
                                 std::uint64_t firstSet,
                                 std::uint64_t lastSet);

/**
 * Way-steering placement legality: every valid line resides in a way
 * its policy allows — for SWS, the preferred way or one of the k-1
 * tag-hashed alternates (paper Section V-A).
 */
void auditPlacement(const TagStore &tags, const core::WayPolicy &policy,
                    InvariantAuditor &auditor);

/** auditPlacement restricted to sets [firstSet, lastSet). */
void auditPlacementRange(const TagStore &tags,
                         const core::WayPolicy &policy,
                         InvariantAuditor &auditor,
                         std::uint64_t firstSet, std::uint64_t lastSet);

/**
 * DCP coherence: every directory entry names a way that actually
 * holds the line.  A stale entry would route a writeback's dirty data
 * into the wrong way (set-associative organizations only; the
 * column-associative slot encoding is audited by the controller).
 */
void auditDcp(const DcpDirectory &dcp, const TagStore &tags,
              InvariantAuditor &auditor);

/**
 * Forward-direction DCP check over sets [firstSet, lastSet): every
 * resident line with a directory entry must be recorded under the way
 * that holds it.  Unlike auditDcp this never materializes the full
 * directory, so its cost is bounded by the set range — the periodic
 * self-audit uses it; stale entries for evicted lines are only caught
 * by the full auditDcp sweep.
 */
void auditDcpForward(const DcpDirectory &dcp, const TagStore &tags,
                     InvariantAuditor &auditor, std::uint64_t firstSet,
                     std::uint64_t lastSet);

/**
 * Column-associative layout consistency over slots
 * [firstSlot, lastSlot): each resident line (CA tags are full line
 * addresses) must sit in its primary slot (line & (slots-1)) or that
 * slot's pair (primary ^ pairMask), and any DCP entry's 0/1 slot
 * selector must resolve to the slot actually holding it.
 */
void auditCaSlotRange(const TagStore &tags, const DcpDirectory &dcp,
                      std::uint64_t pairMask, InvariantAuditor &auditor,
                      std::uint64_t firstSlot, std::uint64_t lastSlot);

/**
 * Reverse-direction CA DCP check: stale directory entries for lines no
 * longer resident anywhere, which the forward per-slot check cannot
 * see.  Materializes the full directory, so only the full audit runs
 * it.
 */
void auditCaDcpReverse(const TagStore &tags, const DcpDirectory &dcp,
                       std::uint64_t pairMask,
                       InvariantAuditor &auditor);

/**
 * Stats identities that hold whenever no transaction is in flight:
 * way prediction is sampled exactly once per read hit, every miss
 * reads main memory, and probe counts are sampled once per read.
 */
void auditStats(const DramCacheStats &stats, InvariantAuditor &auditor);

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_AUDIT_HPP

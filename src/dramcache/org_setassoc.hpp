/**
 * @file
 * Set-associative organization (ways==1 is the direct-mapped baseline).
 *
 * Owns everything specific to tag-matched way placement: the probe
 * plans (via the access-plan core), way-policy feedback, steered and
 * unsteered victim selection (random or the LRU-in-DRAM ablation),
 * and install/eviction bookkeeping.
 */

#ifndef ACCORD_DRAMCACHE_ORG_SETASSOC_HPP
#define ACCORD_DRAMCACHE_ORG_SETASSOC_HPP

#include <cstdint>

#include "common/paged_table.hpp"
#include "common/rng.hpp"
#include "dramcache/organization.hpp"

namespace accord::dramcache
{

/**
 * Set-associative / direct-mapped strategy.  Not `final` — registry
 * plug-ins may subclass it (see test_org_registry's ToyOrg) — so the
 * timed engine's devirtualized fast path engages only when the
 * controller proves the dynamic type is exactly SetAssocOrg and then
 * uses qualified (non-virtual, inlinable) calls.
 */
class SetAssocOrg : public OrgStrategy
{
  public:
    explicit SetAssocOrg(const OrgContext &ctx);

    AccessPlan planRead(LineAddr line) override;
    AccessPlan planDemandLocate(LineAddr line) override;
    void onReadHit(const HitContext &hit) override;
    void onReadMiss(const core::LineRef &ref) override;
    void installAfterMiss(LineAddr line, bool timed,
                          trace_event::TxnId parent) override;
    DcpTarget dcpTarget(LineAddr line, unsigned selector) const override;
    void auditRange(InvariantAuditor &auditor, std::uint64_t firstSet,
                    std::uint64_t lastSet) const override;
    void auditFull(InvariantAuditor &auditor) const override;
    std::uint64_t residentStateBytes() const override;
    std::string describe() const override;

    /** Array geometry for the given params (validates ways/sets). */
    static core::CacheGeometry geometryFor(const DramCacheParams &params);

  private:
    /** What an install did, for the timed path to mirror on devices. */
    struct InstallResult
    {
        unsigned way = 0;
        bool victimDirty = false;
        LineAddr victimLine = 0;
    };

    /** Shared install bookkeeping (tag store, policy, DCP, counters). */
    InstallResult installLine(const core::LineRef &ref);

    /** Victim way for an unsteered install (random or LRU). */
    unsigned unsteeredVictim(const core::LineRef &ref);

    /**
     * LRU bookkeeping on a hit: stamps the way and charges the
     * in-DRAM replacement-state write (timed path issues it too).
     */
    void touchReplacement(const core::LineRef &ref, unsigned way,
                          bool timed, trace_event::TxnId txn);

    Rng install_rng;

    /** Per-line recency stamps for the LRU ablation (empty if unused). */
    PagedColumn<std::uint64_t> lru_stamps;
    std::uint64_t lru_clock = 0;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_ORG_SETASSOC_HPP

/**
 * @file
 * DRAM-cache configuration and statistics.
 *
 * Split out of the controller header so the organization strategies
 * and the pure access-plan core can consume them without depending on
 * the timed transaction engine.
 */

#ifndef ACCORD_DRAMCACHE_PARAMS_HPP
#define ACCORD_DRAMCACHE_PARAMS_HPP

#include <cstdint>
#include <string>

#include "common/metrics/registry.hpp"
#include "common/stats.hpp"
#include "dramcache/enums.hpp"
#include "dramcache/layout.hpp"

namespace accord::dramcache
{

/** DRAM cache configuration. */
struct DramCacheParams
{
    std::uint64_t capacityBytes = 256ULL << 20;
    unsigned ways = 1;
    Organization org = Organization::SetAssoc;
    LookupMode lookup = LookupMode::Predicted;

    /**
     * Organization factory key ("set_assoc", "ca", or any name added
     * to organizationRegistry()).  Empty selects the token of `org`,
     * so existing enum-based configs keep working unchanged.
     */
    std::string orgName;

    /** Writebacks carry DCP way bits and skip the probe (II-B3). */
    bool dcpWayBits = true;

    /** Victim selection for unsteered installs (LRU ablation). */
    L4Replacement replacement = L4Replacement::Random;

    /** Way placement in the array (row-co-located vs striped). */
    LayoutMode layout = LayoutMode::RowCoLocated;

    /**
     * Backend for the tag store and the other per-set state tables
     * (common/paged_table.hpp).  Auto resolves per table by size, so
     * results are identical across backends by construction and only
     * the host memory footprint changes.
     */
    StateBackend stateBackend = StateBackend::Auto;

    std::uint64_t seed = 7;

    /**
     * Run an invariant audit every this many demand reads when checks
     * are compiled in (Debug, ACCORD_CHECKS, or sanitizer builds); 0
     * disables the periodic sweep.  Each firing audits a bounded slice
     * of sets (rotating through the whole array over successive
     * firings) so the amortized cost stays O(1) per access even for
     * gigascale caches.  Release builds compile the hook out entirely.
     */
    std::uint32_t auditInterval = 4096;
};

/** Controller statistics. */
struct DramCacheStats
{
    Ratio readHits;

    /** First-probe-correct ratio over read hits. */
    Ratio wayPrediction;

    /** Line transfers on the stacked-DRAM bus. */
    Counter cacheReadTransfers;
    Counter cacheWriteTransfers;

    Counter nvmReads;
    Counter nvmWrites;

    Counter writebacksToCache;
    Counter writebacksToNvm;

    /** Probe transfers spent locating writeback targets (no-DCP mode). */
    Counter writebackProbeTransfers;

    /** Writebacks whose DCP way bits were stale (rare races). */
    Counter dcpStaleWritebacks;

    /** CA-cache swap operations. */
    Counter swaps;

    /** Replacement-state update writes (LRU-in-DRAM ablation). */
    Counter replacementUpdateWrites;

    Average probesPerRead;
    Average readHitLatency;
    Average readMissLatency;

    /** All stacked-DRAM transfers per demand read (bandwidth bloat). */
    double transfersPerRead() const;

    void reset();

    /**
     * Register every member under `prefix`: lookup + way_prediction
     * (Ratio), the transfer/writeback counters, the latency/probe
     * averages, and a transfers_per_read gauge.
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_PARAMS_HPP

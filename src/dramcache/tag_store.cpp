#include "dramcache/tag_store.hpp"

#include "common/log.hpp"

namespace accord::dramcache
{

TagStore::TagStore(const core::CacheGeometry &geom, StateBackend backend)
    : geom(geom)
{
    const StorageMode mode = resolveStorageMode(backend, geom.lines());
    tags.reset(geom.lines(), mode, 0);
    flags.reset(geom.lines(), mode, 0);
}

int
TagStore::findWay(std::uint64_t set, std::uint64_t tag) const
{
    for (unsigned way = 0; way < geom.ways; ++way) {
        const std::uint64_t i = index(set, way);
        if ((flags.read(i) & flagValid) && tags.read(i) == tag)
            return static_cast<int>(way);
    }
    return -1;
}

TagStore::Victim
TagStore::install(std::uint64_t set, unsigned way, std::uint64_t tag,
                  bool dirty)
{
    ACCORD_ASSERT(way < geom.ways, "install way out of range");
    const std::uint64_t i = index(set, way);

    // Materializes the slot's page on the first install into it —
    // one allocation per page lifetime, amortized over the fills that
    // land there, never on the read path.
    std::uint8_t &flag_slot = flags.materializeSlot(i);

    Victim victim;
    if (flag_slot & flagValid) {
        victim.valid = true;
        victim.dirty = (flag_slot & flagDirty) != 0;
        victim.tag = tags.read(i);
    } else {
        ++occupancy_;
    }

    tags.write(i, tag);
    flag_slot = static_cast<std::uint8_t>(
        flagValid | (dirty ? flagDirty : 0));
    return victim;
}

void
TagStore::markDirty(std::uint64_t set, unsigned way)
{
    const std::uint64_t i = index(set, way);
    std::uint8_t &flag_slot = flags.materializeSlot(i);
    ACCORD_ASSERT(flag_slot & flagValid, "markDirty on invalid way");
    flag_slot |= flagDirty;
}

void
TagStore::invalidate(std::uint64_t set, unsigned way)
{
    const std::uint64_t i = index(set, way);
    // A never-written slot is already invalid; leave its page cold.
    if (flags.read(i) == 0)
        return;
    std::uint8_t &flag_slot = flags.materializeSlot(i);
    if (flag_slot & flagValid)
        --occupancy_;
    flag_slot = 0;
}

std::uint64_t
TagStore::occupancy() const
{
    return occupancy_;
}

} // namespace accord::dramcache

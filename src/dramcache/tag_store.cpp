#include "dramcache/tag_store.hpp"

#include "common/log.hpp"

namespace accord::dramcache
{

TagStore::TagStore(const core::CacheGeometry &geom)
    : geom(geom), tags(geom.lines(), 0), flags(geom.lines(), 0)
{
}

int
TagStore::findWay(std::uint64_t set, std::uint64_t tag) const
{
    for (unsigned way = 0; way < geom.ways; ++way) {
        const std::size_t i = index(set, way);
        if ((flags[i] & flagValid) && tags[i] == tag)
            return static_cast<int>(way);
    }
    return -1;
}

TagStore::Victim
TagStore::install(std::uint64_t set, unsigned way, std::uint64_t tag,
                  bool dirty)
{
    ACCORD_ASSERT(way < geom.ways, "install way out of range");
    const std::size_t i = index(set, way);

    Victim victim;
    if (flags[i] & flagValid) {
        victim.valid = true;
        victim.dirty = (flags[i] & flagDirty) != 0;
        victim.tag = tags[i];
    } else {
        ++occupancy_;
    }

    tags[i] = tag;
    flags[i] = static_cast<std::uint8_t>(
        flagValid | (dirty ? flagDirty : 0));
    return victim;
}

void
TagStore::markDirty(std::uint64_t set, unsigned way)
{
    const std::size_t i = index(set, way);
    ACCORD_ASSERT(flags[i] & flagValid, "markDirty on invalid way");
    flags[i] |= flagDirty;
}

void
TagStore::invalidate(std::uint64_t set, unsigned way)
{
    const std::size_t i = index(set, way);
    if (flags[i] & flagValid)
        --occupancy_;
    flags[i] = 0;
}

std::uint64_t
TagStore::occupancy() const
{
    return occupancy_;
}

} // namespace accord::dramcache

#include "dramcache/org_colassoc.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"
#include "dramcache/audit.hpp"

namespace accord::dramcache
{

core::CacheGeometry
ColAssocOrg::geometryFor(const DramCacheParams &params)
{
    core::CacheGeometry geom;
    geom.ways = 1;
    geom.sets = params.capacityBytes / lineSize;
    if (!isPow2(geom.sets))
        fatal("dram cache: set count must be a power of two");
    return geom;
}

ColAssocOrg::ColAssocOrg(const OrgContext &ctx) : OrgStrategy(ctx)
{
    ACCORD_ASSERT(!ctx_.policy, "CA-cache does not take a way policy");
    ACCORD_ASSERT(ctx_.params.replacement == L4Replacement::Random,
                  "LRU ablation applies to set-associative mode");
    ACCORD_ASSERT(ctx_.geom.sets >= 2, "CA-cache needs >= 2 slots");
    ca_pair_mask = ctx_.geom.sets >> 1;
}

std::uint64_t
ColAssocOrg::primarySlot(LineAddr line) const
{
    return line & (ctx_.geom.sets - 1);
}

std::uint64_t
ColAssocOrg::pairSlot(std::uint64_t slot) const
{
    return slot ^ ca_pair_mask;
}

bool
ColAssocOrg::slotHolds(std::uint64_t slot, LineAddr line) const
{
    // CA mode stores full line addresses as tags.
    return ctx_.tags.valid(slot, 0) && ctx_.tags.tag(slot, 0) == line;
}

AccessPlan
ColAssocOrg::planRead(LineAddr line)
{
    const std::uint64_t primary = primarySlot(line);
    return planCaLookup(line, primary, pairSlot(primary));
}

AccessPlan
ColAssocOrg::planDemandLocate(LineAddr line)
{
    // Same primary-then-pair sweep as a demand read.
    return planRead(line);
}

void
ColAssocOrg::onReadHit(const HitContext &hit)
{
    // A primary-slot hit refreshes the DCP selector; a pair-slot hit
    // leaves it to the post-completion swap, which re-records both
    // moved lines.
    if (hit.probeIndex == 0)
        ctx_.dcp.record(hit.line, 0);
}

void
ColAssocOrg::afterReadHit(const HitContext &hit)
{
    if (hit.probeIndex == 0)
        return;
    // Swap-to-primary off the critical path.
    const std::uint64_t primary = primarySlot(hit.line);
    const std::uint64_t secondary = pairSlot(primary);
    swapSlots(primary, secondary);
    if (hit.timed) {
        ctx_.services.cacheOp(primary, 0, true, {}, false, hit.trace);
        ctx_.services.cacheOp(secondary, 0, true, {}, false, hit.trace);
    }
}

void
ColAssocOrg::swapSlots(std::uint64_t primary, std::uint64_t secondary)
{
    TagStore &tags = ctx_.tags;
    const bool p_valid = tags.valid(primary, 0);
    const bool s_valid = tags.valid(secondary, 0);
    const std::uint64_t p_line = p_valid ? tags.tag(primary, 0) : 0;
    const std::uint64_t s_line = s_valid ? tags.tag(secondary, 0) : 0;
    const bool p_dirty = p_valid && tags.dirty(primary, 0);
    const bool s_dirty = s_valid && tags.dirty(secondary, 0);

    if (s_valid)
        tags.install(primary, 0, s_line, s_dirty);
    else
        tags.invalidate(primary, 0);
    if (p_valid)
        tags.install(secondary, 0, p_line, p_dirty);
    else
        tags.invalidate(secondary, 0);

    // Both slots are rewritten: two line transfers.
    ctx_.stats.cacheWriteTransfers.inc(2);
    ctx_.stats.swaps.inc();

    if (s_valid)
        ctx_.dcp.record(s_line,
                        primarySlot(s_line) == primary ? 0u : 1u);
    if (p_valid)
        ctx_.dcp.record(p_line,
                        primarySlot(p_line) == secondary ? 0u : 1u);
}

void
ColAssocOrg::installAfterMiss(LineAddr line, bool timed,
                              trace_event::TxnId parent)
{
    const std::uint64_t primary = primarySlot(line);
    const std::uint64_t secondary = pairSlot(primary);

    // The posted install is one Fill trace transaction spanning the
    // relocation write, any victim writeback, and the fill write.
    trace_event::TxnId fill_txn = trace_event::kNoTxn;
    auto member = ctx_.services.beginFillGroup(parent, line, fill_txn);

    // Displace the primary occupant to the secondary slot, evicting
    // whatever lived there; the new line always lands at primary.
    TagStore &tags = ctx_.tags;
    const bool old_valid = tags.valid(primary, 0);
    if (old_valid) {
        const std::uint64_t old_line = tags.tag(primary, 0);
        const bool old_dirty = tags.dirty(primary, 0);
        const TagStore::Victim evicted =
            tags.install(secondary, 0, old_line, old_dirty);
        ctx_.stats.cacheWriteTransfers.inc();   // the relocation write
        if (timed)
            ctx_.services.cacheOp(secondary, 0, true, member(), false,
                                  fill_txn);
        ctx_.dcp.record(old_line,
                        primarySlot(old_line) == secondary ? 0u : 1u);
        if (evicted.valid) {
            ctx_.dcp.erase(evicted.tag);
            if (evicted.dirty) {
                ctx_.stats.nvmWrites.inc();
                if (timed)
                    ctx_.services.nvmWrite(evicted.tag, member(),
                                           fill_txn);
            }
        }
    }

    tags.install(primary, 0, line, false);
    ctx_.stats.cacheWriteTransfers.inc();       // the fill write
    if (timed)
        ctx_.services.cacheOp(primary, 0, true, member(), false,
                              fill_txn);
    ctx_.dcp.record(line, 0);
}

DcpTarget
ColAssocOrg::dcpTarget(LineAddr line, unsigned selector) const
{
    const std::uint64_t primary = primarySlot(line);
    DcpTarget target;
    target.set = selector == 0 ? primary : pairSlot(primary);
    target.way = 0;
    target.present = slotHolds(target.set, line);
    return target;
}

void
ColAssocOrg::auditRange(InvariantAuditor &auditor,
                        std::uint64_t firstSlot,
                        std::uint64_t lastSlot) const
{
    auditCaSlotRange(ctx_.tags, ctx_.dcp, ca_pair_mask, auditor,
                     firstSlot, lastSlot);
}

void
ColAssocOrg::auditFull(InvariantAuditor &auditor) const
{
    auditCaSlotRange(ctx_.tags, ctx_.dcp, ca_pair_mask, auditor, 0,
                     ctx_.geom.sets);
    auditCaDcpReverse(ctx_.tags, ctx_.dcp, ca_pair_mask, auditor);
}

std::string
ColAssocOrg::describe() const
{
    return "ca-cache";
}

} // namespace accord::dramcache

#include "dramcache/enums.hpp"

#include "common/log.hpp"
#include "common/paged_table.hpp"

namespace accord::dramcache
{

const char *
toToken(LookupMode mode)
{
    // The one switch over LookupMode outside the access-plan core; it
    // defines the vocabulary everything else (reports, describe(),
    // factory keys) reuses.
    switch (mode) {
      case LookupMode::Serial: return "serial";
      case LookupMode::Parallel: return "parallel";
      case LookupMode::Predicted: return "predicted";
      case LookupMode::Ideal: return "ideal";
    }
    fatal("unknown LookupMode %d", static_cast<int>(mode));
}

const char *
toToken(Organization org)
{
    switch (org) {
      case Organization::SetAssoc: return "set_assoc";
      case Organization::ColumnAssoc: return "ca";
    }
    fatal("unknown Organization %d", static_cast<int>(org));
}

const char *
toToken(L4Replacement repl)
{
    switch (repl) {
      case L4Replacement::Random: return "random";
      case L4Replacement::Lru: return "lru";
    }
    fatal("unknown L4Replacement %d", static_cast<int>(repl));
}

const char *
toToken(LayoutMode layout)
{
    switch (layout) {
      case LayoutMode::RowCoLocated: return "row_co_located";
      case LayoutMode::WayStriped: return "way_striped";
    }
    fatal("unknown LayoutMode %d", static_cast<int>(layout));
}

const char *
toToken(StateBackend backend)
{
    switch (backend) {
      case StateBackend::Dense: return "dense";
      case StateBackend::Paged: return "paged";
      case StateBackend::Auto: return "auto";
    }
    fatal("unknown StateBackend %d", static_cast<int>(backend));
}

LookupMode
lookupModeFromToken(const std::string &token)
{
    for (const auto mode :
         {LookupMode::Serial, LookupMode::Parallel,
          LookupMode::Predicted, LookupMode::Ideal}) {
        if (token == toToken(mode))
            return mode;
    }
    fatal("unknown lookup mode '%s'", token.c_str());
}

Organization
organizationFromToken(const std::string &token)
{
    for (const auto org :
         {Organization::SetAssoc, Organization::ColumnAssoc}) {
        if (token == toToken(org))
            return org;
    }
    fatal("unknown organization '%s'", token.c_str());
}

L4Replacement
replacementFromToken(const std::string &token)
{
    for (const auto repl : {L4Replacement::Random, L4Replacement::Lru}) {
        if (token == toToken(repl))
            return repl;
    }
    fatal("unknown replacement '%s'", token.c_str());
}

LayoutMode
layoutModeFromToken(const std::string &token)
{
    for (const auto layout :
         {LayoutMode::RowCoLocated, LayoutMode::WayStriped}) {
        if (token == toToken(layout))
            return layout;
    }
    fatal("unknown layout '%s'", token.c_str());
}

StateBackend
stateBackendFromToken(const std::string &token)
{
    for (const auto backend :
         {StateBackend::Dense, StateBackend::Paged,
          StateBackend::Auto}) {
        if (token == toToken(backend))
            return backend;
    }
    fatal("unknown state backend '%s'", token.c_str());
}

StorageMode
resolveStorageMode(StateBackend backend, std::uint64_t slots)
{
    switch (backend) {
      case StateBackend::Dense: return StorageMode::Dense;
      case StateBackend::Paged: return StorageMode::Paged;
      case StateBackend::Auto: return autoStorageMode(slots);
    }
    fatal("unknown StateBackend %d", static_cast<int>(backend));
}

} // namespace accord::dramcache

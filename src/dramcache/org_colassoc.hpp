/**
 * @file
 * Column-associative (hash-rehash) organization — the CA-cache
 * baseline of paper Section VII.
 *
 * Every line has a primary slot and a pair slot (primary XOR half the
 * array).  Lookups probe primary then pair; a pair-slot hit swaps the
 * line back to its primary so hot lines converge there.  Installs
 * displace the primary occupant into the pair slot.
 */

#ifndef ACCORD_DRAMCACHE_ORG_COLASSOC_HPP
#define ACCORD_DRAMCACHE_ORG_COLASSOC_HPP

#include <cstdint>

#include "dramcache/organization.hpp"

namespace accord::dramcache
{

/** Column-associative / hash-rehash strategy. */
class ColAssocOrg final : public OrgStrategy
{
  public:
    explicit ColAssocOrg(const OrgContext &ctx);

    AccessPlan planRead(LineAddr line) override;
    AccessPlan planDemandLocate(LineAddr line) override;
    void onReadHit(const HitContext &hit) override;
    void afterReadHit(const HitContext &hit) override;
    void installAfterMiss(LineAddr line, bool timed,
                          trace_event::TxnId parent) override;
    DcpTarget dcpTarget(LineAddr line, unsigned selector) const override;
    void auditRange(InvariantAuditor &auditor, std::uint64_t firstSlot,
                    std::uint64_t lastSlot) const override;
    void auditFull(InvariantAuditor &auditor) const override;
    std::string describe() const override;

    /** Array geometry: one line per slot, ways forced to 1. */
    static core::CacheGeometry geometryFor(const DramCacheParams &params);

  private:
    std::uint64_t primarySlot(LineAddr line) const;
    std::uint64_t pairSlot(std::uint64_t slot) const;
    bool slotHolds(std::uint64_t slot, LineAddr line) const;

    /** Swap the two slots' contents and re-record their DCP entries. */
    void swapSlots(std::uint64_t primary, std::uint64_t secondary);

    std::uint64_t ca_pair_mask = 0;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_ORG_COLASSOC_HPP

/**
 * @file
 * The L4 DRAM-cache controller: the timed transaction engine plus a
 * thin functional shell.
 *
 * The access path is split into three layers:
 *
 *  - the pure decision core (access_plan.hpp) turns a line address
 *    into a side-effect-free probe/transfer plan;
 *  - an Organization strategy (organization.hpp; set-associative or
 *    column-associative, resolved by name through the registry)
 *    owns placement, install, and per-hit state updates;
 *  - this controller executes plans: untimed for warmRead()/
 *    warmWriteback(), and fully timed against the stacked-DRAM array
 *    and the NVM main memory for read()/writeback(), emitting trace
 *    events and latency statistics.
 *
 * Both execution shells consume the SAME plan from the SAME strategy,
 * so the functional and timed paths agree on hit/miss, transfer, and
 * prediction accounting by construction.
 */

#ifndef ACCORD_DRAMCACHE_CONTROLLER_HPP
#define ACCORD_DRAMCACHE_CONTROLLER_HPP

#include <functional>
#include <memory>
#include <string>

#include "common/event_queue.hpp"
#include "common/invariant_auditor.hpp"
#include "common/metrics/registry.hpp"
#include "common/object_pool.hpp"
#include "common/stats.hpp"
#include "common/trace_event/trace_event.hpp"
#include "core/way_policy.hpp"
#include "dram/dram_system.hpp"
#include "dramcache/dcp.hpp"
#include "dramcache/enums.hpp"
#include "dramcache/layout.hpp"
#include "dramcache/organization.hpp"
#include "dramcache/params.hpp"
#include "dramcache/tag_store.hpp"
#include "nvm/nvm_system.hpp"

namespace accord::trace_event
{
class Tracer;
}

namespace accord::dramcache
{

class SetAssocOrg;

/** The L4 DRAM-cache controller. */
class DramCacheController : private OrgServices
{
  public:
    /** Demand-read completion: hit/miss and data-ready cycle. */
    using ReadDone = std::function<void(bool hit, Cycle when)>;

    /**
     * @param params  cache organization
     * @param policy  way steering/prediction; may be null for
     *                direct-mapped and column-associative caches
     * @param timing  stacked-DRAM parameters; capacityBytes is forced
     *                to params.capacityBytes
     * @param eq      shared event queue
     * @param nvm     main memory below the cache
     */
    DramCacheController(const DramCacheParams &params,
                        std::unique_ptr<core::WayPolicy> policy,
                        dram::TimingParams timing, EventQueue &eq,
                        nvm::NvmSystem &nvm);

    ~DramCacheController();

    // --- timed path -----------------------------------------------

    /**
     * Timed demand read (L3 miss).  `txn` is the caller's trace
     * transaction (kNoTxn when tracing is off); the controller emits
     * lookup/NVM phases and prediction-outcome points into it and
     * completes it with its request class.
     */
    void read(LineAddr line, ReadDone done,
              trace_event::TxnId txn = trace_event::kNoTxn);

    /** Timed writeback (dirty L3 eviction); posted. */
    void writeback(LineAddr line,
                   trace_event::TxnId txn = trace_event::kNoTxn);

    // --- functional path ------------------------------------------

    /** Untimed demand read; returns hit/miss. */
    bool warmRead(LineAddr line);

    /** Untimed writeback. */
    void warmWriteback(LineAddr line);

    // --- introspection --------------------------------------------

    const DramCacheStats &stats() const { return stats_; }

    /** Reset controller stats AND the HBM device channel stats. */
    void resetStats();

    /**
     * Exclude the functional accesses between begin and end from
     * stats(): the counters are snapshotted at begin and restored at
     * end, while cache/tag/predictor state keeps updating.  This is
     * how sampled simulation (Request::warmup, see
     * trace/sample.hpp) warms the arrays before a selected window
     * without polluting measured statistics.  Warm-shell only, must
     * not nest or span resetStats(); way-policy internal counters are
     * not covered (docs/TRACES.md, warmup policy).
     */
    void beginStatsExclusion();
    void endStatsExclusion();
    bool statsExcluded() const { return stats_excluded_; }

    /**
     * Register controller metrics under `prefix` (typically "l4"):
     * the lookup/way-prediction ratios, transfer and writeback
     * counters, latency averages, the transfers-per-read gauge, and
     * (when a way policy is attached) its internals under
     * `prefix`.policy.  The HBM device registers separately via
     * hbm().registerMetrics().
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach a transaction tracer: the stacked-DRAM device registers
     * its channel tracks and the controller starts emitting lifecycle
     * events for every traced transaction it is handed.
     */
    void attachTracer(trace_event::Tracer &tracer);

    const core::CacheGeometry &geometry() const { return geom; }
    const TagStore &tagStore() const { return tags; }
    core::WayPolicy *policy() { return policy_.get(); }
    dram::DramSystem &hbm() { return hbm_; }
    const dram::DramSystem &hbm() const { return hbm_; }

    /** Transaction arena, for telemetry pool-usage snapshots. */
    const BlockPool &txnPool() const { return *txn_pool_; }

    /**
     * Host bytes currently backing per-set cache state: the tag/flag
     * columns, the DCP directory pages, and (when attached) the way
     * policy's own tables.  Feeds the resident-state telemetry gauge
     * and the gigascale footprint budget.
     */
    std::uint64_t
    residentStateBytes() const
    {
        return tags.residentStateBytes() + dcp.residentBytes()
            + org_->residentStateBytes()
            + (policy_ ? policy_->residentStateBytes() : 0);
    }

    /** True when no timed transactions are in flight. */
    bool quiesced() const { return in_flight == 0; }

    /** Short description ("dm", "2-way pws+gws serial", ...). */
    std::string describe() const;

    /**
     * Record every violated model-state invariant into the auditor:
     * tag-store consistency, organization-specific placement rules,
     * DCP coherence, policy-internal tables, and (when quiesced)
     * stats identities.  Always available; the periodic self-audit
     * driven by DramCacheParams::auditInterval calls this under
     * ACCORD_CHECKS_ENABLED and panics on any violation.
     */
    void audit(InvariantAuditor &auditor) const;

    /**
     * audit() restricted to sets [firstSet, lastSet), plus the cheap
     * global checks (policy tables when the window wraps to 0, stats
     * identities when quiesced).  Cost is bounded by the window, not
     * the cache — the periodic self-audit rotates this window.  The
     * only check it lacks relative to a full audit() is detection of
     * stale DCP entries for lines no longer resident anywhere.
     */
    void auditWindow(InvariantAuditor &auditor, std::uint64_t firstSet,
                     std::uint64_t lastSet) const;

  private:
    // --- OrgServices (device access lent to the organization) -----

    void cacheOp(std::uint64_t set, unsigned way, bool is_write,
                 dram::MemCallback on_complete, bool priority,
                 trace_event::TxnId txn) override;

    void nvmWrite(LineAddr line, dram::MemCallback on_complete,
                  trace_event::TxnId txn) override;

    std::function<dram::MemCallback()>
    beginFillGroup(trace_event::TxnId parent, LineAddr line,
                   trace_event::TxnId &fill_txn) override;

    // --- timed read engine (read_txn.cpp) -------------------------

    struct ReadTxn;
    void issueProbe(const std::shared_ptr<ReadTxn> &txn, unsigned index);
    void probeDone(const std::shared_ptr<ReadTxn> &txn, unsigned index,
                   Cycle when);
    void missConfirmed(const std::shared_ptr<ReadTxn> &txn, Cycle when);
    void finishHit(const std::shared_ptr<ReadTxn> &txn, unsigned way,
                   unsigned trace_way, unsigned probe_index, Cycle when);

    // --- shared shells --------------------------------------------

    /** Writeback routing shared by both paths. */
    void writebackCommon(LineAddr line, bool timed,
                         trace_event::TxnId txn = trace_event::kNoTxn);

    /** Count down to the next periodic self-audit and run it. */
    void maybeAudit();

    DramCacheParams params;

    /** Registry factory the params resolve to (stable for our lifetime). */
    const OrgFactory *org_factory_;

    core::CacheGeometry geom;
    std::unique_ptr<core::WayPolicy> policy_;
    EventQueue &eq;
    nvm::NvmSystem &nvm;
    dram::DramSystem hbm_;
    CacheLayout layout;
    TagStore tags;
    DcpDirectory dcp;
    DramCacheStats stats_;

    /** Snapshot taken by beginStatsExclusion(). */
    DramCacheStats excluded_saved_;
    bool stats_excluded_ = false;

    std::unique_ptr<OrgStrategy> org_;

    /**
     * Devirtualized view of org_ when its dynamic type is exactly the
     * built-in set-associative strategy — the overwhelmingly common
     * case.  The timed read engine calls plan/hit hooks through this
     * pointer with qualified (non-virtual, inlinable) calls; any other
     * organization (CA, registry plug-ins, SetAssocOrg subclasses)
     * keeps the virtual path.  Null when org_ is not exactly a
     * SetAssocOrg.
     */
    SetAssocOrg *setassoc_ = nullptr;

    /**
     * Recycles ReadTxn+control-block allocations (read_txn.cpp).
     * Shared so pooled transactions still referenced by queued events
     * keep the arena alive past controller teardown.
     */
    std::shared_ptr<BlockPool> txn_pool_ = std::make_shared<BlockPool>();

    unsigned in_flight = 0;

    /** Transaction tracer (null when tracing is off). */
    trace_event::Tracer *tracer_ = nullptr;

    /** Demand reads until the next periodic self-audit. */
    std::uint32_t audit_countdown = 0;

    /** First set of the next periodic self-audit's rotating window. */
    std::uint64_t audit_cursor = 0;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_CONTROLLER_HPP

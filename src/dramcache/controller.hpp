/**
 * @file
 * The L4 DRAM-cache controller.
 *
 * Implements every cache organization the paper evaluates on top of a
 * tags-with-data array:
 *
 *  - direct-mapped (Alloy/KNL baseline): 1 probe resolves hit or miss;
 *  - set-associative with parallel, serial, way-predicted, or
 *    idealized lookup (Section II-C, Table I);
 *  - column-associative / hash-rehash (CA-cache, Section VII), which
 *    swaps lines to keep hot lines at their primary slot.
 *
 * Way-predicted lookup consults a core::WayPolicy both to order probes
 * and to steer installs; miss confirmation probes only the policy's
 * candidate ways, which is how Skewed Way-Steering caps the miss cost
 * at two probes (Section V-A).
 *
 * The controller offers two execution paths over the same functional
 * state (tag store, policy, DCP directory):
 *
 *  - warmRead()/warmWriteback(): untimed, used for cache warmup and
 *    for pure hit-rate / prediction-accuracy studies; these count the
 *    line transfers each access WOULD cost;
 *  - read()/writeback(): fully timed against the stacked-DRAM array
 *    and the NVM main memory via the shared EventQueue.
 */

#ifndef ACCORD_DRAMCACHE_CONTROLLER_HPP
#define ACCORD_DRAMCACHE_CONTROLLER_HPP

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hpp"
#include "common/invariant_auditor.hpp"
#include "common/metrics/registry.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/trace_event/trace_event.hpp"
#include "core/way_policy.hpp"
#include "dram/dram_system.hpp"
#include "dramcache/dcp.hpp"
#include "dramcache/layout.hpp"
#include "dramcache/tag_store.hpp"
#include "nvm/nvm_system.hpp"

namespace accord::trace_event
{
class Tracer;
}

namespace accord::dramcache
{

/** How lookups locate a line within a set (Section II-C). */
enum class LookupMode
{
    Serial,     ///< probe ways one by one in a fixed order
    Parallel,   ///< stream all candidate ways per access
    Predicted,  ///< probe the predicted way first, then the rest
    Ideal,      ///< magic 1-transfer hit AND miss (Fig 1c bound)
};

/** Overall array organization. */
enum class Organization
{
    SetAssoc,       ///< ways==1 gives the direct-mapped baseline
    ColumnAssoc,    ///< hash-rehash with swap-to-primary (CA-cache)
};

/** Victim selection when no way policy steers installs. */
enum class L4Replacement
{
    /** Update-free random replacement (the paper's choice, II-B4). */
    Random,

    /**
     * True LRU.  Because the replacement state lives with the tags in
     * DRAM, every hit pays an extra line write to update it — the
     * paper's footnote 2 measures this costing ~9% vs random.
     */
    Lru,
};

/** DRAM cache configuration. */
struct DramCacheParams
{
    std::uint64_t capacityBytes = 256ULL << 20;
    unsigned ways = 1;
    Organization org = Organization::SetAssoc;
    LookupMode lookup = LookupMode::Predicted;

    /** Writebacks carry DCP way bits and skip the probe (II-B3). */
    bool dcpWayBits = true;

    /** Victim selection for unsteered installs (LRU ablation). */
    L4Replacement replacement = L4Replacement::Random;

    /** Way placement in the array (row-co-located vs striped). */
    LayoutMode layout = LayoutMode::RowCoLocated;

    std::uint64_t seed = 7;

    /**
     * Run an invariant audit every this many demand reads when checks
     * are compiled in (Debug, ACCORD_CHECKS, or sanitizer builds); 0
     * disables the periodic sweep.  Each firing audits a bounded slice
     * of sets (rotating through the whole array over successive
     * firings) so the amortized cost stays O(1) per access even for
     * gigascale caches.  Release builds compile the hook out entirely.
     */
    std::uint32_t auditInterval = 4096;
};

/** Controller statistics. */
struct DramCacheStats
{
    Ratio readHits;

    /** First-probe-correct ratio over read hits. */
    Ratio wayPrediction;

    /** Line transfers on the stacked-DRAM bus. */
    Counter cacheReadTransfers;
    Counter cacheWriteTransfers;

    Counter nvmReads;
    Counter nvmWrites;

    Counter writebacksToCache;
    Counter writebacksToNvm;

    /** Probe transfers spent locating writeback targets (no-DCP mode). */
    Counter writebackProbeTransfers;

    /** Writebacks whose DCP way bits were stale (rare races). */
    Counter dcpStaleWritebacks;

    /** CA-cache swap operations. */
    Counter swaps;

    /** Replacement-state update writes (LRU-in-DRAM ablation). */
    Counter replacementUpdateWrites;

    Average probesPerRead;
    Average readHitLatency;
    Average readMissLatency;

    /** All stacked-DRAM transfers per demand read (bandwidth bloat). */
    double transfersPerRead() const;

    void reset();

    /**
     * Register every member under `prefix`: lookup + way_prediction
     * (Ratio), the transfer/writeback counters, the latency/probe
     * averages, and a transfers_per_read gauge.
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;
};

/** The L4 DRAM-cache controller. */
class DramCacheController
{
  public:
    /** Demand-read completion: hit/miss and data-ready cycle. */
    using ReadDone = std::function<void(bool hit, Cycle when)>;

    /**
     * @param params  cache organization
     * @param policy  way steering/prediction; may be null for
     *                direct-mapped and column-associative caches
     * @param timing  stacked-DRAM parameters; capacityBytes is forced
     *                to params.capacityBytes
     * @param eq      shared event queue
     * @param nvm     main memory below the cache
     */
    DramCacheController(const DramCacheParams &params,
                        std::unique_ptr<core::WayPolicy> policy,
                        dram::TimingParams timing, EventQueue &eq,
                        nvm::NvmSystem &nvm);

    // --- timed path -----------------------------------------------

    /**
     * Timed demand read (L3 miss).  `txn` is the caller's trace
     * transaction (kNoTxn when tracing is off); the controller emits
     * lookup/NVM phases and prediction-outcome points into it and
     * completes it with its request class.
     */
    void read(LineAddr line, ReadDone done,
              trace_event::TxnId txn = trace_event::kNoTxn);

    /** Timed writeback (dirty L3 eviction); posted. */
    void writeback(LineAddr line,
                   trace_event::TxnId txn = trace_event::kNoTxn);

    // --- functional path ------------------------------------------

    /** Untimed demand read; returns hit/miss. */
    bool warmRead(LineAddr line);

    /** Untimed writeback. */
    void warmWriteback(LineAddr line);

    // --- introspection --------------------------------------------

    const DramCacheStats &stats() const { return stats_; }

    /** Reset controller stats AND the HBM device channel stats. */
    void resetStats();

    /**
     * Register controller metrics under `prefix` (typically "l4"):
     * the lookup/way-prediction ratios, transfer and writeback
     * counters, latency averages, the transfers-per-read gauge, and
     * (when a way policy is attached) its internals under
     * `prefix`.policy.  The HBM device registers separately via
     * hbm().registerMetrics().
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach a transaction tracer: the stacked-DRAM device registers
     * its channel tracks and the controller starts emitting lifecycle
     * events for every traced transaction it is handed.
     */
    void attachTracer(trace_event::Tracer &tracer);

    const core::CacheGeometry &geometry() const { return geom; }
    const TagStore &tagStore() const { return tags; }
    core::WayPolicy *policy() { return policy_.get(); }
    dram::DramSystem &hbm() { return hbm_; }
    const dram::DramSystem &hbm() const { return hbm_; }

    /** True when no timed transactions are in flight. */
    bool quiesced() const { return in_flight == 0; }

    /** Short description ("dm", "2-way pws+gws serial", ...). */
    std::string describe() const;

    /**
     * Record every violated model-state invariant into the auditor:
     * tag-store consistency, way-placement legality, DCP coherence,
     * policy-internal tables, and (when quiesced) stats identities.
     * Always available; the periodic self-audit driven by
     * DramCacheParams::auditInterval calls this under
     * ACCORD_CHECKS_ENABLED and panics on any violation.
     */
    void audit(InvariantAuditor &auditor) const;

    /**
     * audit() restricted to sets [firstSet, lastSet), plus the cheap
     * global checks (policy tables when the window wraps to 0, stats
     * identities when quiesced).  Cost is bounded by the window, not
     * the cache — the periodic self-audit rotates this window.  The
     * only check it lacks relative to a full audit() is detection of
     * stale DCP entries for lines no longer resident anywhere.
     */
    void auditWindow(InvariantAuditor &auditor, std::uint64_t firstSet,
                     std::uint64_t lastSet) const;

  private:
    /** Probe order for a line: predicted way first, then candidates. */
    unsigned probeOrder(const core::LineRef &ref,
                        std::array<unsigned, 64> &order);

    /** Number of candidate ways (miss-confirmation cost). */
    unsigned candidateCount(const core::LineRef &ref) const;

    /** What an install did, for the timed path to mirror on devices. */
    struct InstallResult
    {
        unsigned way = 0;
        bool victimDirty = false;
        LineAddr victimLine = 0;
    };

    /** Shared install bookkeeping (tag store, policy, DCP, counters). */
    InstallResult installLine(const core::LineRef &ref);

    /** Victim way for an unsteered install (random or LRU). */
    unsigned unsteeredVictim(const core::LineRef &ref);

    /**
     * LRU bookkeeping on a hit: stamps the way and charges the
     * in-DRAM replacement-state write (timed path issues it too).
     */
    void touchReplacement(const core::LineRef &ref, unsigned way,
                          bool timed,
                          trace_event::TxnId txn = trace_event::kNoTxn);

    /** Issue a timed read/write of one way unit of a set. */
    void issueCacheOp(std::uint64_t set, unsigned way, bool is_write,
                      dram::MemCallback on_complete,
                      bool priority = false,
                      trace_event::TxnId txn = trace_event::kNoTxn);

    /**
     * Start a posted Fill trace transaction (kNoTxn when the parent
     * read is untraced) and return a completion callback factory: each
     * call registers one member op, and the transaction completes when
     * the last member finishes.
     */
    std::function<dram::MemCallback()>
    beginFillGroup(trace_event::TxnId parent, LineAddr line,
                   trace_event::TxnId &fill_txn);

    // Timed transaction state.
    struct ReadTxn;
    void issueProbe(const std::shared_ptr<ReadTxn> &txn, unsigned index);
    void probeDone(const std::shared_ptr<ReadTxn> &txn, unsigned index,
                   Cycle when);
    void missConfirmed(const std::shared_ptr<ReadTxn> &txn, Cycle when);
    void finishHit(const std::shared_ptr<ReadTxn> &txn, unsigned way,
                   unsigned probe_index, Cycle when);

    // Column-associative organization.
    std::uint64_t primarySlot(LineAddr line) const;
    std::uint64_t pairSlot(std::uint64_t slot) const;
    bool slotHolds(std::uint64_t slot, LineAddr line) const;
    void caSwap(std::uint64_t primary, std::uint64_t secondary);
    void caInstall(LineAddr line, std::uint64_t primary,
                   std::uint64_t secondary, bool timed,
                   trace_event::TxnId parent = trace_event::kNoTxn);
    bool warmReadCa(LineAddr line);
    void readCa(LineAddr line, ReadDone done, trace_event::TxnId txn);

    // Writeback helpers shared by both paths.
    void writebackCommon(LineAddr line, bool timed,
                         trace_event::TxnId txn = trace_event::kNoTxn);

    /** Count down to the next periodic self-audit and run it. */
    void maybeAudit();

    /** Column-associative slot-placement checks over a slot range. */
    void auditCaSlotRange(InvariantAuditor &auditor,
                          std::uint64_t firstSlot,
                          std::uint64_t lastSlot) const;

    DramCacheParams params;
    core::CacheGeometry geom;
    std::unique_ptr<core::WayPolicy> policy_;
    EventQueue &eq;
    nvm::NvmSystem &nvm;
    dram::DramSystem hbm_;
    CacheLayout layout;
    TagStore tags;
    DcpDirectory dcp;
    DramCacheStats stats_;
    Rng install_rng;
    std::uint64_t ca_pair_mask = 0;
    unsigned in_flight = 0;

    /** Transaction tracer (null when tracing is off). */
    trace_event::Tracer *tracer_ = nullptr;

    /** Per-line recency stamps for the LRU ablation (empty if unused). */
    std::vector<std::uint64_t> lru_stamps;
    std::uint64_t lru_clock = 0;

    /** Demand reads until the next periodic self-audit. */
    std::uint32_t audit_countdown = 0;

    /** First set of the next periodic self-audit's rotating window. */
    std::uint64_t audit_cursor = 0;
};

} // namespace accord::dramcache

#endif // ACCORD_DRAMCACHE_CONTROLLER_HPP

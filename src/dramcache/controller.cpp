#include "dramcache/controller.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/trace_event/tracer.hpp"
#include "core/predictors.hpp"
#include "dramcache/audit.hpp"

namespace accord::dramcache
{

namespace
{

/** Shrink channel/bank counts so a small (test-sized) cache still maps
 *  onto the device cleanly; full-sized configs are unchanged. */
dram::TimingParams
fitTiming(dram::TimingParams timing, std::uint64_t capacity)
{
    timing.capacityBytes = capacity;
    while (timing.channels > 1
           && capacity % (static_cast<std::uint64_t>(timing.channels)
                          * timing.banksPerChannel * timing.rowBytes)
               != 0) {
        if (timing.banksPerChannel > 1)
            timing.banksPerChannel /= 2;
        else
            timing.channels /= 2;
    }
    return timing;
}

core::CacheGeometry
geometryFor(const DramCacheParams &params)
{
    core::CacheGeometry geom;
    if (params.org == Organization::ColumnAssoc) {
        geom.ways = 1;
        geom.sets = params.capacityBytes / lineSize;
    } else {
        if (params.ways == 0 || params.ways > 64
            || !isPow2(params.ways))
            fatal("dram cache: ways must be a power of two in [1,64]");
        geom.ways = params.ways;
        geom.sets = params.capacityBytes / lineSize / params.ways;
    }
    if (!isPow2(geom.sets))
        fatal("dram cache: set count must be a power of two");
    return geom;
}

} // namespace

double
DramCacheStats::transfersPerRead() const
{
    const std::uint64_t reads = readHits.total();
    if (reads == 0)
        return 0.0;
    return static_cast<double>(cacheReadTransfers.value()
                               + cacheWriteTransfers.value())
        / static_cast<double>(reads);
}

void
DramCacheStats::reset()
{
    readHits.reset();
    wayPrediction.reset();
    cacheReadTransfers.reset();
    cacheWriteTransfers.reset();
    nvmReads.reset();
    nvmWrites.reset();
    writebacksToCache.reset();
    writebacksToNvm.reset();
    writebackProbeTransfers.reset();
    dcpStaleWritebacks.reset();
    swaps.reset();
    replacementUpdateWrites.reset();
    probesPerRead.reset();
    readHitLatency.reset();
    readMissLatency.reset();
}

/** In-flight state of one timed demand read. */
struct DramCacheController::ReadTxn
{
    core::LineRef ref;
    ReadDone done;
    Cycle start = 0;

    /** Trace transaction of this read (kNoTxn when untraced). */
    trace_event::TxnId trace = trace_event::kNoTxn;

    /** Probe order (Serial/Predicted) or issue order (Parallel). */
    std::array<unsigned, 64> order{};
    unsigned orderCount = 0;

    /** Parallel lookup: position of the resident way, -1 if absent. */
    int parallelHitPos = -1;
    unsigned parallelArrived = 0;
};

DramCacheController::DramCacheController(
    const DramCacheParams &params,
    std::unique_ptr<core::WayPolicy> policy, dram::TimingParams timing,
    EventQueue &eq, nvm::NvmSystem &nvm)
    : params(params), geom(geometryFor(params)),
      policy_(std::move(policy)), eq(eq), nvm(nvm),
      hbm_(fitTiming(timing, params.capacityBytes), eq),
      layout(geom, hbm_.params(), params.layout), tags(geom),
      install_rng(params.seed ^ 0x1e57a11ULL),
    audit_countdown(params.auditInterval)
{
    if (params.org == Organization::ColumnAssoc) {
        ACCORD_ASSERT(!policy_, "CA-cache does not take a way policy");
        ACCORD_ASSERT(geom.sets >= 2, "CA-cache needs >= 2 slots");
        ca_pair_mask = geom.sets >> 1;
    }
    if (params.replacement == L4Replacement::Lru) {
        ACCORD_ASSERT(!policy_,
                      "LRU replacement is the unsteered ablation; it "
                      "cannot be combined with a way policy");
        ACCORD_ASSERT(params.org == Organization::SetAssoc,
                      "LRU ablation applies to set-associative mode");
        lru_stamps.assign(geom.lines(), 0);
    }
    if (policy_) {
        ACCORD_ASSERT(policy_->geometry().sets == geom.sets
                          && policy_->geometry().ways == geom.ways,
                      "policy geometry mismatch");
        // Wire the oracle for the perfect-prediction bound.
        if (auto *perfect =
                dynamic_cast<core::PerfectPolicy *>(policy_.get())) {
            perfect->setOracle([this](const core::LineRef &ref) {
                return tags.findWay(ref.set, ref.tag);
            });
        }
    }
}

void
DramCacheController::auditCaSlotRange(InvariantAuditor &auditor,
                                      std::uint64_t firstSlot,
                                      std::uint64_t lastSlot) const
{
    // CA mode stores full line addresses as tags; each resident line
    // must sit in its primary slot or that slot's pair (layout
    // consistency), and if the DCP tracks it, the entry's 0/1 slot
    // selector must resolve to the slot actually holding it.
    for (std::uint64_t slot = firstSlot; slot < lastSlot; ++slot) {
        if (!tags.valid(slot, 0))
            continue;
        const LineAddr line = tags.tag(slot, 0);
        const std::uint64_t primary = primarySlot(line);
        if (slot != primary && slot != pairSlot(primary)) {
            auditor.fail(
                "ca-slot",
                "slot %llu holds line %llx whose primary is %llu",
                static_cast<unsigned long long>(slot),
                static_cast<unsigned long long>(line),
                static_cast<unsigned long long>(primary));
        }
        const auto sel = dcp.lookup(line);
        if (sel && *sel > 1) {
            auditor.fail("dcp-way-range",
                         "line %llx: CA slot selector %u not 0/1",
                         static_cast<unsigned long long>(line), *sel);
        } else if (sel
                   && (*sel == 0 ? primary : pairSlot(primary))
                          != slot) {
            auditor.fail(
                "dcp-coherence",
                "line %llx: directory selector %u resolves to slot "
                "%llu, but slot %llu holds it",
                static_cast<unsigned long long>(line), *sel,
                static_cast<unsigned long long>(
                    *sel == 0 ? primary : pairSlot(primary)),
                static_cast<unsigned long long>(slot));
        }
    }
}

void
DramCacheController::auditWindow(InvariantAuditor &auditor,
                                 std::uint64_t firstSet,
                                 std::uint64_t lastSet) const
{
    auditTagStoreRange(tags, auditor, firstSet, lastSet);
    if (params.org == Organization::ColumnAssoc) {
        auditCaSlotRange(auditor, firstSet, lastSet);
    } else {
        if (policy_) {
            auditPlacementRange(tags, *policy_, auditor, firstSet,
                                lastSet);
            // Policy tables are global, not per-set; audit them once
            // per rotation instead of once per window.
            if (firstSet == 0)
                policy_->audit(auditor);
        }
        auditDcpForward(dcp, tags, auditor, firstSet, lastSet);
    }
    // In-flight transactions sample some counters at issue and others
    // at completion, so the identities only hold at quiescence.
    if (quiesced())
        auditStats(stats_, auditor);
}

void
DramCacheController::audit(InvariantAuditor &auditor) const
{
    auditTagStore(tags, auditor);
    if (params.org == Organization::ColumnAssoc) {
        auditCaSlotRange(auditor, 0, geom.sets);
        // Reverse direction: stale DCP entries for lines no longer
        // resident anywhere, which the forward per-slot check above
        // cannot see.
        for (const auto &[line, sel] : dcp.entries()) {
            if (sel > 1) {
                auditor.fail("dcp-way-range",
                             "line %llx: CA slot selector %u not 0/1",
                             static_cast<unsigned long long>(line),
                             sel);
                continue;
            }
            const std::uint64_t primary = primarySlot(line);
            const std::uint64_t slot =
                sel == 0 ? primary : pairSlot(primary);
            if (!slotHolds(slot, line)) {
                auditor.fail(
                    "dcp-coherence",
                    "line %llx: directory says slot %llu, which does "
                    "not hold it",
                    static_cast<unsigned long long>(line),
                    static_cast<unsigned long long>(slot));
            }
        }
    } else {
        if (policy_) {
            auditPlacement(tags, *policy_, auditor);
            policy_->audit(auditor);
        }
        auditDcp(dcp, tags, auditor);
    }
    // In-flight transactions sample some counters at issue and others
    // at completion, so the identities only hold at quiescence.
    if (quiesced())
        auditStats(stats_, auditor);
}

void
DramCacheController::maybeAudit()
{
    if (params.auditInterval == 0 || --audit_countdown != 0)
        return;
    audit_countdown = params.auditInterval;
    InvariantAuditor auditor;
    // One bounded slice per firing, rotating through the array, so
    // the amortized audit cost stays O(1) per demand read no matter
    // the cache size (a full sweep here made Debug runs ~30x slower).
    constexpr std::uint64_t window = 1024;
    const std::uint64_t first = audit_cursor;
    const std::uint64_t last = std::min(first + window, geom.sets);
    audit_cursor = last >= geom.sets ? 0 : last;
    auditWindow(auditor, first, last);
    auditor.enforce(describe().c_str());
}

std::string
DramCacheController::describe() const
{
    char buf[128];
    if (params.org == Organization::ColumnAssoc) {
        std::snprintf(buf, sizeof buf, "ca-cache");
    } else if (geom.ways == 1) {
        std::snprintf(buf, sizeof buf, "direct-mapped");
    } else {
        const char *mode = "?";
        switch (params.lookup) {
          case LookupMode::Serial: mode = "serial"; break;
          case LookupMode::Parallel: mode = "parallel"; break;
          case LookupMode::Predicted: mode = "predicted"; break;
          case LookupMode::Ideal: mode = "ideal"; break;
        }
        std::snprintf(buf, sizeof buf, "%u-way %s %s", geom.ways,
                      policy_ ? policy_->name().c_str() : "rand", mode);
    }
    return buf;
}

unsigned
DramCacheController::candidateCount(const core::LineRef &ref) const
{
    if (!policy_)
        return geom.ways;
    return static_cast<unsigned>(
        std::popcount(policy_->candidates(ref)));
}

unsigned
DramCacheController::probeOrder(const core::LineRef &ref,
                                std::array<unsigned, 64> &order)
{
    if (geom.ways == 1) {
        order[0] = 0;
        return 1;
    }

    std::uint64_t mask =
        policy_ ? policy_->candidates(ref) : geom.allWaysMask();
    unsigned first;
    if (policy_) {
        first = policy_->predict(ref);
        if (!(mask & (std::uint64_t{1} << first))) {
            // A prediction outside the candidate set cannot be probed;
            // fall back to the lowest candidate.
            first = static_cast<unsigned>(std::countr_zero(mask));
        }
    } else {
        first = static_cast<unsigned>(std::countr_zero(mask));
    }

    unsigned count = 0;
    order[count++] = first;
    mask &= ~(std::uint64_t{1} << first);
    while (mask != 0) {
        const unsigned way =
            static_cast<unsigned>(std::countr_zero(mask));
        order[count++] = way;
        mask &= mask - 1;
    }
    return count;
}

unsigned
DramCacheController::unsteeredVictim(const core::LineRef &ref)
{
    if (geom.ways == 1)
        return 0;
    if (params.replacement == L4Replacement::Random)
        return static_cast<unsigned>(install_rng.below(geom.ways));

    // LRU: prefer an invalid way, else the oldest stamp.
    unsigned best = 0;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (unsigned way = 0; way < geom.ways; ++way) {
        if (!tags.valid(ref.set, way))
            return way;
        const std::uint64_t stamp =
            lru_stamps[ref.set * geom.ways + way];
        if (stamp < best_stamp) {
            best_stamp = stamp;
            best = way;
        }
    }
    return best;
}

void
DramCacheController::touchReplacement(const core::LineRef &ref,
                                      unsigned way, bool timed,
                                      trace_event::TxnId txn)
{
    if (params.replacement != L4Replacement::Lru)
        return;
    lru_stamps[ref.set * geom.ways + way] = ++lru_clock;
    // The recency state lives in the DRAM array next to the tags:
    // updating it on a hit costs a line write (paper footnote 2).
    stats_.replacementUpdateWrites.inc();
    stats_.cacheWriteTransfers.inc();
    if (timed)
        issueCacheOp(ref.set, way, true, nullptr, false, txn);
}

DramCacheController::InstallResult
DramCacheController::installLine(const core::LineRef &ref)
{
    // Two overlapping misses to one line (cores sharing a hashed
    // region, or a re-reference inside the MLP window) can both reach
    // the fill path; the second fill must not create a duplicate copy.
    if (const int existing = tags.findWay(ref.set, ref.tag);
        existing >= 0) {
        dcp.record(ref.line, static_cast<unsigned>(existing));
        return {static_cast<unsigned>(existing), false, 0};
    }

    const unsigned way =
        policy_ ? policy_->install(ref) : unsteeredVictim(ref);

    if (params.replacement == L4Replacement::Lru)
        lru_stamps[ref.set * geom.ways + way] = ++lru_clock;

    const TagStore::Victim victim =
        tags.install(ref.set, way, ref.tag, false);
    if (policy_)
        policy_->onInstall(ref, way);

    stats_.cacheWriteTransfers.inc();   // the fill write
    dcp.record(ref.line, way);

    InstallResult result;
    result.way = way;
    if (victim.valid) {
        const LineAddr victim_line =
            (victim.tag << geom.setBits()) | ref.set;
        dcp.erase(victim_line);
        if (victim.dirty) {
            stats_.nvmWrites.inc();
            result.victimDirty = true;
            result.victimLine = victim_line;
        }
    }
    return result;
}

void
DramCacheController::issueCacheOp(std::uint64_t set, unsigned way,
                                  bool is_write,
                                  dram::MemCallback on_complete,
                                  bool priority,
                                  trace_event::TxnId txn)
{
    dram::MemOp op;
    op.loc = layout.locate(set, way);
    op.isWrite = is_write;
    op.priority = priority;
    op.onComplete = std::move(on_complete);
    op.txn = txn;
    hbm_.enqueue(std::move(op));
}

void
DramCacheController::attachTracer(trace_event::Tracer &tracer)
{
    tracer_ = &tracer;
    hbm_.attachTracer(tracer, trace_event::Device::Dram);
}

std::function<dram::MemCallback()>
DramCacheController::beginFillGroup(trace_event::TxnId parent,
                                    LineAddr line,
                                    trace_event::TxnId &fill_txn)
{
    fill_txn = trace_event::kNoTxn;
    if (tracer_ == nullptr || parent == trace_event::kNoTxn)
        return [] { return dram::MemCallback{}; };

    fill_txn = tracer_->begin(trace_event::TxnKind::Fill,
                              trace_event::kNoCore, line, eq.now());
    // All member ops are registered synchronously inside the current
    // event, so the counter cannot hit zero before the group is fully
    // built.
    auto remaining = std::make_shared<unsigned>(0);
    const trace_event::TxnId id = fill_txn;
    return [this, id, remaining]() -> dram::MemCallback {
        ++*remaining;
        return [this, id, remaining](Cycle when) {
            if (--*remaining == 0) {
                tracer_->complete(
                    id, trace_event::RequestClass::Fill, when);
            }
        };
    };
}

// --------------------------------------------------------------------
// Functional (untimed) path
// --------------------------------------------------------------------

bool
DramCacheController::warmRead(LineAddr line)
{
#if ACCORD_CHECKS_ENABLED
    maybeAudit();
#endif
    if (params.org == Organization::ColumnAssoc)
        return warmReadCa(line);

    const auto ref = core::LineRef::make(line, geom);
    std::array<unsigned, 64> order;
    const unsigned count = probeOrder(ref, order);
    const int way = tags.findWay(ref.set, ref.tag);

    if (way >= 0) {
        unsigned pos = 0;
        while (order[pos] != static_cast<unsigned>(way))
            ++pos;
        unsigned transfers;
        switch (params.lookup) {
          case LookupMode::Parallel: transfers = count; break;
          case LookupMode::Ideal: transfers = 1; break;
          default: transfers = pos + 1; break;
        }
        stats_.cacheReadTransfers.inc(transfers);
        stats_.probesPerRead.sample(static_cast<double>(transfers));
        stats_.readHits.hit();
        stats_.wayPrediction.add(pos == 0);
        if (policy_)
            policy_->onHit(ref, static_cast<unsigned>(way));
        touchReplacement(ref, static_cast<unsigned>(way),
                         /* timed */ false);
        dcp.record(line, static_cast<unsigned>(way));
        return true;
    }

    const unsigned transfers =
        params.lookup == LookupMode::Ideal ? 1 : count;
    stats_.cacheReadTransfers.inc(transfers);
    stats_.probesPerRead.sample(static_cast<double>(transfers));
    stats_.readHits.miss();
    if (policy_)
        policy_->onMiss(ref);
    stats_.nvmReads.inc();
    installLine(ref);
    return false;
}

void
DramCacheController::warmWriteback(LineAddr line)
{
    writebackCommon(line, /* timed */ false);
}

// --------------------------------------------------------------------
// Timed path
// --------------------------------------------------------------------

void
DramCacheController::read(LineAddr line, ReadDone done,
                          trace_event::TxnId trace)
{
#if ACCORD_CHECKS_ENABLED
    maybeAudit();
#endif
    if (params.org == Organization::ColumnAssoc) {
        readCa(line, std::move(done), trace);
        return;
    }

    auto txn = std::make_shared<ReadTxn>();
    txn->ref = core::LineRef::make(line, geom);
    txn->done = std::move(done);
    txn->start = eq.now();
    txn->trace = tracer_ != nullptr ? trace : trace_event::kNoTxn;
    txn->orderCount = probeOrder(txn->ref, txn->order);
    ++in_flight;

    if (txn->trace != trace_event::kNoTxn) {
        tracer_->phaseBegin(txn->trace, trace_event::Phase::Lookup,
                            txn->start);
    }

    if (params.lookup == LookupMode::Ideal) {
        // One magic probe resolves hit and miss alike (Fig 1c bound).
        stats_.cacheReadTransfers.inc();
        stats_.probesPerRead.sample(1.0);
        if (txn->trace != trace_event::kNoTxn) {
            tracer_->point(txn->trace,
                           trace_event::Point::ProbeIssue,
                           eq.now(), 0);
        }
        issueCacheOp(txn->ref.set, 0, false, [this, txn](Cycle when) {
            const int way = tags.findWay(txn->ref.set, txn->ref.tag);
            if (way >= 0)
                finishHit(txn, static_cast<unsigned>(way), 0, when);
            else
                missConfirmed(txn, when);
        }, false, txn->trace);
        return;
    }

    if (params.lookup == LookupMode::Parallel) {
        const int way = tags.findWay(txn->ref.set, txn->ref.tag);
        if (way >= 0) {
            unsigned pos = 0;
            while (txn->order[pos] != static_cast<unsigned>(way))
                ++pos;
            txn->parallelHitPos = static_cast<int>(pos);
        }
        stats_.probesPerRead.sample(
            static_cast<double>(txn->orderCount));
        for (unsigned i = 0; i < txn->orderCount; ++i) {
            stats_.cacheReadTransfers.inc();
            if (txn->trace != trace_event::kNoTxn) {
                tracer_->point(txn->trace,
                               trace_event::Point::ProbeIssue,
                               eq.now(), txn->order[i]);
            }
            issueCacheOp(txn->ref.set, txn->order[i], false,
                         [this, txn](Cycle when) {
                ++txn->parallelArrived;
                const auto hit_pos =
                    static_cast<unsigned>(txn->parallelHitPos);
                if (txn->parallelHitPos >= 0
                    && txn->parallelArrived == hit_pos + 1) {
                    finishHit(txn, txn->order[hit_pos], hit_pos, when);
                } else if (txn->parallelHitPos < 0
                           && txn->parallelArrived == txn->orderCount) {
                    missConfirmed(txn, when);
                }
            }, false, txn->trace);
        }
        return;
    }

    // Serial / Predicted: chained probes.
    issueProbe(txn, 0);
}

void
DramCacheController::issueProbe(const std::shared_ptr<ReadTxn> &txn,
                                unsigned index)
{
    stats_.cacheReadTransfers.inc();
    if (txn->trace != trace_event::kNoTxn) {
        tracer_->point(txn->trace, trace_event::Point::ProbeIssue,
                       eq.now(), txn->order[index]);
    }
    issueCacheOp(txn->ref.set, txn->order[index], false,
                 [this, txn, index](Cycle when) {
        probeDone(txn, index, when);
    }, /* priority */ index > 0, txn->trace);
}

void
DramCacheController::probeDone(const std::shared_ptr<ReadTxn> &txn,
                               unsigned index, Cycle when)
{
    const unsigned way = txn->order[index];
    if (tags.valid(txn->ref.set, way)
        && tags.tag(txn->ref.set, way) == txn->ref.tag) {
        stats_.probesPerRead.sample(static_cast<double>(index + 1));
        finishHit(txn, way, index, when);
        return;
    }
    if (index + 1 < txn->orderCount) {
        issueProbe(txn, index + 1);
        return;
    }
    stats_.probesPerRead.sample(static_cast<double>(txn->orderCount));
    missConfirmed(txn, when);
}

void
DramCacheController::finishHit(const std::shared_ptr<ReadTxn> &txn,
                               unsigned way, unsigned probe_index,
                               Cycle when)
{
    stats_.readHits.hit();
    stats_.wayPrediction.add(probe_index == 0);
    stats_.readHitLatency.sample(static_cast<double>(when - txn->start));
    if (policy_)
        policy_->onHit(txn->ref, way);
    touchReplacement(txn->ref, way, /* timed */ true, txn->trace);
    dcp.record(txn->ref.line, way);
    --in_flight;
    if (txn->trace != trace_event::kNoTxn) {
        tracer_->point(txn->trace,
                       probe_index == 0
                           ? trace_event::Point::PredictCorrect
                           : trace_event::Point::PredictWrong,
                       when, way);
        tracer_->phaseEnd(txn->trace, trace_event::Phase::Lookup,
                          when);
        tracer_->complete(
            txn->trace,
            probe_index == 0
                ? trace_event::RequestClass::HitPredict
                : trace_event::RequestClass::HitMispredict,
            when);
    }
    if (txn->done)
        txn->done(true, when);
}

void
DramCacheController::missConfirmed(const std::shared_ptr<ReadTxn> &txn,
                                   Cycle when)
{
    stats_.readHits.miss();
    if (policy_)
        policy_->onMiss(txn->ref);
    stats_.nvmReads.inc();

    if (txn->trace != trace_event::kNoTxn) {
        tracer_->point(txn->trace, trace_event::Point::MissConfirm,
                       when);
        tracer_->phaseEnd(txn->trace, trace_event::Phase::Lookup,
                          when);
        tracer_->phaseBegin(txn->trace, trace_event::Phase::Nvm,
                            when);
    }

    nvm.readLine(txn->ref.line, [this, txn](Cycle nvm_done) {
        stats_.readMissLatency.sample(
            static_cast<double>(nvm_done - txn->start));
        --in_flight;
        if (txn->trace != trace_event::kNoTxn) {
            tracer_->phaseEnd(txn->trace, trace_event::Phase::Nvm,
                              nvm_done);
            tracer_->complete(txn->trace,
                              trace_event::RequestClass::Miss,
                              nvm_done);
        }
        if (txn->done)
            txn->done(false, nvm_done);

        // Fill off the critical path: functional install now, the
        // array write and any victim writeback are posted.  The fill
        // becomes its own trace transaction (the demand read already
        // completed) grouped over its array write and any victim
        // writeback.
        trace_event::TxnId fill_txn = trace_event::kNoTxn;
        auto member =
            beginFillGroup(txn->trace, txn->ref.line, fill_txn);
        const InstallResult fill = installLine(txn->ref);
        issueCacheOp(txn->ref.set, fill.way, true, member(), false,
                     fill_txn);
        if (fill.victimDirty)
            nvm.writeLine(fill.victimLine, member(), fill_txn);
    }, txn->trace);
}

void
DramCacheController::writeback(LineAddr line, trace_event::TxnId txn)
{
    writebackCommon(line, /* timed */ true,
                    tracer_ != nullptr ? txn : trace_event::kNoTxn);
}

// --------------------------------------------------------------------
// Writebacks (shared)
// --------------------------------------------------------------------

void
DramCacheController::writebackCommon(LineAddr line, bool timed,
                                     trace_event::TxnId txn)
{
    const bool is_ca = params.org == Organization::ColumnAssoc;

    // The transaction completes when its routed data write finishes
    // (straggling locate probes only add device events).
    dram::MemCallback complete_cb;
    if (txn != trace_event::kNoTxn) {
        complete_cb = [this, txn](Cycle when) {
            tracer_->complete(
                txn, trace_event::RequestClass::Writeback, when);
        };
    }
    const auto route_point = [this, txn](trace_event::Point point) {
        if (txn != trace_event::kNoTxn)
            tracer_->point(txn, point, eq.now());
    };

    if (params.dcpWayBits) {
        const auto dcp_way = dcp.lookup(line);
        bool present = false;
        std::uint64_t set = 0;
        unsigned way = 0;
        if (dcp_way) {
            if (is_ca) {
                const std::uint64_t primary = primarySlot(line);
                set = *dcp_way == 0 ? primary : pairSlot(primary);
                way = 0;
                present = slotHolds(set, line);
            } else {
                const auto ref = core::LineRef::make(line, geom);
                set = ref.set;
                way = *dcp_way;
                present = tags.valid(set, way)
                    && tags.tag(set, way) == ref.tag;
            }
            // A stale entry (the line moved between the fill that set
            // the L3's way bits and this writeback) falls back to the
            // memory path, like a lost presence bit would.
            if (!present)
                stats_.dcpStaleWritebacks.inc();
        }
        if (present) {
            tags.markDirty(set, way);
            stats_.cacheWriteTransfers.inc();
            stats_.writebacksToCache.inc();
            if (timed) {
                route_point(trace_event::Point::RoutedToCache);
                issueCacheOp(set, way, true, std::move(complete_cb),
                             false, txn);
            }
        } else {
            stats_.nvmWrites.inc();
            stats_.writebacksToNvm.inc();
            if (timed) {
                route_point(trace_event::Point::RoutedToNvm);
                nvm.writeLine(line, std::move(complete_cb), txn);
            }
        }
        return;
    }

    // No DCP way bits: a probe sequence locates the line (or confirms
    // absence) before the write can be routed.
    if (is_ca) {
        const std::uint64_t primary = primarySlot(line);
        const std::uint64_t secondary = pairSlot(primary);
        unsigned probes = 1;
        std::uint64_t target = primary;
        bool present = slotHolds(primary, line);
        if (!present) {
            probes = 2;
            target = secondary;
            present = slotHolds(secondary, line);
        }
        stats_.cacheReadTransfers.inc(probes);
        stats_.writebackProbeTransfers.inc(probes);
        if (timed) {
            for (unsigned i = 0; i < probes; ++i)
                issueCacheOp(i == 0 ? primary : secondary, 0, false,
                             nullptr, false, txn);
        }
        if (present) {
            tags.markDirty(target, 0);
            stats_.cacheWriteTransfers.inc();
            stats_.writebacksToCache.inc();
            if (timed) {
                route_point(trace_event::Point::RoutedToCache);
                issueCacheOp(target, 0, true, std::move(complete_cb),
                             false, txn);
            }
        } else {
            stats_.nvmWrites.inc();
            stats_.writebacksToNvm.inc();
            if (timed) {
                route_point(trace_event::Point::RoutedToNvm);
                nvm.writeLine(line, std::move(complete_cb), txn);
            }
        }
        return;
    }

    const auto ref = core::LineRef::make(line, geom);
    std::array<unsigned, 64> order;
    const unsigned count = probeOrder(ref, order);
    const int way = tags.findWay(ref.set, ref.tag);

    unsigned probes;
    if (way >= 0) {
        unsigned pos = 0;
        while (order[pos] != static_cast<unsigned>(way))
            ++pos;
        probes = pos + 1;
    } else {
        probes = count;
    }
    stats_.cacheReadTransfers.inc(probes);
    stats_.writebackProbeTransfers.inc(probes);
    if (timed) {
        for (unsigned i = 0; i < probes; ++i)
            issueCacheOp(ref.set, order[i], false, nullptr, false,
                         txn);
    }

    if (way >= 0) {
        tags.markDirty(ref.set, static_cast<unsigned>(way));
        stats_.cacheWriteTransfers.inc();
        stats_.writebacksToCache.inc();
        if (timed) {
            route_point(trace_event::Point::RoutedToCache);
            issueCacheOp(ref.set, static_cast<unsigned>(way), true,
                         std::move(complete_cb), false, txn);
        }
    } else {
        stats_.nvmWrites.inc();
        stats_.writebacksToNvm.inc();
        if (timed) {
            route_point(trace_event::Point::RoutedToNvm);
            nvm.writeLine(line, std::move(complete_cb), txn);
        }
    }
}

// --------------------------------------------------------------------
// Column-associative (CA-cache) organization
// --------------------------------------------------------------------

std::uint64_t
DramCacheController::primarySlot(LineAddr line) const
{
    return line & (geom.sets - 1);
}

std::uint64_t
DramCacheController::pairSlot(std::uint64_t slot) const
{
    return slot ^ ca_pair_mask;
}

bool
DramCacheController::slotHolds(std::uint64_t slot, LineAddr line) const
{
    // CA mode stores full line addresses as tags.
    return tags.valid(slot, 0) && tags.tag(slot, 0) == line;
}

void
DramCacheController::caSwap(std::uint64_t primary,
                            std::uint64_t secondary)
{
    const bool p_valid = tags.valid(primary, 0);
    const bool s_valid = tags.valid(secondary, 0);
    const std::uint64_t p_line = p_valid ? tags.tag(primary, 0) : 0;
    const std::uint64_t s_line = s_valid ? tags.tag(secondary, 0) : 0;
    const bool p_dirty = p_valid && tags.dirty(primary, 0);
    const bool s_dirty = s_valid && tags.dirty(secondary, 0);

    if (s_valid)
        tags.install(primary, 0, s_line, s_dirty);
    else
        tags.invalidate(primary, 0);
    if (p_valid)
        tags.install(secondary, 0, p_line, p_dirty);
    else
        tags.invalidate(secondary, 0);

    // Both slots are rewritten: two line transfers.
    stats_.cacheWriteTransfers.inc(2);
    stats_.swaps.inc();

    if (s_valid)
        dcp.record(s_line,
                   primarySlot(s_line) == primary ? 0u : 1u);
    if (p_valid)
        dcp.record(p_line,
                   primarySlot(p_line) == secondary ? 0u : 1u);
}

void
DramCacheController::caInstall(LineAddr line, std::uint64_t primary,
                               std::uint64_t secondary, bool timed,
                               trace_event::TxnId parent)
{
    // The posted install is one Fill trace transaction spanning the
    // relocation write, any victim writeback, and the fill write.
    trace_event::TxnId fill_txn = trace_event::kNoTxn;
    auto member = beginFillGroup(parent, line, fill_txn);

    // Displace the primary occupant to the secondary slot, evicting
    // whatever lived there; the new line always lands at primary.
    const bool old_valid = tags.valid(primary, 0);
    if (old_valid) {
        const std::uint64_t old_line = tags.tag(primary, 0);
        const bool old_dirty = tags.dirty(primary, 0);
        const TagStore::Victim evicted =
            tags.install(secondary, 0, old_line, old_dirty);
        stats_.cacheWriteTransfers.inc();   // the relocation write
        if (timed)
            issueCacheOp(secondary, 0, true, member(), false,
                         fill_txn);
        dcp.record(old_line,
                   primarySlot(old_line) == secondary ? 0u : 1u);
        if (evicted.valid) {
            dcp.erase(evicted.tag);
            if (evicted.dirty) {
                stats_.nvmWrites.inc();
                if (timed)
                    nvm.writeLine(evicted.tag, member(), fill_txn);
            }
        }
    }

    tags.install(primary, 0, line, false);
    stats_.cacheWriteTransfers.inc();       // the fill write
    if (timed)
        issueCacheOp(primary, 0, true, member(), false, fill_txn);
    dcp.record(line, 0);
}

bool
DramCacheController::warmReadCa(LineAddr line)
{
    const std::uint64_t primary = primarySlot(line);
    const std::uint64_t secondary = pairSlot(primary);

    stats_.cacheReadTransfers.inc();        // primary probe
    if (slotHolds(primary, line)) {
        stats_.probesPerRead.sample(1.0);
        stats_.readHits.hit();
        stats_.wayPrediction.add(true);
        dcp.record(line, 0);
        return true;
    }

    stats_.cacheReadTransfers.inc();        // secondary probe
    stats_.probesPerRead.sample(2.0);
    if (slotHolds(secondary, line)) {
        stats_.readHits.hit();
        stats_.wayPrediction.add(false);
        caSwap(primary, secondary);
        return true;
    }

    stats_.readHits.miss();
    stats_.nvmReads.inc();
    caInstall(line, primary, secondary, /* timed */ false);
    return false;
}

void
DramCacheController::readCa(LineAddr line, ReadDone done,
                            trace_event::TxnId trace)
{
    struct CaTxn
    {
        LineAddr line;
        std::uint64_t primary;
        std::uint64_t secondary;
        ReadDone done;
        Cycle start;
        trace_event::TxnId trace;
    };

    auto txn = std::make_shared<CaTxn>();
    txn->line = line;
    txn->primary = primarySlot(line);
    txn->secondary = pairSlot(txn->primary);
    txn->done = std::move(done);
    txn->start = eq.now();
    txn->trace = tracer_ != nullptr ? trace : trace_event::kNoTxn;
    ++in_flight;

    if (txn->trace != trace_event::kNoTxn) {
        tracer_->phaseBegin(txn->trace, trace_event::Phase::Lookup,
                            txn->start);
        tracer_->point(txn->trace, trace_event::Point::ProbeIssue,
                       txn->start, 0);
    }

    auto finish_hit = [this, txn](bool first_probe, Cycle when) {
        stats_.readHits.hit();
        stats_.wayPrediction.add(first_probe);
        stats_.probesPerRead.sample(first_probe ? 1.0 : 2.0);
        stats_.readHitLatency.sample(
            static_cast<double>(when - txn->start));
        --in_flight;
        if (txn->trace != trace_event::kNoTxn) {
            tracer_->point(txn->trace,
                           first_probe
                               ? trace_event::Point::PredictCorrect
                               : trace_event::Point::PredictWrong,
                           when, first_probe ? 0 : 1);
            tracer_->phaseEnd(txn->trace,
                              trace_event::Phase::Lookup, when);
            tracer_->complete(
                txn->trace,
                first_probe
                    ? trace_event::RequestClass::HitPredict
                    : trace_event::RequestClass::HitMispredict,
                when);
        }
        if (txn->done)
            txn->done(true, when);
    };

    stats_.cacheReadTransfers.inc();
    issueCacheOp(txn->primary, 0, false,
                 [this, txn, finish_hit](Cycle when) {
        if (slotHolds(txn->primary, txn->line)) {
            dcp.record(txn->line, 0);
            finish_hit(true, when);
            return;
        }
        stats_.cacheReadTransfers.inc();
        if (txn->trace != trace_event::kNoTxn) {
            tracer_->point(txn->trace,
                           trace_event::Point::ProbeIssue, when, 1);
        }
        issueCacheOp(txn->secondary, 0, false,
                     [this, txn, finish_hit](Cycle when2) {
            if (slotHolds(txn->secondary, txn->line)) {
                finish_hit(false, when2);
                // Swap-to-primary off the critical path.
                caSwap(txn->primary, txn->secondary);
                issueCacheOp(txn->primary, 0, true, nullptr, false,
                             txn->trace);
                issueCacheOp(txn->secondary, 0, true, nullptr, false,
                             txn->trace);
                return;
            }
            stats_.readHits.miss();
            stats_.probesPerRead.sample(2.0);
            stats_.nvmReads.inc();
            if (txn->trace != trace_event::kNoTxn) {
                tracer_->point(txn->trace,
                               trace_event::Point::MissConfirm,
                               when2);
                tracer_->phaseEnd(txn->trace,
                                  trace_event::Phase::Lookup, when2);
                tracer_->phaseBegin(txn->trace,
                                    trace_event::Phase::Nvm, when2);
            }
            nvm.readLine(txn->line, [this, txn](Cycle nvm_done) {
                stats_.readMissLatency.sample(
                    static_cast<double>(nvm_done - txn->start));
                --in_flight;
                if (txn->trace != trace_event::kNoTxn) {
                    tracer_->phaseEnd(txn->trace,
                                      trace_event::Phase::Nvm,
                                      nvm_done);
                    tracer_->complete(
                        txn->trace, trace_event::RequestClass::Miss,
                        nvm_done);
                }
                if (txn->done)
                    txn->done(false, nvm_done);
                caInstall(txn->line, txn->primary, txn->secondary,
                          /* timed */ true, txn->trace);
            }, txn->trace);
        }, /* priority */ true, txn->trace);
    }, false, txn->trace);
}

void
DramCacheController::resetStats()
{
    stats_.reset();
    hbm_.resetStats();
}

void
DramCacheStats::registerMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    const auto path = [&prefix](const char *name) {
        return MetricRegistry::join(prefix, name);
    };
    registry.addRatio(path("lookup"), readHits);
    registry.addRatio(path("way_prediction"), wayPrediction);
    registry.addCounter(path("xfer.cache_reads"), cacheReadTransfers);
    registry.addCounter(path("xfer.cache_writes"),
                        cacheWriteTransfers);
    registry.addCounter(path("nvm_reads"), nvmReads);
    registry.addCounter(path("nvm_writes"), nvmWrites);
    registry.addCounter(path("wb.to_cache"), writebacksToCache);
    registry.addCounter(path("wb.to_nvm"), writebacksToNvm);
    registry.addCounter(path("wb.probe_transfers"),
                        writebackProbeTransfers);
    registry.addCounter(path("wb.dcp_stale"), dcpStaleWritebacks);
    registry.addCounter(path("ca_swaps"), swaps);
    registry.addCounter(path("replacement_update_writes"),
                        replacementUpdateWrites);
    registry.addAverage(path("probes_per_read"), probesPerRead);
    registry.addAverage(path("read_hit_latency"), readHitLatency);
    registry.addAverage(path("read_miss_latency"), readMissLatency);
    registry.addGauge(path("transfers_per_read"),
                      [this] { return transfersPerRead(); });
}

void
DramCacheController::registerMetrics(MetricRegistry &registry,
                                     const std::string &prefix) const
{
    stats_.registerMetrics(registry, prefix);
    if (policy_) {
        policy_->registerMetrics(
            registry, MetricRegistry::join(prefix, "policy"));
    }
}

} // namespace accord::dramcache

#include "dramcache/controller.hpp"

#include <algorithm>
#include <typeinfo>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/trace_event/tracer.hpp"
#include "dramcache/access_plan.hpp"
#include "dramcache/audit.hpp"
#include "dramcache/org_setassoc.hpp"

namespace accord::dramcache
{

namespace
{

/** Shrink channel/bank counts so a small (test-sized) cache still maps
 *  onto the device cleanly; full-sized configs are unchanged. */
dram::TimingParams
fitTiming(dram::TimingParams timing, std::uint64_t capacity)
{
    timing.capacityBytes = capacity;
    while (timing.channels > 1
           && capacity % (static_cast<std::uint64_t>(timing.channels)
                          * timing.banksPerChannel * timing.rowBytes)
               != 0) {
        if (timing.banksPerChannel > 1)
            timing.banksPerChannel /= 2;
        else
            timing.channels /= 2;
    }
    return timing;
}

/** Resolve the params' organization name against the registry. */
const OrgFactory *
resolveOrgFactory(const DramCacheParams &params)
{
    registerBuiltinOrganizations();
    const std::string name =
        params.orgName.empty() ? toToken(params.org) : params.orgName;
    const OrgFactory *factory = organizationRegistry().find(name);
    if (factory == nullptr) {
        std::string known;
        for (const auto &entry : organizationRegistry().names())
            known += (known.empty() ? "" : ", ") + entry;
        fatal("dram cache: unknown organization '%s' (registered: %s)",
              name.c_str(), known.c_str());
    }
    return factory;
}

} // namespace

double
DramCacheStats::transfersPerRead() const
{
    const std::uint64_t reads = readHits.total();
    if (reads == 0)
        return 0.0;
    return static_cast<double>(cacheReadTransfers.value()
                               + cacheWriteTransfers.value())
        / static_cast<double>(reads);
}

void
DramCacheStats::reset()
{
    readHits.reset();
    wayPrediction.reset();
    cacheReadTransfers.reset();
    cacheWriteTransfers.reset();
    nvmReads.reset();
    nvmWrites.reset();
    writebacksToCache.reset();
    writebacksToNvm.reset();
    writebackProbeTransfers.reset();
    dcpStaleWritebacks.reset();
    swaps.reset();
    replacementUpdateWrites.reset();
    probesPerRead.reset();
    readHitLatency.reset();
    readMissLatency.reset();
}

DramCacheController::DramCacheController(
    const DramCacheParams &params,
    std::unique_ptr<core::WayPolicy> policy, dram::TimingParams timing,
    EventQueue &eq, nvm::NvmSystem &nvm)
    : params(params), org_factory_(resolveOrgFactory(this->params)),
      geom(org_factory_->geometry(this->params)),
      policy_(std::move(policy)), eq(eq), nvm(nvm),
      hbm_(fitTiming(timing, params.capacityBytes), eq),
      layout(geom, hbm_.params(), params.layout),
      tags(geom, params.stateBackend),
      audit_countdown(params.auditInterval)
{
    // The plan core owns the probe bound: any organization a factory
    // produces must fit its probe sequences in kMaxWays steps.
    ACCORD_ASSERT(geom.ways >= 1 && geom.ways <= kMaxWays,
                  "organization geometry exceeds the plan-core bound");
    org_ = org_factory_->make(OrgContext{this->params, geom, tags, dcp,
                                         stats_, policy_.get(), *this});
    // Exact-type check, not dynamic_cast: a registry plug-in derived
    // from SetAssocOrg must keep virtual dispatch so its overrides
    // run; only the built-in itself takes the qualified-call path.
    setassoc_ = typeid(*org_) == typeid(SetAssocOrg)
        ? static_cast<SetAssocOrg *>(org_.get())
        : nullptr;
}

DramCacheController::~DramCacheController() = default;

void
DramCacheController::auditWindow(InvariantAuditor &auditor,
                                 std::uint64_t firstSet,
                                 std::uint64_t lastSet) const
{
    auditTagStoreRange(tags, auditor, firstSet, lastSet);
    org_->auditRange(auditor, firstSet, lastSet);
    // In-flight transactions sample some counters at issue and others
    // at completion, so the identities only hold at quiescence.
    if (quiesced())
        auditStats(stats_, auditor);
}

void
DramCacheController::audit(InvariantAuditor &auditor) const
{
    auditTagStore(tags, auditor);
    org_->auditFull(auditor);
    // In-flight transactions sample some counters at issue and others
    // at completion, so the identities only hold at quiescence.
    if (quiesced())
        auditStats(stats_, auditor);
}

void
DramCacheController::maybeAudit()
{
    if (params.auditInterval == 0 || --audit_countdown != 0)
        return;
    audit_countdown = params.auditInterval;
    InvariantAuditor auditor;
    // One bounded slice per firing, rotating through the array, so
    // the amortized audit cost stays O(1) per demand read no matter
    // the cache size (a full sweep here made Debug runs ~30x slower).
    constexpr std::uint64_t window = 1024;
    const std::uint64_t first = audit_cursor;
    const std::uint64_t last = std::min(first + window, geom.sets);
    audit_cursor = last >= geom.sets ? 0 : last;
    auditWindow(auditor, first, last);
    auditor.enforce(describe().c_str());
}

std::string
DramCacheController::describe() const
{
    return org_->describe();
}

ACCORD_HOT void
DramCacheController::cacheOp(std::uint64_t set, unsigned way,
                             bool is_write,
                             dram::MemCallback on_complete,
                             bool priority, trace_event::TxnId txn)
{
    dram::MemOp op;
    op.loc = layout.locate(set, way);
    op.isWrite = is_write;
    op.priority = priority;
    op.onComplete = std::move(on_complete);
    op.txn = txn;
    hbm_.enqueue(std::move(op));
}

ACCORD_HOT void
DramCacheController::nvmWrite(LineAddr line,
                              dram::MemCallback on_complete,
                              trace_event::TxnId txn)
{
    nvm.writeLine(line, std::move(on_complete), txn);
}

void
DramCacheController::attachTracer(trace_event::Tracer &tracer)
{
    tracer_ = &tracer;
    hbm_.attachTracer(tracer, trace_event::Device::Dram);
}

std::function<dram::MemCallback()>
DramCacheController::beginFillGroup(trace_event::TxnId parent,
                                    LineAddr line,
                                    trace_event::TxnId &fill_txn)
{
    fill_txn = trace_event::kNoTxn;
    if (tracer_ == nullptr || parent == trace_event::kNoTxn)
        return [] { return dram::MemCallback{}; };

    fill_txn = tracer_->begin(trace_event::TxnKind::Fill,
                              trace_event::kNoCore, line, eq.now());
    // All member ops are registered synchronously inside the current
    // event, so the counter cannot hit zero before the group is fully
    // built.
    // accord-lint: allow(hot-alloc) fill groups exist only on traced
    // runs, which trade throughput for attribution by design
    auto remaining = std::make_shared<unsigned>(0);
    const trace_event::TxnId id = fill_txn;
    return [this, id, remaining]() -> dram::MemCallback {
        ++*remaining;
        return [this, id, remaining](Cycle when) {
            if (--*remaining == 0) {
                tracer_->complete(
                    id, trace_event::RequestClass::Fill, when);
            }
        };
    };
}

// --------------------------------------------------------------------
// Functional (untimed) path
// --------------------------------------------------------------------

ACCORD_HOT bool
DramCacheController::warmRead(LineAddr line)
{
#if ACCORD_CHECKS_ENABLED
    maybeAudit();
#endif
    const AccessPlan plan = org_->planRead(line);
    const HitLocation loc = resolve(plan, tags);

    if (loc.index >= 0) {
        const auto index = static_cast<unsigned>(loc.index);
        const unsigned transfers = plan.hitTransfers(index);
        stats_.cacheReadTransfers.inc(transfers);
        stats_.probesPerRead.sample(static_cast<double>(transfers));
        stats_.readHits.hit();
        stats_.wayPrediction.add(AccessPlan::predictedAt(index));
        HitContext hit;
        hit.line = line;
        hit.set = plan.probes[index].set;
        hit.way = loc.way;
        hit.probeIndex = index;
        hit.timed = false;
        org_->onReadHit(hit);
        org_->afterReadHit(hit);
        return true;
    }

    const unsigned transfers = plan.missTransfers();
    stats_.cacheReadTransfers.inc(transfers);
    stats_.probesPerRead.sample(static_cast<double>(transfers));
    stats_.readHits.miss();
    org_->onReadMiss(plan.ref);
    stats_.nvmReads.inc();
    org_->installAfterMiss(line, /* timed */ false,
                           trace_event::kNoTxn);
    return false;
}

ACCORD_HOT void
DramCacheController::warmWriteback(LineAddr line)
{
    writebackCommon(line, /* timed */ false);
}

void
DramCacheController::writeback(LineAddr line, trace_event::TxnId txn)
{
    writebackCommon(line, /* timed */ true,
                    tracer_ != nullptr ? txn : trace_event::kNoTxn);
}

// --------------------------------------------------------------------
// Writebacks (shared)
// --------------------------------------------------------------------

ACCORD_HOT void
DramCacheController::writebackCommon(LineAddr line, bool timed,
                                     trace_event::TxnId txn)
{
    // The transaction completes when its routed data write finishes
    // (straggling locate probes only add device events).
    dram::MemCallback complete_cb;
    if (txn != trace_event::kNoTxn) {
        complete_cb = [this, txn](Cycle when) {
            tracer_->complete(
                txn, trace_event::RequestClass::Writeback, when);
        };
    }
    const auto route_point = [this, txn](trace_event::Point point) {
        if (txn != trace_event::kNoTxn)
            tracer_->point(txn, point, eq.now());
    };

    DcpTarget target;
    if (params.dcpWayBits) {
        const auto dcp_way = dcp.lookup(line);
        if (dcp_way) {
            target = org_->dcpTarget(line, *dcp_way);
            // A stale entry (the line moved between the fill that set
            // the L3's way bits and this writeback) falls back to the
            // memory path, like a lost presence bit would.
            if (!target.present)
                stats_.dcpStaleWritebacks.inc();
        }
    } else {
        // No DCP way bits: a probe sequence locates the line (or
        // confirms absence) before the write can be routed.
        const AccessPlan plan = org_->planDemandLocate(line);
        const HitLocation loc = resolve(plan, tags);
        const unsigned probes = loc.index >= 0
            ? static_cast<unsigned>(loc.index) + 1
            : plan.probeCount;
        stats_.cacheReadTransfers.inc(probes);
        stats_.writebackProbeTransfers.inc(probes);
        if (timed) {
            for (unsigned i = 0; i < probes; ++i)
                cacheOp(plan.probes[i].set, plan.probes[i].way, false,
                        {}, false, txn);
        }
        if (loc.index >= 0) {
            target.set = plan.probes[loc.index].set;
            target.way = plan.probes[loc.index].way;
            target.present = true;
        }
    }

    if (target.present) {
        tags.markDirty(target.set, target.way);
        stats_.cacheWriteTransfers.inc();
        stats_.writebacksToCache.inc();
        if (timed) {
            route_point(trace_event::Point::RoutedToCache);
            cacheOp(target.set, target.way, true, std::move(complete_cb),
                    false, txn);
        }
    } else {
        stats_.nvmWrites.inc();
        stats_.writebacksToNvm.inc();
        if (timed) {
            route_point(trace_event::Point::RoutedToNvm);
            nvm.writeLine(line, std::move(complete_cb), txn);
        }
    }
}

void
DramCacheController::resetStats()
{
    ACCORD_ASSERT(!stats_excluded_,
                  "resetStats() inside a stats-exclusion window");
    stats_.reset();
    hbm_.resetStats();
}

void
DramCacheController::beginStatsExclusion()
{
    ACCORD_ASSERT(!stats_excluded_, "stats exclusion cannot nest");
    excluded_saved_ = stats_;
    stats_excluded_ = true;
}

void
DramCacheController::endStatsExclusion()
{
    ACCORD_ASSERT(stats_excluded_,
                  "endStatsExclusion() without begin");
    stats_ = excluded_saved_;
    stats_excluded_ = false;
}

void
DramCacheStats::registerMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    const auto path = [&prefix](const char *name) {
        return MetricRegistry::join(prefix, name);
    };
    registry.addRatio(path("lookup"), readHits);
    registry.addRatio(path("way_prediction"), wayPrediction);
    registry.addCounter(path("xfer.cache_reads"), cacheReadTransfers);
    registry.addCounter(path("xfer.cache_writes"),
                        cacheWriteTransfers);
    registry.addCounter(path("nvm_reads"), nvmReads);
    registry.addCounter(path("nvm_writes"), nvmWrites);
    registry.addCounter(path("wb.to_cache"), writebacksToCache);
    registry.addCounter(path("wb.to_nvm"), writebacksToNvm);
    registry.addCounter(path("wb.probe_transfers"),
                        writebackProbeTransfers);
    registry.addCounter(path("wb.dcp_stale"), dcpStaleWritebacks);
    registry.addCounter(path("ca_swaps"), swaps);
    registry.addCounter(path("replacement_update_writes"),
                        replacementUpdateWrites);
    registry.addAverage(path("probes_per_read"), probesPerRead);
    registry.addAverage(path("read_hit_latency"), readHitLatency);
    registry.addAverage(path("read_miss_latency"), readMissLatency);
    registry.addGauge(path("transfers_per_read"),
                      [this] { return transfersPerRead(); });
}

void
DramCacheController::registerMetrics(MetricRegistry &registry,
                                     const std::string &prefix) const
{
    stats_.registerMetrics(registry, prefix);
    if (policy_) {
        policy_->registerMetrics(
            registry, MetricRegistry::join(prefix, "policy"));
    }
}

} // namespace accord::dramcache

#include "dramcache/layout.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace accord::dramcache
{

CacheLayout::CacheLayout(const core::CacheGeometry &geom,
                         const dram::TimingParams &timing,
                         LayoutMode mode)
    : mode_(mode), ways(geom.ways)
{
    lines_per_row = timing.rowBytes / lineSize;
    if (lines_per_row < geom.ways)
        fatal("cache layout: %u ways do not fit a %llu-byte row",
              geom.ways,
              static_cast<unsigned long long>(timing.rowBytes));
    sets_per_row = lines_per_row / geom.ways;
    ACCORD_ASSERT(isPow2(sets_per_row), "sets per row must be pow2");

    const std::uint64_t device_lines = timing.capacityBytes / lineSize;
    if (geom.lines() != device_lines)
        fatal("cache layout: geometry holds %llu lines but the device "
              "has %llu",
              static_cast<unsigned long long>(geom.lines()),
              static_cast<unsigned long long>(device_lines));

    channel_bits = floorLog2(timing.channels);
    bank_bits = floorLog2(timing.banksPerChannel);
    sets_per_row_bits = floorLog2(sets_per_row);
}

dram::PhysLoc
CacheLayout::locate(std::uint64_t set, unsigned way) const
{
    dram::PhysLoc loc;
    if (mode_ == LayoutMode::WayStriped) {
        // Treat (set, way) as a flat line index and interleave it
        // like main memory: the ways of one set scatter over
        // channels/banks/rows.
        const std::uint64_t index = set * ways + way;
        loc.channel =
            static_cast<unsigned>(bits(index, 0, channel_bits));
        std::uint64_t rest = index >> channel_bits;
        rest /= lines_per_row;
        loc.bank = static_cast<unsigned>(bits(rest, 0, bank_bits));
        loc.row = rest >> bank_bits;
        return loc;
    }

    loc.channel = static_cast<unsigned>(bits(set, 0, channel_bits));
    std::uint64_t rest = set >> channel_bits;
    // Consecutive (per-channel) sets pack into one row first, so a
    // streaming region enjoys row-buffer hits; all ways of the set
    // share this row.
    rest >>= sets_per_row_bits;
    loc.bank = static_cast<unsigned>(bits(rest, 0, bank_bits));
    loc.row = rest >> bank_bits;
    return loc;
}

} // namespace accord::dramcache

/** @file Unit tests for the set -> DRAM-array layout. */

#include <gtest/gtest.h>

#include <set>

#include "dramcache/layout.hpp"

using namespace accord;
using namespace accord::dramcache;

namespace
{

dram::TimingParams
device(std::uint64_t capacity, unsigned channels = 4,
       unsigned banks = 4)
{
    dram::TimingParams p;
    p.channels = channels;
    p.banksPerChannel = banks;
    p.rowBytes = 2048;
    p.capacityBytes = capacity;
    return p;
}

core::CacheGeometry
geom(unsigned ways, std::uint64_t capacity)
{
    core::CacheGeometry g;
    g.ways = ways;
    g.sets = capacity / lineSize / ways;
    return g;
}

} // namespace

TEST(Layout, SetsPerRowMatchesGeometry)
{
    const std::uint64_t cap = 4ULL << 20;
    // 2KB row = 32 line units; 2-way -> 16 sets per row.
    CacheLayout layout(geom(2, cap), device(cap));
    EXPECT_EQ(layout.setsPerRow(), 16u);
    CacheLayout layout8(geom(8, cap), device(cap));
    EXPECT_EQ(layout8.setsPerRow(), 4u);
}

TEST(Layout, ConsecutiveSetsStripeChannels)
{
    const std::uint64_t cap = 4ULL << 20;
    CacheLayout layout(geom(2, cap), device(cap));
    for (std::uint64_t set = 0; set < 16; ++set)
        EXPECT_EQ(layout.locate(set).channel, set % 4);
}

TEST(Layout, SetsSharingARowMapIdentically)
{
    const std::uint64_t cap = 4ULL << 20;
    CacheLayout layout(geom(2, cap), device(cap));
    // Per channel, 16 consecutive sets share a row: sets 0, 4, 8, ...
    // 60 are the 16 channel-0 sets of row 0.
    const auto first = layout.locate(0);
    for (std::uint64_t i = 1; i < 16; ++i) {
        const auto loc = layout.locate(i * 4);
        EXPECT_EQ(loc.channel, first.channel);
        EXPECT_EQ(loc.bank, first.bank);
        EXPECT_EQ(loc.row, first.row);
    }
    // The 17th set of the channel moves to a new row.
    EXPECT_FALSE(layout.locate(16 * 4) == first);
}

TEST(Layout, CoversDeviceWithoutOverflow)
{
    const std::uint64_t cap = 4ULL << 20;
    const auto dev = device(cap);
    CacheLayout layout(geom(2, cap), dev);
    const auto g = geom(2, cap);
    std::set<std::tuple<unsigned, unsigned, std::uint64_t>> rows;
    for (std::uint64_t set = 0; set < g.sets; ++set) {
        const auto loc = layout.locate(set);
        EXPECT_LT(loc.channel, dev.channels);
        EXPECT_LT(loc.bank, dev.banksPerChannel);
        EXPECT_LT(loc.row, dev.rowsPerBank());
        rows.insert({loc.channel, loc.bank, loc.row});
    }
    // Every row holds setsPerRow sets; all rows used exactly.
    EXPECT_EQ(rows.size(), g.sets / layout.setsPerRow());
}

TEST(Layout, RowSharedByAllWaysOfASet)
{
    // Structural by construction (one locate() per set), but verify
    // the ways fit: a row must hold ways * setsPerRow line units.
    const std::uint64_t cap = 1ULL << 20;
    const auto dev = device(cap, 2, 2);
    for (unsigned ways : {1u, 2u, 4u, 8u, 16u, 32u}) {
        CacheLayout layout(geom(ways, cap), dev);
        EXPECT_EQ(layout.setsPerRow() * ways,
                  dev.rowBytes / lineSize);
    }
}

TEST(LayoutStriped, WaysOfASetSpreadAcrossChannels)
{
    const std::uint64_t cap = 4ULL << 20;
    CacheLayout layout(geom(4, cap), device(cap),
                       LayoutMode::WayStriped);
    // Consecutive ways of set 0 land in consecutive channels.
    for (unsigned way = 0; way < 4; ++way)
        EXPECT_EQ(layout.locate(0, way).channel, way % 4);
}

TEST(LayoutStriped, StaysWithinGeometry)
{
    const std::uint64_t cap = 4ULL << 20;
    const auto dev = device(cap);
    const auto g = geom(4, cap);
    CacheLayout layout(g, dev, LayoutMode::WayStriped);
    for (std::uint64_t set = 0; set < g.sets; set += 97) {
        for (unsigned way = 0; way < 4; ++way) {
            const auto loc = layout.locate(set, way);
            EXPECT_LT(loc.channel, dev.channels);
            EXPECT_LT(loc.bank, dev.banksPerChannel);
            EXPECT_LT(loc.row, dev.rowsPerBank());
        }
    }
}

TEST(LayoutStriped, DistinctWaysDistinctLocations)
{
    const std::uint64_t cap = 4ULL << 20;
    CacheLayout layout(geom(8, cap), device(cap),
                       LayoutMode::WayStriped);
    for (std::uint64_t set = 0; set < 64; ++set) {
        std::set<std::tuple<unsigned, unsigned, std::uint64_t>> locs;
        for (unsigned way = 0; way < 8; ++way) {
            const auto loc = layout.locate(set, way);
            locs.insert({loc.channel, loc.bank, loc.row});
        }
        // Ways spread over at least several distinct locations.
        EXPECT_GE(locs.size(), 4u);
    }
}

TEST(LayoutDeath, CapacityMismatchIsFatal)
{
    const std::uint64_t cap = 4ULL << 20;
    EXPECT_EXIT(CacheLayout(geom(2, cap / 2), device(cap)),
                ::testing::ExitedWithCode(1), "lines");
}

TEST(LayoutDeath, TooManyWaysForRowIsFatal)
{
    const std::uint64_t cap = 4ULL << 20;
    core::CacheGeometry g;
    g.ways = 64;    // 64 * 64B = 4KB > 2KB row
    g.sets = cap / lineSize / g.ways;
    EXPECT_EXIT(CacheLayout(g, device(cap)),
                ::testing::ExitedWithCode(1), "row");
}

/** @file Unit tests for the DRAM-cache tag store. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dramcache/tag_store.hpp"

using namespace accord;
using namespace accord::dramcache;

namespace
{

core::CacheGeometry
geom(unsigned ways, std::uint64_t sets = 64)
{
    core::CacheGeometry g;
    g.ways = ways;
    g.sets = sets;
    return g;
}

} // namespace

TEST(TagStore, StartsEmpty)
{
    TagStore tags(geom(2));
    EXPECT_EQ(tags.occupancy(), 0u);
    EXPECT_EQ(tags.findWay(0, 5), -1);
    EXPECT_FALSE(tags.valid(0, 0));
}

TEST(TagStore, InstallAndFind)
{
    TagStore tags(geom(2));
    const auto victim = tags.install(3, 1, 0x77, false);
    EXPECT_FALSE(victim.valid);
    EXPECT_EQ(tags.findWay(3, 0x77), 1);
    EXPECT_EQ(tags.occupancy(), 1u);
    EXPECT_FALSE(tags.dirty(3, 1));
}

TEST(TagStore, InstallReportsVictim)
{
    TagStore tags(geom(2));
    tags.install(3, 1, 0x77, true);
    const auto victim = tags.install(3, 1, 0x88, false);
    EXPECT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
    EXPECT_EQ(victim.tag, 0x77u);
    EXPECT_EQ(tags.occupancy(), 1u);
}

TEST(TagStore, MarkDirty)
{
    TagStore tags(geom(2));
    tags.install(0, 0, 1, false);
    tags.markDirty(0, 0);
    EXPECT_TRUE(tags.dirty(0, 0));
}

TEST(TagStore, Invalidate)
{
    TagStore tags(geom(2));
    tags.install(0, 0, 1, false);
    tags.invalidate(0, 0);
    EXPECT_EQ(tags.findWay(0, 1), -1);
    EXPECT_EQ(tags.occupancy(), 0u);
    tags.invalidate(0, 0);      // idempotent
    EXPECT_EQ(tags.occupancy(), 0u);
}

TEST(TagStore, LineAtRoundTrip)
{
    const auto g = geom(4, 256);
    TagStore tags(g);
    const LineAddr line = 0xABCDE;
    const auto ref = core::LineRef::make(line, g);
    tags.install(ref.set, 2, ref.tag, false);
    EXPECT_EQ(tags.lineAt(ref.set, 2), line);
}

TEST(TagStore, WaysAreIndependent)
{
    TagStore tags(geom(4));
    for (unsigned way = 0; way < 4; ++way)
        tags.install(5, way, 100 + way, way % 2 == 1);
    for (unsigned way = 0; way < 4; ++way) {
        EXPECT_EQ(tags.findWay(5, 100 + way), static_cast<int>(way));
        EXPECT_EQ(tags.dirty(5, way), way % 2 == 1);
    }
    EXPECT_EQ(tags.occupancy(), 4u);
}

TEST(TagStore, SetsAreIndependent)
{
    TagStore tags(geom(1, 16));
    tags.install(3, 0, 9, false);
    EXPECT_EQ(tags.findWay(4, 9), -1);
}

TEST(TagStoreDeath, MarkDirtyInvalidPanics)
{
    TagStore tags(geom(2));
    EXPECT_DEATH(tags.markDirty(0, 0), "invalid");
}

TEST(TagStoreDeath, OutOfRangeWayPanics)
{
    TagStore tags(geom(2));
    EXPECT_DEATH(tags.install(0, 2, 1, false), "out of range");
}

/** Property sweep over geometries: occupancy accounting is exact. */
class TagStoreGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(TagStoreGeometry, OccupancyExactUnderChurn)
{
    const auto [ways, set_bits] = GetParam();
    const auto g = geom(ways, 1ULL << set_bits);
    TagStore tags(g);
    Rng rng(5);
    std::uint64_t expected = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t set = rng.below(g.sets);
        const unsigned way = static_cast<unsigned>(rng.below(ways));
        if (rng.chance(0.8)) {
            const auto victim =
                tags.install(set, way, rng.next() & 0xffff, false);
            if (!victim.valid)
                ++expected;
        } else {
            if (tags.valid(set, way))
                --expected;
            tags.invalidate(set, way);
        }
        ASSERT_EQ(tags.occupancy(), expected);
    }
    EXPECT_LE(tags.occupancy(), g.lines());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagStoreGeometry,
    ::testing::Values(std::make_pair(1u, 4u), std::make_pair(2u, 6u),
                      std::make_pair(4u, 8u), std::make_pair(8u, 10u)));

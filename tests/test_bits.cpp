/** @file Unit tests for common/bits.hpp. */

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/types.hpp"

using namespace accord;

TEST(Bits, ExtractBasic)
{
    EXPECT_EQ(bits(0xABCDULL, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCDULL, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCDULL, 8, 8), 0xABu);
    EXPECT_EQ(bits(0xABCDULL, 0, 16), 0xABCDu);
}

TEST(Bits, ExtractZeroWidth)
{
    EXPECT_EQ(bits(0xFFFFULL, 3, 0), 0u);
}

TEST(Bits, ExtractFullWidth)
{
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
    EXPECT_EQ(bits(~0ULL, 1, 64), ~0ULL >> 1);
}

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 40));
    EXPECT_FALSE(isPow2((1ULL << 40) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1ULL << 63), 63u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
}

TEST(Bits, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(0, 8), 0u);
    EXPECT_EQ(roundUpPow2(1, 8), 8u);
    EXPECT_EQ(roundUpPow2(8, 8), 8u);
    EXPECT_EQ(roundUpPow2(9, 8), 16u);
}

TEST(Bits, Mix64Deterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Bits, Mix64SpreadsLowBits)
{
    // Consecutive inputs should not produce consecutive outputs.
    int same_low_byte = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        if ((mix64(i) & 0xff) == (mix64(i + 1) & 0xff))
            ++same_low_byte;
    }
    EXPECT_LT(same_low_byte, 16);
}

/** Property sweep: floorLog2/ceilLog2 consistency across powers. */
class Log2Property : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Log2Property, PowerOfTwoRoundTrip)
{
    const unsigned shift = GetParam();
    const std::uint64_t value = 1ULL << shift;
    EXPECT_EQ(floorLog2(value), shift);
    EXPECT_EQ(ceilLog2(value), shift);
    if (shift > 1) {
        EXPECT_EQ(floorLog2(value + 1), shift);
        EXPECT_EQ(ceilLog2(value + 1), shift + 1);
        EXPECT_EQ(floorLog2(value - 1), shift - 1);
        EXPECT_EQ(ceilLog2(value - 1), shift);
    }
}

INSTANTIATE_TEST_SUITE_P(AllShifts, Log2Property,
                         ::testing::Values(1u, 2u, 3u, 7u, 12u, 20u,
                                           31u, 32u, 47u, 62u));

TEST(Types, LineAndRegionConversions)
{
    const Addr addr = 0x12345678;
    EXPECT_EQ(lineOf(addr), addr >> 6);
    EXPECT_EQ(byteOf(lineOf(addr)), addr & ~0x3fULL);
    EXPECT_EQ(regionOf(lineOf(addr)), addr >> 12);
    EXPECT_EQ(linesPerRegion, 64u);
}

TEST(Types, WritebackTypePredicate)
{
    EXPECT_TRUE(isWritebackType(AccessType::Writeback));
    EXPECT_FALSE(isWritebackType(AccessType::Read));
    EXPECT_FALSE(isWritebackType(AccessType::Write));
}

/** @file Unit tests for the named workload models. */

#include <gtest/gtest.h>

#include <set>

#include "trace/workloads.hpp"

using namespace accord;
using namespace accord::trace;

TEST(Workloads, SuiteCompositionMatchesPaper)
{
    int spec = 0, gap = 0, hpc = 0;
    for (const auto &s : allBenchmarks()) {
        if (s.suite == "spec")
            ++spec;
        else if (s.suite == "gap")
            ++gap;
        else if (s.suite == "hpc")
            ++hpc;
    }
    // Section VI-A: 29 SPEC + 6 GAP + 1 HPC (+ 10 mixes).
    EXPECT_EQ(spec, 29);
    EXPECT_EQ(gap, 6);
    EXPECT_EQ(hpc, 1);
    EXPECT_EQ(allWorkloadNames().size(), 46u);
}

TEST(Workloads, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &s : allBenchmarks())
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
}

TEST(Workloads, MainSetHas21InFigureOrder)
{
    const auto main = mainWorkloadNames();
    EXPECT_EQ(main.size(), 21u);
    EXPECT_EQ(main.front(), "milc");
    EXPECT_EQ(main[16], "soplex");
    EXPECT_EQ(main.back(), "mix4");
    for (const auto &name : main) {
        if (!isMix(name))
            EXPECT_TRUE(findBenchmark(name).sensitiveSet) << name;
    }
}

TEST(Workloads, IsMixRecognizesMixNames)
{
    EXPECT_TRUE(isMix("mix1"));
    EXPECT_TRUE(isMix("mix10"));
    EXPECT_FALSE(isMix("milc"));
    EXPECT_FALSE(isMix("mix"));
}

TEST(Workloads, FindBenchmarkDeathOnUnknown)
{
    EXPECT_EXIT(findBenchmark("quake"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Workloads, RateModeReplicatesOneSpec)
{
    const auto assignment = coreAssignment("libq", 16);
    ASSERT_EQ(assignment.size(), 16u);
    for (const auto *spec : assignment)
        EXPECT_EQ(spec->name, "libq");
}

TEST(Workloads, MixesUseHighMpkiSpecOnly)
{
    for (int mix = 1; mix <= 10; ++mix) {
        const auto assignment =
            coreAssignment("mix" + std::to_string(mix), 16);
        ASSERT_EQ(assignment.size(), 16u);
        for (const auto *spec : assignment) {
            EXPECT_EQ(spec->suite, "spec");
            EXPECT_GE(spec->mpki, 2.0);
        }
    }
}

TEST(Workloads, MixesDiffer)
{
    const auto m1 = coreAssignment("mix1", 16);
    const auto m2 = coreAssignment("mix2", 16);
    int same = 0;
    for (unsigned i = 0; i < 16; ++i)
        same += m1[i]->name == m2[i]->name ? 1 : 0;
    EXPECT_LT(same, 16);
}

TEST(Workloads, GeneratorParamsScaleFootprint)
{
    const auto &spec = findBenchmark("soplex");
    const auto p64 = generatorParams(spec, 0, 16, 64, 1);
    const auto p128 = generatorParams(spec, 0, 16, 128, 1);
    EXPECT_NEAR(static_cast<double>(p64.footprintLines)
                    / static_cast<double>(p128.footprintLines),
                2.0, 0.05);
}

TEST(Workloads, GeneratorParamsSeparateCores)
{
    const auto &spec = findBenchmark("gcc");
    const auto a = generatorParams(spec, 0, 16, 64, 1);
    const auto b = generatorParams(spec, 1, 16, 64, 1);
    EXPECT_NE(a.salt, b.salt);
    EXPECT_NE(a.seed, b.seed);
}

TEST(Workloads, GeneratorParamsFloorTinyFootprints)
{
    const auto &spec = findBenchmark("povray");    // 50MB total
    const auto p = generatorParams(spec, 0, 16, 4096, 1);
    EXPECT_GE(p.footprintLines, linesPerRegion * 4);
}

TEST(Workloads, LocalityClassesArePreserved)
{
    // The GWS story depends on these classes (Fig 7): streaming
    // workloads have long runs, graph workloads have unit runs.
    EXPECT_GE(findBenchmark("libq").hotRunLen, 32u);
    EXPECT_GE(findBenchmark("nekbone").hotRunLen, 32u);
    EXPECT_EQ(findBenchmark("mcf").hotRunLen, 1u);
    EXPECT_LE(findBenchmark("pr_twi").hotRunLen, 2u);
}

TEST(Workloads, FootprintsExceedRegionGranularity)
{
    for (const auto &s : allBenchmarks())
        EXPECT_GT(s.footprintGB, 0.0) << s.name;
}

/** @file Unit tests for the NVM main-memory wrapper. */

#include <gtest/gtest.h>

#include "common/event_queue.hpp"
#include "nvm/nvm_system.hpp"

using namespace accord;
using namespace accord::nvm;

TEST(Nvm, ReadCompletesWithPcmLatency)
{
    EventQueue eq;
    NvmSystem nvm(eq);
    Cycle done = 0;
    nvm.readLine(0x1234, [&](Cycle when) { done = when; });
    eq.run();
    const auto &p = nvm.params();
    EXPECT_EQ(done, p.tRcd + p.tCas + p.tBurst);
}

TEST(Nvm, ReadSlowerThanHbmRead)
{
    EventQueue eq;
    NvmSystem nvm(eq);
    Cycle nvm_done = 0;
    nvm.readLine(1, [&](Cycle when) { nvm_done = when; });
    eq.run();

    EventQueue eq2;
    dram::DramSystem hbm(dram::hbmCacheTiming(), eq2);
    Cycle hbm_done = 0;
    hbm.accessLine(1, false, [&](Cycle when) { hbm_done = when; });
    eq2.run();

    EXPECT_GT(nvm_done, 2 * hbm_done);
}

TEST(Nvm, WriteIsPostedAndCounted)
{
    EventQueue eq;
    NvmSystem nvm(eq);
    nvm.writeLine(7);
    nvm.writeLine(8);
    nvm.readLine(9, nullptr);
    eq.run();
    EXPECT_EQ(nvm.writes(), 2u);
    EXPECT_EQ(nvm.reads(), 1u);
    EXPECT_TRUE(nvm.idle());
}

TEST(Nvm, WriteCallbackFires)
{
    EventQueue eq;
    NvmSystem nvm(eq);
    bool fired = false;
    nvm.writeLine(3, [&](Cycle) { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
}

TEST(Nvm, ManyRequestsAllComplete)
{
    EventQueue eq;
    NvmSystem nvm(eq);
    int done = 0;
    for (LineAddr line = 0; line < 500; ++line)
        nvm.readLine(line * 37, [&](Cycle) { ++done; });
    eq.run();
    EXPECT_EQ(done, 500);
}

TEST(Nvm, AggregateStatsAvailable)
{
    EventQueue eq;
    NvmSystem nvm(eq);
    for (LineAddr line = 0; line < 50; ++line)
        nvm.readLine(line, nullptr);
    eq.run();
    EXPECT_EQ(nvm.aggregateStats().readsServed, 50u);
}

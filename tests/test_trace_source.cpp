/**
 * @file
 * Unit tests for the TrafficSource registry and the accord.trace/1
 * binary format (source.hpp, bintrace.hpp).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/bintrace.hpp"
#include "trace/generator.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

using namespace accord;
using namespace accord::trace;

namespace
{

/** Temp trace path unique per test. */
std::string
tracePath(const char *name)
{
    return std::string(::testing::TempDir()) + "accord_bintrace_"
        + name + ".trc";
}

/** Default single-core context over the libq model. */
SourceContext
libqContext()
{
    SourceContext ctx;
    ctx.spec = coreAssignment("libq", 1)[0];
    ctx.core = 0;
    ctx.numCores = 1;
    ctx.scale = 4096;
    ctx.seed = 1;
    ctx.wbLag = 2048;
    ctx.mixWritebacks = true;
    return ctx;
}

/** Records that exercise deltas forward/backward, kinds, classes. */
std::vector<Request>
awkwardRecords()
{
    std::vector<Request> recs;
    const LineAddr far = LineAddr(1) << 57;
    const struct {
        LineAddr line;
        core::RequestKind kind;
        std::uint16_t cls;
    } raw[] = {
        {0, core::RequestKind::Demand, 0},
        {1, core::RequestKind::Demand, 0},
        {1, core::RequestKind::Writeback, 0},
        {1000, core::RequestKind::Demand, 7},
        {3, core::RequestKind::Demand, 7},
        {far, core::RequestKind::Writeback, 65535},
        {far + 1, core::RequestKind::Demand, 65535},
        {5, core::RequestKind::Demand, 0},
    };
    for (const auto &r : raw) {
        Request req;
        req.line = r.line;
        req.kind = r.kind;
        req.cls = r.cls;
        recs.push_back(req);
    }
    return recs;
}

void
writeRecords(const std::string &path, const std::vector<Request> &recs,
             bool gzip = false)
{
    BinTraceWriter writer(path, gzip);
    for (const Request &req : recs)
        writer.append(req);
    writer.close();
}

} // namespace

TEST(BinTrace, RoundTripAwkwardDeltas)
{
    const auto path = tracePath("roundtrip");
    const auto recs = awkwardRecords();
    writeRecords(path, recs);

    BinTraceReader reader(path);
    EXPECT_EQ(reader.declaredCount(), recs.size());
    Request req;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(reader.next(req)) << "record " << i;
        EXPECT_EQ(req.line, recs[i].line) << "record " << i;
        EXPECT_EQ(req.kind, recs[i].kind) << "record " << i;
        EXPECT_EQ(req.cls, recs[i].cls) << "record " << i;
        EXPECT_EQ(req.position, i);
    }
    EXPECT_FALSE(reader.next(req));
    EXPECT_EQ(reader.recordsRead(), recs.size());
    std::remove(path.c_str());
}

TEST(BinTrace, RewindReplaysIdentically)
{
    const auto path = tracePath("rewind");
    writeRecords(path, awkwardRecords());

    BinTraceReader reader(path);
    std::vector<LineAddr> first;
    Request req;
    while (reader.next(req))
        first.push_back(req.line);
    reader.rewind();
    std::vector<LineAddr> second;
    while (reader.next(req))
        second.push_back(req.line);
    EXPECT_EQ(first, second);
    std::remove(path.c_str());
}

TEST(BinTrace, GzipRoundTrip)
{
    if (!binTraceGzipAvailable())
        GTEST_SKIP() << "built without zlib";
    const auto path = tracePath("gzip");
    const auto recs = awkwardRecords();
    writeRecords(path, recs, /* gzip */ true);

    BinTraceReader reader(path);
    // The gzip wrapper cannot be patched, so the count is unknown.
    EXPECT_EQ(reader.declaredCount(), 0u);
    Request req;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(reader.next(req)) << "record " << i;
        EXPECT_EQ(req.line, recs[i].line);
        EXPECT_EQ(req.kind, recs[i].kind);
        EXPECT_EQ(req.cls, recs[i].cls);
    }
    EXPECT_FALSE(reader.next(req));
    std::remove(path.c_str());
}

TEST(BinTraceDeath, RejectsBadMagic)
{
    const auto path = tracePath("badmagic");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOTATRACE and then some bytes";
    }
    EXPECT_EXIT(BinTraceReader reader(path),
                ::testing::ExitedWithCode(1), "magic");
    std::remove(path.c_str());
}

TEST(BinTraceDeath, RejectsTruncatedHeader)
{
    const auto path = tracePath("trunchdr");
    {
        std::ofstream out(path, std::ios::binary);
        out.write("ACRDBT01\x00", 9);  // count u64 missing
    }
    EXPECT_EXIT(BinTraceReader reader(path),
                ::testing::ExitedWithCode(1), "short header");
    std::remove(path.c_str());
}

TEST(BinTraceDeath, RejectsMidRecordTruncation)
{
    const auto path = tracePath("truncrec");
    writeRecords(path, awkwardRecords());
    // Chop the file mid-record: the last record's varint loses bytes.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<char> bytes(size - 1);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    in.close();
    {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_EXIT(
        {
            BinTraceReader reader(path);
            Request req;
            while (reader.next(req)) {
            }
        },
        ::testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

TEST(BinTraceDeath, RejectsMissingFile)
{
    EXPECT_EXIT(BinTraceReader reader("/nonexistent/trace.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceSource, StripingPartitionsTheStream)
{
    const auto path = tracePath("stripe");
    std::vector<Request> recs;
    for (std::uint64_t i = 0; i < 90; ++i) {
        Request req;
        req.line = i;
        recs.push_back(req);
    }
    writeRecords(path, recs);

    // Three stripes must partition the records exactly.
    std::vector<LineAddr> seen;
    for (unsigned core = 0; core < 3; ++core) {
        TraceSource src(path, /* loop */ false, 3, core);
        while (!src.exhausted()) {
            const Request req = src.next();
            EXPECT_EQ(req.line % 3, core);
            seen.push_back(req.line);
        }
    }
    EXPECT_EQ(seen.size(), recs.size());
    std::remove(path.c_str());
}

TEST(TraceSource, LoopRestartsAndIsUnbounded)
{
    const auto path = tracePath("loop");
    std::vector<Request> recs;
    for (std::uint64_t i = 0; i < 10; ++i) {
        Request req;
        req.line = i;
        recs.push_back(req);
    }
    writeRecords(path, recs);

    TraceSource src(path, /* loop */ true, 1, 0);
    EXPECT_FALSE(src.bounded());
    for (unsigned pass = 0; pass < 3; ++pass) {
        for (std::uint64_t i = 0; i < 10; ++i) {
            ASSERT_FALSE(src.exhausted());
            EXPECT_EQ(src.next().line, i);
        }
    }
    std::remove(path.c_str());
}

TEST(Registry, SyntheticMatchesRawGeneratorStack)
{
    // The registry-built synthetic source must replay exactly the
    // stream of a hand-built WorkloadGen + WritebackMixer (the
    // refactor-equivalence guarantee behind the TrafficSource port).
    const SourceContext ctx = libqContext();
    auto src = makeTrafficSource("synthetic", ctx);

    const WorkloadGenParams params = generatorParams(
        *ctx.spec, ctx.core, ctx.numCores, ctx.scale, ctx.seed);
    WorkloadGen gen(params);
    WritebackMixer mixer(gen, ctx.spec->wbFrac, ctx.wbLag,
                         mix64(ctx.seed * 977 + ctx.core));
    for (int i = 0; i < 20000; ++i) {
        const Request a = src->next();
        const Request b = mixer.next();
        ASSERT_EQ(a.line, b.line) << "record " << i;
        ASSERT_EQ(a.kind, b.kind) << "record " << i;
    }
}

TEST(Registry, SyntheticLimitBoundsTheStream)
{
    auto src = makeTrafficSource("synthetic(limit=100)",
                                 libqContext());
    EXPECT_TRUE(src->bounded());
    EXPECT_EQ(src->size(), 100u);
    // Bounded streams get no automatic warm quota: warmup would eat
    // the records under measurement.
    EXPECT_EQ(src->defaultWarmQuota(), 0u);
    unsigned count = 0;
    while (!src->exhausted()) {
        src->next();
        ++count;
    }
    EXPECT_EQ(count, 100u);
    EXPECT_TRUE(src->rewind());
    EXPECT_FALSE(src->exhausted());
}

TEST(Registry, CyclicSourceAlternatesConflictPair)
{
    auto src = makeTrafficSource("cyclic(sets=64,iters=4)",
                                 libqContext());
    const LineAddr a = src->next().line;
    const LineAddr b = src->next().line;
    EXPECT_NE(a, b);
    EXPECT_EQ(src->next().line, a);
    EXPECT_EQ(src->next().line, b);
}

TEST(Registry, TraceSpecRoundTripsThroughFile)
{
    const auto path = tracePath("registry");
    std::vector<Request> recs;
    for (std::uint64_t i = 0; i < 25; ++i) {
        Request req;
        req.line = i * 3;
        recs.push_back(req);
    }
    writeRecords(path, recs);

    SourceContext ctx = libqContext();
    auto src = makeTrafficSource(
        "trace(file=" + path + ",loop=0,stripe=0)", ctx);
    EXPECT_TRUE(src->bounded());
    for (std::uint64_t i = 0; i < 25; ++i) {
        ASSERT_FALSE(src->exhausted());
        EXPECT_EQ(src->next().line, i * 3);
    }
    EXPECT_TRUE(src->exhausted());
    std::remove(path.c_str());
}

TEST(Registry, CanonicalSpecsAreStable)
{
    EXPECT_EQ(canonicalTrafficSpec("synthetic"), "synthetic");
    EXPECT_EQ(canonicalTrafficSpec("synthetic(limit=64k)"),
              "synthetic(limit=65536)");
    EXPECT_EQ(canonicalTrafficSpec("cyclic"),
              "cyclic(sets=1024,iters=100)");
    // Paths canonicalize to their basename: reports must not embed
    // host-specific directories.
    EXPECT_EQ(canonicalTrafficSpec("trace(file=/a/b/c.trc)"),
              "trace(file=c.trc,loop=0,stripe=1)");
}

TEST(RegistryDeath, UnknownNameAndOptionAreFatal)
{
    EXPECT_EXIT(makeTrafficSource("nosuch", libqContext()),
                ::testing::ExitedWithCode(1), "nosuch");
    EXPECT_EXIT(makeTrafficSource("synthetic(bogus=1)", libqContext()),
                ::testing::ExitedWithCode(1), "bogus");
    EXPECT_EXIT(makeTrafficSource("trace(loop=1)", libqContext()),
                ::testing::ExitedWithCode(1), "file");
}

TEST(Registry, SyntheticSourceEmitsDemandStreamWithPositions)
{
    // The registry path is the only way to build traffic sources now
    // (the pre-PR-8 AccessGenerator shim is gone): an unbounded
    // demand stream with monotonically increasing positions.
    const auto src = makeTrafficSource("synthetic", libqContext());
    EXPECT_FALSE(src->bounded());
    const Request first = src->next();
    EXPECT_EQ(first.kind, core::RequestKind::Demand);
    EXPECT_EQ(first.position, 0u);
    EXPECT_EQ(src->next().position, 1u);
    EXPECT_EQ(src->next().position, 2u);
}

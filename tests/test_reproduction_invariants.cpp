/**
 * @file
 * System-level regression tests pinning the paper's qualitative
 * claims.  These use small, fast configurations; if one of them breaks
 * after a change, the corresponding bench (and the reproduction) has
 * almost certainly regressed too.
 */

#include <gtest/gtest.h>

#include "sim/runner.hpp"

using namespace accord;
using namespace accord::sim;

namespace
{

/** Fast functional run of a named config. */
SystemMetrics
runFast(const std::string &workload, const std::string &name)
{
    SystemConfig config = namedConfig(workload, name);
    config.runTimed = false;
    config.numCores = 4;
    config.scale = 512;
    config.measurePerCore = 15000;
    return runSystem(config);
}

} // namespace

TEST(Invariants, AssociativityImprovesHitRate)
{
    // Fig 1a: hit rate grows with ways and saturates.
    const double dm = runFast("libq", "dm").hitRate;
    const double w2 = runFast("libq", "2way-rand").hitRate;
    const double w8 = runFast("libq", "8way-rand").hitRate;
    EXPECT_GT(w2, dm + 0.01);
    EXPECT_GE(w8, w2);
}

TEST(Invariants, PwsAccuracyTracksPip)
{
    // Table V: the way-prediction accuracy of PWS ~ PIP.
    const double acc = runFast("gcc", "2way-pws").wpAccuracy;
    EXPECT_NEAR(acc, 0.85, 0.05);
}

TEST(Invariants, PwsHitRateCostIsSmall)
{
    // Table V/VI: PWS trades only a sliver of hit rate.
    const double rand_hit = runFast("gcc", "2way-rand").hitRate;
    const double pws_hit = runFast("gcc", "2way-pws").hitRate;
    EXPECT_GT(pws_hit, rand_hit - 0.03);
}

TEST(Invariants, GwsNearPerfectOnStreaming)
{
    // Fig 7: ganged steering on a scanning workload.
    EXPECT_GT(runFast("libq", "2way-gws").wpAccuracy, 0.95);
}

TEST(Invariants, GwsFallsToRandomOnSparse)
{
    // Fig 7: mcf's unit-run random stream defeats the RLT.
    const double acc = runFast("mcf", "2way-gws").wpAccuracy;
    EXPECT_LT(acc, 0.65);
}

TEST(Invariants, CombinedAccordBeatsBothFallbacks)
{
    // Fig 7: PWS+GWS >= max(PWS, GWS) in accuracy on a mixed workload.
    const double pws = runFast("gcc", "2way-pws").wpAccuracy;
    const double gws = runFast("gcc", "2way-gws").wpAccuracy;
    const double both = runFast("gcc", "2way-pws+gws").wpAccuracy;
    EXPECT_GE(both + 0.02, std::max(pws, gws));
}

TEST(Invariants, SwsRecoversHitRateAtTwoProbeCost)
{
    // Table VII: SWS(8,2) >= 2-way ACCORD hit rate; both confirm
    // misses with at most 2 probes.
    const auto accord2 = runFast("libq", "2way-pws+gws");
    const auto sws8 = runFast("libq", "8way-sws+gws");
    EXPECT_GE(sws8.hitRate + 0.01, accord2.hitRate);
    EXPECT_LE(sws8.cacheStats.probesPerRead.max(), 2.0);
}

TEST(Invariants, ParallelLookupCostsBandwidth)
{
    // Table I / Fig 1b: parallel 8-way moves ~8 transfers per read.
    const auto par = runFast("gcc", "8way-parallel");
    EXPECT_GT(par.transfersPerRead, 7.0);
    const auto accord = runFast("gcc", "8way-sws+gws");
    EXPECT_LT(accord.transfersPerRead, 3.0);
}

TEST(Invariants, CaCacheSwapsCostWrites)
{
    // Fig 14: the CA-cache maintains its accuracy with swap traffic.
    const auto ca = runFast("gcc", "ca");
    EXPECT_GT(ca.cacheStats.swaps.value(), 0u);
    EXPECT_GT(ca.wpAccuracy, 0.7);
}

TEST(Invariants, MruDecaysWithWaysAccordDoesNot)
{
    // Table X: the ACCORD accuracy advantage at high associativity.
    const double mru2 = runFast("gcc", "2way-mru").wpAccuracy;
    const double mru8 = runFast("gcc", "8way-mru").wpAccuracy;
    const double accord8 = runFast("gcc", "8way-sws+gws").wpAccuracy;
    EXPECT_LT(mru8, mru2 - 0.05);
    EXPECT_GT(accord8, mru8);
}

TEST(Invariants, AccordStorageStaysTiny)
{
    // Table IX vs Table II: bytes vs megabytes.
    const auto accord = runFast("gcc", "8way-sws+gws");
    const auto ptag = runFast("gcc", "8way-ptag");
    EXPECT_LT(accord.policyStorageBits / 8, 512u);
    // Partial tags scale with the number of lines: orders of magnitude
    // above ACCORD at any cache size.
    EXPECT_GT(ptag.policyStorageBits, 50 * accord.policyStorageBits);
}

TEST(Invariants, DdrMainMemoryShrinksTheStakes)
{
    // Section II-B premise: with DDR below the cache, misses are
    // cheap, so the miss-rate gap between DM and 8-way matters less.
    // Compare the per-read DRAM+memory transfer economics instead of
    // timing (functional run): the hit-rate delta is the same, so the
    // premise shows up in the NVM preset's latency, checked here via
    // the device parameters.
    const auto pcm = dram::pcmMainMemoryTiming();
    const auto ddr = dram::ddrMainMemoryTiming();
    EXPECT_GT(pcm.tRcd, 2 * ddr.tRcd);
    EXPECT_GT(pcm.tWr, 4 * ddr.tWr);
    ddr.validate();     // geometry must be sound
}

TEST(Invariants, LruPaysUpdateWritesRandomDoesNot)
{
    // Footnote 2 ablation.
    const auto lru = runFast("gcc", "2way-lru");
    const auto rnd = runFast("gcc", "2way-serial");
    EXPECT_GT(lru.cacheStats.replacementUpdateWrites.value(), 0u);
    EXPECT_EQ(rnd.cacheStats.replacementUpdateWrites.value(), 0u);
    EXPECT_GT(lru.transfersPerRead, rnd.transfersPerRead + 0.3);
}

/** @file Functional-path tests of the DRAM-cache controller. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller_fixture.hpp"

using namespace accord;
using namespace accord::test;
using dramcache::LookupMode;
using dramcache::Organization;

TEST(FunctionalDm, MissThenHit)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    EXPECT_FALSE(sys->warmRead(1000));
    EXPECT_TRUE(sys->warmRead(1000));
    EXPECT_EQ(sys->stats().readHits.hits(), 1u);
    EXPECT_EQ(sys->stats().nvmReads.value(), 1u);
}

TEST(FunctionalDm, MissCostsOneProbeOneFill)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    sys->warmRead(7);
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 1u);
    EXPECT_EQ(sys->stats().cacheWriteTransfers.value(), 1u);
}

TEST(FunctionalDm, ConflictEvictsAndDirtyVictimGoesToNvm)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    const LineAddr a = sys.lineFor(5, 1);
    const LineAddr b = sys.lineFor(5, 2);
    sys->warmRead(a);
    sys->warmWriteback(a);      // a is now dirty in the cache
    sys->warmRead(b);           // evicts dirty a
    EXPECT_EQ(sys->stats().nvmWrites.value(), 1u);
    EXPECT_FALSE(sys->warmRead(a));     // a was evicted
}

TEST(FunctionalDm, CleanVictimNoNvmWrite)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    sys->warmRead(sys.lineFor(5, 1));
    sys->warmRead(sys.lineFor(5, 2));
    EXPECT_EQ(sys->stats().nvmWrites.value(), 0u);
}

TEST(FunctionalWriteback, DcpRoutesToCache)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws+gws");
    sys->warmRead(1234);
    sys->warmWriteback(1234);
    EXPECT_EQ(sys->stats().writebacksToCache.value(), 1u);
    EXPECT_EQ(sys->stats().writebacksToNvm.value(), 0u);
}

TEST(FunctionalWriteback, AbsentLineGoesToNvm)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws+gws");
    sys->warmWriteback(1234);   // never read: not in cache
    EXPECT_EQ(sys->stats().writebacksToNvm.value(), 1u);
    EXPECT_EQ(sys->stats().nvmWrites.value(), 1u);
}

TEST(FunctionalWriteback, EvictedLineFallsBackToNvm)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    const LineAddr a = sys.lineFor(9, 1);
    sys->warmRead(a);
    sys->warmRead(sys.lineFor(9, 2));   // evicts a
    sys->warmWriteback(a);
    EXPECT_EQ(sys->stats().writebacksToNvm.value(), 1u);
}

TEST(FunctionalWriteback, NoDcpModeProbes)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws", 1ULL << 20,
                   Organization::SetAssoc, /* dcp */ false);
    sys->warmRead(77);
    sys->resetStats();
    sys->warmWriteback(77);
    EXPECT_GE(sys->stats().writebackProbeTransfers.value(), 1u);
    EXPECT_EQ(sys->stats().writebacksToCache.value(), 1u);
}

TEST(Functional2Way, BothConflictingLinesCanCoReside)
{
    MiniSystem sys(2, LookupMode::Predicted, "rand");
    const LineAddr a = sys.lineFor(5, 2);   // even tag
    const LineAddr b = sys.lineFor(5, 4);   // even tag, same set
    // Re-access until the random install separates them.
    for (int i = 0; i < 64; ++i) {
        sys->warmRead(a);
        sys->warmRead(b);
    }
    EXPECT_TRUE(sys->warmRead(a));
    EXPECT_TRUE(sys->warmRead(b));
}

TEST(Functional2Way, PredictionAccuracyCountsFirstProbe)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws");
    // PWS with PIP=85%: after enough installs, accuracy over hits
    // approaches PIP.
    Rng rng(3);
    for (int i = 0; i < 40000; ++i) {
        const LineAddr line = rng.below(4096);
        sys->warmRead(line);
    }
    EXPECT_NEAR(sys->stats().wayPrediction.rate(), 0.85, 0.03);
}

TEST(Functional2Way, MissConfirmationCountsAllCandidates)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws");
    sys->warmRead(1);   // miss: 2 candidate probes + 1 fill write
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 2u);
    EXPECT_EQ(sys->stats().cacheWriteTransfers.value(), 1u);
}

TEST(FunctionalSws, MissConfirmationIsTwoProbesAt8Way)
{
    MiniSystem sys(8, LookupMode::Predicted, "sws");
    sys->warmRead(1);
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 2u);
}

TEST(FunctionalSws, LinesOnlyEverInCandidateWays)
{
    MiniSystem sys(8, LookupMode::Predicted, "sws+gws");
    Rng rng(7);
    std::vector<LineAddr> lines;
    for (int i = 0; i < 20000; ++i) {
        const LineAddr line = rng.below(1 << 16);
        lines.push_back(line);
        sys->warmRead(line);
    }
    // Property: every resident line sits in one of its candidates.
    const auto &tags = sys->tagStore();
    const auto &geom = sys->geometry();
    auto *policy = sys->policy();
    for (const LineAddr line : lines) {
        const auto ref = core::LineRef::make(line, geom);
        const int way = tags.findWay(ref.set, ref.tag);
        if (way >= 0) {
            EXPECT_TRUE(policy->candidates(ref) & (1ULL << way))
                << "line resident outside its SWS candidate ways";
        }
    }
}

TEST(Functional8Way, ParallelCountsAllWaysOnHit)
{
    MiniSystem sys(8, LookupMode::Parallel, "");
    const LineAddr line = 42;
    sys->warmRead(line);
    sys->resetStats();
    sys->warmRead(line);    // hit
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 8u);
}

TEST(Functional8Way, IdealCountsOneTransferAlways)
{
    MiniSystem sys(8, LookupMode::Ideal, "");
    sys->warmRead(42);      // miss
    sys->warmRead(42);      // hit
    // 1 probe each + 1 fill write for the miss.
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 2u);
    EXPECT_EQ(sys->stats().cacheWriteTransfers.value(), 1u);
}

TEST(FunctionalSerial, AverageProbesMatchTable1)
{
    MiniSystem sys(4, LookupMode::Serial, "");
    // Fill one set's ways, then measure hit probes.
    Rng rng(9);
    for (int i = 0; i < 20000; ++i)
        sys->warmRead(rng.below(8192));
    sys->resetStats();
    for (int i = 0; i < 20000; ++i)
        sys->warmRead(rng.below(8192));
    // Hits average (N+1)/2 = 2.5 probes in a 4-way serial design.
    const double hit_rate = sys->stats().readHits.rate();
    ASSERT_GT(hit_rate, 0.5);
    // probesPerRead mixes hits (avg 2.5) and misses (4).
    const double expect =
        hit_rate * 2.5 + (1.0 - hit_rate) * 4.0;
    EXPECT_NEAR(sys->stats().probesPerRead.mean(), expect, 0.2);
}

TEST(FunctionalCa, SecondaryHitSwapsToPrimary)
{
    MiniSystem sys(1, LookupMode::Serial, "", 1ULL << 20,
                   Organization::ColumnAssoc);
    const std::uint64_t slots = sys->geometry().sets;
    const LineAddr a = 5;                   // primary slot 5
    const LineAddr b = 5 + slots;           // same primary slot
    sys->warmRead(a);   // a at primary
    sys->warmRead(b);   // b installs at primary, a displaced to pair
    sys->resetStats();
    EXPECT_TRUE(sys->warmRead(a));          // hit at secondary
    EXPECT_EQ(sys->stats().swaps.value(), 1u);
    // After the swap, a is back at its primary slot.
    sys->resetStats();
    sys->warmRead(a);
    EXPECT_DOUBLE_EQ(sys->stats().wayPrediction.rate(), 1.0);
}

TEST(FunctionalCa, InstallDisplacesPrimaryOccupant)
{
    MiniSystem sys(1, LookupMode::Serial, "", 1ULL << 20,
                   Organization::ColumnAssoc);
    const std::uint64_t slots = sys->geometry().sets;
    const LineAddr a = 9;
    const LineAddr b = 9 + slots;
    sys->warmRead(a);
    sys->warmRead(b);
    // Both resident: a at the pair slot, b at primary.
    EXPECT_TRUE(sys->warmRead(b));
    EXPECT_TRUE(sys->warmRead(a));
}

TEST(FunctionalCa, EvictedPairDirtyGoesToNvm)
{
    MiniSystem sys(1, LookupMode::Serial, "", 1ULL << 20,
                   Organization::ColumnAssoc);
    const std::uint64_t slots = sys->geometry().sets;
    const LineAddr a = 3;
    const LineAddr b = 3 + slots;
    const LineAddr c = 3 + 2 * slots;
    sys->warmRead(a);
    sys->warmWriteback(a);      // dirty at primary
    sys->warmRead(b);           // a displaced (dirty) to pair slot
    sys->warmRead(c);           // b displaced to pair, evicting dirty a
    EXPECT_GE(sys->stats().nvmWrites.value(), 1u);
}

TEST(FunctionalOccupancy, NeverExceedsCapacity)
{
    MiniSystem sys(4, LookupMode::Predicted, "pws+gws", 256 * 1024);
    Rng rng(5);
    for (int i = 0; i < 50000; ++i)
        sys->warmRead(rng.next() & 0xffffff);
    EXPECT_LE(sys->tagStore().occupancy(), sys->geometry().lines());
}

TEST(FunctionalStats, TransfersPerReadComposition)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        sys->warmRead(rng.below(1 << 15));
    const auto &s = sys->stats();
    // DM: reads = 1 per access; writes = 1 per miss.
    EXPECT_EQ(s.cacheReadTransfers.value(), s.readHits.total());
    EXPECT_EQ(s.cacheWriteTransfers.value(), s.readHits.misses());
    EXPECT_NEAR(s.transfersPerRead(),
                1.0 + (1.0 - s.readHits.rate()), 1e-9);
}

TEST(FunctionalStats, ResetClearsEverything)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws");
    sys->warmRead(1);
    sys->warmWriteback(1);
    sys->resetStats();
    const auto &s = sys->stats();
    EXPECT_EQ(s.readHits.total(), 0u);
    EXPECT_EQ(s.cacheReadTransfers.value(), 0u);
    EXPECT_EQ(s.cacheWriteTransfers.value(), 0u);
    EXPECT_EQ(s.nvmReads.value(), 0u);
    EXPECT_EQ(s.nvmWrites.value(), 0u);
}

TEST(FunctionalDescribe, NamesAreInformative)
{
    EXPECT_EQ(MiniSystem(1, LookupMode::Serial, "")->describe(),
              "direct-mapped");
    EXPECT_EQ(MiniSystem(1, LookupMode::Serial, "", 1ULL << 20,
                         Organization::ColumnAssoc)
                  ->describe(),
              "ca-cache");
    EXPECT_EQ(MiniSystem(2, LookupMode::Predicted, "pws+gws")
                  ->describe(),
              "2-way pws85+gws predicted");
}

/**
 * @file
 * Flight-recorder telemetry tests: deterministic heartbeat cadence
 * (byte-identical canonical streams across jobs= counts), the
 * flush-per-record kill-survivability contract, interval resolution,
 * per-run stream naming, the EventQueue high-water/spill counters the
 * heartbeats sample, and the System-level contract that telemetry is
 * opt-in and never changes simulation results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/event_queue.hpp"
#include "common/telemetry/telemetry.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

using namespace accord;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    return lines;
}

/**
 * Remove every `"host":{...}` object (the declared volatile
 * partition) from one record line.  Host objects are flat — the
 * writer never nests inside them — so brace matching is trivial.
 */
std::string
stripHost(std::string line)
{
    for (std::size_t at = line.find("\"host\":{");
         at != std::string::npos; at = line.find("\"host\":{", at)) {
        const std::size_t close = line.find('}', at);
        EXPECT_NE(close, std::string::npos);
        std::size_t begin = at;
        if (begin > 0 && line[begin - 1] == ',')
            --begin;
        line.erase(begin, close + 1 - begin);
    }
    return line;
}

std::vector<std::string>
canonicalStream(const std::string &path)
{
    std::vector<std::string> lines = splitLines(slurp(path));
    for (std::string &line : lines)
        line = stripHost(std::move(line));
    return lines;
}

sim::SystemConfig
telemetryConfig(const std::string &path)
{
    sim::SystemConfig config;
    config.workload = "libq";
    config.numCores = 2;
    config.scale = 1024;
    config.warmPerCore = 5000;
    config.timedPerCore = 300;
    config.telemetryPath = path;
    config.telemetryInterval = 2000;
    return config;
}

} // namespace

// --- interval resolution -------------------------------------------

TEST(TelemetryConfig, ExplicitIntervalWins)
{
    telemetry::TelemetryConfig config;
    config.interval = 123;
    EXPECT_EQ(config.resolvedInterval(0), 123u);
    EXPECT_EQ(config.resolvedInterval(1'000'000'000), 123u);
}

TEST(TelemetryConfig, AutoIntervalScalesWithRunLength)
{
    telemetry::TelemetryConfig config;
    // Short or unknown-length runs use the floor cadence.
    EXPECT_EQ(config.resolvedInterval(0),
              telemetry::TelemetryConfig::kDefaultInterval);
    EXPECT_EQ(config.resolvedInterval(1000),
              telemetry::TelemetryConfig::kDefaultInterval);
    // Long runs stretch the cadence so heartbeat count stays bounded
    // (~kAutoHeartbeats per run) no matter how long the run is.
    const std::uint64_t total = 640'000'000;
    EXPECT_EQ(config.resolvedInterval(total),
              total / telemetry::TelemetryConfig::kAutoHeartbeats);
}

TEST(TelemetryConfig, EnabledMeansNonEmptyPath)
{
    telemetry::TelemetryConfig config;
    EXPECT_FALSE(config.enabled());
    config.path = "/tmp/t.jsonl";
    EXPECT_TRUE(config.enabled());
}

// --- FlightRecorder unit behavior ----------------------------------

TEST(FlightRecorder, FlushesEveryRecordForKillSurvivability)
{
    const std::string path =
        testing::TempDir() + "accord_telem_flush.jsonl";
    telemetry::TelemetryConfig config;
    config.path = path;
    config.interval = 10;
    telemetry::FlightRecorder::Header header;
    header.spec = "unit test";
    telemetry::FlightRecorder recorder(config, header);

    telemetry::HeartbeatSample sample;
    sample.phase = "measure";
    sample.position = 10;
    recorder.heartbeat(sample);

    // The stream must be readable NOW, while the recorder is alive
    // and no finish() has run — that is what a killed run leaves.
    const std::vector<std::string> lines = splitLines(slurp(path));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"t\":\"hdr\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"t\":\"hb\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(FlightRecorder, CadenceAdvancesFromCrossingNotGrid)
{
    const std::string path =
        testing::TempDir() + "accord_telem_cadence.jsonl";
    telemetry::TelemetryConfig config;
    config.path = path;
    config.interval = 100;
    telemetry::FlightRecorder recorder(
        config, telemetry::FlightRecorder::Header{});

    EXPECT_FALSE(recorder.due(99));
    EXPECT_TRUE(recorder.due(100));
    // A chunked caller overshoots to 250; the next heartbeat is due
    // at 350 (crossing + interval), so no double-fire at 300.
    telemetry::HeartbeatSample sample;
    sample.position = 250;
    recorder.heartbeat(sample);
    EXPECT_FALSE(recorder.due(300));
    EXPECT_TRUE(recorder.due(350));
    std::remove(path.c_str());
}

TEST(FlightRecorder, DestructorClosesAnUnfinishedStream)
{
    const std::string path =
        testing::TempDir() + "accord_telem_dtor.jsonl";
    {
        telemetry::TelemetryConfig config;
        config.path = path;
        telemetry::FlightRecorder recorder(
            config, telemetry::FlightRecorder::Header{});
    }
    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"t\":\"end\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(RunProfiler, EpochDeltasFromCumulativeSeries)
{
    MetricRegistry registry;
    double counter = 0.0;
    registry.addGauge("unit.counter", [&counter] { return counter; });
    MetricSeries series;
    counter = 5.0;
    series.record(100, registry.snapshot());
    counter = 12.0;
    series.record(200, registry.snapshot());

    const std::vector<double> deltas =
        telemetry::RunProfiler::epochDeltas(series, "unit.counter");
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_DOUBLE_EQ(deltas[0], 5.0);
    EXPECT_DOUBLE_EQ(deltas[1], 7.0);
    EXPECT_TRUE(telemetry::RunProfiler::epochDeltas(series, "missing")
                    .empty());
}

// --- EventQueue telemetry counters ---------------------------------

TEST(EventQueueTelemetry, OccupancyPeakTracksHighWater)
{
    EventQueue eq;
    EXPECT_EQ(eq.occupancyPeak(), 0u);
    eq.scheduleAfter(1, [] {});
    eq.scheduleAfter(2, [] {});
    eq.scheduleAfter(3, [] {});
    EXPECT_EQ(eq.occupancyPeak(), 3u);
    while (eq.step()) {
    }
    // Draining does not lower the high-water mark.
    EXPECT_EQ(eq.occupancyPeak(), 3u);
}

TEST(EventQueueTelemetry, OverflowSpillsCountBeyondHorizon)
{
    EventQueue eq;
    EXPECT_EQ(eq.overflowSpills(), 0u);
    eq.scheduleAfter(1, [] {});
    EXPECT_EQ(eq.overflowSpills(), 0u);
    eq.scheduleAfter(EventQueue::kBuckets + 10, [] {});
    EXPECT_EQ(eq.overflowSpills(), 1u);
    while (eq.step()) {
    }
    EXPECT_EQ(eq.overflowSpills(), 1u);
}

// --- per-run stream naming -----------------------------------------

TEST(PerRunTelemetryPath, KeepsCompoundExtensionIntact)
{
    EXPECT_EQ(sim::perRunTelemetryPath("out.telemetry.jsonl", 3),
              "out.run3.telemetry.jsonl");
    EXPECT_EQ(sim::perRunTelemetryPath("dir/x.telemetry.jsonl", 0),
              "dir/x.run0.telemetry.jsonl");
}

TEST(PerRunTelemetryPath, FallsBackToTracePathRule)
{
    EXPECT_EQ(sim::perRunTelemetryPath("out.jsonl", 2),
              "out.run2.jsonl");
    EXPECT_EQ(sim::perRunTelemetryPath("stream", 1), "stream.run1");
}

// --- System integration --------------------------------------------

TEST(SystemTelemetry, DisabledRunWritesNothingAndStaysNeutral)
{
    const std::string path =
        testing::TempDir() + "accord_telem_neutral.jsonl";
    sim::SystemConfig off = telemetryConfig("");
    sim::SystemConfig on = telemetryConfig(path);
    const sim::SystemMetrics a = sim::runSystem(off);
    const sim::SystemMetrics b = sim::runSystem(on);

    // Telemetry is pure observability: identical simulated outcome.
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.coreIpc, b.coreIpc);
    EXPECT_DOUBLE_EQ(a.hitRate, b.hitRate);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.eqOccupancyPeak, b.eqOccupancyPeak);
    EXPECT_EQ(a.eqOverflowSpills, b.eqOverflowSpills);
    EXPECT_FALSE(std::ifstream(telemetryConfig("").telemetryPath)
                     .is_open());
    std::remove(path.c_str());
}

TEST(SystemTelemetry, StreamCarriesHeaderHeartbeatsAndEnd)
{
    const std::string path =
        testing::TempDir() + "accord_telem_stream.jsonl";
    const sim::SystemMetrics m =
        sim::runSystem(telemetryConfig(path));

    const std::vector<std::string> lines = splitLines(slurp(path));
    ASSERT_GE(lines.size(), 3u);
    EXPECT_NE(lines.front().find("\"schema\":\"accord.telemetry/1\""),
              std::string::npos);
    EXPECT_NE(lines.front().find("\"volatile_container\":\"host\""),
              std::string::npos);
    for (std::size_t i = 1; i + 1 < lines.size(); ++i)
        EXPECT_NE(lines[i].find("\"t\":\"hb\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"t\":\"end\""), std::string::npos);
    // End-of-run gauges agree with the run report: one source of
    // truth (the EventQueue counters) feeds both.
    EXPECT_NE(lines.back().find(
                  "\"eq_occupancy_peak\":"
                  + std::to_string(m.eqOccupancyPeak)),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(SystemTelemetry, IntervalBeyondRunLengthYieldsOneEndRecord)
{
    const std::string path =
        testing::TempDir() + "accord_telem_longint.jsonl";
    sim::SystemConfig config = telemetryConfig(path);
    config.telemetryInterval = 1'000'000'000;
    sim::runSystem(config);

    const std::vector<std::string> lines = splitLines(slurp(path));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"t\":\"hdr\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"t\":\"end\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(SystemTelemetry, CanonicalStreamByteIdenticalAcrossJobCounts)
{
    // Two telemetry runs as one batch: each gets its own .runN
    // stream, and after stripping the volatile host objects the
    // streams must not depend on the job count.
    const std::string path =
        testing::TempDir() + "accord_telem_jobs.telemetry.jsonl";
    std::vector<sim::SystemConfig> configs;
    configs.push_back(telemetryConfig(path));
    configs.push_back(telemetryConfig(path));
    configs.back().seed = 7;

    sim::SweepRunner(1).runConfigs(configs);
    std::vector<std::vector<std::string>> serial;
    for (std::size_t i = 0; i < configs.size(); ++i)
        serial.push_back(canonicalStream(
            sim::perRunTelemetryPath(path, i)));

    sim::SweepRunner(3).runConfigs(configs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const std::string run = sim::perRunTelemetryPath(path, i);
        EXPECT_EQ(serial[i], canonicalStream(run))
            << "canonical stream for run " << i
            << " depends on the job count";
        std::remove(run.c_str());
    }
    // Different seeds produce different canonical streams (the strip
    // removes host noise, not information).
    EXPECT_NE(serial[0], serial[1]);
}

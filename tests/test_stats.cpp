/** @file Unit tests for statistics primitives. */

#include <gtest/gtest.h>

#include "common/stats.hpp"

using namespace accord;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(10);
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Ratio, EmptyRateIsZero)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.rate(), 0.0);
    EXPECT_EQ(r.total(), 0u);
}

TEST(Ratio, HitsAndMisses)
{
    Ratio r;
    r.hit();
    r.hit();
    r.miss();
    r.add(true);
    EXPECT_EQ(r.hits(), 3u);
    EXPECT_EQ(r.misses(), 1u);
    EXPECT_EQ(r.total(), 4u);
    EXPECT_DOUBLE_EQ(r.rate(), 0.75);
}

TEST(Ratio, Reset)
{
    Ratio r;
    r.hit();
    r.reset();
    EXPECT_EQ(r.total(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Average, NegativeValues)
{
    Average a;
    a.sample(-3.0);
    a.sample(1.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.mean(), -1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(1000);     // saturates into the last bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, Mean)
{
    Histogram h(8, 1);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, Percentile)
{
    Histogram h(10, 10);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.percentile(0.5), 49u);
    EXPECT_EQ(h.percentile(1.0), 99u);
    EXPECT_EQ(h.percentile(0.05), 9u);
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h(4, 4);
    EXPECT_EQ(h.percentile(0.9), 0u);
}

TEST(HistogramDeath, ZeroShapeRejected)
{
    EXPECT_DEATH(Histogram(0, 4), "shape");
}

TEST(Means, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.1, 1.1, 1.1}), 1.1, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Means, Amean)
{
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
}

TEST(MeansDeath, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

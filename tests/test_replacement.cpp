/** @file Unit tests for SRAM replacement policies. */

#include <gtest/gtest.h>

#include "cache/replacement.hpp"

using namespace accord;
using namespace accord::cache;

namespace
{

constexpr std::uint64_t allValid4 = 0xF;

} // namespace

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(4, 4);
    for (unsigned way = 0; way < 4; ++way)
        lru.fill(0, way);
    lru.touch(0, 0);    // way 1 is now the oldest
    EXPECT_EQ(lru.victim(0, allValid4), 1u);
}

TEST(Lru, PrefersInvalidWays)
{
    LruPolicy lru(4, 4);
    lru.fill(0, 0);
    lru.fill(0, 1);
    EXPECT_EQ(lru.victim(0, 0b0011), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.fill(0, 0);
    lru.fill(0, 1);
    lru.fill(1, 1);
    lru.fill(1, 0);
    lru.touch(0, 0);
    lru.touch(1, 1);
    EXPECT_EQ(lru.victim(0, 0b11), 1u);
    EXPECT_EQ(lru.victim(1, 0b11), 0u);
}

TEST(Lru, ExactOrderOverManyTouches)
{
    LruPolicy lru(1, 8);
    for (unsigned way = 0; way < 8; ++way)
        lru.fill(0, way);
    // Touch in reverse: way 7 becomes MRU...way 0 stays LRU? No:
    // touching 7,6,...,1 leaves 0 untouched as LRU.
    for (unsigned way = 7; way >= 1; --way)
        lru.touch(0, way);
    EXPECT_EQ(lru.victim(0, 0xFF), 0u);
}

TEST(Random, AlwaysReturnsValidWay)
{
    RandomPolicy rnd(4, 99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rnd.victim(0, allValid4), 4u);
}

TEST(Random, PrefersInvalidWays)
{
    RandomPolicy rnd(4, 99);
    EXPECT_EQ(rnd.victim(0, 0b1011), 2u);
}

TEST(Random, RoughlyUniformVictims)
{
    RandomPolicy rnd(4, 7);
    int counts[4] = {0, 0, 0, 0};
    const int trials = 40000;
    for (int i = 0; i < trials; ++i)
        ++counts[rnd.victim(0, allValid4)];
    for (const int c : counts)
        EXPECT_NEAR(c, trials / 4.0, trials / 4.0 * 0.1);
}

TEST(Srrip, PrefersInvalidWays)
{
    SrripPolicy srrip(2, 4);
    srrip.fill(0, 0);
    EXPECT_EQ(srrip.victim(0, 0b0001), 1u);
}

TEST(Srrip, HitPromotionProtectsLine)
{
    SrripPolicy srrip(1, 2);
    srrip.fill(0, 0);
    srrip.fill(0, 1);
    srrip.touch(0, 0);      // way 0 promoted to RRPV 0
    EXPECT_EQ(srrip.victim(0, 0b11), 1u);
}

TEST(Srrip, AgingEventuallyEvictsProtectedLines)
{
    SrripPolicy srrip(1, 2);
    srrip.fill(0, 0);
    srrip.touch(0, 0);
    srrip.fill(0, 1);
    srrip.touch(0, 1);
    // Both protected; victim() must still terminate via aging.
    const unsigned way = srrip.victim(0, 0b11);
    EXPECT_LT(way, 2u);
}

TEST(Factory, BuildsAllNames)
{
    EXPECT_EQ(makeReplacement("lru", 4, 4, 1)->name(), "lru");
    EXPECT_EQ(makeReplacement("random", 4, 4, 1)->name(), "random");
    EXPECT_EQ(makeReplacement("srrip", 4, 4, 1)->name(), "srrip");
}

TEST(FactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeReplacement("belady", 4, 4, 1),
                ::testing::ExitedWithCode(1), "unknown replacement");
}

/** Property: every policy returns an in-range victim from any state. */
class AnyPolicy : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AnyPolicy, VictimAlwaysInRange)
{
    auto policy = makeReplacement(GetParam(), 8, 4, 3);
    for (std::uint64_t set = 0; set < 8; ++set) {
        for (unsigned way = 0; way < 4; ++way)
            policy->fill(set, way);
        for (int i = 0; i < 50; ++i) {
            policy->touch(set, static_cast<unsigned>(i) % 4);
            EXPECT_LT(policy->victim(set, allValid4), 4u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, AnyPolicy,
                         ::testing::Values("lru", "random", "srrip"));

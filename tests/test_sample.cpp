/**
 * @file
 * Unit tests for SimPoint-style sampled replay (trace/sample.hpp) and
 * its integration with the functional system shell.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "trace/sample.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

using namespace accord;
using namespace accord::trace;

namespace
{

/** Bounded single-core libq stream at a small scale. */
std::unique_ptr<TrafficSource>
boundedLibq(std::uint64_t limit, std::uint64_t seed = 1)
{
    SourceContext ctx;
    ctx.spec = coreAssignment("libq", 1)[0];
    ctx.core = 0;
    ctx.numCores = 1;
    ctx.scale = 4096;
    ctx.seed = seed;
    ctx.wbLag = 2048;
    ctx.mixWritebacks = true;
    return makeTrafficSource("synthetic(limit=" + std::to_string(limit)
                                 + ")",
                             ctx);
}

SampleParams
params(const std::string &spec)
{
    return SampleParams::fromString(spec);
}

} // namespace

TEST(SampleParams, CanonicalRoundTrip)
{
    const SampleParams defaults;
    EXPECT_EQ(defaults.toString(),
              "window=4096,clusters=8,rate=0.04,warmup=1024,prewarm=0,"
              "dims=32,iters=10,seed=1");
    // Any subset parses; unset knobs keep defaults; order is free.
    const SampleParams p =
        params("prewarm=50k,rate=0.1,window=512");
    EXPECT_EQ(p.window, 512u);
    EXPECT_EQ(p.prewarm, 51200u);
    EXPECT_DOUBLE_EQ(p.rate, 0.1);
    EXPECT_EQ(p.clusters, 8u);
    EXPECT_EQ(SampleParams::fromString(p.toString()).toString(),
              p.toString());
}

TEST(SampleParamsDeath, RejectsMalformedSpecs)
{
    EXPECT_EXIT(params("window"), ::testing::ExitedWithCode(1),
                "malformed");
    EXPECT_EXIT(params("bogus=1"), ::testing::ExitedWithCode(1),
                "unknown");
    EXPECT_EXIT(params("rate=1.5"), ::testing::ExitedWithCode(1),
                "bad sample parameters");
    EXPECT_EXIT(params("window=0"), ::testing::ExitedWithCode(1),
                "bad sample parameters");
}

TEST(SampledSource, PlanIsDeterministic)
{
    const auto spec = "window=512,clusters=6,rate=0.05,warmup=128";
    SampledSource a(boundedLibq(100'000), params(spec));
    SampledSource b(boundedLibq(100'000), params(spec));
    EXPECT_EQ(a.selectedWindows(), b.selectedWindows());
    EXPECT_EQ(a.size(), b.size());

    // And the emitted streams are identical record for record.
    while (!a.exhausted()) {
        ASSERT_FALSE(b.exhausted());
        const Request ra = a.next();
        const Request rb = b.next();
        ASSERT_EQ(ra.line, rb.line);
        ASSERT_EQ(ra.kind, rb.kind);
        ASSERT_EQ(ra.warmup, rb.warmup);
    }
    EXPECT_TRUE(b.exhausted());
}

TEST(SampledSource, PlanBoundsAndStratification)
{
    SampledSource src(
        boundedLibq(200'000),
        params("window=1024,clusters=8,rate=0.04,warmup=256"));
    EXPECT_EQ(src.innerRecords(), 200'000u);
    EXPECT_EQ(src.windowCount(), 200'000u / 1024 + 1);

    // round(rate * windows) selected, sorted, in range, distinct.
    const auto &sel = src.selectedWindows();
    const auto expect = static_cast<std::uint64_t>(
        std::llround(0.04 * static_cast<double>(src.windowCount())));
    EXPECT_EQ(sel.size(), expect);
    for (std::size_t i = 1; i < sel.size(); ++i)
        EXPECT_LT(sel[i - 1], sel[i]);
    EXPECT_LT(sel.back(), src.windowCount());

    // The emitted stream matches the advertised plan size, and the
    // measured records are exactly the selected windows' records.
    std::uint64_t emitted = 0;
    std::uint64_t measured = 0;
    while (!src.exhausted()) {
        const Request req = src.next();
        EXPECT_EQ(req.position, emitted);
        ++emitted;
        if (!req.warmup)
            ++measured;
    }
    EXPECT_EQ(emitted, src.size());
    std::uint64_t expected_measured = 0;
    for (const std::uint64_t w : sel) {
        const std::uint64_t start = w * 1024;
        expected_measured +=
            std::min<std::uint64_t>(200'000, start + 1024) - start;
    }
    EXPECT_EQ(measured, expected_measured);
}

TEST(SampledSource, PrewarmSpanIsReplayedUpFront)
{
    SampledSource src(
        boundedLibq(100'000),
        params("window=512,clusters=4,rate=0.02,warmup=0,"
               "prewarm=30000"));
    // The plan covers at least the prewarm span plus the selected
    // windows outside it.
    EXPECT_GE(src.size(), 30'000u);

    // Replay against the raw stream: the first 30000 emissions are
    // exactly records 0..29999, warmup-flagged except inside selected
    // windows.
    auto raw = boundedLibq(100'000);
    const auto &sel = src.selectedWindows();
    for (std::uint64_t pos = 0; pos < 30'000; ++pos) {
        ASSERT_FALSE(src.exhausted());
        const Request got = src.next();
        const Request want = raw->next();
        ASSERT_EQ(got.line, want.line) << "position " << pos;
        bool selected = false;
        for (const std::uint64_t w : sel)
            selected = selected || pos / 512 == w;
        ASSERT_EQ(got.warmup, !selected) << "position " << pos;
    }
}

TEST(SampledSource, RewindReplaysTheSamePlan)
{
    SampledSource src(
        boundedLibq(50'000),
        params("window=512,clusters=4,rate=0.05,warmup=64"));
    std::vector<LineAddr> first;
    std::vector<bool> first_warm;
    while (!src.exhausted()) {
        const Request req = src.next();
        first.push_back(req.line);
        first_warm.push_back(req.warmup);
    }
    ASSERT_TRUE(src.rewind());
    std::vector<LineAddr> second;
    std::vector<bool> second_warm;
    while (!src.exhausted()) {
        const Request req = src.next();
        second.push_back(req.line);
        second_warm.push_back(req.warmup);
    }
    EXPECT_EQ(first, second);
    EXPECT_EQ(first_warm, second_warm);
}

TEST(SampledSourceDeath, NeedsABoundedSource)
{
    EXPECT_EXIT(
        {
            SourceContext ctx;
            ctx.spec = coreAssignment("libq", 1)[0];
            SampledSource src(makeTrafficSource("synthetic", ctx),
                              SampleParams());
        },
        ::testing::ExitedWithCode(1), "bounded");
}

TEST(SampledSystem, RunsAreReproducible)
{
    sim::SystemConfig config = sim::namedConfig("libq", "2way-pws+gws");
    config.runTimed = false;
    config.scale = 4096;
    config.numCores = 1;
    config.warmPerCore = 40'000;
    config.measurePerCore = 0;
    config.trafficSpec = "synthetic(limit=200000)";
    config.sampleSpec =
        "window=1024,clusters=8,rate=0.05,warmup=256,prewarm=40000";

    const sim::SystemMetrics a = sim::runSystem(config);
    const sim::SystemMetrics b = sim::runSystem(config);
    EXPECT_EQ(a.accessesExecuted, b.accessesExecuted);
    EXPECT_DOUBLE_EQ(a.hitRate, b.hitRate);
    EXPECT_DOUBLE_EQ(a.wpAccuracy, b.wpAccuracy);
    EXPECT_GT(a.accessesExecuted, 0u);
}

TEST(SampledSystem, TracksFullReplayHitRate)
{
    // Sampled replay must land near the full-stream hit rate measured
    // from the same warmed state.  The bound is loose (the tight 2pp
    // claim is demonstrated at 10M records by bench_trace_replay);
    // this guards against gross regressions like measuring the
    // cold-start ramp or double-counting warmup records.
    sim::SystemConfig config = sim::namedConfig("libq", "2way-pws+gws");
    config.runTimed = false;
    config.scale = 4096;
    config.numCores = 1;
    config.warmPerCore = 80'000;
    config.measurePerCore = 0;
    config.trafficSpec = "synthetic(limit=400000)";

    sim::SystemConfig full = config;
    const sim::SystemMetrics full_m = sim::runSystem(full);

    sim::SystemConfig sampled = config;
    sampled.sampleSpec =
        "window=1024,clusters=8,rate=0.04,warmup=512,prewarm=80000";
    const sim::SystemMetrics sampled_m = sim::runSystem(sampled);

    EXPECT_LT(sampled_m.accessesExecuted,
              full_m.accessesExecuted / 10);
    EXPECT_NEAR(sampled_m.hitRate, full_m.hitRate, 0.10);
}

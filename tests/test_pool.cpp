/** @file Unit tests for the experiment thread pool. */

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "sim/pool.hpp"

using namespace accord;
using sim::ThreadPool;

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, ZeroRequestsDefaultJobs)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.jobs(), ThreadPool::defaultJobs());
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&done] { ++done; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ReturnsTaskResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, SingleJobPreservesSubmissionOrder)
{
    // jobs=1 is the serial path: one worker pops FIFO, so tasks run
    // in exactly the order they were submitted.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i)
        futures.push_back(
            pool.submit([&order, i] { order.push_back(i); }));
    for (auto &future : futures)
        future.get();
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&done] { ++done; });
    }
    EXPECT_EQ(done.load(), 64);
}

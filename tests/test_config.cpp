/** @file Unit tests for the Config key/value table and parseSize. */

#include <gtest/gtest.h>

#include "common/config.hpp"

using namespace accord;

TEST(ParseSize, PlainDigits)
{
    bool ok = false;
    EXPECT_EQ(parseSize("1234", &ok), 1234u);
    EXPECT_TRUE(ok);
}

TEST(ParseSize, Suffixes)
{
    bool ok = false;
    EXPECT_EQ(parseSize("4k", &ok), 4096u);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseSize("2M", &ok), 2ULL << 20);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseSize("4G", &ok), 4ULL << 30);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseSize("1T", &ok), 1ULL << 40);
    EXPECT_TRUE(ok);
}

TEST(ParseSize, HumanSuffixes)
{
    bool ok = false;
    EXPECT_EQ(parseSize("4GiB", &ok), 4ULL << 30);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseSize("256MB", &ok), 256ULL << 20);
    EXPECT_TRUE(ok);
}

TEST(ParseSize, FractionalBase)
{
    bool ok = false;
    EXPECT_EQ(parseSize("0.5k", &ok), 512u);
    EXPECT_TRUE(ok);
}

TEST(ParseSize, Malformed)
{
    bool ok = true;
    parseSize("abc", &ok);
    EXPECT_FALSE(ok);
    ok = true;
    parseSize("12Q", &ok);
    EXPECT_FALSE(ok);
    ok = true;
    parseSize("", &ok);
    EXPECT_FALSE(ok);
}

TEST(Config, ParseArgAndGetters)
{
    Config c;
    EXPECT_TRUE(c.parseArg("alpha=3"));
    EXPECT_TRUE(c.parseArg("beta=2.5"));
    EXPECT_TRUE(c.parseArg("gamma=yes"));
    EXPECT_TRUE(c.parseArg("name=hello"));
    EXPECT_EQ(c.getInt("alpha", 0), 3);
    EXPECT_DOUBLE_EQ(c.getDouble("beta", 0.0), 2.5);
    EXPECT_TRUE(c.getBool("gamma", false));
    EXPECT_EQ(c.getString("name", ""), "hello");
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing", false));
    EXPECT_EQ(c.getString("missing", "d"), "d");
}

TEST(Config, MalformedArgRejected)
{
    Config c;
    EXPECT_FALSE(c.parseArg("noequals"));
    EXPECT_FALSE(c.parseArg("=value"));
}

TEST(Config, SizeSuffixInIntGetter)
{
    Config c;
    c.set("cap", "64M");
    EXPECT_EQ(c.getUint("cap", 0), 64ULL << 20);
}

TEST(Config, OverwriteKeepsLast)
{
    Config c;
    c.set("k", "1");
    c.set("k", "2");
    EXPECT_EQ(c.getInt("k", 0), 2);
}

TEST(Config, HasReflectsExplicitKeys)
{
    Config c;
    EXPECT_FALSE(c.has("x"));
    c.set("x", "1");
    EXPECT_TRUE(c.has("x"));
}

TEST(ConfigDeath, UnconsumedKeyIsFatal)
{
    Config c;
    c.set("typo", "1");
    EXPECT_EXIT(c.checkConsumed(), ::testing::ExitedWithCode(1),
                "never used");
}

TEST(ConfigDeath, BadIntIsFatal)
{
    Config c;
    c.set("n", "xyz");
    EXPECT_EXIT(c.getInt("n", 0), ::testing::ExitedWithCode(1),
                "cannot parse");
}

TEST(ConfigDeath, BadBoolIsFatal)
{
    Config c;
    c.set("b", "maybe");
    EXPECT_EXIT(c.getBool("b", false), ::testing::ExitedWithCode(1),
                "cannot parse");
}

TEST(Config, CheckConsumedPassesWhenAllRead)
{
    Config c;
    c.set("a", "1");
    c.getInt("a", 0);
    c.checkConsumed();     // must not exit
}

/** @file Unit tests for the fixed-block pool and its allocator shim. */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/object_pool.hpp"

using namespace accord;

TEST(BlockPool, FixesBlockSizeOnFirstTake)
{
    BlockPool pool;
    EXPECT_EQ(pool.blockSize(), 0u);
    void *block = pool.take(40);
    EXPECT_GE(pool.blockSize(), 40u);
    EXPECT_EQ(pool.blockSize() % alignof(std::max_align_t), 0u);
    pool.give(block);
}

TEST(BlockPool, RecyclesFreedBlocks)
{
    BlockPool pool(4);
    void *first = pool.take(64);
    pool.give(first);
    // LIFO freelist: the next take pops the block just given back.
    EXPECT_EQ(pool.take(64), first);
    pool.give(first);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(BlockPool, GrowsPastOneChunk)
{
    constexpr std::size_t per_chunk = 4;
    BlockPool pool(per_chunk);
    // accord-lint: allow(pointer-key) distinctness check only;
    // iteration order never reaches output
    std::set<void *> blocks;
    for (int i = 0; i < 3 * static_cast<int>(per_chunk); ++i)
        blocks.insert(pool.take(32));
    EXPECT_EQ(blocks.size(), 3 * per_chunk); // all distinct
    EXPECT_EQ(pool.live(), 3 * per_chunk);
    for (void *block : blocks)
        pool.give(block);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolAllocator, AllocateSharedRoundTrips)
{
    auto pool = std::make_shared<BlockPool>();
    struct Payload
    {
        std::uint64_t a = 7;
        std::uint64_t b = 9;
    };
    auto p = std::allocate_shared<Payload>(PoolAllocator<Payload>(pool));
    EXPECT_EQ(p->a + p->b, 16u);
    EXPECT_EQ(pool->live(), 1u);
    p.reset();
    EXPECT_EQ(pool->live(), 0u);

    // The freed block feeds the next allocation.
    auto q = std::allocate_shared<Payload>(PoolAllocator<Payload>(pool));
    EXPECT_EQ(pool->live(), 1u);
    q.reset();
    EXPECT_EQ(pool->live(), 0u);
}

// The allocator shares pool ownership, so objects that outlive the
// pool's primary owner (the controller-teardown case: transactions
// still referenced by queued events) keep the arena alive.
TEST(PoolAllocator, SharedOwnershipOutlivesPrimaryOwner)
{
    auto pool = std::make_shared<BlockPool>();
    auto p = std::allocate_shared<std::uint64_t>(
        PoolAllocator<std::uint64_t>(pool), std::uint64_t{99});
    pool.reset(); // drop the primary owner
    EXPECT_EQ(*p, 99u);
    p.reset(); // last reference frees block AND pool
}

TEST(PoolAllocator, OddSizesFallThroughToOperatorNew)
{
    auto pool = std::make_shared<BlockPool>();
    PoolAllocator<std::uint64_t> alloc(pool);
    // First single-object allocation locks the block size...
    std::uint64_t *one = alloc.allocate(1);
    const std::size_t block = pool->blockSize();
    // ...so a larger array allocation must bypass the pool.
    std::uint64_t *many = alloc.allocate(block);
    EXPECT_EQ(pool->live(), 1u);
    alloc.deallocate(many, block);
    alloc.deallocate(one, 1);
    EXPECT_EQ(pool->live(), 0u);
}

TEST(PoolAllocatorDeath, NullPoolPanics)
{
    EXPECT_DEATH(PoolAllocator<int>(nullptr), "pool");
}

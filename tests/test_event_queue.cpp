/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hpp"

using namespace accord;

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Cycle fired_at = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(5, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 105u);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(1, recurse);
    };
    eq.scheduleAt(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Cycle t = 1; t <= 10; ++t)
        eq.scheduleAt(t, [&] { ++count; });
    eq.runUntil([&] { return count >= 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.size(), 6u);
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 3; ++i)
        eq.scheduleAt(1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, ScheduleAtNowIsAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.scheduleAt(0, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    eq.step();
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}

/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.hpp"

using namespace accord;

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Cycle fired_at = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(5, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 105u);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(1, recurse);
    };
    eq.scheduleAt(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Cycle t = 1; t <= 10; ++t)
        eq.scheduleAt(t, [&] { ++count; });
    eq.runUntil([&] { return count >= 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.size(), 6u);
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 3; ++i)
        eq.scheduleAt(1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, ScheduleAtNowIsAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.scheduleAt(0, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

// Delays beyond the calendar horizon take the overflow path and must
// still fire in time order, across several full bucket-array wraps.
TEST(EventQueue, FarFutureCrossesBucketWraps)
{
    constexpr Cycle horizon = EventQueue::kBuckets;
    EventQueue eq;
    std::vector<Cycle> fired;
    const std::vector<Cycle> whens = {
        10 * horizon + 1, 2 * horizon + 3, horizon,
        horizon - 1, 0,
    };
    for (const Cycle when : whens)
        eq.scheduleAt(when, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(fired, (std::vector<Cycle>{0, horizon - 1, horizon,
                                         2 * horizon + 3,
                                         10 * horizon + 1}));
    EXPECT_EQ(eq.now(), 10 * horizon + 1);
    EXPECT_EQ(eq.executed(), whens.size());
}

// An event scheduled beyond the horizon and one scheduled later for
// the SAME cycle (from within the horizon) must keep schedule order:
// first scheduled, first run.
TEST(EventQueue, OverflowAndBucketedSameCycleKeepScheduleOrder)
{
    constexpr Cycle target = EventQueue::kBuckets + 10;
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(target, [&] { order.push_back(1); }); // overflow
    eq.scheduleAt(20, [&] {
        // target is now inside the horizon: bucketed directly.
        eq.scheduleAt(target, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Rolling scheduleAfter chains drive the calendar through many wraps;
// the pending/executed bookkeeping must stay exact throughout.
TEST(EventQueue, CountersSurviveManyWraps)
{
    EventQueue eq;
    std::uint64_t hops = 0;
    std::function<void()> hop = [&] {
        if (++hops < 50)
            eq.scheduleAfter(EventQueue::kBuckets / 3 + 7, hop);
    };
    eq.scheduleAt(0, hop);
    std::uint64_t steps = 0;
    while (eq.step())
        ++steps;
    EXPECT_EQ(hops, 50u);
    EXPECT_EQ(steps, 50u);
    EXPECT_EQ(eq.executed(), 50u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_FALSE(eq.step());
}

// step() drains one event at a time and size() tracks the remainder,
// including events still parked in the overflow heap.
TEST(EventQueue, StepDrainsOneAtATime)
{
    EventQueue eq;
    int ran = 0;
    eq.scheduleAt(1, [&] { ++ran; });
    eq.scheduleAt(1, [&] { ++ran; });
    eq.scheduleAt(2 * EventQueue::kBuckets, [&] { ++ran; });
    EXPECT_EQ(eq.size(), 3u);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.size(), 2u);
    EXPECT_TRUE(eq.step());
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 3);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 3u);
}

// Captures too large for the callback's inline buffer spill to the
// heap; the payload must survive the spill and any node moves.
TEST(EventQueue, LargeCaptureCallbackSurvives)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    eq.scheduleAt(7, [payload, &sum] {
        for (const std::uint64_t v : payload)
            sum += v;
    });
    eq.run();
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < payload.size(); ++i)
        expect += i * 3 + 1;
    EXPECT_EQ(sum, expect);
}

// Move-only captures must work: the queue never copies callbacks.
TEST(EventQueue, MoveOnlyCallback)
{
    EventQueue eq;
    auto box = std::make_unique<int>(41);
    int got = 0;
    eq.scheduleAt(3, [box = std::move(box), &got] { got = *box + 1; });
    eq.run();
    EXPECT_EQ(got, 42);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    eq.step();
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}

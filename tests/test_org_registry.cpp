/**
 * @file
 * The registry-backed organization factory: built-ins resolve by name,
 * and a new organization plugs in WITHOUT touching the controller or
 * the plan core — demonstrated by a toy organization registered here,
 * in test code, and driven end-to-end through DramCacheController.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "controller_fixture.hpp"
#include "dramcache/org_setassoc.hpp"
#include "dramcache/organization.hpp"

namespace accord::test
{
namespace
{

using dramcache::DramCacheParams;
using dramcache::OrgContext;
using dramcache::organizationRegistry;
using dramcache::registerBuiltinOrganizations;
using dramcache::SetAssocOrg;

/**
 * A toy organization: set-associative placement with its own name.
 * Deriving from SetAssocOrg keeps the test focused on the plumbing —
 * the point is that the controller constructs it purely from the
 * config string.
 */
class ToyOrg : public SetAssocOrg
{
  public:
    using SetAssocOrg::SetAssocOrg;

    std::string
    describe() const override
    {
        return "toy";
    }
};

void
registerToyOrg()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    organizationRegistry().add(
        "toy", {&SetAssocOrg::geometryFor, [](const OrgContext &ctx) {
                    return std::unique_ptr<dramcache::OrgStrategy>(
                        std::make_unique<ToyOrg>(ctx));
                }});
}

TEST(OrgRegistry, BuiltinsResolveByName)
{
    registerBuiltinOrganizations();
    const auto names = organizationRegistry().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "set_assoc"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "ca"),
              names.end());
    EXPECT_NE(organizationRegistry().find("set_assoc"), nullptr);
    EXPECT_NE(organizationRegistry().find("ca"), nullptr);
    EXPECT_EQ(organizationRegistry().find("no_such_org"), nullptr);
}

TEST(OrgRegistry, RegisterBuiltinsIsIdempotent)
{
    registerBuiltinOrganizations();
    registerBuiltinOrganizations();  // would be fatal if re-added
    EXPECT_NE(organizationRegistry().find("set_assoc"), nullptr);
}

TEST(OrgRegistry, ToyOrganizationConstructsFromConfigName)
{
    registerToyOrg();

    DramCacheParams params;
    params.capacityBytes = 1ULL << 18;
    params.ways = 4;
    params.orgName = "toy";
    params.seed = 99;
    MiniSystem sys(params, "");

    EXPECT_EQ(sys->describe(), "toy");

    // The toy org behaves end-to-end: miss installs, re-read hits,
    // through both execution shells.
    const LineAddr line = sys.lineFor(3, 0x42);
    EXPECT_FALSE(sys->warmRead(line));
    EXPECT_TRUE(sys->warmRead(line));
    EXPECT_TRUE(sys.readBlocking(line));
    EXPECT_EQ(sys->stats().readHits.hits(), 2u);
    EXPECT_EQ(sys->stats().readHits.misses(), 1u);
}

TEST(OrgRegistry, ToyOrganizationListsAlongsideBuiltins)
{
    registerToyOrg();
    const auto names = organizationRegistry().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "toy"),
              names.end());
    // names() is sorted: deterministic listing for error messages.
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(OrgRegistry, UnknownOrganizationNameIsFatal)
{
    DramCacheParams params;
    params.capacityBytes = 1ULL << 18;
    params.orgName = "definitely_not_registered";
    EXPECT_DEATH(MiniSystem(params, ""), "unknown organization");
}

} // namespace
} // namespace accord::test

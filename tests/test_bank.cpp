/** @file Unit tests for the bank timing state machine. */

#include <gtest/gtest.h>

#include "dram/bank.hpp"

using namespace accord;
using namespace accord::dram;

namespace
{

TimingParams
simpleTiming()
{
    TimingParams p;
    p.tCas = 10;
    p.tRcd = 20;
    p.tRp = 15;
    p.tRas = 50;
    p.tWr = 30;
    p.tBurst = 4;
    p.tCcd = 4;
    return p;
}

} // namespace

TEST(Bank, ColdAccessActivates)
{
    Bank bank;
    const auto p = simpleTiming();
    const auto r = bank.serve(100, 7, false, p);
    EXPECT_FALSE(r.rowHit);
    EXPECT_FALSE(r.rowConflict);
    // ACT at 100, CAS at 100 + tRCD.
    EXPECT_EQ(r.casAt, 120u);
    EXPECT_EQ(bank.openRow(), 7u);
}

TEST(Bank, RowHitPaysOnlySpacing)
{
    Bank bank;
    const auto p = simpleTiming();
    bank.serve(100, 7, false, p);
    const auto r = bank.serve(130, 7, false, p);
    EXPECT_TRUE(r.rowHit);
    EXPECT_EQ(r.casAt, 130u);
}

TEST(Bank, BackToBackHitsSpacedByCcd)
{
    Bank bank;
    const auto p = simpleTiming();
    const auto r1 = bank.serve(100, 7, false, p);
    const auto r2 = bank.serve(100, 7, false, p);
    EXPECT_EQ(r2.casAt, r1.casAt + p.tCcd);
}

TEST(Bank, ConflictWaitsForRasThenPrecharges)
{
    Bank bank;
    const auto p = simpleTiming();
    bank.serve(100, 7, false, p);   // ACT at 100
    const auto r = bank.serve(110, 9, false, p);
    EXPECT_TRUE(r.rowConflict);
    // PRE cannot happen before ACT(100) + tRAS(50) = 150; then
    // ACT at 150 + tRP(15) = 165 and CAS at 165 + tRCD(20) = 185.
    EXPECT_EQ(r.casAt, 185u);
    EXPECT_EQ(bank.openRow(), 9u);
}

TEST(Bank, ConflictAfterRasOnlyPaysPreActRcd)
{
    Bank bank;
    const auto p = simpleTiming();
    bank.serve(100, 7, false, p);
    const auto r = bank.serve(1000, 9, false, p);
    EXPECT_EQ(r.casAt, 1000 + p.tRp + p.tRcd);
}

TEST(Bank, WriteRecoveryBlocksNextCommand)
{
    Bank bank;
    const auto p = simpleTiming();
    const auto w = bank.serve(100, 7, true, p);
    // Next command to the same row must wait for write recovery:
    // cas + tCAS + tBurst + tWR.
    const auto r = bank.serve(100, 7, false, p);
    EXPECT_EQ(r.casAt, w.casAt + p.tCas + p.tBurst + p.tWr);
}

TEST(Bank, ReadDoesNotPayWriteRecovery)
{
    Bank bank;
    const auto p = simpleTiming();
    const auto r1 = bank.serve(100, 7, false, p);
    const auto r2 = bank.serve(100, 7, false, p);
    EXPECT_EQ(r2.casAt - r1.casAt, p.tCcd);
}

TEST(Bank, WouldHitTracksOpenRow)
{
    Bank bank;
    const auto p = simpleTiming();
    EXPECT_FALSE(bank.wouldHit(3));
    bank.serve(0, 3, false, p);
    EXPECT_TRUE(bank.wouldHit(3));
    EXPECT_FALSE(bank.wouldHit(4));
}

/** Property: casAt is monotone in request time for a fixed pattern. */
class BankMonotone : public ::testing::TestWithParam<Cycle>
{
};

TEST_P(BankMonotone, LaterRequestsNeverServeEarlier)
{
    const auto p = simpleTiming();
    Bank a, b;
    const Cycle t = GetParam();
    const auto ra = a.serve(t, 1, false, p);
    const auto rb = b.serve(t + 13, 1, false, p);
    EXPECT_LE(ra.casAt, rb.casAt);
}

INSTANTIATE_TEST_SUITE_P(Times, BankMonotone,
                         ::testing::Values(0u, 5u, 100u, 1000u, 54321u));

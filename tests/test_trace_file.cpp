/** @file Unit tests for trace recording and replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "trace/trace_file.hpp"

using namespace accord;
using namespace accord::trace;

namespace
{

/** Temp trace path unique per test. */
std::string
tracePath(const char *name)
{
    return std::string(::testing::TempDir()) + "accord_trace_" + name
        + ".bin";
}

void
writeSample(const std::string &path, int records)
{
    TraceWriter writer(path);
    for (int i = 0; i < records; ++i)
        writer.append({static_cast<LineAddr>(i * 17), i % 3 == 0});
    writer.close();
}

} // namespace

TEST(TraceFile, RoundTrip)
{
    const auto path = tracePath("roundtrip");
    writeSample(path, 100);

    TraceReplay replay(path, false);
    EXPECT_EQ(replay.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        const L4Access access = replay.next();
        EXPECT_EQ(access.line, static_cast<LineAddr>(i * 17));
        EXPECT_EQ(access.isWriteback, i % 3 == 0);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, LargeAddressesSurvive)
{
    const auto path = tracePath("large");
    {
        TraceWriter writer(path);
        writer.append({0xFEDCBA9876543210ULL, true});
    }
    TraceReplay replay(path, false);
    const L4Access access = replay.next();
    EXPECT_EQ(access.line, 0xFEDCBA9876543210ULL);
    EXPECT_TRUE(access.isWriteback);
    std::remove(path.c_str());
}

TEST(TraceFile, LoopWrapsAround)
{
    const auto path = tracePath("loop");
    writeSample(path, 5);
    TraceReplay replay(path, true);
    const LineAddr first = replay.next().line;
    for (int i = 0; i < 4; ++i)
        replay.next();
    EXPECT_EQ(replay.next().line, first);
    EXPECT_TRUE(replay.exhausted());
    std::remove(path.c_str());
}

TEST(TraceFile, RewindRestarts)
{
    const auto path = tracePath("rewind");
    writeSample(path, 5);
    TraceReplay replay(path, false);
    const LineAddr first = replay.next().line;
    replay.next();
    replay.rewind();
    EXPECT_EQ(replay.next().line, first);
    EXPECT_FALSE(replay.exhausted());
    std::remove(path.c_str());
}

TEST(TraceFile, WriterCountsRecords)
{
    const auto path = tracePath("count");
    TraceWriter writer(path);
    for (int i = 0; i < 7; ++i)
        writer.append({static_cast<LineAddr>(i), false});
    EXPECT_EQ(writer.recordsWritten(), 7u);
    writer.close();
    std::remove(path.c_str());
}

TEST(TraceFile, DemandGenSkipsWritebacks)
{
    const auto path = tracePath("demand");
    {
        TraceWriter writer(path);
        writer.append({1, false});
        writer.append({2, true});
        writer.append({3, false});
    }
    TraceReplay replay(path, true);
    TraceDemandGen gen(replay);
    EXPECT_EQ(gen.next().line, 1u);
    EXPECT_EQ(gen.next().line, 3u);
    EXPECT_EQ(gen.next().line, 1u); // looped, writeback skipped
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReplay replay("/nonexistent/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, BadMagicIsFatal)
{
    const auto path = tracePath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTATRACE-------", f);
    std::fclose(f);
    EXPECT_EXIT(TraceReplay replay(path),
                ::testing::ExitedWithCode(1), "not an ACCORD trace");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TruncatedRecordIsFatal)
{
    const auto path = tracePath("truncated");
    writeSample(path, 2);
    // Chop 3 bytes off the end.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 3), 0);
    EXPECT_EXIT(TraceReplay replay(path),
                ::testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, EmptyTraceIsFatal)
{
    const auto path = tracePath("empty");
    { TraceWriter writer(path); }
    EXPECT_EXIT(TraceReplay replay(path),
                ::testing::ExitedWithCode(1), "no records");
    std::remove(path.c_str());
}

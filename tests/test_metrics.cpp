/**
 * @file
 * Tests for the observability layer: the hierarchical MetricRegistry,
 * epoch time-series, canonical JSON serialization, report tables, and
 * the policy-spec round-trip that run reports embed.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/metrics/registry.hpp"
#include "core/factory.hpp"
#include "sim/report/report.hpp"
#include "sim/runner.hpp"

using namespace accord;

namespace
{

/** A component-shaped bundle of metrics for registration tests. */
struct Component
{
    Counter reads;
    Ratio lookup;
    Average latency;
    std::uint64_t raw = 0;

    void
    registerMetrics(MetricRegistry &registry,
                    const std::string &prefix) const
    {
        registry.addCounter(MetricRegistry::join(prefix, "reads"),
                            reads);
        registry.addRatio(MetricRegistry::join(prefix, "lookup"),
                          lookup);
        registry.addAverage(MetricRegistry::join(prefix, "latency"),
                            latency);
        registry.addValue(MetricRegistry::join(prefix, "raw"), raw);
    }
};

} // namespace

TEST(MetricRegistry, JoinBuildsDottedPaths)
{
    EXPECT_EQ(MetricRegistry::join("l4", "lookup"), "l4.lookup");
    EXPECT_EQ(MetricRegistry::join("", "lookup"), "lookup");
}

TEST(MetricRegistry, CompositeMetricsExpandToLeaves)
{
    Component comp;
    MetricRegistry registry;
    comp.registerMetrics(registry, "l4");

    const std::vector<std::string> leaves = registry.leafPaths();
    const std::vector<std::string> expected = {
        "l4.latency.count", "l4.latency.max",   "l4.latency.mean",
        "l4.latency.min",   "l4.lookup.hit_rate", "l4.lookup.hits",
        "l4.lookup.total",  "l4.raw",           "l4.reads",
    };
    EXPECT_EQ(leaves, expected);
}

TEST(MetricRegistry, RegistrationIsZeroCopySampling)
{
    Component comp;
    MetricRegistry registry;
    comp.registerMetrics(registry, "l4");

    // Mutations after registration are visible at sample time: the
    // registry holds pointers, not copies.
    comp.reads.inc(3);
    comp.lookup.hit();
    comp.lookup.miss();
    comp.raw = 17;

    EXPECT_EQ(registry.sample("l4.reads"), 3.0);
    EXPECT_EQ(registry.sample("l4.lookup.hits"), 1.0);
    EXPECT_EQ(registry.sample("l4.lookup.total"), 2.0);
    EXPECT_EQ(registry.sample("l4.lookup.hit_rate"), 0.5);
    EXPECT_EQ(registry.sample("l4.raw"), 17.0);
}

TEST(MetricRegistry, GaugeSamplesThroughCallback)
{
    double value = 1.0;
    MetricRegistry registry;
    registry.addGauge("derived", [&value] { return value; });
    EXPECT_EQ(registry.sample("derived"), 1.0);
    value = 2.5;
    EXPECT_EQ(registry.sample("derived"), 2.5);
}

TEST(MetricRegistryDeath, DuplicateRegistrationIsFatal)
{
    Counter counter;
    MetricRegistry registry;
    registry.addCounter("l4.reads", counter);
    EXPECT_EXIT(registry.addCounter("l4.reads", counter),
                testing::ExitedWithCode(1), "l4.reads");
}

TEST(MetricRegistryDeath, MalformedPathIsFatal)
{
    Counter counter;
    MetricRegistry registry;
    EXPECT_EXIT(registry.addCounter("L4.Reads", counter),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(registry.addCounter("l4..reads", counter),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(registry.addCounter("", counter),
                testing::ExitedWithCode(1), "");
}

TEST(MetricRegistryDeath, UnknownLeafIsFatal)
{
    const MetricRegistry registry;
    EXPECT_EXIT(registry.sample("no.such.path"),
                testing::ExitedWithCode(1), "no.such.path");
}

TEST(MetricSnapshot, SortedAndSearchable)
{
    Component comp;
    comp.reads.inc(7);
    MetricRegistry registry;
    comp.registerMetrics(registry, "dram.ch0");

    const MetricSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.size(), 9u);
    for (std::size_t i = 1; i < snap.values().size(); ++i)
        EXPECT_LT(snap.values()[i - 1].first, snap.values()[i].first);

    EXPECT_EQ(snap.at("dram.ch0.reads"), 7.0);
    EXPECT_EQ(snap.find("dram.ch0.bogus"), nullptr);
}

TEST(MetricSeries, RecordsMonotonicEpochs)
{
    Component comp;
    MetricRegistry registry;
    comp.registerMetrics(registry, "c");

    MetricSeries series;
    comp.reads.inc();
    series.record(100, registry.snapshot());
    comp.reads.inc();
    series.record(200, registry.snapshot());

    EXPECT_EQ(series.size(), 2u);
    EXPECT_EQ(series.positions(),
              (std::vector<std::uint64_t>{100, 200}));
    EXPECT_EQ(series.value(0, "c.reads"), 1.0);
    EXPECT_EQ(series.value(1, "c.reads"), 2.0);
}

TEST(MetricSeriesDeath, NonIncreasingPositionIsFatal)
{
    Component comp;
    MetricRegistry registry;
    comp.registerMetrics(registry, "c");

    MetricSeries series;
    series.record(100, registry.snapshot());
    EXPECT_DEATH(series.record(100, registry.snapshot()),
                 "strictly increase");
}

TEST(CanonicalNumber, OneFormattingForAllReports)
{
    EXPECT_EQ(canonicalNumber(0.0), "0");
    EXPECT_EQ(canonicalNumber(-0.0), "0");
    EXPECT_EQ(canonicalNumber(42.0), "42");
    EXPECT_EQ(canonicalNumber(0.5), "0.5");
    EXPECT_EQ(canonicalNumber(1.0 / 3.0), "0.333333333333");
}

TEST(ReportTable, TextAndJsonShareCells)
{
    report::ReportTable table("demo", {"name", "value", "share"});
    table.row().cell("alpha").cell(3.14159, 2).percent(0.25);
    table.row().cell("beta").cell(std::uint64_t{7}).percent(0.5, 2);

    const std::string text = table.renderText();
    EXPECT_NE(text.find("3.14"), std::string::npos);
    EXPECT_NE(text.find("25.0%"), std::string::npos);
    EXPECT_NE(text.find("50.00%"), std::string::npos);

    JsonWriter json;
    table.writeJson(json);
    const std::string doc = json.str();
    // JSON carries the raw values, not the rounded text.
    EXPECT_NE(doc.find("3.14159"), std::string::npos);
    EXPECT_NE(doc.find("0.25"), std::string::npos);
    EXPECT_NE(doc.find("0.5"), std::string::npos);
}

TEST(RunReport, CanonicalJsonIsDeterministic)
{
    const auto build = [] {
        report::RunReport report("title", "Fig 0");
        report.setParam("scale", "128");
        report.setParam("seed", "1");
        report.addNote("a note");
        report::ReportTable &table =
            report.addTable("t", {"k", "v"});
        table.row().cell("x").cell(1.5, 1);
        report.setRunSpec("w/cfg", "workload=w ways=2");
        report.addRunValue("w/cfg", "speedup", 1.25);
        return report.toJson();
    };
    const std::string a = build();
    const std::string b = build();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\": \"accord.run_report/1\""),
              std::string::npos);
    EXPECT_EQ(a.back(), '\n');
}

TEST(RunReportDeath, DuplicateTableNameIsFatal)
{
    report::RunReport report("title", "ref");
    report.addTable("t", {"a"});
    EXPECT_EXIT(report.addTable("t", {"a"}),
                testing::ExitedWithCode(1), "");
}

TEST(PolicyOptions, ToStringListsEveryKnobInFixedOrder)
{
    core::PolicyOptions options;
    EXPECT_EQ(options.toString(),
              "pip=0.85,k=2,gws=64,ptag=4,seed=42");
}

TEST(PolicyOptions, FromStringRoundTrips)
{
    core::PolicyOptions options;
    options.pip = 0.9;
    options.swsK = 3;
    options.gwsEntries = 128;
    options.partialTagBits = 6;
    options.seed = 7;

    const core::PolicyOptions parsed =
        core::PolicyOptions::fromString(options.toString());
    EXPECT_EQ(parsed.toString(), options.toString());
}

TEST(PolicyOptions, FromStringAcceptsSubsets)
{
    const core::PolicyOptions parsed =
        core::PolicyOptions::fromString("pip=0.7,seed=3");
    EXPECT_EQ(parsed.pip, 0.7);
    EXPECT_EQ(parsed.seed, 3u);
    EXPECT_EQ(parsed.swsK, 2u);       // default
    EXPECT_EQ(parsed.gwsEntries, 64u); // default
}

TEST(PolicyOptionsDeath, RejectsUnknownAndMalformed)
{
    EXPECT_EXIT(core::PolicyOptions::fromString("bogus=1"),
                testing::ExitedWithCode(1), "bogus");
    EXPECT_EXIT(core::PolicyOptions::fromString("pip"),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(core::PolicyOptions::fromString("pip=abc"),
                testing::ExitedWithCode(1), "");
}

TEST(PolicySpec, ParseSplitsNameAndEmbeddedOptions)
{
    const auto [name, options] =
        core::parseSpec("pws+gws(pip=0.9,gws=128)");
    EXPECT_EQ(name, "pws+gws");
    EXPECT_EQ(options.pip, 0.9);
    EXPECT_EQ(options.gwsEntries, 128u);

    const auto [bare, defaults] = core::parseSpec("sws");
    EXPECT_EQ(bare, "sws");
    EXPECT_EQ(defaults.toString(),
              core::PolicyOptions{}.toString());
}

TEST(PolicySpec, CanonicalSpecRoundTrips)
{
    const std::string canon = core::canonicalSpec("pws+gws(pip=0.9)");
    EXPECT_EQ(canon,
              "pws+gws(pip=0.9,k=2,gws=64,ptag=4,seed=42)");
    // Canonicalizing a canonical spec is the identity.
    EXPECT_EQ(core::canonicalSpec(canon), canon);
}

TEST(PolicySpec, EmbeddedOptionsReachTheFactory)
{
    core::CacheGeometry geom;
    geom.ways = 2;
    geom.sets = 1024;
    // gws=8 shrinks the RIT/RLT: the spec's options must win over the
    // defaults for the storage to differ.
    const auto small = core::makePolicy("gws(gws=8)", geom);
    const auto big = core::makePolicy("gws(gws=256)", geom);
    EXPECT_LT(small->storageBits(), big->storageBits());
}

TEST(CanonicalConfigSpec, IdentifiesEveryResultAffectingKnob)
{
    sim::SystemConfig config;
    config.workload = "libq";
    const std::string spec = sim::canonicalConfigSpec(config);
    EXPECT_NE(spec.find("workload=libq"), std::string::npos);
    EXPECT_NE(spec.find("scale="), std::string::npos);
    EXPECT_NE(spec.find("seed="), std::string::npos);
    EXPECT_NE(spec.find("epoch="), std::string::npos);
    // jobs= never affects results, so it must not appear.
    EXPECT_EQ(spec.find("jobs="), std::string::npos);

    sim::SystemConfig other = config;
    other.seed = config.seed + 1;
    EXPECT_NE(sim::canonicalConfigSpec(other), spec);
}

TEST(SystemMetrics, FinalSnapshotAndEpochSeries)
{
    sim::SystemConfig config;
    config.workload = "libq";
    config.runTimed = false;
    config.scale = 4096;
    config.numCores = 2;
    config.warmPerCore = 2000;
    config.measurePerCore = 3000;
    config.epochEvery = 1000;

    const sim::SystemMetrics m = sim::runSystem(config);
    EXPECT_GT(m.finalMetrics.size(), 0u);
    EXPECT_EQ(m.finalMetrics.at("l4.lookup.hit_rate"), m.hitRate);

    // measure=3000/core over 2 cores = 6000 accesses; epochs every
    // 1000 accesses land on chunk boundaries, strictly increasing.
    EXPECT_GT(m.epochs.size(), 2u);
    const auto &positions = m.epochs.positions();
    for (std::size_t i = 1; i < positions.size(); ++i)
        EXPECT_LT(positions[i - 1], positions[i]);
    // The epoch paths match the final snapshot's paths.
    EXPECT_EQ(m.epochs.paths().size(), m.finalMetrics.size());
}

TEST(SystemMetrics, EpochSamplingOffByDefault)
{
    sim::SystemConfig config;
    config.workload = "libq";
    config.runTimed = false;
    config.scale = 4096;
    config.numCores = 1;
    config.warmPerCore = 500;
    config.measurePerCore = 500;

    const sim::SystemMetrics m = sim::runSystem(config);
    EXPECT_TRUE(m.epochs.empty());
    EXPECT_GT(m.finalMetrics.size(), 0u);
}

/**
 * @file
 * Transaction tracer tests: id/event ordering invariants, ring
 * eviction at trace_cap, latency attribution into txn.* metrics,
 * deterministic balanced JSON, and the System-level contract that
 * tracing is opt-in (disabled runs emit nothing) and jobs-independent.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/trace_event/tracer.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

using namespace accord;
using namespace accord::trace_event;

namespace
{

Tracer
makeTracer(std::uint64_t cap = 0)
{
    TracerConfig config;
    config.cap = cap;
    return Tracer(config);
}

/** One full read transaction: lookup phase, probe, hit at `when`. */
TxnId
runHit(Tracer &tracer, Cycle start, Cycle end,
       RequestClass cls = RequestClass::HitPredict)
{
    const TxnId txn =
        tracer.begin(TxnKind::Read, /*core=*/0, /*line=*/0x40, start);
    tracer.phaseBegin(txn, Phase::Lookup, start);
    tracer.point(txn, Point::ProbeIssue, start, /*way=*/0);
    tracer.point(txn, Point::PredictCorrect, end, /*way=*/0);
    tracer.phaseEnd(txn, Phase::Lookup, end);
    tracer.complete(txn, cls, end);
    return txn;
}

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t at = text.find(needle);
         at != std::string::npos; at = text.find(needle, at + 1))
        ++count;
    return count;
}

} // namespace

// --- lifecycle invariants -------------------------------------------

TEST(Tracer, IdsAreMonotonicAndNeverNoTxn)
{
    Tracer tracer = makeTracer();
    TxnId last = kNoTxn;
    for (int i = 0; i < 5; ++i) {
        const TxnId txn =
            tracer.begin(TxnKind::Read, 0, 0x100, Cycle(i));
        EXPECT_NE(txn, kNoTxn);
        EXPECT_GT(txn, last);
        last = txn;
    }
    EXPECT_EQ(tracer.beganCount(), 5u);
    EXPECT_EQ(tracer.openCount(), 5u);
}

TEST(Tracer, EventsRecordInSequenceOrderWithBalancedPhases)
{
    Tracer tracer = makeTracer();
    const TxnId txn = runHit(tracer, 10, 74);

    const TxnRecord *record = tracer.find(txn);
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->completed);
    EXPECT_EQ(record->begin, 10u);
    EXPECT_EQ(record->end, 74u);
    EXPECT_EQ(record->cls, RequestClass::HitPredict);

    // Sequence numbers strictly increase in emission order, and the
    // phase begin/end events pair up.
    std::uint64_t last_seq = record->beginSeq;
    int phase_depth = 0;
    for (const Event &event : record->events) {
        EXPECT_GT(event.seq, last_seq);
        last_seq = event.seq;
        if (event.kind == EventKind::PhaseBegin)
            ++phase_depth;
        if (event.kind == EventKind::PhaseEnd) {
            --phase_depth;
            EXPECT_GE(phase_depth, 0);
        }
    }
    EXPECT_EQ(phase_depth, 0);
    EXPECT_GT(record->endSeq, last_seq);
}

TEST(Tracer, CompleteClosesTheTransaction)
{
    Tracer tracer = makeTracer();
    runHit(tracer, 0, 50);
    EXPECT_EQ(tracer.openCount(), 0u);
    ASSERT_EQ(tracer.completedRecords().size(), 1u);
}

// --- ring buffer ----------------------------------------------------

TEST(Tracer, RingEvictsOldestCompletedAtCap)
{
    Tracer tracer = makeTracer(/*cap=*/4);
    std::vector<TxnId> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(runHit(tracer, Cycle(i * 100),
                             Cycle(i * 100 + 50)));

    EXPECT_EQ(tracer.evictedCount(), 6u);
    const auto records = tracer.completedRecords();
    ASSERT_EQ(records.size(), 4u);
    // Oldest-first, and exactly the newest four survive.
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i]->id, ids[6 + i]);
    EXPECT_EQ(tracer.find(ids[0]), nullptr);
    EXPECT_NE(tracer.find(ids[9]), nullptr);
}

TEST(Tracer, OpenTransactionsAreNeverEvicted)
{
    Tracer tracer = makeTracer(/*cap=*/2);
    const TxnId open =
        tracer.begin(TxnKind::Read, 0, 0x80, /*now=*/0);
    for (int i = 0; i < 6; ++i)
        runHit(tracer, Cycle(10 + i), Cycle(20 + i));

    EXPECT_EQ(tracer.openCount(), 1u);
    ASSERT_NE(tracer.find(open), nullptr);
    EXPECT_FALSE(tracer.find(open)->completed);
    EXPECT_EQ(tracer.completedRecords().size(), 2u);
}

TEST(Tracer, LateEventsForEvictedTransactionsAreDroppedAndCounted)
{
    Tracer tracer = makeTracer(/*cap=*/1);
    const TxnId first = runHit(tracer, 0, 50);
    runHit(tracer, 60, 110); // evicts `first`

    ASSERT_EQ(tracer.find(first), nullptr);
    tracer.point(first, Point::BankAct, 120);
    EXPECT_EQ(tracer.droppedEvents(), 1u);
}

TEST(Tracer, UncappedTracerRetainsEverything)
{
    Tracer tracer = makeTracer(/*cap=*/0);
    for (int i = 0; i < 100; ++i)
        runHit(tracer, Cycle(i), Cycle(i + 10));
    EXPECT_EQ(tracer.evictedCount(), 0u);
    EXPECT_EQ(tracer.completedRecords().size(), 100u);
}

// --- latency attribution -------------------------------------------

TEST(Tracer, BurstAttributionSplitsQueueAndService)
{
    Tracer tracer = makeTracer();
    const std::int32_t track =
        tracer.registerDeviceTrack(Device::Dram, /*channel=*/0);

    const TxnId txn = tracer.begin(TxnKind::Read, 0, 0x40, 0);
    tracer.phaseBegin(txn, Phase::Lookup, 0);
    // Enqueued at 0, picked at 30, data 60..72: 30 queue, 42 service.
    tracer.burst(txn, track, /*bank=*/3, /*row=*/7, /*isWrite=*/false,
                 /*rowHit=*/false, /*enqueuedAt=*/0, /*pickedAt=*/30,
                 /*actAt=*/30, /*casAt=*/44, /*dataStart=*/60,
                 /*dataEnd=*/72, 1, 0);
    tracer.phaseEnd(txn, Phase::Lookup, 100);
    tracer.complete(txn, RequestClass::HitPredict, 100);

    const ClassStats &stats =
        tracer.classStats(RequestClass::HitPredict);
    EXPECT_DOUBLE_EQ(stats.dramQueue.mean(), 30.0);
    EXPECT_DOUBLE_EQ(stats.dramService.mean(), 42.0);
    // Remainder: 100 total - 30 queue - 42 service.
    EXPECT_DOUBLE_EQ(stats.other.mean(), 28.0);
    EXPECT_EQ(stats.latency.count(), 1u);
}

TEST(Tracer, MetricsRegisterPerClassHistogramsWithP99)
{
    Tracer tracer = makeTracer();
    runHit(tracer, 0, 64);
    runHit(tracer, 100, 292, RequestClass::HitMispredict);

    MetricRegistry registry;
    tracer.registerMetrics(registry, "txn");
    const MetricSnapshot snapshot = registry.snapshot();

    EXPECT_DOUBLE_EQ(snapshot.at("txn.hit_predict.latency.count"),
                     1.0);
    EXPECT_DOUBLE_EQ(snapshot.at("txn.hit_predict.latency.mean"),
                     64.0);
    ASSERT_NE(snapshot.find("txn.hit_predict.latency.p50"), nullptr);
    ASSERT_NE(snapshot.find("txn.hit_predict.latency.p95"), nullptr);
    ASSERT_NE(snapshot.find("txn.hit_predict.latency.p99"), nullptr);
    ASSERT_NE(snapshot.find("txn.miss.phase.nvm_service.mean"),
              nullptr);
    EXPECT_DOUBLE_EQ(
        snapshot.at("txn.hit_mispredict.latency.count"), 1.0);
}

// --- JSON export ----------------------------------------------------

TEST(Tracer, JsonIsBalancedAndDeterministic)
{
    const auto build = [] {
        Tracer tracer = makeTracer();
        const std::int32_t track =
            tracer.registerDeviceTrack(Device::Dram, 0);
        for (int i = 0; i < 8; ++i) {
            const TxnId txn = tracer.begin(
                TxnKind::Read, unsigned(i % 2), 0x40 * i,
                Cycle(i * 10));
            tracer.phaseBegin(txn, Phase::Lookup, Cycle(i * 10));
            tracer.burst(txn, track, 1, 2, false, i % 2 != 0,
                         Cycle(i * 10), Cycle(i * 10 + 5),
                         i % 2 != 0 ? invalidCycle : Cycle(i * 10 + 5),
                         Cycle(i * 10 + 8), Cycle(i * 10 + 20),
                         Cycle(i * 10 + 32), 1, 0);
            tracer.phaseEnd(txn, Phase::Lookup, Cycle(i * 10 + 40));
            tracer.complete(txn, RequestClass::HitPredict,
                            Cycle(i * 10 + 40));
        }
        return tracer.toJson();
    };

    const std::string a = build();
    const std::string b = build();
    EXPECT_EQ(a, b);
    EXPECT_EQ(countOccurrences(a, "\"ph\": \"b\""),
              countOccurrences(a, "\"ph\": \"e\""));
    EXPECT_NE(a.find("\"clock\": \"sim-cycles\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Tracer, OpenTransactionsAreExcludedFromJson)
{
    Tracer tracer = makeTracer();
    tracer.begin(TxnKind::Read, 0, 0xabc, 0);
    const std::string json = tracer.toJson();

    EXPECT_EQ(countOccurrences(json, "\"ph\": \"b\""), 0u);
    EXPECT_NE(json.find("\"open_at_export\": 1"), std::string::npos);
}

TEST(Tracer, DisabledStyleEmptyTracerStillExportsValidShell)
{
    Tracer tracer = makeTracer();
    const std::string json = tracer.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"retained_txns\": 0"), std::string::npos);
}

// --- sweep path mangling -------------------------------------------

TEST(PerRunTracePath, InsertsRunIndexBeforeExtension)
{
    EXPECT_EQ(sim::perRunTracePath("out.json", 3), "out.run3.json");
    EXPECT_EQ(sim::perRunTracePath("a/b/out.json", 0),
              "a/b/out.run0.json");
}

TEST(PerRunTracePath, AppendsWhenNoUsableExtension)
{
    EXPECT_EQ(sim::perRunTracePath("trace", 2), "trace.run2");
    // The dot belongs to a directory, not an extension.
    EXPECT_EQ(sim::perRunTracePath("dir.d/trace", 1),
              "dir.d/trace.run1");
}

// --- System integration --------------------------------------------

namespace
{

sim::SystemConfig
tracedConfig(const std::string &path)
{
    sim::SystemConfig config;
    config.workload = "libq";
    config.numCores = 2;
    config.scale = 1024;
    config.warmPerCore = 5000;
    config.timedPerCore = 300;
    config.tracePath = path;
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

TEST(SystemTrace, DisabledRunEmitsNothing)
{
    sim::SystemConfig config = tracedConfig("");
    const sim::SystemMetrics m = sim::runSystem(config);

    EXPECT_TRUE(m.traceJson.empty());
    for (const auto &[path, value] : m.finalMetrics.values())
        EXPECT_NE(path.rfind("txn.", 0), 0u)
            << "untraced run leaked metric " << path;
}

TEST(SystemTrace, EnabledRunWritesFileAndMetrics)
{
    const std::string path =
        testing::TempDir() + "accord_trace_system.json";
    const sim::SystemMetrics m = sim::runSystem(tracedConfig(path));

    ASSERT_FALSE(m.traceJson.empty());
    EXPECT_EQ(slurp(path), m.traceJson);
    EXPECT_GT(m.finalMetrics.at("txn.hit_predict.latency.count"), 0.0);
    ASSERT_NE(m.finalMetrics.find("txn.miss.latency.p99"), nullptr);
    ASSERT_NE(m.finalMetrics.find("txn.fill.phase.dram_queue.mean"),
              nullptr);
    std::remove(path.c_str());
}

TEST(SystemTrace, TracingDoesNotChangeSimulationResults)
{
    const std::string path =
        testing::TempDir() + "accord_trace_neutral.json";
    sim::SystemConfig untraced = tracedConfig("");
    const sim::SystemMetrics a = sim::runSystem(untraced);
    const sim::SystemMetrics b = sim::runSystem(tracedConfig(path));

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.coreIpc, b.coreIpc);
    EXPECT_DOUBLE_EQ(a.hitRate, b.hitRate);
    std::remove(path.c_str());
}

TEST(SystemTrace, TraceCapBoundsRetainedTransactions)
{
    const std::string path =
        testing::TempDir() + "accord_trace_cap.json";
    sim::SystemConfig config = tracedConfig(path);
    config.traceCap = 16;
    const sim::SystemMetrics m = sim::runSystem(config);

    EXPECT_NE(m.traceJson.find("\"retained_txns\": 16"),
              std::string::npos);
    EXPECT_NE(m.traceJson.find("\"evicted_txns\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(SystemTrace, ByteIdenticalAcrossJobCounts)
{
    // Two traced configs run as one batch: each run gets its own
    // .runN path, and the export must not depend on the job count.
    const std::string path =
        testing::TempDir() + "accord_trace_jobs.json";
    std::vector<sim::SystemConfig> configs;
    configs.push_back(tracedConfig(path));
    configs.push_back(tracedConfig(path));
    configs.back().seed = 7;

    const std::vector<sim::SystemMetrics> serial =
        sim::SweepRunner(1).runConfigs(configs);
    const std::vector<sim::SystemMetrics> parallel =
        sim::SweepRunner(3).runConfigs(configs);

    ASSERT_EQ(serial.size(), 2u);
    ASSERT_EQ(parallel.size(), 2u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].traceJson.empty());
        EXPECT_EQ(serial[i].traceJson, parallel[i].traceJson);
    }
    EXPECT_NE(serial[0].traceJson, serial[1].traceJson);
    std::remove(sim::perRunTracePath(path, 0).c_str());
    std::remove(sim::perRunTracePath(path, 1).c_str());
}

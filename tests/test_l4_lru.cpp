/** @file Tests for the LRU-in-DRAM-cache ablation (paper footnote 2). */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller_fixture.hpp"
#include "sim/runner.hpp"

using namespace accord;
using namespace accord::test;
using dramcache::L4Replacement;
using dramcache::LookupMode;

namespace
{

std::unique_ptr<dramcache::DramCacheController>
makeLru(EventQueue &eq, nvm::NvmSystem &nvm, unsigned ways = 2)
{
    dramcache::DramCacheParams params;
    params.capacityBytes = 1ULL << 20;
    params.ways = ways;
    params.lookup = LookupMode::Serial;
    params.replacement = L4Replacement::Lru;
    return std::make_unique<dramcache::DramCacheController>(
        params, nullptr, dram::hbmCacheTiming(), eq, nvm);
}

} // namespace

TEST(L4Lru, HitsPayReplacementUpdateWrites)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);
    auto cache = makeLru(eq, nvm);
    cache->warmRead(42);
    cache->resetStats();
    cache->warmRead(42);    // hit: recency update costs a write
    EXPECT_EQ(cache->stats().replacementUpdateWrites.value(), 1u);
    EXPECT_EQ(cache->stats().cacheWriteTransfers.value(), 1u);
}

TEST(L4Lru, RandomModePaysNoUpdateWrites)
{
    MiniSystem sys(2, LookupMode::Serial, "");
    sys->warmRead(42);
    sys->resetStats();
    sys->warmRead(42);
    EXPECT_EQ(sys->stats().replacementUpdateWrites.value(), 0u);
    EXPECT_EQ(sys->stats().cacheWriteTransfers.value(), 0u);
}

TEST(L4Lru, EvictsLeastRecentlyUsedLine)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);
    auto cache = makeLru(eq, nvm);
    const auto &geom = cache->geometry();
    const LineAddr a = (1ULL << geom.setBits()) | 9;
    const LineAddr b = (2ULL << geom.setBits()) | 9;
    const LineAddr c = (3ULL << geom.setBits()) | 9;
    cache->warmRead(a);
    cache->warmRead(b);
    cache->warmRead(a);     // b is now LRU
    cache->warmRead(c);     // evicts b
    EXPECT_TRUE(cache->warmRead(a));
    EXPECT_FALSE(cache->warmRead(b));
}

TEST(L4Lru, BetterHitRateButMoreWritesThanRandom)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);
    auto lru = makeLru(eq, nvm, 4);
    MiniSystem rnd(4, LookupMode::Serial, "");

    Rng rng_a(3), rng_b(3);
    for (int i = 0; i < 60000; ++i) {
        lru->warmRead(rng_a.below(40000));
        rnd->warmRead(rng_b.below(40000));
    }
    // LRU preserves re-referenced lines at least as well as random...
    EXPECT_GE(lru->stats().readHits.rate() + 0.02,
              rnd->stats().readHits.rate());
    // ...but pays a write per hit, which random never does.
    EXPECT_GT(lru->stats().cacheWriteTransfers.value(),
              rnd->stats().cacheWriteTransfers.value());
}

TEST(L4Lru, TimedHitIssuesTheUpdateWrite)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);
    auto cache = makeLru(eq, nvm);
    bool done = false;
    cache->read(42, [&](bool, Cycle) { done = true; });
    eq.runUntil([&] { return done; });
    eq.run();
    const auto before = cache->hbm().aggregateStats().writesServed;
    done = false;
    cache->read(42, [&](bool hit, Cycle) {
        EXPECT_TRUE(hit);
        done = true;
    });
    eq.runUntil([&] { return done; });
    eq.run();
    EXPECT_EQ(cache->hbm().aggregateStats().writesServed, before + 1);
}

TEST(L4Lru, NamedConfigBuildsIt)
{
    const auto config = sim::namedConfig("libq", "2way-lru");
    EXPECT_EQ(config.replacement, L4Replacement::Lru);
    EXPECT_EQ(config.lookup, LookupMode::Serial);
    EXPECT_TRUE(config.policySpec.empty());
}

TEST(L4LruDeath, CannotCombineWithWayPolicy)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);
    dramcache::DramCacheParams params;
    params.capacityBytes = 1ULL << 20;
    params.ways = 2;
    params.replacement = L4Replacement::Lru;
    core::CacheGeometry geom;
    geom.ways = 2;
    geom.sets = params.capacityBytes / lineSize / 2;
    auto policy = core::makePolicy("pws", geom);
    EXPECT_DEATH(dramcache::DramCacheController(
                     params, std::move(policy),
                     dram::hbmCacheTiming(), eq, nvm),
                 "unsteered");
}

/** @file Unit tests for the DCP (presence + way) directory. */

#include <gtest/gtest.h>

#include "dramcache/dcp.hpp"

using namespace accord;
using namespace accord::dramcache;

TEST(Dcp, AbsentByDefault)
{
    DcpDirectory dcp;
    EXPECT_FALSE(dcp.lookup(42).has_value());
    EXPECT_EQ(dcp.size(), 0u);
}

TEST(Dcp, RecordAndLookup)
{
    DcpDirectory dcp;
    dcp.record(42, 3);
    const auto way = dcp.lookup(42);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 3u);
}

TEST(Dcp, RecordOverwrites)
{
    DcpDirectory dcp;
    dcp.record(42, 1);
    dcp.record(42, 2);
    EXPECT_EQ(*dcp.lookup(42), 2u);
    EXPECT_EQ(dcp.size(), 1u);
}

TEST(Dcp, EraseRemoves)
{
    DcpDirectory dcp;
    dcp.record(42, 1);
    dcp.erase(42);
    EXPECT_FALSE(dcp.lookup(42).has_value());
    dcp.erase(42);      // idempotent
}

TEST(Dcp, ManyLinesIndependent)
{
    DcpDirectory dcp;
    for (LineAddr line = 0; line < 1000; ++line)
        dcp.record(line, static_cast<unsigned>(line % 8));
    for (LineAddr line = 0; line < 1000; ++line)
        EXPECT_EQ(*dcp.lookup(line), line % 8);
    EXPECT_EQ(dcp.size(), 1000u);
}

/** @file Unit tests for the channel scheduler. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hpp"
#include "dram/channel.hpp"

using namespace accord;
using namespace accord::dram;

namespace
{

TimingParams
channelTiming()
{
    TimingParams p;
    p.channels = 1;
    p.banksPerChannel = 4;
    p.rowBytes = 2048;
    p.capacityBytes = 1ULL << 20;
    p.tCas = 10;
    p.tRcd = 20;
    p.tRp = 15;
    p.tRas = 50;
    p.tWr = 30;
    p.tBurst = 4;
    p.tCcd = 4;
    p.writeDrainHigh = 8;
    p.writeDrainLow = 2;
    return p;
}

MemOp
makeOp(unsigned bank, std::uint64_t row, bool write,
       MemCallback cb = nullptr, bool priority = false)
{
    MemOp op;
    op.loc = {0, bank, row};
    op.isWrite = write;
    op.priority = priority;
    op.onComplete = std::move(cb);
    return op;
}

} // namespace

TEST(Channel, SingleReadCompletes)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    Cycle done = 0;
    ch.enqueue(makeOp(0, 3, false, [&](Cycle when) { done = when; }));
    eq.run();
    // Cold row: kick at 0, ACT, CAS at tRCD, data at +tCAS+tBurst.
    EXPECT_EQ(done, p.tRcd + p.tCas + p.tBurst);
    EXPECT_TRUE(ch.idle());
}

TEST(Channel, RowHitSecondReadIsFaster)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    Cycle first = 0, second = 0;
    ch.enqueue(makeOp(0, 3, false, [&](Cycle w) { first = w; }));
    ch.enqueue(makeOp(0, 3, false, [&](Cycle w) { second = w; }));
    eq.run();
    EXPECT_GT(second, first);
    // The second transfer needs no new activation: it is bus-limited.
    EXPECT_LE(second - first, p.tCas + p.tBurst);
}

TEST(Channel, DifferentBanksOverlap)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    std::vector<Cycle> done;
    for (unsigned bank = 0; bank < 4; ++bank)
        ch.enqueue(makeOp(bank, 1, false,
                          [&](Cycle w) { done.push_back(w); }));
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // Bank preparation overlaps: the last completion is far sooner
    // than 4 serialized activations.
    EXPECT_LT(done.back(), 4 * (p.tRcd + p.tCas + p.tBurst));
    // The bus still serializes the transfers.
    EXPECT_GE(done.back(), done.front() + 3 * p.tBurst);
}

TEST(Channel, StatsCountReadsWritesAndRowHits)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    ch.enqueue(makeOp(0, 3, false));
    ch.enqueue(makeOp(0, 3, false));
    ch.enqueue(makeOp(0, 3, true));
    eq.run();
    EXPECT_EQ(ch.stats().readsServed.value(), 2u);
    EXPECT_EQ(ch.stats().writesServed.value(), 1u);
    EXPECT_EQ(ch.stats().rowHits.value(), 2u);
    EXPECT_EQ(ch.stats().busBusyCycles.value(), 3 * p.tBurst);
}

TEST(Channel, ReadsHavePriorityOverWrites)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    std::vector<char> order;
    // Below the drain watermark, a read enqueued after writes should
    // still finish first among the *serviced* requests where possible.
    ch.enqueue(makeOp(1, 1, true, [&](Cycle) { order.push_back('w'); }));
    ch.enqueue(makeOp(2, 1, false,
                      [&](Cycle) { order.push_back('r'); }));
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 'r');
}

TEST(Channel, WriteDrainKicksInAtHighWatermark)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    // Saturate the write queue past the high watermark; writes must
    // eventually be serviced even with a steady read supply.
    for (unsigned i = 0; i < 12; ++i)
        ch.enqueue(makeOp(i % 4, i, true));
    ch.enqueue(makeOp(0, 100, false));
    eq.run();
    EXPECT_EQ(ch.stats().writesServed.value(), 12u);
    EXPECT_EQ(ch.stats().readsServed.value(), 1u);
    EXPECT_TRUE(ch.idle());
}

TEST(Channel, PriorityOpJumpsQueue)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    std::vector<int> order;
    // Many normal reads to distinct rows of one bank (serialized), then
    // a priority op enqueued behind them.
    for (int i = 0; i < 6; ++i)
        ch.enqueue(makeOp(0, static_cast<std::uint64_t>(i), false,
                          [&order, i](Cycle) { order.push_back(i); }));
    ch.enqueue(makeOp(1, 42, false,
                      [&order](Cycle) { order.push_back(99); },
                      true));
    eq.run();
    ASSERT_EQ(order.size(), 7u);
    // The priority op must not be served last; it should appear within
    // the first couple of completions.
    const auto pos = std::find(order.begin(), order.end(), 99);
    EXPECT_LT(pos - order.begin(), 3);
}

TEST(Channel, IdleReflectsInFlightWork)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);
    EXPECT_TRUE(ch.idle());
    ch.enqueue(makeOp(0, 0, false));
    EXPECT_FALSE(ch.idle());
    eq.run();
    EXPECT_TRUE(ch.idle());
}

TEST(Channel, ReadsProgressDuringWriteDrain)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);

    // Keep the write queue above the drain watermark and interleave
    // reads: the drain toggle must serve reads before all writes
    // finish (no read starvation).
    Cycle read_done = 0;
    for (unsigned i = 0; i < 10; ++i)
        ch.enqueue(makeOp(i % 4, 50 + i, true));
    ch.enqueue(makeOp(0, 999, false,
                      [&](Cycle when) { read_done = when; }));
    for (unsigned i = 10; i < 20; ++i)
        ch.enqueue(makeOp(i % 4, 50 + i, true));
    eq.run();
    ASSERT_GT(read_done, 0u);
    // The read must not have waited for all 20 write recoveries.
    EXPECT_LT(read_done, 20 * (p.tWr + p.tRcd));
}

TEST(Channel, QueueDepthStatsAreSampled)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);
    for (unsigned i = 0; i < 8; ++i)
        ch.enqueue(makeOp(i % 4, i, false));
    eq.run();
    EXPECT_GT(ch.stats().readQueueDepth.count(), 0u);
}

TEST(ChannelDeath, WrongChannelRejected)
{
    EventQueue eq;
    const auto p = channelTiming();
    Channel ch(0, p, eq);
    MemOp op;
    op.loc = {3, 0, 0};
    EXPECT_DEATH(ch.enqueue(std::move(op)), "wrong channel");
}

/** @file Unit tests for MRU, partial-tag, and perfect predictors. */

#include <gtest/gtest.h>

#include "core/predictors.hpp"

using namespace accord;
using namespace accord::core;

namespace
{

CacheGeometry
geom(unsigned ways, std::uint64_t sets = 256)
{
    CacheGeometry g;
    g.ways = ways;
    g.sets = sets;
    return g;
}

} // namespace

TEST(Mru, PredictsLastTouchedWayPerSet)
{
    MruPolicy mru(geom(4), 1);
    const LineRef a = LineRef::make(10, geom(4));
    mru.onHit(a, 2);
    EXPECT_EQ(mru.predict(a), 2u);
    mru.onInstall(a, 3);
    EXPECT_EQ(mru.predict(a), 3u);
}

TEST(Mru, SetsIndependent)
{
    MruPolicy mru(geom(4), 1);
    const LineRef a = LineRef::make(10, geom(4));
    const LineRef b = LineRef::make(11, geom(4));
    mru.onHit(a, 1);
    mru.onHit(b, 2);
    EXPECT_EQ(mru.predict(a), 1u);
    EXPECT_EQ(mru.predict(b), 2u);
}

TEST(Mru, StorageIsSetsTimesWayBits)
{
    EXPECT_EQ(MruPolicy(geom(2, 1024), 1).storageBits(), 1024u);
    EXPECT_EQ(MruPolicy(geom(8, 1024), 1).storageBits(), 3 * 1024u);
}

TEST(Mru, FullScaleStorageMatchesTable2)
{
    // 4GB cache, 2-way: 2^25 sets x 1 bit = 4MB (paper Table II).
    MruPolicy mru(geom(2, (4ULL << 30) / 64 / 2), 1);
    EXPECT_EQ(mru.storageBits() / 8, 4ULL << 20);
}

TEST(Mru, InstallIsUniformRandom)
{
    MruPolicy mru(geom(4), 9);
    std::array<int, 4> counts{};
    const LineRef ref = LineRef::make(1, geom(4));
    for (int i = 0; i < 40000; ++i)
        ++counts[mru.install(ref)];
    for (const int c : counts)
        EXPECT_NEAR(c, 10000, 1000);
}

TEST(PartialTag, PredictsInstalledWay)
{
    PartialTagPolicy ptag(geom(4), 4, 1);
    const LineRef ref = LineRef::make(0x4321, geom(4));
    ptag.onInstall(ref, 2);
    EXPECT_EQ(ptag.predict(ref), 2u);
}

TEST(PartialTag, OverwriteUpdatesSlot)
{
    PartialTagPolicy ptag(geom(4), 4, 1);
    const auto g = geom(4);
    const LineRef a = LineRef::make(0x100, g);
    const LineRef b = LineRef::make(0x100 + g.sets * 7, g); // same set
    ptag.onInstall(a, 1);
    ptag.onInstall(b, 1);   // b overwrites way 1
    EXPECT_EQ(ptag.predict(b), 1u);
}

TEST(PartialTag, AccuracyDegradesWithWays)
{
    // With random fills, false partial matches grow with
    // associativity: measure first-probe-correct rate directly.
    for (const unsigned ways : {2u, 8u}) {
        const auto g = geom(ways, 512);
        PartialTagPolicy ptag(g, 4, 3);
        Rng rng(17);
        int correct = 0;
        const int trials = 20000;
        // Fill every way of every set with random tags.
        std::vector<std::uint64_t> resident(g.lines());
        for (std::uint64_t set = 0; set < g.sets; ++set) {
            for (unsigned way = 0; way < ways; ++way) {
                const LineAddr line = (rng.next() << 9) | set;
                const LineRef ref = LineRef::make(line, g);
                ptag.onInstall(ref, way);
                resident[set * ways + way] = line;
            }
        }
        for (int i = 0; i < trials; ++i) {
            const std::uint64_t idx = rng.below(g.lines());
            const LineRef ref =
                LineRef::make(resident[idx], g);
            correct += ptag.predict(ref) == idx % ways ? 1 : 0;
        }
        const double acc = static_cast<double>(correct) / trials;
        if (ways == 2)
            EXPECT_GT(acc, 0.93);
        else
            EXPECT_LT(acc, 0.93);   // 8-way suffers false matches
    }
}

TEST(PartialTag, StorageMatchesTable2)
{
    // 4GB cache, 4-bit tags: 2^26 lines x 4 bits = 32MB.
    PartialTagPolicy ptag(geom(2, (4ULL << 30) / 64 / 2), 4, 1);
    EXPECT_EQ(ptag.storageBits() / 8, 32ULL << 20);
}

TEST(PartialTagDeath, BadWidthRejected)
{
    EXPECT_DEATH(PartialTagPolicy(geom(2), 0, 1), "partial tags");
    EXPECT_DEATH(PartialTagPolicy(geom(2), 9, 1), "partial tags");
}

TEST(Perfect, PredictsOracleWay)
{
    PerfectPolicy perfect(geom(4), 1);
    perfect.setOracle([](const LineRef &ref) {
        return static_cast<int>(ref.line % 4);
    });
    for (LineAddr line = 0; line < 100; ++line) {
        const LineRef ref = LineRef::make(line, geom(4));
        EXPECT_EQ(perfect.predict(ref), line % 4);
    }
}

TEST(Perfect, AbsentLinePredictsWayZero)
{
    PerfectPolicy perfect(geom(4), 1);
    perfect.setOracle([](const LineRef &) { return -1; });
    EXPECT_EQ(perfect.predict(LineRef::make(5, geom(4))), 0u);
}

TEST(PerfectDeath, MissingOraclePanics)
{
    PerfectPolicy perfect(geom(4), 1);
    EXPECT_DEATH(perfect.predict(LineRef::make(5, geom(4))), "oracle");
}

/** @file Timed-path tests of the DRAM-cache controller. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller_fixture.hpp"

using namespace accord;
using namespace accord::test;
using dramcache::LookupMode;
using dramcache::Organization;

TEST(TimedDm, MissThenHit)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    EXPECT_FALSE(sys.readBlocking(1000));
    EXPECT_TRUE(sys.readBlocking(1000));
}

TEST(TimedDm, HitFasterThanMiss)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    sys.readBlocking(1000);
    sys.eq.run();
    sys->resetStats();
    sys.readBlocking(2000);     // miss (new line)
    sys.readBlocking(1000);     // hit
    const auto &s = sys->stats();
    EXPECT_EQ(s.readHits.hits(), 1u);
    EXPECT_EQ(s.readHits.misses(), 1u);
    EXPECT_LT(s.readHitLatency.mean(), s.readMissLatency.mean());
}

TEST(TimedDm, MissLatencyIncludesNvm)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    sys.readBlocking(5);
    // Probe (HBM round trip) + NVM array read; must exceed the NVM
    // unloaded latency alone.
    const auto &nvm_params = sys.nvm.params();
    EXPECT_GT(sys->stats().readMissLatency.mean(),
              static_cast<double>(nvm_params.tRcd));
}

TEST(Timed2Way, PredictedHitTakesOneProbe)
{
    MiniSystem sys(2, LookupMode::Predicted, "perfect");
    sys.readBlocking(42);
    sys.eq.run();
    sys->resetStats();
    EXPECT_TRUE(sys.readBlocking(42));
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 1u);
    EXPECT_DOUBLE_EQ(sys->stats().wayPrediction.rate(), 1.0);
}

TEST(Timed2Way, MispredictedHitTakesTwoProbesAndLonger)
{
    // Force mispredictions: policy predicts the preferred way, but we
    // keep re-installing lines until one lands in the other way.
    MiniSystem sys(2, LookupMode::Predicted, "pws");
    Rng rng(3);
    for (int i = 0; i < 3000; ++i)
        sys->warmRead(rng.below(2048));
    sys.eq.run();
    sys->resetStats();
    for (int i = 0; i < 3000; ++i)
        sys.readBlocking(rng.below(2048));
    const auto &s = sys->stats();
    EXPECT_GT(s.readHits.hits(), 0u);
    EXPECT_LT(s.wayPrediction.rate(), 1.0);
    EXPECT_GT(s.wayPrediction.rate(), 0.6);
}

TEST(TimedParallel, CompletesHitsAndMisses)
{
    MiniSystem sys(4, LookupMode::Parallel, "");
    EXPECT_FALSE(sys.readBlocking(9));
    EXPECT_TRUE(sys.readBlocking(9));
    EXPECT_EQ(sys->stats().readHits.total(), 2u);
    // 4 probes per access.
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 8u);
}

TEST(TimedIdeal, SingleTransferEachWay)
{
    MiniSystem sys(4, LookupMode::Ideal, "");
    EXPECT_FALSE(sys.readBlocking(9));
    EXPECT_TRUE(sys.readBlocking(9));
    EXPECT_EQ(sys->stats().cacheReadTransfers.value(), 2u);
}

TEST(TimedSerial, SecondWayHitSlowerThanFirst)
{
    MiniSystem sys(2, LookupMode::Serial, "");
    // Install a line and find which way it landed in; compare hit
    // latency for way-0 vs way-1 residents.
    Rng rng(11);
    std::vector<LineAddr> way0, way1;
    for (int i = 0; i < 2000 && (way0.empty() || way1.empty()); ++i) {
        const LineAddr line = 100000 + i;
        sys->warmRead(line);
        const auto ref = core::LineRef::make(line, sys->geometry());
        const int way =
            sys->tagStore().findWay(ref.set, ref.tag);
        if (way == 0)
            way0.push_back(line);
        else if (way == 1)
            way1.push_back(line);
    }
    ASSERT_FALSE(way0.empty());
    ASSERT_FALSE(way1.empty());

    sys->resetStats();
    sys.readBlocking(way0.front());
    const double lat0 = sys->stats().readHitLatency.mean();
    sys->resetStats();
    sys.readBlocking(way1.front());
    const double lat1 = sys->stats().readHitLatency.mean();
    EXPECT_GT(lat1, lat0);
}

TEST(TimedWriteback, DcpHitWritesCache)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws+gws");
    sys.readBlocking(777);
    sys->writeback(777);
    sys.eq.run();
    EXPECT_EQ(sys->stats().writebacksToCache.value(), 1u);
    EXPECT_TRUE(sys->quiesced());
}

TEST(TimedWriteback, AbsentGoesToNvmDevice)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws+gws");
    sys->writeback(777);
    sys.eq.run();
    EXPECT_EQ(sys.nvm.writes(), 1u);
}

TEST(TimedFill, DirtyVictimReachesNvmDevice)
{
    MiniSystem sys(1, LookupMode::Serial, "");
    const LineAddr a = sys.lineFor(5, 1);
    const LineAddr b = sys.lineFor(5, 2);
    sys.readBlocking(a);
    sys->writeback(a);
    sys.eq.run();
    sys.readBlocking(b);    // evicts dirty a
    sys.eq.run();
    EXPECT_EQ(sys.nvm.writes(), 1u);
}

TEST(TimedConcurrency, OverlappingSameLineMissesDoNotDuplicate)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws");
    int done = 0;
    // Two reads of the same absent line issued back to back.
    sys->read(4242, [&](bool, Cycle) { ++done; });
    sys->read(4242, [&](bool, Cycle) { ++done; });
    sys.eq.run();
    EXPECT_EQ(done, 2);
    // Exactly one copy resident.
    const auto ref = core::LineRef::make(4242, sys->geometry());
    int copies = 0;
    for (unsigned way = 0; way < 2; ++way) {
        if (sys->tagStore().valid(ref.set, way)
            && sys->tagStore().tag(ref.set, way) == ref.tag)
            ++copies;
    }
    EXPECT_EQ(copies, 1);
}

TEST(TimedConcurrency, ManyOutstandingReadsComplete)
{
    MiniSystem sys(2, LookupMode::Predicted, "pws+gws");
    Rng rng(13);
    int done = 0;
    for (int i = 0; i < 500; ++i)
        sys->read(rng.below(1 << 14), [&](bool, Cycle) { ++done; });
    sys.eq.run();
    EXPECT_EQ(done, 500);
    EXPECT_TRUE(sys->quiesced());
}

TEST(TimedCa, ReadsAndSwapsComplete)
{
    MiniSystem sys(1, LookupMode::Serial, "", 1ULL << 20,
                   Organization::ColumnAssoc);
    const std::uint64_t slots = sys->geometry().sets;
    const LineAddr a = 5;
    const LineAddr b = 5 + slots;
    EXPECT_FALSE(sys.readBlocking(a));
    EXPECT_FALSE(sys.readBlocking(b));
    sys.eq.run();
    EXPECT_TRUE(sys.readBlocking(a));   // secondary hit + swap
    sys.eq.run();
    EXPECT_EQ(sys->stats().swaps.value(), 1u);
    EXPECT_TRUE(sys.readBlocking(a));   // now a primary hit
}

TEST(TimedDeterminism, SameSeedSameTimeline)
{
    auto run = [] {
        MiniSystem sys(2, LookupMode::Predicted, "pws+gws");
        Rng rng(17);
        Cycle last = 0;
        int remaining = 300;
        for (int i = 0; i < 300; ++i) {
            sys->read(rng.below(1 << 12), [&](bool, Cycle when) {
                last = std::max(last, when);
                --remaining;
            });
        }
        sys.eq.runUntil([&] { return remaining == 0; });
        return last;
    };
    EXPECT_EQ(run(), run());
}

TEST(TimedVsFunctional, SameSequentialStreamSameHits)
{
    // With one access at a time, the timed and functional paths must
    // produce identical hit/miss sequences given identical policy
    // seeds.
    MiniSystem timed(2, LookupMode::Predicted, "pws+gws");
    MiniSystem warm(2, LookupMode::Predicted, "pws+gws");
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        const LineAddr line = rng.below(1 << 13);
        EXPECT_EQ(timed.readBlocking(line), warm->warmRead(line))
            << "diverged at access " << i;
    }
    EXPECT_EQ(timed->stats().readHits.hits(),
              warm->stats().readHits.hits());
    EXPECT_EQ(timed->stats().wayPrediction.hits(),
              warm->stats().wayPrediction.hits());
}

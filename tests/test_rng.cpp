/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

using namespace accord;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.85) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.85, 0.01);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(23);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next() == child.next() ? 1 : 0;
    EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(29);
    const std::uint64_t buckets = 10;
    std::vector<int> counts(buckets, 0);
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.below(buckets)];
    for (const int c : counts)
        EXPECT_NEAR(c, trials / 10.0, trials / 10.0 * 0.1);
}

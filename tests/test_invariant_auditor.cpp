/**
 * @file
 * InvariantAuditor unit tests: the collector itself, every component
 * audit entry point, and — the point of the exercise — that
 * deliberately corrupted model state is actually detected.
 */

#include <gtest/gtest.h>

#include "common/invariant_auditor.hpp"
#include "core/ganged.hpp"
#include "core/steer.hpp"
#include "dramcache/audit.hpp"
#include "dramcache/controller.hpp"
#include "dramcache/dcp.hpp"
#include "dramcache/tag_store.hpp"

#include "controller_fixture.hpp"

using namespace accord;
using namespace accord::core;
using namespace accord::dramcache;
using accord::test::MiniSystem;

namespace
{

CacheGeometry
geom(std::uint64_t sets, unsigned ways)
{
    CacheGeometry g;
    g.sets = sets;
    g.ways = ways;
    return g;
}

} // namespace

// --- the collector itself -------------------------------------------

TEST(InvariantAuditor, StartsClean)
{
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.clean());
    EXPECT_EQ(auditor.count(), 0u);
    EXPECT_TRUE(auditor.violations().empty());
    EXPECT_EQ(auditor.report(), "");
}

TEST(InvariantAuditor, CollectsInsteadOfAborting)
{
    InvariantAuditor auditor;
    auditor.fail("rule-a", "way %u out of %u", 9u, 8u);
    auditor.fail("rule-b", "plain detail");

    EXPECT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.count(), 2u);
    EXPECT_TRUE(auditor.hasRule("rule-a"));
    EXPECT_TRUE(auditor.hasRule("rule-b"));
    EXPECT_FALSE(auditor.hasRule("rule-c"));
    EXPECT_EQ(auditor.violations()[0].rule, "rule-a");
    EXPECT_EQ(auditor.violations()[0].detail, "way 9 out of 8");
    EXPECT_NE(auditor.report().find("rule-b: plain detail"),
              std::string::npos);
}

TEST(InvariantAuditor, ClearResets)
{
    InvariantAuditor auditor;
    auditor.fail("rule-a", "detail");
    auditor.clear();
    EXPECT_TRUE(auditor.clean());
    EXPECT_EQ(auditor.count(), 0u);
}

TEST(InvariantAuditor, EnforceIsANoopWhenClean)
{
    InvariantAuditor auditor;
    auditor.enforce("clean context");
}

TEST(InvariantAuditorDeath, EnforcePanicsWithReport)
{
    InvariantAuditor auditor;
    auditor.fail("broken-rule", "the detail line");
    EXPECT_DEATH(auditor.enforce("test context"),
                 "invariant audit failed.*test context.*broken-rule");
}

// --- tag store ------------------------------------------------------

TEST(TagStoreAudit, CleanAfterInstalls)
{
    TagStore tags(geom(4, 2));
    tags.install(0, 0, 5, false);
    tags.install(0, 1, 6, true);
    tags.install(3, 1, 5, false);

    InvariantAuditor auditor;
    auditTagStore(tags, auditor);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(TagStoreAudit, DetectsDuplicateTagInSet)
{
    TagStore tags(geom(4, 2));
    tags.install(2, 0, 7, false);
    tags.install(2, 1, 7, false); // same tag, second way

    InvariantAuditor auditor;
    auditTagStore(tags, auditor);
    EXPECT_TRUE(auditor.hasRule("tag-duplicate")) << auditor.report();
}

// --- way-placement legality -----------------------------------------

TEST(PlacementAudit, CleanWhenLinesSitInCandidateWays)
{
    const CacheGeometry g = geom(64, 8);
    SwsPolicy policy(g, 2, 0.85, 1);
    TagStore tags(g);

    for (std::uint64_t tag = 1; tag <= 32; ++tag) {
        const auto ref =
            LineRef::make((tag << g.setBits()) | (tag % g.sets), g);
        tags.install(ref.set, policy.install(ref), ref.tag, false);
    }

    InvariantAuditor auditor;
    auditPlacement(tags, policy, auditor);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(PlacementAudit, DetectsLineOutsideSwsCandidates)
{
    const CacheGeometry g = geom(64, 8);
    SwsPolicy policy(g, 2, 0.85, 1);
    TagStore tags(g);

    const auto ref = LineRef::make((0x5ULL << g.setBits()) | 3, g);
    const std::uint64_t mask = policy.candidates(ref);
    unsigned illegal = g.ways;
    for (unsigned way = 0; way < g.ways; ++way) {
        if ((mask & (std::uint64_t{1} << way)) == 0) {
            illegal = way;
            break;
        }
    }
    // SWS(8,2) allows 2 of 8 ways, so an illegal way must exist.
    ASSERT_LT(illegal, g.ways);
    tags.install(ref.set, illegal, ref.tag, false);

    InvariantAuditor auditor;
    auditPlacement(tags, policy, auditor);
    EXPECT_TRUE(auditor.hasRule("placement")) << auditor.report();
}

// --- GWS region tables ----------------------------------------------

TEST(RegionTableAudit, CleanWhenConsistent)
{
    RegionTable table(8);
    table.insert(100, 3);
    table.insert(101, 0);
    table.lookup(100);

    InvariantAuditor auditor;
    table.audit(auditor, "rit", 8, 8);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(RegionTableAudit, DetectsStoredWayOutOfRange)
{
    RegionTable table(8);
    table.insert(100, 99); // way 99 in an 8-way cache

    InvariantAuditor auditor;
    table.audit(auditor, "rit", 8, 8);
    EXPECT_TRUE(auditor.hasRule("gws-way-range")) << auditor.report();
}

TEST(RegionTableAudit, DetectsTableAboveConfiguredBound)
{
    RegionTable table(128); // paper caps RIT/RLT at 64 entries

    InvariantAuditor auditor;
    table.audit(auditor, "rlt", 8, 64);
    EXPECT_TRUE(auditor.hasRule("gws-table-bound")) << auditor.report();
}

TEST(GangedPolicyAudit, CleanAfterTraffic)
{
    const CacheGeometry g = geom(64, 8);
    GangedPolicy policy(std::make_unique<UnbiasedPolicy>(g, 2),
                        GangedParams{});

    for (std::uint64_t tag = 1; tag <= 200; ++tag) {
        const auto ref =
            LineRef::make((tag << g.setBits()) | (tag % g.sets), g);
        policy.predict(ref);
        if (tag % 3 == 0) {
            policy.onHit(ref, policy.predict(ref));
        } else {
            policy.onMiss(ref);
            policy.onInstall(ref, policy.install(ref));
        }
    }

    InvariantAuditor auditor;
    policy.audit(auditor);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- DCP directory --------------------------------------------------

TEST(DcpAudit, CleanWhenCoherent)
{
    const CacheGeometry g = geom(16, 4);
    TagStore tags(g);
    DcpDirectory dcp;

    const auto ref = LineRef::make((0x9ULL << g.setBits()) | 2, g);
    tags.install(ref.set, 1, ref.tag, false);
    dcp.record(ref.line, 1);

    InvariantAuditor auditor;
    auditDcp(dcp, tags, auditor);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(DcpAudit, DetectsStaleEntry)
{
    const CacheGeometry g = geom(16, 4);
    TagStore tags(g);
    DcpDirectory dcp;

    // Directory claims residency but the tag store never installed.
    dcp.record((0x9ULL << g.setBits()) | 2, 1);

    InvariantAuditor auditor;
    auditDcp(dcp, tags, auditor);
    EXPECT_TRUE(auditor.hasRule("dcp-coherence")) << auditor.report();
}

TEST(DcpAudit, DetectsWayOutOfRange)
{
    const CacheGeometry g = geom(16, 4);
    TagStore tags(g);
    DcpDirectory dcp;
    dcp.record(0x123, 9); // 4-way cache

    InvariantAuditor auditor;
    auditDcp(dcp, tags, auditor);
    EXPECT_TRUE(auditor.hasRule("dcp-way-range")) << auditor.report();
}

TEST(DcpAudit, EntriesAreSortedByLineAddress)
{
    DcpDirectory dcp;
    dcp.record(0x30, 1);
    dcp.record(0x10, 2);
    dcp.record(0x20, 0);

    const auto entries = dcp.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, 0x10u);
    EXPECT_EQ(entries[1].first, 0x20u);
    EXPECT_EQ(entries[2].first, 0x30u);
}

// --- full controller ------------------------------------------------

TEST(ControllerAudit, CleanAfterWarmTraffic)
{
    MiniSystem sys(8, LookupMode::Predicted, "sws+gws");
    for (std::uint64_t i = 0; i < 4000; ++i)
        sys->warmRead(i * 37);
    for (std::uint64_t i = 0; i < 500; ++i)
        sys->warmWriteback(i * 37);

    InvariantAuditor auditor;
    sys->audit(auditor);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ControllerAudit, CleanAfterTimedTraffic)
{
    MiniSystem sys(4, LookupMode::Predicted, "pws+gws");
    for (std::uint64_t i = 0; i < 200; ++i)
        sys.readBlocking(i * 53);

    InvariantAuditor auditor;
    sys->audit(auditor);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ControllerAudit, CleanAfterColumnAssocTraffic)
{
    MiniSystem sys(1, LookupMode::Serial, "", 1ULL << 20,
                   Organization::ColumnAssoc);
    for (std::uint64_t i = 0; i < 2000; ++i)
        sys->warmRead(i * 31);

    InvariantAuditor auditor;
    sys->audit(auditor);
    EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ControllerAudit, DetectsCorruptedStats)
{
    // Craft a standalone stats block whose counters violate "every
    // miss reads main memory": one recorded miss, zero NVM reads.
    // (Controller counters are no longer mutable from outside, so the
    // stats identities are exercised through the free audit entry
    // point the controller itself composes.)
    DramCacheStats stats;
    stats.readHits.miss();
    stats.probesPerRead.sample(1.0);

    InvariantAuditor auditor;
    auditStats(stats, auditor);
    EXPECT_TRUE(auditor.hasRule("stats-miss-fills"))
        << auditor.report();
}

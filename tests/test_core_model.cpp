/** @file Unit tests for the timed core model. */

#include <gtest/gtest.h>

#include "controller_fixture.hpp"
#include "sim/core_model.hpp"
#include "trace/generator.hpp"

using namespace accord;
using namespace accord::test;
using namespace accord::sim;

namespace
{

trace::WorkloadGenParams
streamParams()
{
    trace::WorkloadGenParams p;
    p.footprintLines = 512 * linesPerRegion;
    p.hotPortion = 0.5;
    p.hotAccessFrac = 0.9;
    p.hotRunLen = 8;
    p.coldRunLen = 8;
    p.seed = 3;
    p.salt = 77;
    return p;
}

} // namespace

TEST(CoreModel, CompletesItsQuota)
{
    MiniSystem sys(1, dramcache::LookupMode::Serial, "");
    trace::WorkloadGen gen(streamParams());
    trace::WritebackMixer mixer(gen, 0.2, 64, 5);

    CoreParams params;
    params.mpki = 20.0;
    params.mlp = 4;
    params.quota = 500;
    CoreModel core(0, params, mixer, *sys.cache, sys.eq);
    core.start();
    sys.eq.runUntil([&] { return core.finished(); });
    EXPECT_TRUE(core.finished());
    EXPECT_GT(core.finishTime(), 0u);
    EXPECT_GT(core.ipc(), 0.0);
}

TEST(CoreModel, InstrPerAccessFollowsMpki)
{
    MiniSystem sys(1, dramcache::LookupMode::Serial, "");
    trace::WorkloadGen gen(streamParams());
    trace::WritebackMixer mixer(gen, 0.0, 64, 5);
    CoreParams params;
    params.mpki = 25.0;
    CoreModel core(0, params, mixer, *sys.cache, sys.eq);
    EXPECT_DOUBLE_EQ(core.instrPerAccess(), 40.0);
}

TEST(CoreModel, GapBoundsMinimumRuntime)
{
    MiniSystem sys(1, dramcache::LookupMode::Serial, "");
    trace::WorkloadGen gen(streamParams());
    trace::WritebackMixer mixer(gen, 0.0, 64, 5);
    CoreParams params;
    params.mpki = 10.0;     // gap = 100/2 = 50 cycles
    params.quota = 200;
    params.mlp = 8;
    CoreModel core(0, params, mixer, *sys.cache, sys.eq);
    core.start();
    sys.eq.runUntil([&] { return core.finished(); });
    // Even with infinite memory parallelism the core cannot finish
    // faster than quota * gap.
    EXPECT_GE(core.finishTime(), 200u * 50u);
}

TEST(CoreModel, LowerMpkiRunsLongerPerAccess)
{
    auto run = [](double mpki) {
        MiniSystem sys(1, dramcache::LookupMode::Serial, "");
        trace::WorkloadGen gen(streamParams());
        trace::WritebackMixer mixer(gen, 0.0, 64, 5);
        CoreParams params;
        params.mpki = mpki;
        params.quota = 300;
        CoreModel core(0, params, mixer, *sys.cache, sys.eq);
        core.start();
        sys.eq.runUntil([&] { return core.finished(); });
        return core.finishTime();
    };
    EXPECT_GT(run(5.0), run(50.0));
}

TEST(CoreModel, HigherMlpNeverSlower)
{
    auto run = [](unsigned mlp) {
        MiniSystem sys(1, dramcache::LookupMode::Serial, "");
        trace::WorkloadGenParams p = streamParams();
        p.hotRunLen = 1;
        p.coldRunLen = 1;
        p.coldRandom = true;
        trace::WorkloadGen gen(p);
        trace::WritebackMixer mixer(gen, 0.0, 64, 5);
        CoreParams params;
        params.mpki = 100.0;    // memory bound
        params.quota = 400;
        params.mlp = mlp;
        CoreModel core(0, params, mixer, *sys.cache, sys.eq);
        core.start();
        sys.eq.runUntil([&] { return core.finished(); });
        return core.finishTime();
    };
    EXPECT_GE(run(1), run(8));
}

TEST(CoreModel, WritebacksDoNotCountTowardQuota)
{
    MiniSystem sys(1, dramcache::LookupMode::Serial, "");
    trace::WorkloadGen gen(streamParams());
    trace::WritebackMixer mixer(gen, 0.4, 32, 5);
    CoreParams params;
    params.quota = 400;
    CoreModel core(0, params, mixer, *sys.cache, sys.eq);
    core.start();
    sys.eq.runUntil([&] { return core.finished(); });
    // Demand reads equal the quota; writebacks ride on top.
    EXPECT_EQ(sys->stats().readHits.total(), 400u);
    EXPECT_GT(sys->stats().writebacksToCache.value()
                  + sys->stats().writebacksToNvm.value(),
              0u);
}

TEST(CoreModelDeath, BadParamsRejected)
{
    MiniSystem sys(1, dramcache::LookupMode::Serial, "");
    trace::WorkloadGen gen(streamParams());
    trace::WritebackMixer mixer(gen, 0.0, 64, 5);
    CoreParams params;
    params.mpki = 0.0;
    EXPECT_DEATH(CoreModel(0, params, mixer, *sys.cache, sys.eq),
                 "MPKI");
}

/** @file Unit tests for the synthetic access generators. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generator.hpp"

using namespace accord;
using namespace accord::trace;

namespace
{

WorkloadGenParams
basicParams()
{
    WorkloadGenParams p;
    p.footprintLines = 1024 * linesPerRegion;
    p.hotPortion = 0.25;
    p.hotAccessFrac = 0.8;
    p.hotRunLen = 8;
    p.coldRunLen = 8;
    p.salt = 0x1234;
    p.seed = 7;
    return p;
}

/** Shorthand for the writeback-kind check in the mixer tests. */
bool
isWb(const Request &req)
{
    return req.kind == core::RequestKind::Writeback;
}

} // namespace

TEST(WorkloadGen, Deterministic)
{
    WorkloadGen a(basicParams()), b(basicParams());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next().line, b.next().line);
}

TEST(WorkloadGen, DifferentSeedsDiffer)
{
    auto pa = basicParams();
    auto pb = basicParams();
    pb.seed = 8;
    WorkloadGen a(pa), b(pb);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next().line == b.next().line ? 1 : 0;
    EXPECT_LT(equal, 100);
}

TEST(WorkloadGen, RunsAreSpatiallyContiguous)
{
    auto p = basicParams();
    p.hotRunLen = 8;
    p.coldRunLen = 8;
    WorkloadGen gen(p);
    LineAddr prev = gen.next().line;
    int contiguous = 0;
    const int trials = 8000;
    for (int i = 0; i < trials; ++i) {
        const LineAddr line = gen.next().line;
        contiguous += (regionOf(line) == regionOf(prev)) ? 1 : 0;
        prev = line;
    }
    // With 8-line runs, ~7/8 of steps stay within the region.
    EXPECT_GT(contiguous, trials * 3 / 4);
}

TEST(WorkloadGen, RunLenOneIsSparse)
{
    auto p = basicParams();
    p.hotRunLen = 1;
    p.coldRunLen = 1;
    p.coldRandom = true;
    WorkloadGen gen(p);
    std::set<std::uint64_t> regions;
    for (int i = 0; i < 1000; ++i)
        regions.insert(regionOf(gen.next().line));
    EXPECT_GT(regions.size(), 300u);
}

TEST(WorkloadGen, FootprintIsBounded)
{
    auto p = basicParams();
    WorkloadGen gen(p);
    // Every emitted line must belong to one of the footprint's hashed
    // regions.
    std::set<std::uint64_t> allowed;
    for (std::uint64_t r = 0; r < p.footprintLines / linesPerRegion;
         ++r)
        allowed.insert(physRegionOf(r, p.salt));
    for (int i = 0; i < 20000; ++i)
        EXPECT_TRUE(allowed.count(regionOf(gen.next().line)));
}

TEST(WorkloadGen, HotColdSplitMatchesFraction)
{
    auto p = basicParams();
    p.hotPortion = 0.10;
    p.hotAccessFrac = 0.9;
    p.hotRunLen = 1;
    p.coldRunLen = 1;
    WorkloadGen gen(p);
    std::set<std::uint64_t> hot_regions;
    const std::uint64_t hot_count =
        p.footprintLines / linesPerRegion / 10;
    for (std::uint64_t r = 0; r < hot_count; ++r)
        hot_regions.insert(physRegionOf(r, p.salt));
    int hot_hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hot_hits += hot_regions.count(regionOf(gen.next().line)) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hot_hits) / trials, 0.9, 0.03);
}

TEST(WorkloadGen, ColdScanIsCyclic)
{
    auto p = basicParams();
    p.hotAccessFrac = 0.0;
    p.hotPortion = 0.25;
    p.coldRandom = false;
    p.coldRunLen = 64;
    WorkloadGen gen(p);
    // A full pass over the cold regions revisits the same regions in
    // the same order the next pass.
    const std::uint64_t cold_regions =
        p.footprintLines / linesPerRegion * 3 / 4;
    std::vector<std::uint64_t> first_pass;
    for (std::uint64_t r = 0; r < cold_regions; ++r) {
        first_pass.push_back(regionOf(gen.next().line));
        for (unsigned i = 1; i < 64; ++i)
            gen.next();
    }
    for (std::uint64_t r = 0; r < cold_regions; ++r) {
        EXPECT_EQ(regionOf(gen.next().line), first_pass[r]);
        for (unsigned i = 1; i < 64; ++i)
            gen.next();
    }
}

TEST(WorkloadGenDeath, TinyFootprintRejected)
{
    auto p = basicParams();
    p.footprintLines = 8;
    EXPECT_DEATH(WorkloadGen gen(p), "footprint");
}

TEST(PhysRegion, DeterministicAndBounded)
{
    for (std::uint64_t r = 0; r < 1000; ++r) {
        EXPECT_EQ(physRegionOf(r, 5), physRegionOf(r, 5));
        EXPECT_LT(physRegionOf(r, 5), physRegionSpace);
    }
}

TEST(PhysRegion, SaltSeparatesStreams)
{
    int collisions = 0;
    for (std::uint64_t r = 0; r < 1000; ++r)
        collisions += physRegionOf(r, 1) == physRegionOf(r, 2) ? 1 : 0;
    EXPECT_LT(collisions, 3);
}

TEST(CyclicPair, AlternatesTwoLinesNTimes)
{
    CyclicPairGen gen(1024, 4, 9);
    const LineAddr a = gen.next().line;
    const LineAddr b = gen.next().line;
    EXPECT_NE(a, b);
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(gen.next().line, a);
        EXPECT_EQ(gen.next().line, b);
    }
    // Next pair is a different conflict pair.
    const LineAddr c = gen.next().line;
    EXPECT_TRUE(c != a || gen.next().line != b);
}

TEST(CyclicPair, PairMapsToSameSet)
{
    CyclicPairGen gen(1024, 2, 11);
    for (int pair = 0; pair < 100; ++pair) {
        const LineAddr a = gen.next().line;
        const LineAddr b = gen.next().line;
        EXPECT_EQ(a & 1023, b & 1023);
        gen.next();
        gen.next();     // consume the second iteration
    }
}

TEST(WritebackMixer, NoWritebacksAtZeroFraction)
{
    WorkloadGen gen(basicParams());
    WritebackMixer mixer(gen, 0.0, 16, 3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(isWb(mixer.next()));
}

TEST(WritebackMixer, FractionControlsWritebackShare)
{
    WorkloadGen gen(basicParams());
    WritebackMixer mixer(gen, 0.30, 64, 3);
    int wb = 0;
    const int trials = 40000;
    for (int i = 0; i < trials; ++i)
        wb += isWb(mixer.next()) ? 1 : 0;
    // Writebacks are re-emissions: share = f/(1+f) of the total.
    EXPECT_NEAR(static_cast<double>(wb) / trials, 0.3 / 1.3, 0.02);
}

TEST(WritebackMixer, WritebacksAreRecentDemandLines)
{
    WorkloadGen gen(basicParams());
    WritebackMixer mixer(gen, 0.5, 32, 3);
    std::set<LineAddr> demanded;
    for (int i = 0; i < 5000; ++i) {
        const Request access = mixer.next();
        if (isWb(access))
            EXPECT_TRUE(demanded.count(access.line));
        else
            demanded.insert(access.line);
    }
}

TEST(WritebackMixer, LagDelaysWritebacks)
{
    WorkloadGen gen(basicParams());
    WritebackMixer mixer(gen, 1.0 - 1e-9, 100, 3);
    // With wb_frac ~ 1, the first writeback appears only after the lag
    // fills up.
    int first_wb = -1;
    for (int i = 0; i < 300; ++i) {
        if (isWb(mixer.next())) {
            first_wb = i;
            break;
        }
    }
    EXPECT_GE(first_wb, 100);
}

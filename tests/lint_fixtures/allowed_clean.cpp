// Lint fixture: every pattern here is either annotated with the
// shared accord-lint escape hatch or only looks like a violation.
// The self-test asserts the linter reports nothing.
// expect-clean

#include <cstdint>
#include <queue>
#include <vector>

// Strings mentioning banned constructs must not trip any rule.
const char *kDoc = "std::priority_queue is banned outside EventQueue";

// The escape hatch covers the next code line even with a multi-line
// reason comment in between.
// accord-lint: allow(priority-queue) scratch heap in a host-side
// helper; never schedules simulated events
std::priority_queue<std::uint64_t> scratch_heap;

// A switch over something merely NAMED like the lookup mode is fine.
enum class Flavor { Plain, Fancy };

unsigned
pick(Flavor flavor)
{
    switch (flavor) {
      case Flavor::Fancy: return 2;
      default: return 1;
    }
}

// Lint fixture: every pattern here is either annotated with the
// allow escape hatch or only looks like a violation.  The self-test
// asserts the linter reports nothing.
// expect-clean

#include <cstdint>
#include <unordered_map>
#include <vector>

std::uint64_t
sumValues(const std::unordered_map<int, std::uint64_t> &external)
{
    std::unordered_map<int, std::uint64_t> counts = external;
    std::uint64_t sum = 0;
    // Order-insensitive reduction: addition commutes.
    // lint: allow(unordered-iteration)
    for (const auto &entry : counts)
        sum += entry.second;
    return sum;
}

// Identifiers merely containing "rand" or strings mentioning banned
// names must not trip word-boundary rules.
int
operandCount(const std::vector<int> &operands)
{
    const char *label = "std::rand() is banned here";
    (void)label;
    return static_cast<int>(operands.size());
}

// Lint fixture: std::random_device seeding an unowned std engine.
// expect: random-device
// expect: std-engine

#include <random>

unsigned
rollDice()
{
    std::random_device entropy;
    std::mt19937 gen(entropy());
    return gen() % 6;
}

// Lint fixture: hash-ordered iteration feeding printed output.
// expect: unordered-iteration

#include <cstdio>
#include <unordered_map>

void
dumpHitCounts(const std::unordered_map<int, int> &external)
{
    std::unordered_map<int, int> hits = external;
    for (const auto &entry : hits)
        std::printf("%d %d\n", entry.first, entry.second);
}

// Fixture: LookupMode dispatch outside the access-plan core.
// expect: lookup-switch

namespace accord::dramcache
{
enum class LookupMode { Serial, Parallel, Predicted, Ideal };

unsigned
transfersForHit(LookupMode lookup, unsigned pos, unsigned count)
{
    // A re-grown per-mode branch: the warm/timed divergence bug class.
    switch (lookup) {
      case LookupMode::Parallel: return count;
      case LookupMode::Ideal: return 1;
      default: return pos + 1;
    }
}
} // namespace accord::dramcache

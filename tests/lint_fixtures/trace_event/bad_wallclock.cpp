// Lint fixture: wall-clock timestamps inside a trace_event source.
// Trace ticks must be simulation cycles — any real-time read makes
// the exported JSON differ between runs.
// expect: wallclock-trace

#include <chrono>
#include <cstdint>

std::uint64_t
stampEvent()
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        now.time_since_epoch().count());
}

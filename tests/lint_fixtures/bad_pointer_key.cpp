// Lint fixture: ordered container keyed by pointer value.
// expect: pointer-key

#include <map>
#include <set>

struct Channel;

std::map<Channel *, int> queue_depth;
std::set<const Channel *> stalled;

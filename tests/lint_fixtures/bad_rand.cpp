// Lint fixture: C library rand() seeded from the wall clock.
// Never compiled; exists so the linter's self-test can prove the
// `rand` and `time-seed` rules fire.
// expect: rand
// expect: time-seed

#include <cstdlib>
#include <ctime>

int
pickVictimWay(int ways)
{
    std::srand(time(nullptr));
    return std::rand() % ways;
}

// Fixture: ad-hoc event heap outside src/common/event_queue.*.
// expect: priority-queue

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace accord
{

// Equal-cycle entries pop in unspecified order — the same-cycle FIFO
// guarantee the shared EventQueue exists to provide.
using PendingEvent = std::pair<std::uint64_t, std::function<void()>>;

struct Later
{
    bool operator()(const PendingEvent &a, const PendingEvent &b) const
        { return a.first > b.first; }
};

std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later>
    side_channel_events;

} // namespace accord

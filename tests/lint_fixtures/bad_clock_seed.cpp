// Lint fixture: seeding from a chrono clock.
// expect: time-seed

#include <chrono>
#include <cstdint>

std::uint64_t
makeSeed()
{
    const auto seed =
        std::chrono::steady_clock::now().time_since_epoch().count();
    return static_cast<std::uint64_t>(seed);
}

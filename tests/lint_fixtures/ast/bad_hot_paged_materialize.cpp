// Analyzer fixture: page materialization inside an ACCORD_HOT
// function.  materializeSlot()/ensurePage() are the paged storage
// layer's allocation seams (common/paged_table.hpp); calling either
// from a hot function puts page allocation on the timed read path.
// expect: hot-paged-materialize

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

namespace fixture
{

struct Column
{
    int storage_[64] = {};

    int &materializeSlot(unsigned long slot)
    {
        return storage_[slot];
    }

    int *ensurePage(unsigned long page)
    {
        return &storage_[page];
    }
};

struct TagStore
{
    Column stamps_;

    ACCORD_HOT void touch(unsigned long slot)
    {
        stamps_.materializeSlot(slot) = 1;
    }

    ACCORD_HOT int *prefetch(unsigned long page)
    {
        return stamps_.ensurePage(page);
    }
};

} // namespace fixture

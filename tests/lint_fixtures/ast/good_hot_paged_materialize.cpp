// Analyzer fixture: the sanctioned paged-storage idioms.  The hot
// read path uses the never-allocating read(); materialization happens
// in a non-hot install function; and a deliberate hot-path
// materialization (the install slow path) carries an explicit
// accord-lint allow with its justification.
// expect-clean

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

namespace fixture
{

struct Column
{
    int storage_[64] = {};

    int read(unsigned long slot) const
    {
        return storage_[slot];
    }

    int &materializeSlot(unsigned long slot)
    {
        return storage_[slot];
    }
};

struct TagStore
{
    Column stamps_;

    ACCORD_HOT int lookup(unsigned long slot) const
    {
        return stamps_.read(slot);
    }

    void install(unsigned long slot)
    {
        stamps_.materializeSlot(slot) = 1;
    }

    ACCORD_HOT void touch(unsigned long slot)
    {
        // accord-lint: allow(hot-paged-materialize) installs are rare
        // (miss path); the page is almost always already resident
        stamps_.materializeSlot(slot) = 1;
    }
};

} // namespace fixture

// Analyzer fixture: two registration calls publishing the SAME
// group/name path -- the second silently shadows (or double-counts)
// the first in every report backend.
// expect: metric-duplicate-path

#include <cstdint>

namespace fixture
{

struct Counter
{
    std::uint64_t value = 0;
};

struct Registry
{
    void addCounter(const char *group, const char *name,
                    const Counter &counter);
};

struct WayStats
{
    Counter predicted;
    Counter installed;

    void registerMetrics(Registry &registry);
};

void WayStats::registerMetrics(Registry &registry)
{
    registry.addCounter("ways", "hits", predicted);
    registry.addCounter("ways", "hits", installed);
}

} // namespace fixture

// Analyzer fixture: one-level call-graph propagation.  The hot
// function itself is clean, but it calls a non-hot helper (uniquely
// resolvable by name) that allocates -- the finding lands on the hot
// caller with a "via <helper>" detail.
// expect: hot-alloc

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

namespace fixture
{

struct Node
{
    Node *next = nullptr;
};

struct Pool
{
    Node *growPool()
    {
        return new Node();
    }

    ACCORD_HOT Node *acquire()
    {
        return growPool();
    }
};

} // namespace fixture

// Analyzer fixture: wall-clock reads outside rng.hpp.  Host time in
// simulation logic makes runs unreproducible.
// expect: wallclock

#include <chrono>

namespace fixture
{

unsigned long long stamp()
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<unsigned long long>(
        now.time_since_epoch().count());
}

} // namespace fixture

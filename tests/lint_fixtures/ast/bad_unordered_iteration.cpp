// Analyzer fixture: range-for over an unordered container on an
// output-reaching path.  Three reach forms: an enclosing reporting
// function (by name), a direct print in the loop body, and a loop
// body calling a helper that prints (one level).
// expect: unordered-iteration

#include <cstdio>
#include <unordered_map>

namespace fixture
{

struct Directory
{
    std::unordered_map<unsigned long long, unsigned> map_;

    void report() const
    {
        unsigned total = 0;
        for (const auto &kv : map_)
            total += kv.second;
        (void)total;
    }

    void pump() const
    {
        for (const auto &kv : map_)
            std::printf("%llu\n", kv.first);
    }

    void emitRow(unsigned long long key) const
    {
        std::printf("%llu\n", key);
    }

    void walk() const
    {
        for (const auto &kv : map_)
            emitRow(kv.first);
    }
};

} // namespace fixture

// Analyzer fixture: propagation boundaries.  A callee whose name is
// ambiguous across the tree is skipped (no guessing), and a callee
// carrying the ACCORD_HOT_ALLOW escape hatch has already justified
// its allocations.
// expect-clean

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#define ACCORD_HOT_ALLOW(reason)                                        \
    [[clang::annotate("accord_hot_allow: " reason)]]
#else
#define ACCORD_HOT
#define ACCORD_HOT_ALLOW(reason)
#endif

namespace fixture
{

struct Node
{
    Node *next = nullptr;
};

struct PoolA
{
    Node *grow() { return new Node(); }
};

struct PoolB
{
    Node *grow() { return new Node(); }
};

struct Arena
{
    PoolA a_;

    ACCORD_HOT ACCORD_HOT_ALLOW("startup-only warm fill; never runs "
                                "per simulated event")
    Node *prefill()
    {
        return new Node();
    }

    ACCORD_HOT Node *acquire()
    {
        grow();       // ambiguous across PoolA/PoolB: not propagated
        return prefill();  // callee justified via ACCORD_HOT_ALLOW
    }

    Node *grow();
};

} // namespace fixture

// Analyzer fixture: unordered iteration that never reaches output is
// fine (accumulation is order-insensitive), and the sanctioned
// pattern for reporting is sort-then-print.
// expect-clean

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture
{

struct Directory
{
    std::unordered_map<unsigned long long, unsigned> map_;

    unsigned total() const
    {
        unsigned sum = 0;
        for (const auto &kv : map_)
            sum += kv.second;
        return sum;
    }

    void report() const
    {
        std::vector<std::pair<unsigned long long, unsigned>> rows(
            map_.begin(), map_.end());
        std::sort(rows.begin(), rows.end());
        for (const auto &row : rows)
            std::printf("%llu %u\n", row.first, row.second);
    }
};

} // namespace fixture

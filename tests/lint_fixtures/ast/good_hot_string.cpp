// Analyzer fixture: string work belongs on cold paths.  A non-hot
// reporting helper may build strings freely; the hot function sticks
// to const char* and integer ids.
// expect-clean

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

#include <string>

namespace fixture
{

void sink(const char *text);

struct Labeler
{
    unsigned last_id_ = 0;

    ACCORD_HOT void tag(unsigned id)
    {
        last_id_ = id;
        sink("txn");
    }

    std::string describeLast() const
    {
        return "txn-" + std::to_string(last_id_);
    }
};

} // namespace fixture

// Analyzer fixture: the C rand()/srand() family.  Global hidden
// state, host-varying implementations -- banned everywhere outside
// the seeded rng.hpp abstraction.
// expect: rand

#include <cstdlib>

namespace fixture
{

unsigned pickWay(unsigned ways)
{
    std::srand(42);
    return static_cast<unsigned>(std::rand()) % ways;
}

} // namespace fixture

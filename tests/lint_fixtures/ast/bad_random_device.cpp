// Analyzer fixture: std::random_device pulls host entropy -- every
// run seeds differently, so no run is reproducible.
// expect: random-device

#include <random>

namespace fixture
{

unsigned long long entropySeed()
{
    std::random_device rd;
    return rd();
}

} // namespace fixture

// Analyzer fixture: callback idioms that stay off the heap.  Passing
// a lambda to a small-buffer callback CLASS (the EventCallback
// pattern) is fine, as are auto-typed lambda locals and moves of an
// existing std::function.
// expect-clean

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

#include <functional>
#include <utility>

namespace fixture
{

// Small-buffer-optimized callback class: NOT a std::function alias.
struct EventCallback
{
    template <typename F> EventCallback(F f) { (void)f; }
};

void schedule(long when, EventCallback cb);

using Callback = std::function<void(int)>;

void stash(Callback &&cb);

struct Worker
{
    ACCORD_HOT void fire(Callback &ready)
    {
        schedule(8, [] {});
        const auto helper = [] { return 1; };
        (void)helper();
        stash(std::move(ready));
    }
};

} // namespace fixture

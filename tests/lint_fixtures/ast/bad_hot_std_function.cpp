// Analyzer fixture: std::function construction on a hot path, in all
// three detected forms -- an explicitly typed local (through an
// alias), a lambda literal passed to a std::function parameter, and a
// lambda assigned to a std::function-typed parameter variable.
// expect: hot-std-function

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

#include <functional>

namespace fixture
{

using Callback = std::function<void(int)>;

void post(Callback cb);

struct Worker
{
    ACCORD_HOT void fire(Callback saved_cb)
    {
        Callback saved;
        post([](int v) { (void)v; });
        saved_cb = [](int v) { (void)(v + 1); };
        (void)saved;
    }
};

} // namespace fixture

// Analyzer fixture: the sanctioned wall-clock uses.  Host-side
// timing harnesses justify themselves with an allow comment (the
// multi-line-reason form must cover the statement below it).
// expect-clean

#include <chrono>

namespace fixture
{

double timeOne()
{
    // accord-lint: allow(wallclock) host-side timing harness; wall
    // time never feeds a canonical run report
    const auto start = std::chrono::steady_clock::now();
    // accord-lint: allow(wallclock) host-side timing harness
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace fixture

// Analyzer fixture: a *Stats struct whose registerMetrics body never
// names one of its registrable fields -- the metric silently vanishes
// from every report.
// expect: metric-unregistered

#include <cstdint>

namespace fixture
{

struct Counter
{
    std::uint64_t value = 0;
};

struct Registry
{
    void addCounter(const char *group, const char *name,
                    const Counter &counter);
};

struct ProbeStats
{
    Counter issued;
    Counter merged;
    Counter dropped;

    void registerMetrics(Registry &registry);
};

void ProbeStats::registerMetrics(Registry &registry)
{
    registry.addCounter("probe", "issued", issued);
    registry.addCounter("probe", "merged", merged);
    // `dropped` forgotten: the analyzer must notice.
}

} // namespace fixture

// Analyzer fixture: sanctioned virtual dispatch.  Calls through the
// allowlisted organization/policy seams are the design; a qualified
// call (`obj->Concrete::method()`) is the devirtualization idiom and
// never dispatches.
// expect-clean

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

namespace fixture
{

struct OrgStrategy
{
    virtual ~OrgStrategy() = default;
    virtual void planRead(unsigned long long line) = 0;
};

struct SetAssocOrg : OrgStrategy
{
    void planRead(unsigned long long line) override;
};

struct Controller
{
    OrgStrategy *org_ = nullptr;
    SetAssocOrg *setassoc_ = nullptr;

    ACCORD_HOT void read(unsigned long long line)
    {
        org_->planRead(line);                    // allowlisted seam
        setassoc_->SetAssocOrg::planRead(line);  // devirtualized
    }
};

} // namespace fixture

// Analyzer fixture: telemetry-sounding code OUTSIDE
// src/common/telemetry/ gets no wallclock pass.  The exemption is
// keyed on the path, never on naming, so a "telemetry helper" that
// grows elsewhere in the tree still has to justify its clock reads.
// expect: wallclock

#include <chrono>

namespace fixture
{

struct TelemetryHelper
{
    double telemetryElapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now()
                   - std::chrono::steady_clock::time_point{})
            .count();
    }
};

} // namespace fixture

// Analyzer fixture: names that merely CONTAIN "rand" (members,
// prefixed identifiers) are not the C rand() family and must not
// fire.
// expect-clean

namespace fixture
{

struct RngStream
{
    unsigned long long state = 0x9E3779B97F4A7C15ull;

    unsigned long long rand()
    {
        state ^= state << 13;
        state ^= state >> 7;
        return state;
    }
};

unsigned long long myrand(RngStream &gen)
{
    return gen.rand();
}

} // namespace fixture

// Analyzer fixture: every registration call publishes a distinct
// group/name path.
// expect-clean

#include <cstdint>

namespace fixture
{

struct Counter
{
    std::uint64_t value = 0;
};

struct Registry
{
    void addCounter(const char *group, const char *name,
                    const Counter &counter);
};

struct WayStats
{
    Counter predicted;
    Counter installed;

    void registerMetrics(Registry &registry);
};

void WayStats::registerMetrics(Registry &registry)
{
    registry.addCounter("ways", "predicted", predicted);
    registry.addCounter("ways", "installed", installed);
}

} // namespace fixture

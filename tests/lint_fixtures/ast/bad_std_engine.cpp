// Analyzer fixture: std library random engines.  Their sequences are
// implementation-defined across standard library versions, so even a
// fixed seed does not reproduce across hosts.
// expect: std-engine

#include <random>

namespace fixture
{

unsigned pickVictim(unsigned ways)
{
    std::mt19937 gen(12345);
    return static_cast<unsigned>(gen()) % ways;
}

} // namespace fixture

// Analyzer fixture: the sanctioned allocation-free hot-path idioms.
// Placement new (arena reuse), pooled std::allocate_shared, and an
// explicitly allowed amortized arena-growth make_unique stay silent.
// expect-clean

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

#include <memory>
#include <vector>

namespace fixture
{

struct Node
{
    Node *next = nullptr;
};

template <typename T> struct PoolAllocator
{
    using value_type = T;
    T *allocate(unsigned long n);
    void deallocate(T *p, unsigned long n);
};

struct Pump
{
    Node *free_list_ = nullptr;
    std::vector<std::unique_ptr<Node[]>> chunks_;
    PoolAllocator<Node> pool_;

    ACCORD_HOT Node *acquire()
    {
        Node *node = free_list_;
        if (node != nullptr) {
            free_list_ = node->next;
            ::new (node) Node();
            return node;
        }
        // accord-lint: allow(hot-alloc) arena growth is amortized; the
        // freelist serves the steady state allocation-free
        chunks_.push_back(std::make_unique<Node[]>(64));
        return &chunks_.back()[0];
    }

    ACCORD_HOT std::shared_ptr<Node> pooled()
    {
        return std::allocate_shared<Node>(pool_);
    }
};

} // namespace fixture

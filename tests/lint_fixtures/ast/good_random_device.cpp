// Analyzer fixture: deterministic seeding -- a fixed config-supplied
// seed mixed with a counter.  No entropy source in sight.
// expect-clean

namespace fixture
{

struct SeededStream
{
    unsigned long long state;

    explicit SeededStream(unsigned long long seed)
        : state(seed ^ 0x9E3779B97F4A7C15ull)
    {
    }

    unsigned long long next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state;
    }
};

} // namespace fixture

// Analyzer fixture: the repository's own splitmix-style generator --
// bit-exact on every host, seeded from config.
// expect-clean

namespace fixture
{

struct SplitMix
{
    unsigned long long state;

    explicit SplitMix(unsigned long long seed) : state(seed) {}

    unsigned long long next()
    {
        unsigned long long z = (state += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
};

} // namespace fixture

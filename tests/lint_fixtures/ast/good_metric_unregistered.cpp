// Analyzer fixture: a complete registration body, plus the sanctioned
// allow-annotation for a field that is deliberately reported through
// another channel (the SystemMetrics::eventsExecuted pattern).
// expect-clean

#include <cstdint>

namespace fixture
{

struct Counter
{
    std::uint64_t value = 0;
};

struct Registry
{
    void addCounter(const char *group, const char *name,
                    const Counter &counter);
};

struct ProbeStats
{
    Counter issued;
    Counter merged;
    // accord-lint: allow(metric-unregistered) host-side denominator
    // only; kept out of canonical reports on purpose
    std::uint64_t hostBytes = 0;

    void registerMetrics(Registry &registry);
};

void ProbeStats::registerMetrics(Registry &registry)
{
    registry.addCounter("probe", "issued", issued);
    registry.addCounter("probe", "merged", merged);
}

} // namespace fixture

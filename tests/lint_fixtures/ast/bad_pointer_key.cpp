// Analyzer fixture: ordered containers keyed by pointer value.  The
// iteration order depends on the allocator, so any walk leaks host
// nondeterminism into the simulation.
// expect: pointer-key

#include <map>
#include <set>

namespace fixture
{

struct Txn
{
    unsigned id = 0;
};

struct Ledger
{
    std::map<const Txn *, unsigned> by_txn_;
    std::set<void *> seen_;
};

} // namespace fixture

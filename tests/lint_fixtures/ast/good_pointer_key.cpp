// Analyzer fixture: deterministic keys -- simulated ids instead of
// host addresses -- plus the explicit allow escape for a
// distinctness-only set whose order never reaches output.
// expect-clean

#include <cstdint>
#include <map>
#include <set>

namespace fixture
{

struct Ledger
{
    std::map<std::uint64_t, unsigned> by_txn_id_;
    // accord-lint: allow(pointer-key) distinctness check only;
    // iteration order never reaches output
    std::set<void *> seen_blocks_;
};

} // namespace fixture

// Analyzer fixture: std::string / std::to_string temporaries inside
// an ACCORD_HOT function (each one allocates on the simulated
// per-event path).
// expect: hot-string

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

#include <string>

namespace fixture
{

void sink(const std::string &text);

struct Labeler
{
    ACCORD_HOT void tag(unsigned id)
    {
        std::string label = "txn-";
        sink(label + std::to_string(id));
    }
};

} // namespace fixture

// Analyzer fixture: the telemetry path exemption.  This file sits
// under src/common/telemetry/ (mirrored inside the fixture tree), the
// one module whose purpose IS host-resource profiling, so a bare
// wall-clock read needs no allow comment here (rules.py
// TELEMETRY_EXEMPT_RULES, path-matched like the rng.hpp exemption).
// expect-clean

#include <chrono>

namespace fixture
{

double hostElapsed(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace fixture

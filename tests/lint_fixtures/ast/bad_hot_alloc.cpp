// Analyzer fixture: heap allocation inside an ACCORD_HOT function.
// Covers all three detection forms: operator new, the C allocator
// family, and the std::make_* helpers.
// expect: hot-alloc

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

#include <cstdlib>
#include <memory>

namespace fixture
{

struct Node
{
    Node *next = nullptr;
};

struct Pump
{
    ACCORD_HOT void step()
    {
        auto *node = new Node();
        void *raw = std::malloc(64);
        auto shared = std::make_shared<Node>();
        (void)node;
        (void)raw;
        (void)shared;
    }
};

} // namespace fixture

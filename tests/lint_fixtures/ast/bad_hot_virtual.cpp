// Analyzer fixture: virtual dispatch on a hot path through a base
// that is NOT on the sanctioned allowlist (OrgStrategy / OrgServices
// / WayPolicy are the extension seams; everything else must be
// devirtualized or explicitly allowed).
// expect: hot-virtual

#if defined(__clang__)
#define ACCORD_HOT [[clang::annotate("accord_hot")]]
#else
#define ACCORD_HOT
#endif

namespace fixture
{

struct Sink
{
    virtual ~Sink() = default;
    virtual void push(int value) = 0;
};

struct Drain
{
    Sink *sink_ = nullptr;

    ACCORD_HOT void flush()
    {
        sink_->push(1);
    }
};

} // namespace fixture

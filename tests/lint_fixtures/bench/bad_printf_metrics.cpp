// Fixture: a bench source that prints results directly instead of
// going through report::Reporter, so the text output and the JSON
// report could diverge.
// expect: printf-metrics

#include <cstdio>

int
main()
{
    const double hit_rate = 0.742;
    std::printf("hit rate: %.1f%%\n", hit_rate * 100.0);

    // snprintf into a label is allowed: it builds a cell, it does not
    // bypass the report layer.
    char label[32];
    std::snprintf(label, sizeof label, "PIP=%.0f%%", 85.0);
    return 0;
}

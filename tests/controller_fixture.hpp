/** @file Shared fixture helpers for DRAM-cache controller tests. */

#ifndef ACCORD_TESTS_CONTROLLER_FIXTURE_HPP
#define ACCORD_TESTS_CONTROLLER_FIXTURE_HPP

#include <memory>

#include "common/event_queue.hpp"
#include "core/factory.hpp"
#include "dramcache/controller.hpp"
#include "nvm/nvm_system.hpp"

namespace accord::test
{

/** A small DRAM cache + NVM pair wired to one event queue. */
struct MiniSystem
{
    EventQueue eq;
    nvm::NvmSystem nvm{eq};
    std::unique_ptr<dramcache::DramCacheController> cache;

    MiniSystem(unsigned ways, dramcache::LookupMode lookup,
               const std::string &policy_spec,
               std::uint64_t capacity = 1ULL << 20,
               dramcache::Organization org =
                   dramcache::Organization::SetAssoc,
               bool dcp_way_bits = true)
        : MiniSystem(
              [&] {
                  dramcache::DramCacheParams params;
                  params.capacityBytes = capacity;
                  params.ways = ways;
                  params.org = org;
                  params.lookup = lookup;
                  params.dcpWayBits = dcp_way_bits;
                  params.seed = 99;
                  return params;
              }(),
              policy_spec)
    {
    }

    /** Full-params overload (orgName, replacement, audit settings). */
    MiniSystem(const dramcache::DramCacheParams &params,
               const std::string &policy_spec)
    {
        std::unique_ptr<core::WayPolicy> policy;
        if (!policy_spec.empty()) {
            core::CacheGeometry geom;
            geom.ways = params.ways;
            geom.sets = params.capacityBytes / lineSize / params.ways;
            core::PolicyOptions opts;
            opts.seed = 4242;
            policy = core::makePolicy(policy_spec, geom, opts);
        }
        cache = std::make_unique<dramcache::DramCacheController>(
            params, std::move(policy), dram::hbmCacheTiming(), eq,
            nvm);
    }

    dramcache::DramCacheController &operator*() { return *cache; }
    dramcache::DramCacheController *operator->()
    {
        return cache.get();
    }

    /** Line address mapping to a chosen set with a chosen tag. */
    LineAddr
    lineFor(std::uint64_t set, std::uint64_t tag) const
    {
        return (tag << cache->geometry().setBits()) | set;
    }

    /** Timed read that runs the queue to completion. */
    bool
    readBlocking(LineAddr line)
    {
        bool hit = false;
        bool done = false;
        cache->read(line, [&](bool was_hit, Cycle) {
            hit = was_hit;
            done = true;
        });
        eq.runUntil([&] { return done; });
        return hit;
    }
};

} // namespace accord::test

#endif // ACCORD_TESTS_CONTROLLER_FIXTURE_HPP

/** @file Unit tests for PWS / SWS / unbiased steering policies. */

#include <gtest/gtest.h>

#include <set>

#include "core/steer.hpp"

using namespace accord;
using namespace accord::core;

namespace
{

CacheGeometry
geom(unsigned ways, std::uint64_t sets = 1024)
{
    CacheGeometry g;
    g.ways = ways;
    g.sets = sets;
    return g;
}

} // namespace

TEST(LineRef, SplitsSetAndTag)
{
    const auto g = geom(2, 256);
    const LineRef ref = LineRef::make(0x12345, g);
    EXPECT_EQ(ref.set, 0x12345u & 255u);
    EXPECT_EQ(ref.tag, 0x12345u >> 8);
    EXPECT_EQ((ref.tag << 8) | ref.set, 0x12345u);
}

TEST(PreferredWay, IsLowTagBits)
{
    const auto g = geom(4, 256);
    for (LineAddr line = 0; line < 4096; line += 59) {
        const LineRef ref = LineRef::make(line, g);
        EXPECT_EQ(preferredWay(ref, 4), ref.tag & 3);
    }
}

TEST(PreferredWay, SharedAcrossRegion)
{
    // All 64 lines of a 4KB region share their tag (sets >= 64), so
    // they share the preferred way — the property GWS relies on.
    const auto g = geom(2, 4096);
    const LineAddr base = 0xABCD00 & ~63ULL;
    const unsigned expected =
        preferredWay(LineRef::make(base, g), 2);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(preferredWay(LineRef::make(base + i, g), 2),
                  expected);
}

TEST(AlternateWays, NeverEqualsPreferred)
{
    const auto g = geom(8, 1024);
    for (LineAddr line = 0; line < 100000; line += 271) {
        const LineRef ref = LineRef::make(line, g);
        const unsigned preferred = preferredWay(ref, 8);
        for (const unsigned alt : alternateWays(ref, 8, 1))
            EXPECT_NE(alt, preferred);
    }
}

TEST(AlternateWays, DeterministicAndInRange)
{
    const auto g = geom(4, 1024);
    for (LineAddr line = 0; line < 10000; line += 97) {
        const LineRef ref = LineRef::make(line, g);
        const auto a = alternateWays(ref, 4, 1);
        const auto b = alternateWays(ref, 4, 1);
        ASSERT_EQ(a.size(), 1u);
        EXPECT_EQ(a, b);
        EXPECT_LT(a[0], 4u);
    }
}

TEST(AlternateWays, RequestedCountDistinct)
{
    const auto g = geom(8, 1024);
    for (LineAddr line = 0; line < 5000; line += 61) {
        const LineRef ref = LineRef::make(line, g);
        const auto alts = alternateWays(ref, 8, 3);
        ASSERT_EQ(alts.size(), 3u);
        std::set<unsigned> unique(alts.begin(), alts.end());
        EXPECT_EQ(unique.size(), 3u);
        EXPECT_EQ(unique.count(preferredWay(ref, 8)), 0u);
    }
}

TEST(AlternateWays, UniformTagFallsBackToRotation)
{
    // tag == 0: every 2-bit group matches the preferred way (0), so
    // the alternate must come from the rotation fallback.
    const auto g = geom(4, 1024);
    const LineRef ref = LineRef::make(5, g);    // tag 0, set 5
    const auto alts = alternateWays(ref, 4, 1);
    ASSERT_EQ(alts.size(), 1u);
    EXPECT_EQ(alts[0], 1u);     // (preferred + 1) mod 4
}

TEST(Pws, PredictsPreferredWay)
{
    const auto g = geom(2);
    PwsPolicy pws(g, 0.85, 1);
    for (LineAddr line = 0; line < 1000; ++line) {
        const LineRef ref = LineRef::make(line, g);
        EXPECT_EQ(pws.predict(ref), preferredWay(ref, 2));
    }
}

TEST(Pws, InstallBiasMatchesPip)
{
    const auto g = geom(2);
    PwsPolicy pws(g, 0.85, 7);
    int preferred_count = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const LineRef ref = LineRef::make(
            static_cast<LineAddr>(i) * 131, g);
        preferred_count +=
            pws.install(ref) == preferredWay(ref, 2) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(preferred_count) / trials, 0.85,
                0.01);
}

TEST(Pws, Pip100IsDirectMapped)
{
    const auto g = geom(2);
    PwsPolicy pws(g, 1.0, 7);
    for (LineAddr line = 0; line < 1000; ++line) {
        const LineRef ref = LineRef::make(line, g);
        EXPECT_EQ(pws.install(ref), preferredWay(ref, 2));
    }
}

TEST(Pws, NonPreferredInstallsAreUniform)
{
    const auto g = geom(4);
    PwsPolicy pws(g, 0.0, 13);      // never the preferred way
    std::array<int, 4> counts{};
    const LineRef ref = LineRef::make(0x1234, g);   // fixed preferred
    for (int i = 0; i < 30000; ++i)
        ++counts[pws.install(ref)];
    EXPECT_EQ(counts[preferredWay(ref, 4)], 0);
    for (unsigned w = 0; w < 4; ++w) {
        if (w == preferredWay(ref, 4))
            continue;
        EXPECT_NEAR(counts[w], 10000, 1000);
    }
}

TEST(Pws, NameEncodesPip)
{
    EXPECT_EQ(PwsPolicy(geom(2), 0.85, 1).name(), "pws85");
    EXPECT_EQ(PwsPolicy(geom(2), 0.5, 1).name(), "pws50");
}

TEST(Unbiased, InstallUniformOverWays)
{
    const auto g = geom(4);
    UnbiasedPolicy rnd(g, 3);
    std::array<int, 4> counts{};
    const LineRef ref = LineRef::make(77, g);
    for (int i = 0; i < 40000; ++i)
        ++counts[rnd.install(ref)];
    for (const int c : counts)
        EXPECT_NEAR(c, 10000, 1000);
}

TEST(Unbiased, ZeroStorage)
{
    EXPECT_EQ(UnbiasedPolicy(geom(2), 1).storageBits(), 0u);
}

TEST(Sws, CandidatesAreExactlyK)
{
    for (unsigned k : {2u, 3u, 4u}) {
        const auto g = geom(8);
        SwsPolicy sws(g, k, 0.85, 5);
        for (LineAddr line = 0; line < 10000; line += 83) {
            const LineRef ref = LineRef::make(line, g);
            EXPECT_EQ(static_cast<unsigned>(
                          __builtin_popcountll(sws.candidates(ref))),
                      k);
        }
    }
}

TEST(Sws, InstallStaysWithinCandidates)
{
    const auto g = geom(8);
    SwsPolicy sws(g, 2, 0.85, 5);
    for (LineAddr line = 0; line < 20000; line += 7) {
        const LineRef ref = LineRef::make(line, g);
        const std::uint64_t mask = sws.candidates(ref);
        const unsigned way = sws.install(ref);
        EXPECT_TRUE(mask & (1ULL << way));
    }
}

TEST(Sws, PredictionIsPreferredAndInCandidates)
{
    const auto g = geom(8);
    SwsPolicy sws(g, 2, 0.85, 5);
    for (LineAddr line = 0; line < 5000; line += 13) {
        const LineRef ref = LineRef::make(line, g);
        EXPECT_EQ(sws.predict(ref), preferredWay(ref, 8));
        EXPECT_TRUE(sws.candidates(ref)
                    & (1ULL << sws.predict(ref)));
    }
}

TEST(Sws, CandidatesSharedAcrossRegion)
{
    const auto g = geom(8, 4096);
    SwsPolicy sws(g, 2, 0.85, 5);
    const LineAddr base = 0x777000ULL & ~63ULL;
    const std::uint64_t mask =
        sws.candidates(LineRef::make(base, g));
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(sws.candidates(LineRef::make(base + i, g)), mask);
}

TEST(Sws, NameReportsGeometry)
{
    EXPECT_EQ(SwsPolicy(geom(8), 2, 0.85, 1).name(), "sws(8,2)");
    EXPECT_EQ(SwsPolicy(geom(4), 3, 0.85, 1).name(), "sws(4,3)");
}

TEST(SwsDeath, BadKRejected)
{
    EXPECT_DEATH(SwsPolicy(geom(4), 1, 0.85, 1), "k");
    EXPECT_DEATH(SwsPolicy(geom(4), 5, 0.85, 1), "k");
}

/** Property sweep: alternates valid for every (ways, k). */
struct SwsShape
{
    unsigned ways;
    unsigned count;
};

class AlternateProperty : public ::testing::TestWithParam<SwsShape>
{
};

TEST_P(AlternateProperty, AlwaysValid)
{
    const auto shape = GetParam();
    const auto g = geom(shape.ways);
    for (LineAddr line = 0; line < 3000; line += 17) {
        const LineRef ref = LineRef::make(line, g);
        const auto alts = alternateWays(ref, shape.ways, shape.count);
        ASSERT_EQ(alts.size(), shape.count);
        for (const unsigned alt : alts)
            EXPECT_LT(alt, shape.ways);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlternateProperty,
    ::testing::Values(SwsShape{2, 1}, SwsShape{4, 1}, SwsShape{4, 2},
                      SwsShape{4, 3}, SwsShape{8, 1}, SwsShape{8, 3},
                      SwsShape{8, 7}, SwsShape{16, 1}, SwsShape{16, 4},
                      SwsShape{32, 1}));

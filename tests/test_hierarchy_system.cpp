/** @file Integration tests for the full-hierarchy System mode. */

#include <gtest/gtest.h>

#include "sim/runner.hpp"

using namespace accord;
using namespace accord::sim;

namespace
{

SystemConfig
hierConfig()
{
    SystemConfig config;
    config.workload = "gcc";
    config.numCores = 2;
    // The on-chip hierarchy is NOT scaled, so the scale must keep the
    // (scaled) L4 well above the 8MB L3 for the L4 to see reuse.
    config.scale = 16;
    config.runTimed = false;
    config.fullHierarchy = true;
    config.warmPerCore = 500'000;
    config.measurePerCore = 150'000;
    return config;
}

} // namespace

TEST(HierarchySystem, FunctionalRunCompletes)
{
    const SystemMetrics m = runSystem(hierConfig());
    // The hierarchy filters most accesses; the L4 still sees a
    // non-trivial stream and produces sane statistics.
    EXPECT_GT(m.cacheStats.readHits.total(), 100u);
    EXPECT_GT(m.hitRate, 0.0);
    EXPECT_LE(m.hitRate, 1.0);
}

TEST(HierarchySystem, FiltersTrafficVsDirectMode)
{
    SystemConfig direct = hierConfig();
    direct.fullHierarchy = false;
    const SystemMetrics filtered = runSystem(hierConfig());
    const SystemMetrics unfiltered = runSystem(direct);
    // The L1/L2/L3 stack absorbs a large share of the accesses, so
    // for the same number of generator steps far fewer demands reach
    // the L4.
    EXPECT_LT(filtered.cacheStats.readHits.total(),
              unfiltered.cacheStats.readHits.total());
}

TEST(HierarchySystem, ProducesWritebacks)
{
    const SystemMetrics m = runSystem(hierConfig());
    EXPECT_GT(m.cacheStats.writebacksToCache.value()
                  + m.cacheStats.writebacksToNvm.value(),
              0u);
}

TEST(HierarchySystem, Deterministic)
{
    const SystemMetrics a = runSystem(hierConfig());
    const SystemMetrics b = runSystem(hierConfig());
    EXPECT_EQ(a.cacheStats.readHits.total(),
              b.cacheStats.readHits.total());
    EXPECT_DOUBLE_EQ(a.hitRate, b.hitRate);
}

TEST(HierarchySystem, WorksWithAccordPolicy)
{
    SystemConfig config = hierConfig();
    config.ways = 2;
    config.policySpec = "pws+gws";
    const SystemMetrics m = runSystem(config);
    EXPECT_GT(m.wpAccuracy, 0.5);
}

TEST(HierarchySystemDeath, TimedModeRejected)
{
    SystemConfig config = hierConfig();
    config.runTimed = true;
    EXPECT_EXIT(runSystem(config), ::testing::ExitedWithCode(1),
                "functional");
}

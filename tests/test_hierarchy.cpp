/** @file Unit tests for the L1/L2/L3 functional hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"

using namespace accord;
using namespace accord::cache;

namespace
{

HierarchyParams
tinyHierarchy()
{
    HierarchyParams p;
    p.l1 = {"l1", 1024, 2, "lru", 1};
    p.l2 = {"l2", 4096, 4, "lru", 2};
    p.l3 = {"l3", 16384, 8, "lru", 3};
    return p;
}

} // namespace

TEST(Hierarchy, ColdMissReachesL4)
{
    Hierarchy h(tinyHierarchy());
    const auto r = h.access(1000, false);
    EXPECT_EQ(r.hitLevel, 4u);
    ASSERT_EQ(r.toL4.size(), 1u);
    EXPECT_EQ(r.toL4[0].line, 1000u);
    EXPECT_EQ(r.toL4[0].type, AccessType::Read);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    Hierarchy h(tinyHierarchy());
    h.access(1000, false);
    const auto r = h.access(1000, false);
    EXPECT_EQ(r.hitLevel, 1u);
    EXPECT_TRUE(r.toL4.empty());
}

TEST(Hierarchy, L1EvictionStillHitsL2)
{
    Hierarchy h(tinyHierarchy());
    // L1: 1024B/64/2 = 8 sets, 2 ways. Three lines in one L1 set.
    h.access(0, false);
    h.access(8, false);
    h.access(16, false);    // evicts line 0 from L1
    const auto r = h.access(0, false);
    EXPECT_EQ(r.hitLevel, 2u);
}

TEST(Hierarchy, DirtyLinesPropagateToL4Writebacks)
{
    Hierarchy h(tinyHierarchy());
    // Write a stream large enough to push dirty lines out of all
    // three levels.
    int total_wb = 0;
    for (LineAddr line = 0; line < 2048; ++line) {
        const auto r = h.access(line, true);
        for (const auto &txn : r.toL4) {
            if (txn.type == AccessType::Writeback)
                ++total_wb;
        }
    }
    EXPECT_GT(total_wb, 0);
}

TEST(Hierarchy, CleanStreamProducesNoWritebacks)
{
    Hierarchy h(tinyHierarchy());
    int wb = 0;
    for (LineAddr line = 0; line < 2048; ++line) {
        for (const auto &txn : h.access(line, false).toL4)
            wb += txn.type == AccessType::Writeback ? 1 : 0;
    }
    EXPECT_EQ(wb, 0);
}

TEST(Hierarchy, L3MissRateTracksFootprint)
{
    Hierarchy h(tinyHierarchy());
    // Working set fits L3 (16KB = 256 lines): second pass mostly hits.
    for (int pass = 0; pass < 2; ++pass) {
        for (LineAddr line = 0; line < 128; ++line)
            h.access(line, false);
    }
    EXPECT_LT(h.l3MissRate(), 0.6);

    Hierarchy big(tinyHierarchy());
    for (LineAddr line = 0; line < 100000; ++line)
        big.access(line, false);
    EXPECT_GT(big.l3MissRate(), 0.9);
}

TEST(Hierarchy, DefaultParamsMatchPaperTable3)
{
    const HierarchyParams p;
    EXPECT_EQ(p.l3.capacityBytes, 8ULL * 1024 * 1024);
    EXPECT_EQ(p.l3.ways, 16u);
}

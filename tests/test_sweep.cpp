/**
 * @file
 * Determinism and plumbing tests for the parallel sweep runner: the
 * same sweep must produce bit-identical results for any job count,
 * because every run seeds its RNGs from (seed, workload, config)
 * rather than from scheduling order.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

using namespace accord;

namespace
{

/** Small-scale overrides shared by every sweep in this file. */
Config
fastCli(unsigned jobs)
{
    Config cli;
    cli.parseArg("scale=4096");
    cli.parseArg("cores=2");
    cli.parseArg("warm=3000");
    cli.parseArg("timed=200");
    cli.parseArg("measure=500");
    cli.parseArg("jobs=" + std::to_string(jobs));
    return cli;
}

const std::vector<std::string> kWorkloads = {"libq", "mcf", "nekbone"};
const std::vector<std::string> kConfigs = {"2way-pws+gws",
                                           "2way-rand"};

} // namespace

TEST(SweepRunner, ResolveJobs)
{
    EXPECT_EQ(sim::resolveJobs(1), 1u);
    EXPECT_EQ(sim::resolveJobs(8), 8u);
    EXPECT_GE(sim::resolveJobs(0), 1u);
}

TEST(SweepRunner, ReadsJobsOverrideFromCli)
{
    const sim::SweepRunner serial(fastCli(1));
    EXPECT_EQ(serial.jobs(), 1u);
    const sim::SweepRunner wide(fastCli(8));
    EXPECT_EQ(wide.jobs(), 8u);
}

TEST(SweepRunner, JobsOverrideReachesSystemConfig)
{
    sim::SystemConfig config;
    sim::applyCliOverrides(config, fastCli(4));
    EXPECT_EQ(config.jobs, 4u);
}

// The headline guarantee: a 3-workload x 2-config timed sweep yields
// identical speedups for jobs=1 (the historical serial path) and
// jobs=8 (oversubscribed parallel fan-out).
TEST(SweepDeterminism, SpeedupsIdenticalForOneAndEightJobs)
{
    const bench::SpeedupSweep serial(kWorkloads, kConfigs, fastCli(1));
    const bench::SpeedupSweep wide(kWorkloads, kConfigs, fastCli(8));

    for (const std::string &config : kConfigs) {
        for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
            EXPECT_EQ(serial.speedup(config, w),
                      wide.speedup(config, w))
                << config << " on " << kWorkloads[w];
        }
        EXPECT_EQ(serial.gmean(config), wide.gmean(config)) << config;
    }
    for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
        EXPECT_EQ(serial.baseline(w).cycles, wide.baseline(w).cycles);
        EXPECT_EQ(serial.baseline(w).hitRate, wide.baseline(w).hitRate);
    }
}

// TSan-facing test: a 4-worker sweep must be race-free and still
// deterministic against the serial path.
TEST(SweepDeterminism, FourJobsMatchSerialFunctionalGrid)
{
    const auto serial = sim::SweepRunner(fastCli(1)).runFunctionalGrid(
        kWorkloads, kConfigs, fastCli(1));
    const auto wide = sim::SweepRunner(fastCli(4)).runFunctionalGrid(
        kWorkloads, kConfigs, fastCli(4));

    for (const std::string &config : kConfigs) {
        for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
            EXPECT_EQ(serial.at(config).at(w).hitRate,
                      wide.at(config).at(w).hitRate);
            EXPECT_EQ(serial.at(config).at(w).wpAccuracy,
                      wide.at(config).at(w).wpAccuracy);
        }
    }
}

// The report-layer replay of the jobs guarantee: serializing the SAME
// smoke sweep recorded at jobs=1 and jobs=3 must yield byte-identical
// run-report JSON — every metric of every run, not just the headline
// speedups.  This is the in-process twin of CI's refactor-equivalence
// gate (tools/check_refactor_equivalence.sh, rtol 0).
TEST(SweepDeterminism, ReportBytesIdenticalForOneAndThreeJobs)
{
    const auto record = [](unsigned jobs) {
        const Config cli = fastCli(jobs);
        const bench::SpeedupSweep sweep(kWorkloads, kConfigs, cli);
        report::RunReport report("jobs replay", "byte-identity test");
        for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
            sim::SystemConfig base = sim::baselineConfig(kWorkloads[w]);
            sim::applyCliOverrides(base, cli);
            bench::recordRun(report, kWorkloads[w] + "/dm", base,
                             sweep.baseline(w));
            for (const std::string &name : kConfigs) {
                bench::recordRun(report, kWorkloads[w] + "/" + name,
                                 bench::timedConfig(kWorkloads[w],
                                                    name, cli),
                                 sweep.metrics(name, w));
            }
        }
        return report.toJson();
    };

    EXPECT_EQ(record(1), record(3));
}

TEST(SweepRunner, BaselinePrefetchMatchesSerialGet)
{
    const Config serial_cli = fastCli(1);
    sim::BaselineCache serial;
    const double serial_hit =
        serial.get("libq", serial_cli).hitRate;

    const Config parallel_cli = fastCli(4);
    sim::BaselineCache prefetched;
    prefetched.prefetch(kWorkloads, parallel_cli);
    EXPECT_EQ(prefetched.get("libq", parallel_cli).hitRate,
              serial_hit);
}

TEST(LogCapture, BuffersAndReplays)
{
    std::string captured;
    {
        ScopedLogCapture capture;
        warn("buffered %d", 42);
        inform("also buffered");
        captured = capture.take();
    }
    EXPECT_NE(captured.find("warn: buffered 42\n"), std::string::npos);
    EXPECT_NE(captured.find("info: also buffered\n"),
              std::string::npos);
    // After the capture ends, warn() writes to stderr again; this
    // must not crash and must not land in the old buffer.
    warn("uncaptured");
    EXPECT_EQ(captured.find("uncaptured"), std::string::npos);
}

TEST(LogCapture, CapturesNest)
{
    ScopedLogCapture outer;
    {
        ScopedLogCapture inner;
        warn("inner message");
        EXPECT_NE(inner.text().find("inner message"),
                  std::string::npos);
    }
    warn("outer message");
    EXPECT_EQ(outer.text().find("inner message"), std::string::npos);
    EXPECT_NE(outer.text().find("outer message"), std::string::npos);
}
